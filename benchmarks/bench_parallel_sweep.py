"""Multi-core fleet sharding vs the serial in-process path.

The acceptance workload for the parallel layer (ISSUE 8): the E4/E10
Monte-Carlo shape — 256 independent 2-state trials on G(n = 4096, 3/n)
— run through :func:`repro.sim.montecarlo.estimate_stabilization_time`
serially (``n_jobs=1``) and sharded across a persistent
:class:`repro.parallel.pool.WorkerPool` (``n_jobs=4``), with the
per-trial stabilization times asserted bitwise-identical between the
two paths.  Two fleet shapes are measured:

* ``resampled`` — per-trial resampled graphs (the E4 sweep shape): all
  256 CSRs are published into one shared-memory segment, so this is
  the zero-copy path's stress case;
* ``shared`` — one graph for every trial: a single pair of CSR arrays
  is published, and the per-job payload is only process state.

The pool is created and warmed *outside* the timed region — worker
startup amortizes over a whole sweep in real use (the
``dispatch="fleet"`` sweep path reuses one pool for every grid point),
so it is not part of the per-call cost being measured.

**Hardware-aware acceptance floors.**  Sharding buys wall-clock only
when the machine has cores to shard onto, so the asserted floor is a
function of ``min(workers, usable cores)`` (:func:`scaling_floor`):

* 4+ usable cores — the ISSUE 8 criterion applies verbatim: **>= 3.0x
  at 4 workers** on the resampled workload (full size only);
* 2-3 cores — >= 0.45x per effective worker (near-linear scaling minus
  a dispatch/writeback margin);
* 1 core — parallel dispatch cannot be faster than serial; the floor
  (0.35x) only bounds the round-trip overhead (pickling process state,
  publishing the store, queue hops).  The speedup *measured on this
  hardware* is honestly below 1 and recorded as such — floors are
  derived from the machine running the bench, never fabricated.

Run standalone for the acceptance report::

    PYTHONPATH=src python benchmarks/bench_parallel_sweep.py

The ``--fast`` flag (or ``BENCH_FAST=1``) shrinks the fleet for the CI
smoke step; per-trial identity is still asserted bitwise, but speedup
floors are only enforced at full scale (the bench_batched_frontier.py
convention).  ``emit_bench_json.py`` records the fast-mode numbers
into ``BENCH_parallel.json`` with conservative hardware-scaled
per-entry floors that ``tools/check_bench.py`` enforces in CI.
"""

import os
import sys
import time

import numpy as np

from repro.core.two_state import TwoStateMIS
from repro.graphs.random_graphs import gnp_random_graph
from repro.parallel import WorkerPool, cpu_count, resolve_n_jobs
from repro.sim.montecarlo import estimate_stabilization_time
from repro.sim.runner import run_many_until_stable

FAST = bool(int(os.environ.get("BENCH_FAST", "0"))) or "--fast" in sys.argv[1:]

N = 512 if FAST else 4096
C = 3.0
TRIALS = 32 if FAST else 256
SEED = 1
MAX_ROUNDS = 100_000
REPEATS = 2
#: Shard count under test (the ISSUE 8 acceptance point).  The shard
#: count is machine-independent; only the pool width is clamped.
WORKERS = 4

_SHARED_GRAPH = gnp_random_graph(N, C / N, rng=SEED)


def _resampled_factory(seed):
    """Fresh graph + fresh replica per trial (module-level: picklable)."""
    return TwoStateMIS(gnp_random_graph(N, C / N, rng=seed), coins=seed)


def _shared_factory(seed):
    """Fresh replica on the one shared graph."""
    return TwoStateMIS(_SHARED_GRAPH, coins=seed)


_FACTORIES = {"resampled": _resampled_factory, "shared": _shared_factory}


def scaling_floor(workers: int, full: bool = True) -> float:
    """The asserted speedup floor for ``workers`` on *this* machine.

    See the module docstring — the floor scales with the usable core
    count so a 1-core CI runner gates dispatch overhead while a 4-core
    workstation gates the ISSUE 8 >= 3x criterion.  ``full=False``
    (the CI smoke floors recorded into ``BENCH_parallel.json``) keeps
    an extra margin for loaded shared runners.
    """
    effective = min(workers, cpu_count())
    if effective >= 4:
        return 3.0 if full else 2.0
    if effective >= 2:
        return (0.45 if full else 0.3) * effective
    return 0.35 if full else 0.25


def _estimate(name, n_jobs=None, pool=None):
    return estimate_stabilization_time(
        _FACTORIES[name],
        trials=TRIALS,
        max_rounds=MAX_ROUNDS,
        seed=SEED,
        n_jobs=n_jobs,
        pool=pool,
    )


def _warm_pool(pool):
    """One tiny fleet through every queue/segment code path pre-timing."""
    g = gnp_random_graph(32, 0.1, rng=0)
    run_many_until_stable(
        [TwoStateMIS(g, coins=i) for i in range(pool.workers * 2)],
        max_rounds=MAX_ROUNDS,
        pool=pool,
    )


def _measure_workload(name, pool):
    t_serial = t_parallel = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        serial = _estimate(name, n_jobs=1)
        t_serial = min(t_serial, time.perf_counter() - start)
        start = time.perf_counter()
        parallel = _estimate(name, n_jobs=WORKERS, pool=pool)
        t_parallel = min(t_parallel, time.perf_counter() - start)
        assert np.array_equal(serial.times, parallel.times)
        assert serial.failures == parallel.failures
    return {
        "serial_s": t_serial,
        "parallel_s": t_parallel,
        "speedup": t_serial / t_parallel,
    }


def measure():
    """Both fleet shapes, as a dict keyed by workload name."""
    with WorkerPool(resolve_n_jobs(WORKERS)) as pool:
        _warm_pool(pool)
        return {
            name: _measure_workload(name, pool) for name in _FACTORIES
        }


def _assert_acceptance(results):
    if FAST:
        return  # identity already asserted; floors gate full size only
    floor = scaling_floor(WORKERS)
    speedup = results["resampled"]["speedup"]
    assert speedup >= floor, (
        f"resampled sweep speedup only {speedup:.2f}x at {WORKERS} "
        f"workers on {cpu_count()} usable core(s) (need >= {floor}x)"
    )


def test_parallel_sweep_acceptance(benchmark):
    """The ISSUE 8 acceptance criterion, hardware-scaled (see docstring)."""
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    _assert_acceptance(results)


if __name__ == "__main__":
    mode = "fast (CI smoke)" if FAST else "full"
    results = measure()
    cores = cpu_count()
    print(
        f"{TRIALS} x 2-state G({N}, 3/n) estimate_stabilization_time, "
        f"{WORKERS} shards, pool width {resolve_n_jobs(WORKERS)} "
        f"({cores} usable core(s)), mode: {mode}"
    )
    for name, r in results.items():
        print(
            f"  {name:9s}: serial {r['serial_s'] * 1e3:7.1f}ms"
            f"   sharded {r['parallel_s'] * 1e3:7.1f}ms"
            f"   speedup {r['speedup']:5.2f}x"
        )
    _assert_acceptance(results)
    if not FAST:
        print(
            f"  acceptance: resampled >= {scaling_floor(WORKERS)}x "
            f"(floor for {min(WORKERS, cores)} effective worker(s); "
            "per-trial times bitwise-identical)"
        )
    else:
        print("  per-trial times bitwise-identical on both workloads")
