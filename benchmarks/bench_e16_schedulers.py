"""E16 — scheduler robustness (partial synchrony)."""

import math

from repro.core.schedulers import (
    IndependentScheduler,
    ScheduledTwoStateMIS,
)
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.runner import run_until_stable

_N = 512
_GRAPH = gnp_random_graph(_N, 3 * math.log(_N) / _N, rng=3)


def test_e16_regenerate(regen):
    regen("E16")


def test_half_participation_run(benchmark):
    def run():
        proc = ScheduledTwoStateMIS(
            _GRAPH, scheduler=IndependentScheduler(0.5), coins=1
        )
        result = run_until_stable(proc, max_rounds=400 * _N)
        assert result.stabilized

    benchmark.pedantic(run, rounds=3, iterations=1)
