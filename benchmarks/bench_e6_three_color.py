"""E6 — Theorem 32: 3-color MIS on G(n,p) across all densities."""

from repro.core.three_color import ThreeColorMIS
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.runner import run_until_stable


def test_e6_regenerate(regen):
    regen("E6")


def test_three_color_middle_regime_n512(benchmark):
    n = 512
    graph = gnp_random_graph(n, n ** -0.25, rng=1)

    def run():
        result = run_until_stable(
            ThreeColorMIS(graph, coins=2, a=16.0), max_rounds=200_000
        )
        assert result.stabilized

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_three_color_complete_range_p1(benchmark):
    graph = gnp_random_graph(512, 1.0, rng=3)

    def run():
        result = run_until_stable(
            ThreeColorMIS(graph, coins=4, a=16.0), max_rounds=200_000
        )
        assert result.stabilized
        assert len(result.mis) == 1

    benchmark.pedantic(run, rounds=3, iterations=1)
