"""E4 — Theorem 19: 2-state MIS on G(n,p), covered regimes."""

import math

from repro.core.two_state import TwoStateMIS
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.runner import run_until_stable


def test_e4_regenerate(regen):
    regen("E4")


def test_gnp_sparse_n2048(benchmark):
    n = 2048
    graph = gnp_random_graph(n, math.log(n) / n, rng=1)

    def run():
        result = run_until_stable(
            TwoStateMIS(graph, coins=2), max_rounds=100_000
        )
        assert result.stabilized

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_gnp_boundary_sqrt_n1024(benchmark):
    n = 1024
    graph = gnp_random_graph(n, n ** -0.5, rng=3)

    def run():
        result = run_until_stable(
            TwoStateMIS(graph, coins=4), max_rounds=100_000
        )
        assert result.stabilized

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_gnp_dense_n512(benchmark):
    graph = gnp_random_graph(512, 0.3, rng=5)

    def run():
        result = run_until_stable(
            TwoStateMIS(graph, coins=6), max_rounds=100_000
        )
        assert result.stabilized

    benchmark.pedantic(run, rounds=3, iterations=1)
