"""E9 — Lemmas 6/7: Monte-Carlo verification of the activity bounds."""

from repro.experiments.exp_lemma6 import _multi_star_trial, _star_trial
from repro.sim.rng import spawn_seeds


def test_e9_regenerate(regen):
    regen("E9")


def test_lemma6_trial_batch(benchmark):
    seeds = spawn_seeds(0, 200)

    def run():
        hits = sum(_star_trial(8, s) for s in seeds)
        assert hits >= 0

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_lemma7_trial_batch(benchmark):
    seeds = spawn_seeds(1, 100)

    def run():
        hits = sum(_multi_star_trial(8, 8, s) for s in seeds)
        assert hits >= 0

    benchmark.pedantic(run, rounds=3, iterations=1)
