"""E19 — frontier scaling: 2/3-state MIS on G(n, c/n) at large n."""

from repro.core.two_state import TwoStateMIS
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.montecarlo import estimate_stabilization_time


def test_e19_regenerate(regen):
    regen("E19")


def test_frontier_construction_n2_18(benchmark):
    n = 1 << 18
    graph = benchmark.pedantic(
        lambda: gnp_random_graph(n, 3.0 / n, rng=1), rounds=3, iterations=1
    )
    assert graph.n == n


def test_frontier_two_state_n2_17(benchmark):
    n = 1 << 17
    graph = gnp_random_graph(n, 3.0 / n, rng=2)

    def run():
        stats = estimate_stabilization_time(
            lambda s: TwoStateMIS(graph, coins=s),
            trials=4,
            max_rounds=10_000,
            seed=3,
            batch=4,
        )
        assert stats.success_rate == 1.0

    benchmark.pedantic(run, rounds=1, iterations=1)
