"""E2 — Theorem 11: 2-state MIS on bounded-arboricity graphs."""

from repro.core.two_state import TwoStateMIS
from repro.graphs.generators import grid_graph
from repro.graphs.random_graphs import random_tree
from repro.sim.runner import run_until_stable


def test_e2_regenerate(regen):
    regen("E2")


def test_random_tree_n4096(benchmark):
    graph = random_tree(4096, rng=1)

    def run():
        result = run_until_stable(
            TwoStateMIS(graph, coins=2), max_rounds=100_000
        )
        assert result.stabilized

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_grid_64x64(benchmark):
    graph = grid_graph(64, 64)

    def run():
        result = run_until_stable(
            TwoStateMIS(graph, coins=3), max_rounds=100_000
        )
        assert result.stabilized

    benchmark.pedantic(run, rounds=3, iterations=1)
