"""E17 — 3-state process study."""

from repro.core.three_state import ThreeStateMIS
from repro.graphs.generators import complete_graph, disjoint_cliques
from repro.sim.runner import run_until_stable


def test_e17_regenerate(regen):
    regen("E17")


def test_three_state_clique_n1024(benchmark):
    graph = complete_graph(1024)

    def run():
        result = run_until_stable(
            ThreeStateMIS(graph, coins=1), max_rounds=100_000
        )
        assert result.stabilized

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_three_state_disjoint_cliques(benchmark):
    graph = disjoint_cliques(32, 32)

    def run():
        result = run_until_stable(
            ThreeStateMIS(graph, coins=2), max_rounds=100_000
        )
        assert result.stabilized

    benchmark.pedantic(run, rounds=3, iterations=1)
