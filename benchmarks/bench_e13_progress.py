"""E13 — per-regime |V_t| decay (Lemmas 21-23)."""

import math

from repro.core.two_state import TwoStateMIS
from repro.graphs.random_graphs import gnp_random_graph


def test_e13_regenerate(regen):
    regen("E13")


def test_trajectory_with_aggregates_n1024(benchmark):
    n = 1024
    graph = gnp_random_graph(n, 6 * math.log(n) / n, rng=1)

    def run():
        proc = TwoStateMIS(graph, coins=2)
        for _ in range(50):
            proc.unstable_mask()
            proc.active_mask()
            proc.step()

    benchmark.pedantic(run, rounds=3, iterations=1)
