"""E18 — design ablations as a regenerable experiment."""


def test_e18_regenerate(regen):
    regen("E18")
