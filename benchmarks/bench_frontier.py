"""Incremental frontier engine vs the PR 3 full-recompute path.

The acceptance workload for the frontier engine (ISSUE 4): a single
2-state run on G(n = 2¹⁸, 3/n).  The baseline is the PR 3 loop,
reconstructed faithfully: ``engine="full"`` with the per-round
aggregate memoization disabled, so ``_advance`` and every
stability-protocol call issue fresh full-graph reductions — exactly
what the PR 3 code did (three CSR matvecs per round for a plain run,
five to six for a trajectory-recording run).

Two workloads are measured, both with bitwise-identical trajectories
asserted between the engines:

* ``trajectory`` — ``run_until_stable(..., record_trace=True)``, the
  shape of every trajectory experiment (E13/E15: |B_t|, |A_t|, |I_t|,
  |V_t| per round).  The frontier engine serves each snapshot from its
  maintained aggregates; the PR 3 path pays two extra reductions per
  round on top of the stabilization check.  **Asserted ≥ 5x.**
* ``plain`` — ``run_until_stable`` with no recording.  Here both
  engines pay the irreducible per-round ``bits(n)`` coin draw (§2.1
  discipline) and the run is only ~20 rounds, so the end-to-end ratio
  is smaller; asserted ≥ 2.5x and reported (typically ~4x).

Run standalone for the acceptance report::

    PYTHONPATH=src python benchmarks/bench_frontier.py

or under pytest-benchmark::

    pytest benchmarks/bench_frontier.py --benchmark-only

The ``--fast`` flag (or ``BENCH_FAST=1``) shrinks n to 2¹⁴ for the CI
smoke step; the equivalence checks are unchanged and the speedup
assertions drop to CI-safe floors (the ratios grow with n, so the
full-size bench is the binding one).
"""

import os
import sys
import time

import numpy as np

from repro.core.two_state import TwoStateMIS
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.runner import run_until_stable

FAST = bool(int(os.environ.get("BENCH_FAST", "0"))) or "--fast" in sys.argv[1:]

N = (1 << 14) if FAST else (1 << 18)
C = 3.0
SEED = 1
MAX_ROUNDS = 100_000
REPEATS = 3

#: ISSUE 4 acceptance floor on the trajectory-recording workload.
MIN_TRAJECTORY_SPEEDUP = 2.5 if FAST else 5.0
#: Regression floor on the plain run (reported, modestly asserted).
MIN_PLAIN_SPEEDUP = 1.3 if FAST else 2.5

_GRAPH = gnp_random_graph(N, C / N, rng=0)


class PR3TwoStateMIS(TwoStateMIS):
    """The PR 3 full-recompute loop, reconstructed.

    ``engine="full"`` with the aggregate memoization disabled: every
    ``_advance`` / ``stable_black_mask`` / ``covered_mask`` call issues
    a fresh full-graph reduction, as the PR 3 code did.  Trajectories
    are still bitwise-identical to the shipped engines (asserted
    below), so the comparison is apples to apples.
    """

    def __init__(self, *args, **kwargs):
        kwargs["engine"] = "full"
        super().__init__(*args, **kwargs)

    def _aggregate(self, key, compute):
        return compute()


def _run(cls, record_trace, **kwargs):
    proc = cls(_GRAPH, coins=SEED, **kwargs)
    start = time.perf_counter()
    result = run_until_stable(
        proc,
        max_rounds=MAX_ROUNDS,
        record_trace=record_trace,
        verify=False,
    )
    elapsed = time.perf_counter() - start
    return elapsed, result, proc


def _measure_workload(record_trace):
    """(baseline s, frontier s, speedup) with equivalence asserts."""
    t_base = t_frontier = float("inf")
    base = frontier = None
    for _ in range(REPEATS):
        elapsed, base, _ = _run(PR3TwoStateMIS, record_trace)
        t_base = min(t_base, elapsed)
        elapsed, frontier, proc = _run(
            TwoStateMIS, record_trace, engine="auto"
        )
        t_frontier = min(t_frontier, elapsed)
    # --- bitwise equivalence of the two paths -----------------------
    assert base.stabilization_round == frontier.stabilization_round
    assert np.array_equal(base.mis, frontier.mis)
    assert np.array_equal(base.mis, np.flatnonzero(proc.black))
    if record_trace:
        base_curves = base.trace.as_arrays()
        frontier_curves = frontier.trace.as_arrays()
        for key, curve in base_curves.items():
            assert np.array_equal(curve, frontier_curves[key]), key
    return {
        "baseline_s": t_base,
        "frontier_s": t_frontier,
        "speedup": t_base / t_frontier,
        "rounds": base.rounds_executed,
    }


def measure():
    """Both workloads, as a dict keyed by workload name."""
    return {
        "trajectory": _measure_workload(record_trace=True),
        "plain": _measure_workload(record_trace=False),
    }


def _assert_acceptance(results):
    trajectory = results["trajectory"]["speedup"]
    plain = results["plain"]["speedup"]
    assert trajectory >= MIN_TRAJECTORY_SPEEDUP, (
        f"trajectory-run speedup only {trajectory:.1f}x "
        f"(need >= {MIN_TRAJECTORY_SPEEDUP}x)"
    )
    assert plain >= MIN_PLAIN_SPEEDUP, (
        f"plain-run speedup only {plain:.1f}x "
        f"(need >= {MIN_PLAIN_SPEEDUP}x)"
    )


def test_frontier_acceptance(benchmark):
    """The ISSUE 4 acceptance criterion, measured end to end."""
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    _assert_acceptance(results)


def test_frontier_single_run(benchmark):
    benchmark.pedantic(
        lambda: _run(TwoStateMIS, False, engine="auto"),
        rounds=3,
        iterations=1,
    )


def test_full_recompute_single_run(benchmark):
    benchmark.pedantic(
        lambda: _run(PR3TwoStateMIS, False), rounds=3, iterations=1
    )


if __name__ == "__main__":
    mode = "fast (CI smoke)" if FAST else "full"
    results = measure()
    print(
        f"G(n=2^{N.bit_length() - 1}, 3/n), m={_GRAPH.m}, "
        f"mode: {mode}, {results['plain']['rounds']} rounds to stabilize"
    )
    for name, r in results.items():
        print(
            f"  {name:10s}: PR3 full-recompute {r['baseline_s'] * 1e3:7.1f}ms"
            f"   frontier {r['frontier_s'] * 1e3:6.1f}ms"
            f"   speedup {r['speedup']:5.2f}x"
        )
    _assert_acceptance(results)
    print(
        f"  acceptance: trajectory >= {MIN_TRAJECTORY_SPEEDUP}x and "
        f"plain >= {MIN_PLAIN_SPEEDUP}x both hold "
        "(trajectories bitwise-identical)"
    )
