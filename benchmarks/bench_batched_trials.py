"""Batched vs serial Monte-Carlo trial throughput.

The acceptance workload for the batched trial engine: 256 independent
2-state trials on a fixed G(n=512, p=0.05), where the batched engine
must deliver at least 5x the serial trial loop's throughput while
producing bitwise-identical per-trial results.  Also measures the
heterogeneous (per-trial resampled graph) block-diagonal path.

Run under pytest-benchmark::

    pytest benchmarks/bench_batched_trials.py --benchmark-only

or standalone for a quick speedup report::

    PYTHONPATH=src python benchmarks/bench_batched_trials.py
"""

import time

import numpy as np

from repro.core.two_state import TwoStateMIS
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.montecarlo import estimate_stabilization_time

N = 512
P = 0.05
TRIALS = 256
MAX_ROUNDS = 20_000
SEED = 1

_GRAPH = gnp_random_graph(N, P, rng=0)


def _make_shared(trial_seed):
    return TwoStateMIS(_GRAPH, coins=trial_seed)


def _make_resampled(trial_seed):
    rng = np.random.default_rng(trial_seed)
    return TwoStateMIS(gnp_random_graph(N, P, rng=rng), coins=rng)


def _run(batch):
    return estimate_stabilization_time(
        _make_shared,
        trials=TRIALS,
        max_rounds=MAX_ROUNDS,
        seed=SEED,
        batch=batch,
    )


def test_serial_trial_loop(benchmark):
    stats = benchmark.pedantic(lambda: _run(None), rounds=3, iterations=1)
    assert stats.success_rate == 1.0


def test_batched_trial_engine(benchmark):
    stats = benchmark.pedantic(lambda: _run("auto"), rounds=3, iterations=1)
    assert stats.success_rate == 1.0


def test_batched_resampled_graphs(benchmark):
    stats = benchmark.pedantic(
        lambda: estimate_stabilization_time(
            _make_resampled,
            trials=128,
            max_rounds=MAX_ROUNDS,
            seed=SEED,
            batch="auto",
        ),
        rounds=3,
        iterations=1,
    )
    assert stats.success_rate == 1.0


def test_batched_speedup_at_least_5x(benchmark):
    """The ISSUE acceptance criterion, measured end to end."""

    def measure():
        t0 = time.perf_counter()
        serial = _run(None)
        t1 = time.perf_counter()
        batched = _run("auto")
        t2 = time.perf_counter()
        assert np.array_equal(serial.times, batched.times)
        return (t1 - t0) / (t2 - t1)

    speedup = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert speedup >= 5.0, f"batched speedup only {speedup:.2f}x"


if __name__ == "__main__":
    t0 = time.perf_counter()
    serial = _run(None)
    t1 = time.perf_counter()
    batched = _run("auto")
    t2 = time.perf_counter()
    assert np.array_equal(serial.times, batched.times)
    t_serial, t_batched = t1 - t0, t2 - t1
    print(f"G(n={N}, p={P}), {TRIALS} trials")
    print(f"  serial  trial loop : {t_serial:.3f} s")
    print(f"  batched engine     : {t_batched:.3f} s")
    print(f"  speedup            : {t_serial / t_batched:.1f}x")
    print(f"  per-trial results identical: True ({serial.summary()})")
