"""E15 — conjecture stress test (2-state polylog on hard families)."""

from repro.core.two_state import TwoStateMIS
from repro.graphs.generators import (
    barbell_graph,
    complete_bipartite_graph,
    hypercube_graph,
)
from repro.sim.runner import run_until_stable


def test_e15_regenerate(regen):
    regen("E15")


def test_complete_bipartite_n1024(benchmark):
    graph = complete_bipartite_graph(512, 512)

    def run():
        result = run_until_stable(
            TwoStateMIS(graph, coins=1), max_rounds=200_000
        )
        assert result.stabilized

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_barbell_n1024(benchmark):
    graph = barbell_graph(400, 224)

    def run():
        result = run_until_stable(
            TwoStateMIS(graph, coins=2), max_rounds=200_000
        )
        assert result.stabilized

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_hypercube_dim10(benchmark):
    graph = hypercube_graph(10)

    def run():
        result = run_until_stable(
            TwoStateMIS(graph, coins=3), max_rounds=200_000
        )
        assert result.stabilized

    benchmark.pedantic(run, rounds=3, iterations=1)
