"""E5 — Remark 9: √n disjoint K_√n (the Θ(log² n) lower-bound family)."""

from repro.core.two_state import TwoStateMIS
from repro.graphs.generators import disjoint_cliques
from repro.sim.runner import run_until_stable


def test_e5_regenerate(regen):
    regen("E5")


def test_disjoint_cliques_32x32(benchmark):
    graph = disjoint_cliques(32, 32)

    def run():
        result = run_until_stable(
            TwoStateMIS(graph, coins=1), max_rounds=100_000
        )
        assert result.stabilized
        assert len(result.mis) == 32

    benchmark.pedantic(run, rounds=3, iterations=1)
