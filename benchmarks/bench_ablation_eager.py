"""Ablation: footnote 1 — randomized vs eager white→black transition.

The paper randomizes the white→black transition (probability 1/2)
"because it simplifies the analysis"; the eager variant (probability 1)
is the more natural algorithm.  This ablation measures both: mean
stabilization rounds and wall time on a common workload.  The shapes
match; the eager variant is a constant factor faster in rounds.
"""

import math

from repro.core.two_state import TwoStateMIS
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.montecarlo import estimate_stabilization_time

_N = 512
_GRAPH = gnp_random_graph(_N, 2 * math.log(_N) / _N, rng=11)


def test_randomized_transition(benchmark):
    def run():
        stats = estimate_stabilization_time(
            lambda s: TwoStateMIS(_GRAPH, coins=s),
            trials=10, max_rounds=100_000, seed=0,
        )
        assert stats.success_rate == 1.0
        return stats.mean

    mean = benchmark.pedantic(run, rounds=3, iterations=1)
    assert mean > 0


def test_eager_transition(benchmark):
    def run():
        stats = estimate_stabilization_time(
            lambda s: TwoStateMIS(
                _GRAPH, coins=s, eager_white_promotion=True
            ),
            trials=10, max_rounds=100_000, seed=0,
        )
        assert stats.success_rate == 1.0
        return stats.mean

    mean = benchmark.pedantic(run, rounds=3, iterations=1)
    assert mean > 0
