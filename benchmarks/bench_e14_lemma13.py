"""E14 — Lemma 13's activation inequality q >= p^α."""

from repro.experiments.exp_lemma13 import _configs, _estimate
from repro.sim.rng import spawn_seeds


def test_e14_regenerate(regen):
    regen("E14")


def test_lemma13_estimation_batch(benchmark):
    graph, init, u = _configs()["two-hubs"]
    seeds = spawn_seeds(0, 500)

    def run():
        p_hat, q_hat, _ = _estimate(graph, init, u, 500, seeds)
        assert 0 <= p_hat <= 1 and 0 <= q_hat <= 1

    benchmark.pedantic(run, rounds=3, iterations=1)
