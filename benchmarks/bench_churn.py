"""MIS-service churn: incremental repair vs per-event aggregate rebuild.

The acceptance workload for the dynamic layer (PR 10): an
:class:`~repro.dynamic.service.MISService` consuming a seeded uniform
mutation stream on G(n, 3/n) and re-stabilizing after every event.
Two arms, bitwise-identical by construction (asserted on the final
state vector *and* every per-event recovery-round count):

* ``repair``  — the shipped path: the frontier aggregates are patched
  in place from the touched endpoints
  (:meth:`~repro.core.frontier.FrontierAggregates.apply_topology_delta`),
  so an event costs O(degree of its endpoints).
* ``rebuild`` — ``repair=False``: every event invalidates the
  aggregates and the next stability check reconstructs them from a
  full O(m) reduction — what the service would cost without the
  tentpole.

Reported and asserted:

* **repair speedup** — rebuild seconds / repair seconds.  Grows with n
  (the repair cost is O(1)-ish while the rebuild cost is O(m));
  asserted ≥ :data:`MIN_SPEEDUP`.
* **mutation throughput** — events/s through the repair arm, settles
  included; asserted ≥ :data:`FLOOR_EVENTS_PER_S` (CI-safe).
* **query latency** — mean ``is_member`` seconds over a cold sweep
  (reported; it is an O(1) mask read).

Run standalone for the acceptance report::

    PYTHONPATH=src python benchmarks/bench_churn.py

or under pytest-benchmark::

    pytest benchmarks/bench_churn.py --benchmark-only

The ``--fast`` flag (or ``BENCH_FAST=1``) shrinks n to 2¹² for the CI
smoke step; the equivalence asserts are unchanged and the floors drop
to CI-safe values (the ratio grows with n, so the full-size bench is
the binding one).
"""

import os
import sys
import time

import numpy as np

from repro.dynamic import MISService, make_stream
from repro.graphs.random_graphs import gnp_random_graph

FAST = bool(int(os.environ.get("BENCH_FAST", "0"))) or "--fast" in sys.argv[1:]

N = (1 << 12) if FAST else (1 << 16)
C = 3.0
EVENTS = 256 if FAST else 1024
SEED = 2
REPEATS = 3
QUERIES = 10_000

#: Acceptance floor on rebuild-seconds / repair-seconds.  Measured
#: ~2.3x fast / ~4.6x full on an unloaded runner; asserted loose for
#: CI-safety.
MIN_SPEEDUP = 1.3 if FAST else 2.5

#: CI-safe floor on mutation throughput through the repair arm
#: (events/s, settles included).  Measured ~7000 fast / ~1500 full.
FLOOR_EVENTS_PER_S = 500.0 if FAST else 300.0

_GRAPH = gnp_random_graph(N, C / N, rng=0)
_STREAM = make_stream("uniform", N, seed=1)


def _run(repair: bool):
    service = MISService(_GRAPH, _STREAM, seed=SEED, repair=repair)
    start = time.perf_counter()
    service.run(EVENTS)
    elapsed = time.perf_counter() - start
    return elapsed, service


def measure():
    """(repair s, rebuild s, speedup, events/s, query s) with asserts."""
    t_repair = t_rebuild = float("inf")
    repair_svc = rebuild_svc = None
    for _ in range(REPEATS):
        elapsed, repair_svc = _run(repair=True)
        t_repair = min(t_repair, elapsed)
        elapsed, rebuild_svc = _run(repair=False)
        t_rebuild = min(t_rebuild, elapsed)
    # --- bitwise equivalence of the two arms --------------------------
    assert np.array_equal(
        repair_svc._state_arrays()[0], rebuild_svc._state_arrays()[0]
    )
    assert [r.rounds for r in repair_svc.records] == [
        r.rounds for r in rebuild_svc.records
    ]
    assert repair_svc.repairs > 0 and rebuild_svc.rebuilds > 0
    # --- query latency (cold sweep across the vertex range) ----------
    start = time.perf_counter()
    for u in range(QUERIES):
        repair_svc.is_member(u % N)
    query_s = (time.perf_counter() - start) / QUERIES
    return {
        "repair_s": t_repair,
        "rebuild_s": t_rebuild,
        "speedup": t_rebuild / t_repair,
        "events_per_s": EVENTS / t_repair,
        "query_s": query_s,
        "repairs": repair_svc.repairs,
        "compactions": repair_svc.overlay.compactions,
    }


# --------------------------------------------------------------------------
# pytest-benchmark entry points
# --------------------------------------------------------------------------


def test_e20_regenerate(regen):
    regen("E20")


def test_churn_repair_vs_rebuild(benchmark):
    result = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert result["speedup"] >= MIN_SPEEDUP
    assert result["events_per_s"] >= FLOOR_EVENTS_PER_S


# --------------------------------------------------------------------------
# standalone acceptance report
# --------------------------------------------------------------------------


def main() -> None:
    mode = "fast" if FAST else "full"
    print(
        f"churn bench ({mode}): {EVENTS} uniform events on "
        f"G(n={N}, {C:g}/n), settle after every event"
    )
    r = measure()
    print(
        f"  repair:  {r['repair_s'] * 1e3:8.1f}ms  "
        f"({r['events_per_s']:.0f} events/s, "
        f"{r['repairs']} repairs, {r['compactions']} compactions)"
    )
    print(f"  rebuild: {r['rebuild_s'] * 1e3:8.1f}ms")
    print(
        f"  speedup: {r['speedup']:.2f}x (floor {MIN_SPEEDUP}x); "
        f"is_member {r['query_s'] * 1e6:.2f}us"
    )
    assert r["speedup"] >= MIN_SPEEDUP, (
        f"repair speedup {r['speedup']:.2f}x below floor {MIN_SPEEDUP}x"
    )
    assert r["events_per_s"] >= FLOOR_EVENTS_PER_S, (
        f"throughput {r['events_per_s']:.0f} events/s below floor "
        f"{FLOOR_EVENTS_PER_S:.0f}"
    )
    print("PASS")


if __name__ == "__main__":
    main()
