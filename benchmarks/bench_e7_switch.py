"""E7 — Lemma 27: the randomized logarithmic switch's run-length properties."""

from repro.core.switch import RandomizedLogSwitch
from repro.graphs.generators import complete_graph
from repro.graphs.random_graphs import gnp_random_graph


def test_e7_regenerate(regen):
    regen("E7")


def test_switch_throughput_clique_n512(benchmark):
    switch = RandomizedLogSwitch(complete_graph(512), coins=1, zeta=0.125)

    def run():
        for _ in range(100):
            switch.step()

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_switch_throughput_sparse_n4096(benchmark):
    graph = gnp_random_graph(4096, 0.001, rng=2)
    switch = RandomizedLogSwitch(graph, coins=3, zeta=0.125)

    def run():
        for _ in range(100):
            switch.step()

    benchmark.pedantic(run, rounds=5, iterations=1)
