"""Ablation: neighbourhood-ops backend choice (DESIGN.md §6).

Times 100 rounds of the 2-state process on the same graphs under the
dense, bitset, sparse and pure-python backends.  The auto heuristic in
``make_neighbor_ops`` is justified by these numbers: the bitset backend
targets the mid-size dense regime where the int8 matrix no longer fits
in cache.
"""

import pytest

from repro.core.two_state import TwoStateMIS
from repro.graphs.generators import complete_graph
from repro.graphs.random_graphs import gnp_random_graph

_DENSE_GRAPH = complete_graph(512)
_SPARSE_GRAPH = gnp_random_graph(4096, 0.002, rng=1)
_MIDSIZE_DENSE_GRAPH = gnp_random_graph(6000, 0.15, rng=4)


def _steps(graph, backend: str, rounds: int = 100):
    proc = TwoStateMIS(graph, coins=3, backend=backend, init="all_black")
    proc.step(rounds)


@pytest.mark.parametrize("backend", ["dense", "bitset", "sparse"])
def test_dense_graph_backend(benchmark, backend):
    benchmark.pedantic(
        lambda: _steps(_DENSE_GRAPH, backend), rounds=3, iterations=1
    )


@pytest.mark.parametrize("backend", ["dense", "bitset", "sparse"])
def test_sparse_graph_backend(benchmark, backend):
    benchmark.pedantic(
        lambda: _steps(_SPARSE_GRAPH, backend), rounds=3, iterations=1
    )


@pytest.mark.parametrize("backend", ["dense", "bitset", "sparse"])
def test_midsize_dense_graph_backend(benchmark, backend):
    # The bitset backend's home turf: n past the dense cap, density
    # high enough that CSR indirection hurts.
    benchmark.pedantic(
        lambda: _steps(_MIDSIZE_DENSE_GRAPH, backend, rounds=20),
        rounds=3,
        iterations=1,
    )


def test_adjlist_reference_small(benchmark):
    graph = gnp_random_graph(256, 0.05, rng=2)
    benchmark.pedantic(
        lambda: _steps(graph, "adjlist", rounds=20), rounds=3, iterations=1
    )
