"""E11 — transient-fault recovery campaigns."""

import math

from repro.core.two_state import TwoStateMIS
from repro.graphs.random_graphs import gnp_random_graph
from repro.models.faults import FaultInjectionCampaign, RandomCorruption


def test_e11_regenerate(regen):
    regen("E11")


def test_fault_campaign_n512(benchmark):
    n = 512
    graph = gnp_random_graph(n, 3 * math.log(n) / n, rng=1)
    campaign = FaultInjectionCampaign(
        lambda s: TwoStateMIS(graph, coins=s),
        corruption=RandomCorruption(0.5),
        injections=2,
        max_rounds=100_000,
    )

    def run():
        summary = campaign.run(trials=3, seed=2)
        assert summary["failures"] == 0

    benchmark.pedantic(run, rounds=3, iterations=1)
