"""Emit the machine-readable perf trajectory (``BENCH_*.json``).

Runs the fast-mode variants of the acceptance benchmarks and writes
one JSON file per family at the repo root, each a list of
``{workload, seconds, speedup, commit}`` entries:

* ``BENCH_frontier.json``  — frontier engine vs the PR 3 full-recompute
  path (``benchmarks/bench_frontier.py``);
* ``BENCH_substrate.json`` — CSR-native Graph vs the legacy tuple/set
  representation (``benchmarks/bench_graph_substrate.py``);
* ``BENCH_batched.json``   — batched vs serial Monte-Carlo trials
  (``benchmarks/bench_batched_trials.py``).

The files are the start of the repo's perf trajectory: every commit
that runs ``make bench-fast`` snapshots its speedups in a greppable,
plottable form.  Full-size numbers come from the individual benches'
``__main__`` reports; this emitter deliberately uses the fast (CI
smoke) workloads so it stays cheap enough to run on every commit.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench_json.py

(equivalently ``make bench-fast``).
"""

import json
import os
import pathlib
import subprocess
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent

# The bench modules read BENCH_FAST at import time.
os.environ["BENCH_FAST"] = "1"
sys.path.insert(0, str(ROOT / "benchmarks"))


def current_commit() -> str:
    """Short git hash of HEAD (``"unknown"`` outside a checkout)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def entry(workload: str, seconds: float, speedup: float, commit: str) -> dict:
    return {
        "workload": workload,
        "seconds": round(float(seconds), 6),
        "speedup": round(float(speedup), 3),
        "commit": commit,
    }


def frontier_entries(commit: str) -> list[dict]:
    import bench_frontier

    results = bench_frontier.measure()
    n_label = f"2-state G(2^{bench_frontier.N.bit_length() - 1}, 3/n)"
    return [
        entry(
            f"frontier {name} run, {n_label}",
            r["frontier_s"],
            r["speedup"],
            commit,
        )
        for name, r in results.items()
    ]


def substrate_entries(commit: str) -> list[dict]:
    import bench_graph_substrate

    r = bench_graph_substrate._measure()
    n_label = f"G(2^{bench_graph_substrate.N.bit_length() - 1}, 3/n)"
    return [
        entry(
            f"CSR substrate construction, {n_label}",
            r["t_csr"],
            r["speedup"],
            commit,
        ),
        entry(
            f"CSR substrate memory ratio, {n_label}",
            r["t_csr"],
            r["memory_ratio"],
            commit,
        ),
    ]


def batched_entries(commit: str) -> list[dict]:
    import numpy as np

    import bench_batched_trials as bbt

    start = time.perf_counter()
    serial = bbt._run(None)
    mid = time.perf_counter()
    batched = bbt._run("auto")
    end = time.perf_counter()
    assert np.array_equal(serial.times, batched.times)
    return [
        entry(
            f"batched trials, {bbt.TRIALS} x 2-state G({bbt.N}, {bbt.P})",
            end - mid,
            (mid - start) / (end - mid),
            commit,
        )
    ]


def main() -> None:
    commit = current_commit()
    families = {
        "BENCH_frontier.json": frontier_entries,
        "BENCH_substrate.json": substrate_entries,
        "BENCH_batched.json": batched_entries,
    }
    for filename, build in families.items():
        entries = build(commit)
        path = ROOT / filename
        path.write_text(json.dumps(entries, indent=2) + "\n")
        for e in entries:
            print(
                f"{filename}: {e['workload']}: "
                f"{e['seconds'] * 1e3:.1f}ms, {e['speedup']}x"
            )


if __name__ == "__main__":
    main()
