"""Emit the machine-readable perf trajectory (``BENCH_*.json``).

Runs the fast-mode variants of the acceptance benchmarks and writes
one JSON file per family at the repo root, each a list of
``{workload, mode, seconds, speedup, floor, commit}`` entries:

* ``BENCH_frontier.json``         — frontier engine vs the PR 3
  full-recompute path (``benchmarks/bench_frontier.py``);
* ``BENCH_substrate.json``        — CSR-native Graph vs the legacy
  tuple/set representation (``benchmarks/bench_graph_substrate.py``);
* ``BENCH_batched.json``          — batched vs serial Monte-Carlo
  trials (``benchmarks/bench_batched_trials.py``);
* ``BENCH_batched_frontier.json`` — batched frontier engine vs the
  PR 2 full-reduction batched path
  (``benchmarks/bench_batched_frontier.py``);
* ``BENCH_parallel.json``          — multi-core fleet sharding vs the
  serial in-process path (``benchmarks/bench_parallel_sweep.py``);
  its floors are *hardware-scaled* (a 1-core runner gates dispatch
  overhead, a 4-core one gates real scaling — see
  ``bench_parallel_sweep.scaling_floor``);
* ``BENCH_churn.json``             — the dynamic MIS service: frontier
  repair vs per-event aggregate rebuild, plus an absolute
  mutation-throughput gate (``benchmarks/bench_churn.py``).

Every ``workload`` string names the *exact* parameters the entry
measured (the fast/CI workload — not the full-size acceptance workload
whose floors the bench modules assert standalone), and ``mode`` makes
the distinction machine-readable; an earlier revision's
``BENCH_frontier.json`` read ambiguously because the label looked like
the full-size asserted benchmark.  ``floor`` is the entry's regression
gate: ``tools/check_bench.py`` (CI's last bench step) fails the build
if any committed entry's ``speedup`` drops below its ``floor``.

The files are the repo's perf trajectory: every commit that runs
``make bench-fast`` snapshots its speedups in a greppable, plottable
form.  Full-size numbers come from the individual benches'
``__main__`` reports; this emitter deliberately uses the fast (CI
smoke) workloads so it stays cheap enough to run on every commit.

Usage::

    PYTHONPATH=src python benchmarks/emit_bench_json.py

(equivalently ``make bench-fast``).
"""

import json
import os
import pathlib
import subprocess
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent

# The bench modules read BENCH_FAST at import time.
os.environ["BENCH_FAST"] = "1"
sys.path.insert(0, str(ROOT / "benchmarks"))


def current_commit() -> str:
    """Short git hash of HEAD (``"unknown"`` outside a checkout)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def entry(
    workload: str,
    seconds: float,
    speedup: float,
    floor: float,
    commit: str,
) -> dict:
    return {
        "workload": workload,
        "mode": "fast",
        "seconds": round(float(seconds), 6),
        "speedup": round(float(speedup), 3),
        "floor": float(floor),
        "commit": commit,
    }


def frontier_entries(commit: str) -> list[dict]:
    import bench_frontier as bf

    results = bf.measure()
    label = f"2-state G(n={bf.N}, 3/n), seed {bf.SEED}, single run"
    floors = {
        "trajectory": bf.MIN_TRAJECTORY_SPEEDUP,
        "plain": bf.MIN_PLAIN_SPEEDUP,
    }
    return [
        entry(
            f"frontier engine, {name} {label}",
            r["frontier_s"],
            r["speedup"],
            floors[name],
            commit,
        )
        for name, r in results.items()
    ]


def substrate_entries(commit: str) -> list[dict]:
    import bench_graph_substrate as bgs

    r = bgs._measure()
    label = f"G(n={bgs.N}, 3/n), seed {bgs.SEED}"
    return [
        entry(
            f"CSR substrate construction, {label}",
            r["t_csr"],
            r["speedup"],
            bgs.MIN_SPEEDUP,
            commit,
        ),
        entry(
            f"CSR substrate memory ratio, {label}",
            r["t_csr"],
            r["memory_ratio"],
            bgs.MIN_MEMORY_RATIO,
            commit,
        ),
    ]


def batched_entries(commit: str) -> list[dict]:
    import numpy as np

    import bench_batched_trials as bbt

    start = time.perf_counter()
    serial = bbt._run(None)
    mid = time.perf_counter()
    batched = bbt._run("auto")
    end = time.perf_counter()
    assert np.array_equal(serial.times, batched.times)
    return [
        entry(
            f"batched trials, {bbt.TRIALS} x 2-state "
            f"G(n={bbt.N}, p={bbt.P}), shared graph",
            end - mid,
            (mid - start) / (end - mid),
            # CI-safe regression floor; the full-size bench asserts 5x.
            2.5,
            commit,
        )
    ]


def batched_frontier_entries(commit: str) -> list[dict]:
    import bench_batched_frontier as bbf

    results = bbf.measure()
    label = (
        f"{bbf.TRIALS} x 2-state G(n={bbf.N}, 3/n), per-trial resampled"
    )
    # Deliberately loose CI-safe floors (a loaded shared runner shrinks
    # fast-mode ratios); the full-size bench asserts 3x / 1.4x.
    floors = {"recovery": 1.15, "fleet": 1.0}
    return [
        entry(
            f"batched frontier, "
            f"{'recovery' if name == 'recovery' else 'clean-start'} "
            f"fleet, {label}"
            + (
                f", {bbf.WAVES} waves x {bbf.CORRUPT} faults/replica"
                if name == "recovery"
                else ""
            ),
            r["frontier_s"],
            r["speedup"],
            floors[name],
            commit,
        )
        for name, r in results.items()
    ]


def parallel_entries(commit: str) -> list[dict]:
    import bench_parallel_sweep as bps

    results = bps.measure()
    floor = bps.scaling_floor(bps.WORKERS, full=False)
    label = (
        f"{bps.TRIALS} x 2-state G(n={bps.N}, 3/n), {bps.WORKERS} shards, "
        f"pool width {bps.resolve_n_jobs(bps.WORKERS)} "
        f"({bps.cpu_count()} usable core(s))"
    )
    return [
        entry(
            f"fleet sharding, {name} graphs, {label}",
            r["parallel_s"],
            r["speedup"],
            floor,
            commit,
        )
        for name, r in results.items()
    ]


def churn_entries(commit: str) -> list[dict]:
    import bench_churn as bc

    r = bc.measure()
    label = (
        f"{bc.EVENTS} uniform events on G(n={bc.N}, 3/n), "
        f"settle every event, seed {bc.SEED}"
    )
    return [
        entry(
            f"churn service, frontier repair vs per-event rebuild, {label}",
            r["repair_s"],
            r["speedup"],
            bc.MIN_SPEEDUP,
            commit,
        ),
        # Throughput entry: "speedup" is events/s over the asserted
        # floor, so check_bench's speedup >= floor gate (floor 1.0)
        # doubles as an absolute mutation-throughput gate.
        entry(
            f"churn service, mutation throughput "
            f"({r['events_per_s']:.0f} events/s / floor "
            f"{bc.FLOOR_EVENTS_PER_S:.0f}), {label}",
            r["repair_s"],
            r["events_per_s"] / bc.FLOOR_EVENTS_PER_S,
            1.0,
            commit,
        ),
    ]


def main() -> None:
    commit = current_commit()
    families = {
        "BENCH_frontier.json": frontier_entries,
        "BENCH_substrate.json": substrate_entries,
        "BENCH_batched.json": batched_entries,
        "BENCH_batched_frontier.json": batched_frontier_entries,
        "BENCH_parallel.json": parallel_entries,
        "BENCH_churn.json": churn_entries,
    }
    for filename, build in families.items():
        entries = build(commit)
        path = ROOT / filename
        path.write_text(json.dumps(entries, indent=2) + "\n")
        for e in entries:
            print(
                f"{filename}: {e['workload']}: "
                f"{e['seconds'] * 1e3:.1f}ms, {e['speedup']}x "
                f"(floor {e['floor']}x)"
            )


if __name__ == "__main__":
    main()
