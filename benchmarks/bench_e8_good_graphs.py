"""E8 — Lemma 18: good-graph property checking on G(n,p) samples."""

from repro.graphs.good import check_good_graph, check_p5_common_neighbors
from repro.graphs.random_graphs import gnp_random_graph


def test_e8_regenerate(regen):
    regen("E8")


def test_full_goodness_check_n256(benchmark):
    graph = gnp_random_graph(256, 0.1, rng=1)

    def run():
        report = check_good_graph(graph, 0.1, rng=2, samples=20)
        assert report.all_hold

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_p5_exact_check_n1024(benchmark):
    graph = gnp_random_graph(1024, 0.05, rng=3)

    def run():
        assert check_p5_common_neighbors(graph, 0.05).holds

    benchmark.pedantic(run, rounds=3, iterations=1)
