"""E12 — beeping / stone-age model executions.

Also quantifies the cost of simulating the explicit network layer
(per-node python state machines) vs the vectorized abstract process.
"""

import math

from repro.core.two_state import TwoStateMIS
from repro.graphs.random_graphs import gnp_random_graph
from repro.models.beeping import BeepingTwoStateMIS
from repro.models.stone_age import StoneAgeThreeStateMIS
from repro.sim.runner import run_until_stable

_N = 256
_GRAPH = gnp_random_graph(_N, 2 * math.log(_N) / _N, rng=5)


def test_e12_regenerate(regen):
    regen("E12")


def test_beeping_execution(benchmark):
    def run():
        result = run_until_stable(
            BeepingTwoStateMIS(_GRAPH, coins=1), max_rounds=100_000
        )
        assert result.stabilized

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_stone_age_execution(benchmark):
    def run():
        result = run_until_stable(
            StoneAgeThreeStateMIS(_GRAPH, coins=2), max_rounds=100_000
        )
        assert result.stabilized

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_abstract_process_same_workload(benchmark):
    # The baseline the model layers are compared against.
    def run():
        result = run_until_stable(
            TwoStateMIS(_GRAPH, coins=1), max_rounds=100_000
        )
        assert result.stabilized

    benchmark.pedantic(run, rounds=3, iterations=1)
