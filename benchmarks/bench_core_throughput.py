"""Engine throughput: rounds/second for each process at scale.

Not tied to a paper claim — this is the systems-level benchmark a
downstream user cares about when sizing simulations.
"""

from repro.core.three_color import ThreeColorMIS
from repro.core.three_state import ThreeStateMIS
from repro.core.two_state import TwoStateMIS
from repro.graphs.random_graphs import gnp_random_graph

_GRAPH_LARGE = gnp_random_graph(50_000, 1e-4, rng=1)   # avg degree ~5
_GRAPH_MEDIUM = gnp_random_graph(4096, 0.01, rng=2)    # avg degree ~41


def _run_rounds(process, rounds: int):
    process.step(rounds)


def test_two_state_50k_vertices(benchmark):
    proc = TwoStateMIS(_GRAPH_LARGE, coins=1, init="all_black")
    benchmark.pedantic(
        lambda: _run_rounds(proc, 50), rounds=3, iterations=1
    )


def test_two_state_4k_vertices(benchmark):
    proc = TwoStateMIS(_GRAPH_MEDIUM, coins=2, init="all_black")
    benchmark.pedantic(
        lambda: _run_rounds(proc, 200), rounds=3, iterations=1
    )


def test_three_state_4k_vertices(benchmark):
    proc = ThreeStateMIS(_GRAPH_MEDIUM, coins=3)
    benchmark.pedantic(
        lambda: _run_rounds(proc, 200), rounds=3, iterations=1
    )


def test_three_color_4k_vertices(benchmark):
    proc = ThreeColorMIS(_GRAPH_MEDIUM, coins=4, a=16.0)
    benchmark.pedantic(
        lambda: _run_rounds(proc, 200), rounds=3, iterations=1
    )
