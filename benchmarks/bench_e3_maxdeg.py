"""E3 — Theorem 12: O(Δ log n) bound on random regular graphs."""

from repro.core.two_state import TwoStateMIS
from repro.graphs.random_graphs import random_regular_graph
from repro.sim.runner import run_until_stable


def test_e3_regenerate(regen):
    regen("E3")


def test_regular_d8_n1024(benchmark):
    graph = random_regular_graph(1024, 8, rng=1)

    def run():
        result = run_until_stable(
            TwoStateMIS(graph, coins=2), max_rounds=100_000
        )
        assert result.stabilized

    benchmark.pedantic(run, rounds=3, iterations=1)


def test_regular_d32_n512(benchmark):
    graph = random_regular_graph(512, 32, rng=3)

    def run():
        result = run_until_stable(
            TwoStateMIS(graph, coins=4), max_rounds=100_000
        )
        assert result.stabilized

    benchmark.pedantic(run, rounds=3, iterations=1)
