"""E1 — Theorem 8: 2-state MIS on complete graphs.

``test_e1_regenerate`` re-runs the full experiment (n-sweep + tail
table); the micro-benches time single stabilization runs at two sizes.
"""

from repro.core.two_state import TwoStateMIS
from repro.graphs.generators import complete_graph
from repro.sim.runner import run_until_stable


def test_e1_regenerate(regen):
    regen("E1")


def _run_clique(n: int, seed: int) -> int:
    result = run_until_stable(
        TwoStateMIS(complete_graph(n), coins=seed), max_rounds=100_000
    )
    assert result.stabilized
    return result.stabilization_round


def test_clique_n256_stabilization(benchmark):
    benchmark.pedantic(
        lambda: _run_clique(256, 1), rounds=5, iterations=1
    )


def test_clique_n1024_stabilization(benchmark):
    benchmark.pedantic(
        lambda: _run_clique(1024, 2), rounds=3, iterations=1
    )
