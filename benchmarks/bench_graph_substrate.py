"""CSR-native Graph substrate vs the legacy tuple/set representation.

The acceptance workload for the array-native substrate (ISSUE 3): a
G(n, 3/n) sample at n = 2²⁰ must construct at least 3× faster and
reside in at least 5× less memory on the CSR-native
:class:`repro.graphs.graph.Graph` than on the representation it
replaced (per-vertex sorted Python tuples *plus* sets, built by a
per-edge Python loop).  The legacy representation is reconstructed here
from the same edge arrays so the comparison stays honest as the real
class evolves.

Run standalone for the acceptance report::

    PYTHONPATH=src python benchmarks/bench_graph_substrate.py

or under pytest-benchmark::

    pytest benchmarks/bench_graph_substrate.py --benchmark-only

The ``--fast`` flag (or ``BENCH_FAST=1``) shrinks n to 2¹⁶ for the CI
smoke step; the representation-equivalence check and both acceptance
ratios are still asserted (the ratios are scale-robust: the legacy
representation loses by an order of magnitude at every size).
"""

import os
import sys
import time
import tracemalloc

import numpy as np

from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph

FAST = bool(int(os.environ.get("BENCH_FAST", "0"))) or "--fast" in sys.argv[1:]

N = (1 << 16) if FAST else (1 << 20)
C = 3.0
SEED = 0
#: ISSUE 3 acceptance thresholds at n = 2²⁰.
MIN_MEMORY_RATIO = 5.0
MIN_SPEEDUP = 3.0


def _legacy_build(n, us, vs):
    """The seed's tuple/set adjacency, built edge-by-edge in Python."""
    adj_sets = [set() for _ in range(n)]
    for u, v in zip(us.tolist(), vs.tolist()):
        adj_sets[u].add(v)
        adj_sets[v].add(u)
    adj = tuple(tuple(sorted(s)) for s in adj_sets)
    return adj, adj_sets


def _legacy_resident_bytes(adj, adj_sets):
    """Container bytes of the tuple/set representation.

    Deliberately *undercounts* the legacy side: the per-neighbor int
    objects (28 bytes each, referenced by tuple and set alike) are left
    out, so the measured ratio is a floor on the real one.
    """
    total = sys.getsizeof(adj) + sys.getsizeof(adj_sets)
    total += sum(sys.getsizeof(t) for t in adj)
    total += sum(sys.getsizeof(s) for s in adj_sets)
    return total


def _sample_edges():
    graph = gnp_random_graph(N, C / N, rng=SEED)
    return graph, *graph.edge_arrays()


def _measure():
    """(memory ratio, construction speedup) with equivalence asserts."""
    graph, us, vs = _sample_edges()

    # --- construction time (legacy loop vs vectorized CSR) ----------
    t0 = time.perf_counter()
    adj, adj_sets = _legacy_build(N, us, vs)
    t_legacy = time.perf_counter() - t0
    t0 = time.perf_counter()
    csr_graph = Graph.from_numpy_edges(N, us, vs)
    t_csr = time.perf_counter() - t0

    # --- resident memory --------------------------------------------
    legacy_bytes = _legacy_resident_bytes(adj, adj_sets)
    csr_bytes = csr_graph.memory_nbytes()

    # --- transient (tracemalloc) peak during construction -----------
    tracemalloc.start()
    Graph.from_numpy_edges(N, us, vs)
    _, csr_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # --- equivalence: same adjacency either way ----------------------
    assert csr_graph == graph
    sample = np.random.default_rng(1).integers(0, N, size=64)
    for u in sample.tolist():
        assert csr_graph.neighbors(u) == adj[u]

    return {
        "memory_ratio": legacy_bytes / csr_bytes,
        "speedup": t_legacy / t_csr,
        "t_legacy": t_legacy,
        "t_csr": t_csr,
        "legacy_mb": legacy_bytes / 2**20,
        "csr_mb": csr_bytes / 2**20,
        "csr_peak_mb": csr_peak / 2**20,
        "m": graph.m,
    }


def _assert_acceptance(r):
    assert r["memory_ratio"] >= MIN_MEMORY_RATIO, (
        f"memory reduction only {r['memory_ratio']:.1f}x "
        f"(need >= {MIN_MEMORY_RATIO}x)"
    )
    assert r["speedup"] >= MIN_SPEEDUP, (
        f"construction speedup only {r['speedup']:.1f}x "
        f"(need >= {MIN_SPEEDUP}x)"
    )


def test_substrate_acceptance(benchmark):
    """The ISSUE 3 acceptance criterion, measured end to end."""
    result = benchmark.pedantic(_measure, rounds=1, iterations=1)
    _assert_acceptance(result)


def test_csr_construction(benchmark):
    _, us, vs = _sample_edges()
    benchmark.pedantic(
        lambda: Graph.from_numpy_edges(N, us, vs), rounds=3, iterations=1
    )


if __name__ == "__main__":
    mode = "fast (CI smoke)" if FAST else "full"
    r = _measure()
    print(f"G(n=2^{N.bit_length() - 1}, 3/n), m={r['m']}, mode: {mode}")
    print(
        f"  construction: legacy {r['t_legacy']:6.2f}s   "
        f"CSR {r['t_csr']:6.3f}s   speedup {r['speedup']:5.1f}x"
    )
    print(
        f"  resident:     legacy {r['legacy_mb']:6.1f}MB  "
        f"CSR {r['csr_mb']:6.1f}MB  ratio {r['memory_ratio']:5.1f}x"
        f"   (CSR build peak {r['csr_peak_mb']:.1f}MB)"
    )
    _assert_acceptance(r)
    print(
        f"  acceptance: memory >= {MIN_MEMORY_RATIO:.0f}x and "
        f"construction >= {MIN_SPEEDUP:.0f}x both hold"
    )
