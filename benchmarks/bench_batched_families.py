"""Batched vs serial Monte-Carlo throughput for the engine family.

The acceptance workload for the process-generic batched engines
(``repro.core.batched``): 256 independent trials per family on a fixed
G(n=512, p=0.05), where the batched 3-state and 3-color engines must
deliver at least 4x the serial trial loop's throughput while producing
bitwise-identical per-trial results.  The independently-scheduled
engine and the heterogeneous (per-trial resampled graph) block-diagonal
path are measured alongside.

Run under pytest-benchmark::

    pytest benchmarks/bench_batched_families.py --benchmark-only

or standalone for a speedup report::

    PYTHONPATH=src python benchmarks/bench_batched_families.py

The ``--fast`` flag (or ``BENCH_FAST=1``) shrinks the workloads for the
CI smoke step: equivalence is still asserted bitwise — a batched-path
regression fails the step — but the speedup thresholds are only
enforced at full scale, where timing noise cannot flake the build.
"""

import os
import sys
import time

import numpy as np

from repro.core.schedulers import IndependentScheduler, ScheduledTwoStateMIS
from repro.core.three_color import ThreeColorMIS
from repro.core.three_state import ThreeStateMIS
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.montecarlo import estimate_stabilization_time

FAST = bool(int(os.environ.get("BENCH_FAST", "0"))) or "--fast" in sys.argv[1:]

N = 128 if FAST else 512
P = 0.05
TRIALS = 32 if FAST else 256
MAX_ROUNDS = 40_000
SEED = 1
#: ISSUE 2 acceptance threshold for the 3-state and 3-color engines.
MIN_SPEEDUP = 4.0

_GRAPH = gnp_random_graph(N, P, rng=0)


def _make_three_state(trial_seed):
    return ThreeStateMIS(_GRAPH, coins=trial_seed)


def _make_three_color(trial_seed):
    # Experiment-scale switch parameter (see exp_three_color.EXPERIMENT_A).
    return ThreeColorMIS(_GRAPH, coins=trial_seed, a=16.0)


def _make_scheduled(trial_seed):
    return ScheduledTwoStateMIS(
        _GRAPH, scheduler=IndependentScheduler(0.5), coins=trial_seed
    )


def _make_three_state_resampled(trial_seed):
    rng = np.random.default_rng(trial_seed)
    return ThreeStateMIS(gnp_random_graph(N, P, rng=rng), coins=rng)


WORKLOADS = {
    "3-state": (_make_three_state, TRIALS),
    "3-color(a=16)": (_make_three_color, TRIALS),
    "scheduled(q=0.5)": (_make_scheduled, TRIALS),
    "3-state/resampled": (_make_three_state_resampled, max(TRIALS // 2, 8)),
}

#: Families whose shared-graph speedup is asserted (at full scale).
ASSERTED = ("3-state", "3-color(a=16)")


def _run(make, trials, batch):
    return estimate_stabilization_time(
        make, trials=trials, max_rounds=MAX_ROUNDS, seed=SEED, batch=batch
    )


def _measure(name):
    """(serial s, batched s, speedup) with bitwise-equivalence assert."""
    make, trials = WORKLOADS[name]
    t0 = time.perf_counter()
    serial = _run(make, trials, None)
    t1 = time.perf_counter()
    batched = _run(make, trials, "auto")
    t2 = time.perf_counter()
    assert np.array_equal(serial.times, batched.times), (
        f"{name}: batched results diverge from serial"
    )
    assert serial.failures == batched.failures
    return t1 - t0, t2 - t1, (t1 - t0) / (t2 - t1)


def test_three_state_batched(benchmark):
    stats = benchmark.pedantic(
        lambda: _run(_make_three_state, TRIALS, "auto"),
        rounds=3,
        iterations=1,
    )
    assert stats.success_rate == 1.0


def test_three_color_batched(benchmark):
    stats = benchmark.pedantic(
        lambda: _run(_make_three_color, TRIALS, "auto"),
        rounds=3,
        iterations=1,
    )
    assert stats.success_rate == 1.0


def test_scheduled_batched(benchmark):
    stats = benchmark.pedantic(
        lambda: _run(_make_scheduled, TRIALS, "auto"),
        rounds=3,
        iterations=1,
    )
    assert stats.success_rate == 1.0


def test_speedups_meet_acceptance(benchmark):
    """The ISSUE acceptance criterion, measured end to end."""

    def measure():
        return {name: _measure(name)[2] for name in ASSERTED}

    speedups = benchmark.pedantic(measure, rounds=1, iterations=1)
    if not FAST:
        for name, speedup in speedups.items():
            assert speedup >= MIN_SPEEDUP, (
                f"{name} batched speedup only {speedup:.2f}x"
            )


if __name__ == "__main__":
    mode = "fast (CI smoke)" if FAST else "full"
    print(f"G(n={N}, p={P}), mode: {mode}")
    failed = []
    for name, (make, trials) in WORKLOADS.items():
        t_serial, t_batched, speedup = _measure(name)
        print(
            f"  {name:<18} {trials:>4} trials: "
            f"serial {t_serial:6.2f}s  batched {t_batched:6.2f}s  "
            f"speedup {speedup:5.1f}x"
        )
        if not FAST and name in ASSERTED and speedup < MIN_SPEEDUP:
            failed.append((name, speedup))
    if failed:
        raise SystemExit(
            "speedup below acceptance: "
            + ", ".join(f"{n} at {s:.2f}x" for n, s in failed)
        )
    print("  per-trial results bitwise-identical on every workload")
