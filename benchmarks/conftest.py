"""Benchmark-suite helpers.

Each ``bench_eN_*.py`` regenerates one experiment (the reproduction's
analogue of the paper's tables/figures — see DESIGN.md §6) inside a
pytest-benchmark measurement, asserts its verdicts, and adds
micro-benchmarks of the underlying workload.  Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest


@pytest.fixture
def regen(benchmark):
    """Run an experiment once under the benchmark timer and assert it.

    Returns the ExperimentResult so benches can attach extra info.
    """
    from repro.experiments.registry import run_experiment

    def _run(experiment_id: str, seed: int = 0):
        result = benchmark.pedantic(
            lambda: run_experiment(experiment_id, fast=True, seed=seed),
            rounds=1,
            iterations=1,
        )
        assert result.passed, result.report()
        return result

    return _run
