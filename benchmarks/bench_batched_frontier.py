"""Batched frontier engine vs the PR 2 full-reduction batched path.

The acceptance workload for the batched frontier engine (ISSUE 5): a
Monte-Carlo fleet of 256 independent 2-state replicas on per-trial
resampled G(n = 4096, 3/n) — the E4 sweep shape, riding the
block-diagonal CSR path — run to stabilization under
:func:`repro.sim.runner.run_many_until_stable` with
``engine="auto"`` (incremental per-replica counts, pair-set tail
rounds, O(1) retirement) against ``engine="full"`` (the PR 2 loop:
one ``(R, n)`` count reduction plus a coverage reduction every round).

Two fleet shapes are measured, each with bitwise-identical per-replica
results asserted between the engines:

* ``recovery`` — the *tail-heavy* acceptance workload: the fleet is
  first run to stabilization, then ``WAVES`` transient-fault waves hit
  it — each wave corrupts every replica at ``CORRUPT`` random vertices
  (the paper's self-stabilization scenario, E11's shape) and re-runs
  the same engine to stabilization (engines re-adopt process state per
  :meth:`run`, so the block CSR is built once per fleet).  This is
  exactly the regime the ISSUE's motivation names — every round leaves
  each replica with only a handful of active vertices, yet the
  full-reduction path still pays two whole ``(R, n)`` reductions per
  round.  Timed: the recovery runs.  **Asserted ≥ 3x at full size.**
* ``fleet`` — the same 256 replicas from random initial
  configurations.  Here the first rounds move a constant fraction of
  every graph and cost the same in both engines (the frontier runs
  them as bulk rounds), so the end-to-end ratio is bounded by the
  workload's bulk/tail mix; asserted ≥ 1.4x and reported (typically
  ~1.8-2x).

Run standalone for the acceptance report::

    PYTHONPATH=src python benchmarks/bench_batched_frontier.py

or under pytest-benchmark::

    pytest benchmarks/bench_batched_frontier.py --benchmark-only

The ``--fast`` flag (or ``BENCH_FAST=1``) shrinks the fleet for the CI
smoke step; equivalence is still asserted bitwise — a batched-frontier
regression fails the step — but *this module's* speedup floors are
only enforced at full scale, where timing noise cannot flake the build
(the bench_batched_families.py convention).  The fast-mode numbers are
still perf-gated, deliberately loosely: ``emit_bench_json.py`` records
them into ``BENCH_batched_frontier.json`` with conservative per-entry
floors that ``tools/check_bench.py`` enforces in CI.
"""

import os
import sys
import time

import numpy as np

from repro.core.batched import BatchedTwoStateMIS
from repro.core.two_state import TwoStateMIS
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.rng import spawn_seeds
from repro.sim.runner import run_many_until_stable

FAST = bool(int(os.environ.get("BENCH_FAST", "0"))) or "--fast" in sys.argv[1:]

N = 1024 if FAST else 4096
C = 3.0
TRIALS = 64 if FAST else 256
#: Corrupted vertices per replica, and fault waves, in the recovery
#: workload.
CORRUPT = 8 if FAST else 16
WAVES = 2 if FAST else 3
SEED = 1
MAX_ROUNDS = 100_000
REPEATS = 2 if FAST else 4

#: ISSUE 5 acceptance floor on the tail-heavy (recovery) workload.
MIN_RECOVERY_SPEEDUP = None if FAST else 3.0
#: Regression floor on the clean-start fleet (reported, modestly
#: asserted — its first rounds are bulk rounds in both engines).
MIN_FLEET_SPEEDUP = None if FAST else 1.4

_SEEDS = spawn_seeds(SEED, TRIALS)
#: Per-trial resampled graphs (immutable; shared across timed runs).
_GRAPHS = [
    gnp_random_graph(N, C / N, rng=np.random.default_rng(s))
    for s in _SEEDS
]


def _build_fleet():
    """Fresh replicas (per-trial graphs, independent coin streams)."""
    return [
        TwoStateMIS(graph, coins=s) for graph, s in zip(_GRAPHS, _SEEDS)
    ]


def _corrupt(processes, wave):
    """Flip ``CORRUPT`` random vertices black in every replica."""
    for s, process in zip(_SEEDS, processes):
        rng = np.random.default_rng(s + 0xC0FFEE + 7919 * wave)
        idx = rng.choice(N, size=CORRUPT, replace=False)
        process.corrupt_vertices(idx, black=True)


def _run(build, engine):
    processes = build()
    start = time.perf_counter()
    results = run_many_until_stable(
        processes,
        max_rounds=MAX_ROUNDS,
        batch=TRIALS,
        verify=False,
        engine=engine,
    )
    return time.perf_counter() - start, results


def _run_recovery(engine):
    """Stabilize a fresh fleet, then time ``WAVES`` fault recoveries."""
    processes = _build_fleet()
    run_many_until_stable(
        processes, max_rounds=MAX_ROUNDS, batch=TRIALS, verify=False
    )
    runner = BatchedTwoStateMIS(processes, engine=engine)
    elapsed = 0.0
    results = []
    for wave in range(WAVES):
        _corrupt(processes, wave)
        start = time.perf_counter()
        results.append(runner.run(MAX_ROUNDS, verify=False))
        elapsed += time.perf_counter() - start
    return elapsed, [r for wave in results for r in wave]


def _assert_identical(full, frontier):
    assert len(full) == len(frontier)
    for a, b in zip(full, frontier):
        assert a.stabilized == b.stabilized
        assert a.stabilization_round == b.stabilization_round
        assert a.rounds_executed == b.rounds_executed
        if a.mis is None:
            assert b.mis is None
        else:
            assert np.array_equal(a.mis, b.mis)


def _measure_workload(run_one):
    """(full s, frontier s, speedup) with per-replica identity asserts."""
    t_full = t_frontier = float("inf")
    rounds = 0
    for _ in range(REPEATS):
        elapsed, full = run_one("full")
        t_full = min(t_full, elapsed)
        elapsed, frontier = run_one("auto")
        t_frontier = min(t_frontier, elapsed)
        _assert_identical(full, frontier)
        rounds = max(r.rounds_executed for r in full)
    return {
        "full_s": t_full,
        "frontier_s": t_frontier,
        "speedup": t_full / t_frontier,
        "rounds": rounds,
    }


def measure():
    """Both fleet shapes, as a dict keyed by workload name."""
    return {
        "recovery": _measure_workload(_run_recovery),
        "fleet": _measure_workload(
            lambda engine: _run(_build_fleet, engine)
        ),
    }


def _assert_acceptance(results):
    recovery = results["recovery"]["speedup"]
    fleet = results["fleet"]["speedup"]
    if MIN_RECOVERY_SPEEDUP is not None:
        assert recovery >= MIN_RECOVERY_SPEEDUP, (
            f"tail-heavy recovery speedup only {recovery:.2f}x "
            f"(need >= {MIN_RECOVERY_SPEEDUP}x)"
        )
    if MIN_FLEET_SPEEDUP is not None:
        assert fleet >= MIN_FLEET_SPEEDUP, (
            f"clean-fleet speedup only {fleet:.2f}x "
            f"(need >= {MIN_FLEET_SPEEDUP}x)"
        )


def test_batched_frontier_acceptance(benchmark):
    """The ISSUE 5 acceptance criterion, measured end to end."""
    results = benchmark.pedantic(measure, rounds=1, iterations=1)
    _assert_acceptance(results)


def test_batched_frontier_fleet(benchmark):
    benchmark.pedantic(
        lambda: _run(_build_fleet, "auto"), rounds=REPEATS, iterations=1
    )


def test_batched_full_fleet(benchmark):
    benchmark.pedantic(
        lambda: _run(_build_fleet, "full"), rounds=REPEATS, iterations=1
    )


if __name__ == "__main__":
    mode = "fast (CI smoke)" if FAST else "full"
    results = measure()
    print(
        f"{TRIALS} x 2-state G({N}, 3/n) (per-trial resampled, "
        f"block-diagonal path), mode: {mode}"
    )
    print(
        f"  recovery workload: {WAVES} waves x {CORRUPT} faults/replica"
    )
    for name, r in results.items():
        print(
            f"  {name:9s}: full-reduction {r['full_s'] * 1e3:7.1f}ms"
            f"   frontier {r['frontier_s'] * 1e3:6.1f}ms"
            f"   speedup {r['speedup']:5.2f}x"
            f"   ({r['rounds']} rounds)"
        )
    _assert_acceptance(results)
    if not FAST:
        print(
            f"  acceptance: recovery >= {MIN_RECOVERY_SPEEDUP}x and "
            f"fleet >= {MIN_FLEET_SPEEDUP}x both hold "
            "(per-replica results bitwise-identical)"
        )
    else:
        print("  per-replica results bitwise-identical on both workloads")
