"""E10 — Processes vs baselines (and Remark 10 on K_n)."""

from repro.baselines.luby import luby_mis
from repro.baselines.sequential import SequentialSelfStabilizingMIS
from repro.core.three_state import ThreeStateMIS
from repro.core.two_state import TwoStateMIS
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.runner import run_until_stable

import numpy as np

_GRAPH = gnp_random_graph(512, 0.02, rng=7)


def test_e10_regenerate(regen):
    regen("E10")


def test_two_state_on_suite_graph(benchmark):
    def run():
        result = run_until_stable(
            TwoStateMIS(_GRAPH, coins=1), max_rounds=100_000
        )
        assert result.stabilized

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_three_state_on_suite_graph(benchmark):
    def run():
        result = run_until_stable(
            ThreeStateMIS(_GRAPH, coins=2), max_rounds=100_000
        )
        assert result.stabilized

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_luby_on_suite_graph(benchmark):
    def run():
        mis, phases = luby_mis(_GRAPH, rng=3)
        assert len(mis) > 0

    benchmark.pedantic(run, rounds=5, iterations=1)


def test_sequential_on_suite_graph(benchmark):
    rng = np.random.default_rng(4)
    init = rng.random(_GRAPH.n) < 0.5

    def run():
        algo = SequentialSelfStabilizingMIS(_GRAPH, init=init.copy())
        moves = algo.run()
        assert moves <= 2 * _GRAPH.n

    benchmark.pedantic(run, rounds=3, iterations=1)
