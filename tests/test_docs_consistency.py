"""Docs-code consistency guards.

Documentation drift is a reproduction-killer: these tests pin the
experiment registry, the bench files, and the markdown documents to
each other.
"""

import pathlib
import re

from repro.experiments.registry import list_experiments

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_design_md_indexes_every_experiment():
    text = (ROOT / "DESIGN.md").read_text()
    for eid, _ in list_experiments():
        assert re.search(rf"\b{eid}\b", text), f"{eid} missing from DESIGN.md"


def test_experiments_md_covers_every_experiment():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for eid, _ in list_experiments():
        assert re.search(rf"## {eid} ", text) or re.search(
            rf"## {eid}\b", text
        ), f"{eid} missing from EXPERIMENTS.md"


def test_every_experiment_has_a_bench_target():
    bench_dir = ROOT / "benchmarks"
    bench_text = "\n".join(
        p.read_text() for p in bench_dir.glob("bench_*.py")
    )
    for eid, _ in list_experiments():
        assert f'regen("{eid}")' in bench_text, (
            f"{eid} has no bench regeneration target"
        )


def test_readme_mentions_core_artifacts():
    text = (ROOT / "README.md").read_text()
    for needle in (
        "TwoStateMIS",
        "ThreeColorMIS",
        "EXPERIMENTS.md",
        "DESIGN.md",
        "python -m repro.experiments",
    ):
        assert needle in text, needle


def test_examples_listed_in_readme():
    text = (ROOT / "README.md").read_text()
    for script in (ROOT / "examples").glob("*.py"):
        assert script.name in text, f"{script.name} not listed in README"


def test_docs_exist():
    assert (ROOT / "docs" / "API.md").exists()
    assert (ROOT / "docs" / "TUTORIAL.md").exists()
