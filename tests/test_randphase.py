"""Tests for the generalized RandPhase clock (repro.core.randphase)."""

import numpy as np
import pytest

from repro.core.randphase import RandPhaseClock, phase_lengths
from repro.core.switch import RandomizedLogSwitch
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.sim.rng import ScriptedCoins


class TestConstruction:
    def test_state_count(self):
        clock = RandPhaseClock(path_graph(4), d=5, coins=0)
        assert clock.state_count == 8  # D + 3

    def test_validation(self):
        with pytest.raises(ValueError):
            RandPhaseClock(path_graph(3), d=0)
        with pytest.raises(ValueError):
            RandPhaseClock(path_graph(3), d=2, zeta=0.9)

    def test_init_strings(self):
        g = path_graph(3)
        assert np.all(
            RandPhaseClock(g, d=2, coins=0, init="all_top").levels == 4
        )
        assert np.all(
            RandPhaseClock(g, d=2, coins=0, init="all_zero").levels == 0
        )

    def test_init_array_validated(self):
        with pytest.raises(ValueError):
            RandPhaseClock(
                path_graph(3), d=2, coins=0,
                init=np.array([0, 1, 9]),
            )


class TestRule:
    def test_zero_resets_to_top(self):
        clock = RandPhaseClock(
            Graph(1), d=3, coins=ScriptedCoins([[False]]),
            init=np.array([0]),
        )
        clock.step()
        assert clock.levels[0] == clock.top

    def test_top_stays_without_coin(self):
        clock = RandPhaseClock(
            Graph(1), d=3, coins=ScriptedCoins([[False]]),
            init="all_top",
        )
        clock.step()
        assert clock.levels[0] == clock.top

    def test_top_descends_with_coin(self):
        clock = RandPhaseClock(
            Graph(1), d=3, coins=ScriptedCoins([[True]]),
            init="all_top",
        )
        clock.step()
        assert clock.levels[0] == clock.top - 1

    def test_countdown(self):
        clock = RandPhaseClock(
            Graph(1), d=4, coins=ScriptedCoins([[False]] * 5),
            init=np.array([5]),
        )
        observed = []
        for _ in range(5):
            clock.step()
            observed.append(int(clock.levels[0]))
        assert observed == [4, 3, 2, 1, 0]

    def test_neighborhood_max_pull(self):
        g = Graph(2, [(0, 1)])
        clock = RandPhaseClock(
            g, d=3, coins=ScriptedCoins([[False, False]]),
            init=np.array([1, 4]),
        )
        clock.step()
        assert clock.levels.tolist() == [3, 3]

    def test_top_vertex_ignores_neighbors_without_coin(self):
        # A top-level vertex dwells regardless of neighbour levels.
        g = Graph(2, [(0, 1)])
        clock = RandPhaseClock(
            g, d=3, coins=ScriptedCoins([[False, False]]),
            init=np.array([1, 5]),
        )
        clock.step()
        assert clock.levels.tolist() == [4, 5]


class TestEquivalenceWithSwitch:
    def test_d3_matches_randomized_log_switch(self):
        # Definition 26 IS RandPhase with D = 3; verify trajectory
        # equality level-for-level under shared coins.
        g = star_graph(8)
        init = np.array([5, 0, 1, 2, 3, 4, 5, 2], dtype=np.int8)
        switch = RandomizedLogSwitch(
            g, coins=77, zeta=0.25, init=init.copy()
        )
        clock = RandPhaseClock(
            g, d=3, coins=77, zeta=0.25, init=init.astype(np.int16)
        )
        for _ in range(60):
            switch.step()
            clock.step()
            assert np.array_equal(
                switch.levels.astype(np.int16), clock.levels
            )

    def test_phase_indicator_matches_sigma_for_d3(self):
        # Both must be created with explicit inits so their coin streams
        # stay aligned (random init consumes extra draws).
        g = complete_graph(6)
        init = np.array([0, 1, 2, 3, 4, 5], dtype=np.int8)
        switch = RandomizedLogSwitch(g, coins=5, zeta=0.25, init=init.copy())
        clock = RandPhaseClock(
            g, d=3, coins=5, zeta=0.25, init=init.astype(np.int16)
        )
        for _ in range(40):
            assert np.array_equal(switch.sigma(), clock.phase_indicator())
            switch.step()
            clock.step()


class TestSynchronization:
    @staticmethod
    def _zero_arrivals_simultaneous(clock, warmup: int, rounds: int) -> bool:
        """Lemma 27's synchronization invariant: after warm-up, whenever
        some vertex sits at level 0, *all* vertices do."""
        for _ in range(warmup):
            clock.step()
        observed_zero = False
        for _ in range(rounds):
            clock.step()
            at_zero = clock.levels == 0
            if at_zero.any():
                observed_zero = True
                if not at_zero.all():
                    return False
        return observed_zero

    def test_clique_synchronizes(self):
        clock = RandPhaseClock(complete_graph(12), d=1, coins=3, zeta=0.25)
        assert self._zero_arrivals_simultaneous(clock, warmup=30, rounds=200)

    def test_path_with_adequate_d_synchronizes(self):
        g = path_graph(6)  # diameter 5
        clock = RandPhaseClock(g, d=5, coins=4, zeta=0.25)
        assert self._zero_arrivals_simultaneous(clock, warmup=60, rounds=400)

    def test_phase_lengths_scale_with_zeta(self):
        # Smaller ζ → longer dwell at the top → longer phases.
        g = complete_graph(10)
        short = phase_lengths(
            RandPhaseClock(g, d=2, coins=6, zeta=0.5), rounds=600
        )
        long = phase_lengths(
            RandPhaseClock(g, d=2, coins=6, zeta=0.0625), rounds=600
        )
        assert short and long
        assert np.mean(long) > np.mean(short)

    def test_phase_lengths_at_least_cycle_length(self):
        # A full phase includes the descent D+2 → 0, so gaps are > D.
        g = complete_graph(8)
        lengths = phase_lengths(
            RandPhaseClock(g, d=2, coins=7, zeta=0.25), rounds=500
        )
        assert all(length > 2 for length in lengths)
