"""Tests for the logarithmic switch (Definitions 25/26, Lemma 27)."""

import math

import numpy as np
import pytest

from repro.core.switch import (
    OracleSwitch,
    RandomizedLogSwitch,
    SwitchTraceAnalyzer,
)
from repro.graphs.generators import complete_graph, path_graph
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.rng import ScriptedCoins


class TestRandomizedSwitchRule:
    def test_level_zero_resets_to_five(self):
        switch = RandomizedLogSwitch(
            Graph(1), coins=ScriptedCoins([[False]]),
            zeta=0.5, init=np.array([0], dtype=np.int8),
        )
        switch.step()
        assert switch.levels[0] == 5

    def test_level_five_stays_on_b_one(self):
        # bernoulli draw False → b=1 → stay at 5.
        switch = RandomizedLogSwitch(
            Graph(1), coins=ScriptedCoins([[False]]),
            zeta=0.5, init=np.array([5], dtype=np.int8),
        )
        switch.step()
        assert switch.levels[0] == 5

    def test_level_five_descends_on_b_zero(self):
        # bernoulli draw True → b=0 → level = max(N+) - 1 = 4.
        switch = RandomizedLogSwitch(
            Graph(1), coins=ScriptedCoins([[True]]),
            zeta=0.5, init=np.array([5], dtype=np.int8),
        )
        switch.step()
        assert switch.levels[0] == 4

    def test_mid_level_follows_neighborhood_max(self):
        g = Graph(2, [(0, 1)])
        switch = RandomizedLogSwitch(
            g, coins=ScriptedCoins([[False, False]]),
            zeta=0.5, init=np.array([2, 4], dtype=np.int8),
        )
        switch.step()
        # Vertex 0: max(2, 4) - 1 = 3; vertex 1: max(4, 2) - 1 = 3.
        assert switch.levels.tolist() == [3, 3]

    def test_isolated_vertex_counts_down(self):
        switch = RandomizedLogSwitch(
            Graph(1), coins=ScriptedCoins([[False]] * 4),
            zeta=0.5, init=np.array([4], dtype=np.int8),
        )
        levels = []
        for _ in range(4):
            switch.step()
            levels.append(int(switch.levels[0]))
        assert levels == [3, 2, 1, 0]

    def test_sigma_mapping(self):
        g = Graph(6)
        switch = RandomizedLogSwitch(
            g, coins=0, zeta=0.5,
            init=np.array([0, 1, 2, 3, 4, 5], dtype=np.int8),
        )
        assert switch.sigma().tolist() == [
            True, True, True, False, False, False
        ]

    def test_zeta_validation(self):
        with pytest.raises(ValueError):
            RandomizedLogSwitch(Graph(1), zeta=0.0)
        with pytest.raises(ValueError):
            RandomizedLogSwitch(Graph(1), zeta=0.7)

    def test_init_strings(self):
        g = Graph(3)
        assert np.all(
            RandomizedLogSwitch(g, coins=0, init="all_zero").levels == 0
        )
        assert np.all(
            RandomizedLogSwitch(g, coins=0, init="all_five").levels == 5
        )

    def test_corrupt(self):
        switch = RandomizedLogSwitch(Graph(3), coins=0, init="all_five")
        switch.corrupt(np.array([0, 1, 2], dtype=np.int8))
        assert switch.levels.tolist() == [0, 1, 2]
        with pytest.raises(ValueError):
            switch.corrupt(np.array([0, 1, 9], dtype=np.int8))

    def test_levels_always_valid(self):
        g = gnp_random_graph(30, 0.2, rng=1)
        switch = RandomizedLogSwitch(g, coins=2, zeta=0.25)
        for _ in range(200):
            switch.step()
            assert switch.levels.min() >= 0
            assert switch.levels.max() <= 5


class TestSwitchSynchronization:
    def test_clique_synchronizes(self):
        # On diam <= 2 graphs, after a constant prefix all vertices hit
        # level <= 2 simultaneously (the Lemma 27 argument).
        g = complete_graph(20)
        switch = RandomizedLogSwitch(g, coins=3, zeta=0.25)
        switch_rounds = 0
        for t in range(300):
            switch.step()
            if t >= 10:
                sig = switch.sigma()
                assert sig.all() or (~sig).any()  # trivially true...
                # The real check: on-values appear for all or none.
                if sig.any():
                    assert sig.all()
                    switch_rounds += 1
        assert switch_rounds > 0  # the switch does turn on sometimes

    def test_on_runs_bounded_on_clique(self):
        g = complete_graph(16)
        switch = RandomizedLogSwitch(g, coins=5, zeta=0.25)
        analyzer = SwitchTraceAnalyzer()
        for _ in range(400):
            analyzer.record(switch.sigma())
            switch.step()
        report = analyzer.analyze(a=16.0, n=16, diam_le_2=True, skip_prefix=20)
        assert report["s3_holds"], report


class TestOracleSwitch:
    def test_periodic_schedule(self):
        switch = OracleSwitch(3, on_run=2, off_run=3)
        pattern = []
        for _ in range(10):
            pattern.append(bool(switch.sigma()[0]))
            switch.step()
        assert pattern == [True, True, False, False, False] * 2

    def test_stagger(self):
        switch = OracleSwitch(2, on_run=1, off_run=1, stagger=1)
        sig = switch.sigma()
        assert sig[0] != sig[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            OracleSwitch(2, on_run=0)


class TestTraceAnalyzer:
    def test_runs_encoding(self):
        seq = np.array([True, True, False, True, False, False])
        runs = SwitchTraceAnalyzer._runs(seq)
        assert runs == [(True, 2), (False, 1), (True, 1), (False, 2)]

    def test_vertex_stats(self):
        analyzer = SwitchTraceAnalyzer()
        pattern = [True, False, False, True, True, False, True]
        for value in pattern:
            analyzer.record(np.array([value]))
        stats = analyzer.vertex_stats(0)
        assert stats.max_off_run == 2
        # Trailing off-run (len 1 before final True): min completed
        # off-run after first on is 2 (positions 1-2)? The off-run at
        # position 5 has length 1 and is followed by True → completed.
        assert stats.min_off_run_after_first_on == 1
        assert stats.max_on_run_after_prefix == 2

    def test_analyze_requires_rounds(self):
        with pytest.raises(RuntimeError):
            SwitchTraceAnalyzer().analyze(a=8, n=4, diam_le_2=False)

    def test_s1_violation_detected(self):
        analyzer = SwitchTraceAnalyzer()
        n_rounds = 60
        for _ in range(n_rounds):
            analyzer.record(np.array([False]))  # permanently off
        report = analyzer.analyze(a=8.0, n=4, diam_le_2=False, skip_prefix=0)
        # Bound is 8 ln 4 ≈ 11 < 60: S1 must fail.
        assert not report["s1_holds"]


class TestLemma27EndToEnd:
    def test_s1_on_path(self):
        n = 48
        g = path_graph(n)
        zeta = 0.25
        switch = RandomizedLogSwitch(g, coins=7, zeta=zeta)
        analyzer = SwitchTraceAnalyzer()
        rounds = 4 * int((4 / zeta) * math.log(n))
        for _ in range(rounds):
            analyzer.record(switch.sigma())
            switch.step()
        report = analyzer.analyze(a=4 / zeta, n=n, diam_le_2=False)
        assert report["s1_holds"], report

    def test_s1_s2_s3_on_clique(self):
        n = 32
        zeta = 0.25
        g = complete_graph(n)
        switch = RandomizedLogSwitch(g, coins=9, zeta=zeta)
        analyzer = SwitchTraceAnalyzer()
        rounds = 6 * int((4 / zeta) * math.log(n))
        for _ in range(rounds):
            analyzer.record(switch.sigma())
            switch.step()
        report = analyzer.analyze(a=4 / zeta, n=n, diam_le_2=True)
        assert report["s1_holds"], report
        assert report["s2_holds"], report
        assert report["s3_holds"], report
