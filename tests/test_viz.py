"""Tests for repro.viz."""

import numpy as np
import pytest

from repro.core.states import BLACK, GRAY, WHITE
from repro.core.two_state import TwoStateMIS
from repro.graphs.generators import cycle_graph, grid_graph
from repro.viz import (
    render_grid_states,
    render_states,
    render_timeline,
    state_histogram,
)


class TestRenderStates:
    def test_bool_glyphs(self):
        out = render_states(np.array([True, False, True]))
        assert out == "#.#"

    def test_three_color_glyphs(self):
        out = render_states(np.array([WHITE, GRAY, BLACK], dtype=np.int8))
        assert out == ".:#"

    def test_wrapping(self):
        out = render_states(np.ones(10, dtype=bool), width=4)
        assert out.splitlines() == ["####", "####", "##"]

    def test_empty(self):
        assert render_states(np.array([], dtype=bool)) == ""

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_states(np.array([True]), width=0)


class TestRenderGrid:
    def test_layout(self):
        states = np.array(
            [True, False, False, True, True, False], dtype=bool
        )
        out = render_grid_states(states, rows=2, cols=3)
        assert out == "#..\n##."

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            render_grid_states(np.ones(5, dtype=bool), rows=2, cols=3)


class TestTimeline:
    def test_rows_and_annotations(self):
        proc = TwoStateMIS(cycle_graph(16), coins=1)
        out = render_timeline(proc, rounds=5)
        lines = out.splitlines()
        assert len(lines) == 6
        assert lines[0].startswith("t=   0")
        assert "|B|=" in lines[0] and "|V|=" in lines[0]
        assert proc.round == 5

    def test_every(self):
        proc = TwoStateMIS(cycle_graph(16), coins=2)
        out = render_timeline(proc, rounds=6, every=3)
        assert len(out.splitlines()) == 3  # t = 0, 3, 6

    def test_truncation(self):
        proc = TwoStateMIS(cycle_graph(100), coins=3)
        out = render_timeline(proc, rounds=0, width=20)
        assert out.splitlines()[0].endswith("…")

    def test_validation(self):
        proc = TwoStateMIS(cycle_graph(8), coins=0)
        with pytest.raises(ValueError):
            render_timeline(proc, rounds=-1)
        with pytest.raises(ValueError):
            render_timeline(proc, rounds=1, every=0)


class TestHistogram:
    def test_bool_histogram(self):
        out = state_histogram(np.array([True, True, False]))
        assert "black" in out and "white" in out
        assert "2" in out and "1" in out

    def test_three_color_histogram(self):
        out = state_histogram(
            np.array([WHITE, GRAY, GRAY, BLACK], dtype=np.int8)
        )
        assert "gray" in out

    def test_bars_scale(self):
        out = state_histogram(
            np.array([True] * 30 + [False] * 10)
        )
        lines = out.splitlines()
        black_bar = next(l for l in lines if "black" in l)
        white_bar = next(l for l in lines if "white" in l)
        assert black_bar.count("█") > white_bar.count("█")

    def test_grid_run_histogram_integration(self):
        g = grid_graph(8, 8)
        proc = TwoStateMIS(g, coins=4)
        proc.run(max_rounds=10_000)
        out = state_histogram(proc.state_vector())
        assert "black" in out
