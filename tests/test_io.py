"""Tests for repro.io (serialization)."""

import numpy as np
import pytest

from repro.graphs.generators import complete_graph, petersen_graph
from repro.graphs.graph import Graph
from repro.io import (
    graph_from_dict,
    graph_to_dict,
    read_edge_list,
    read_json,
    write_edge_list,
    write_json,
)


class TestEdgeList:
    def test_roundtrip(self, tmp_path, small_zoo):
        for name, g in small_zoo.items():
            path = tmp_path / f"{name}.txt"
            write_edge_list(g, path)
            assert read_edge_list(path) == g

    def test_isolated_vertices_survive(self, tmp_path):
        g = Graph(5, [(0, 1)])
        path = tmp_path / "g.txt"
        write_edge_list(g, path)
        assert read_edge_list(path).n == 5

    def test_headerless_file(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.n == 3
        assert g.m == 2

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a comment\n\n0 1\n# another\n2 3\n")
        assert read_edge_list(path).m == 2

    def test_malformed_line_reported_with_location(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n0 1 2\n")
        with pytest.raises(ValueError, match=":2:"):
            read_edge_list(path)


class TestJson:
    def test_roundtrip_graph_only(self, tmp_path):
        g = petersen_graph()
        path = tmp_path / "g.json"
        write_json(g, path)
        back, states = read_json(path)
        assert back == g
        assert states is None

    def test_roundtrip_with_bool_states(self, tmp_path):
        g = complete_graph(4)
        states = np.array([True, False, True, False])
        path = tmp_path / "g.json"
        write_json(g, path, states=states)
        back, loaded = read_json(path)
        assert back == g
        assert loaded.dtype == bool
        assert np.array_equal(loaded, states)

    def test_roundtrip_with_int_states(self, tmp_path):
        g = complete_graph(3)
        states = np.array([0, 1, 2], dtype=np.int8)
        path = tmp_path / "g.json"
        write_json(g, path, states=states)
        _, loaded = read_json(path)
        assert loaded.dtype == np.int8
        assert np.array_equal(loaded, states)

    def test_state_shape_validated(self):
        with pytest.raises(ValueError):
            graph_to_dict(complete_graph(3), states=np.zeros(4))

    def test_dict_roundtrip_direct(self):
        g = Graph(4, [(0, 2), (1, 3)])
        doc = graph_to_dict(g)
        back, _ = graph_from_dict(doc)
        assert back == g


class TestInteropWithProcesses:
    def test_saved_state_resumes_identically(self, tmp_path):
        # Serialize a mid-run state; a resumed process with the same
        # remaining coin stream behaves like the original.
        from repro.core.two_state import TwoStateMIS
        from repro.sim.rng import SeededCoins

        g = complete_graph(12)
        proc = TwoStateMIS(g, coins=5)
        proc.step(3)
        path = tmp_path / "snapshot.json"
        write_json(g, path, states=proc.black_mask())

        back_graph, state = read_json(path)
        resumed = TwoStateMIS(back_graph, coins=SeededCoins(99), init=state)
        original = TwoStateMIS(g, coins=SeededCoins(99), init=proc.black_mask())
        for _ in range(20):
            resumed.step()
            original.step()
            assert np.array_equal(resumed.black_mask(), original.black_mask())
