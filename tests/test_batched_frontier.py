"""Batched-frontier equivalence and bookkeeping guarantees.

The batched frontier engine (:mod:`repro.core.batched_frontier`, wired
as ``engine="auto" | "frontier" | "full"`` on the batched engine
family) must be a pure performance transformation: for every seed and
every replica, the batched ``frontier``/``auto`` paths must produce
results *bitwise-identical* to the batched ``full`` path and to
running each replica serially through
:func:`repro.sim.runner.run_until_stable` — across shared and
per-trial resampled (block-diagonal) graphs, mid-run retirement,
budget exhaustion, corrupted starts, and engine reuse over fault
waves.  This suite pins that, plus the flat-scatter primitives and the
O(1)-retirement reduction-count contract.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.batched import (
    BatchedScheduledTwoStateMIS,
    BatchedThreeStateMIS,
    BatchedTwoStateMIS,
)
from repro.core.batched_frontier import (
    BatchedFrontierAggregates,
    RoundDelta,
    apply_flat_delta,
)
from repro.core.frontier import ENGINES
from repro.core.schedulers import IndependentScheduler, ScheduledTwoStateMIS
from repro.core.three_state import ThreeStateMIS
from repro.core.two_state import TwoStateMIS
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.montecarlo import estimate_stabilization_time
from repro.sim.rng import SeededCoins, spawn_seeds
from repro.sim.runner import run_many_until_stable, run_until_stable

MAX_ROUNDS = 50_000

#: Engine classes driven through the generic equivalence helper.
FAMILIES = {
    "two_state": (
        BatchedTwoStateMIS,
        lambda graph, seed: TwoStateMIS(graph, coins=seed),
    ),
    "three_state": (
        BatchedThreeStateMIS,
        lambda graph, seed: ThreeStateMIS(graph, coins=seed),
    ),
    "scheduled": (
        BatchedScheduledTwoStateMIS,
        lambda graph, seed: ScheduledTwoStateMIS(
            graph, scheduler=IndependentScheduler(0.5), coins=seed
        ),
    ),
}


class CountingCoins(SeededCoins):
    """Seeded coins that count draw calls (stream-position probe)."""

    def __init__(self, seed):
        super().__init__(seed)
        self.draws = 0

    def bits(self, n):
        self.draws += 1
        return super().bits(n)

    def bernoulli(self, n, prob):
        self.draws += 1
        return super().bernoulli(n, prob)


def assert_same_results(reference, observed):
    assert len(reference) == len(observed)
    for a, b in zip(reference, observed):
        assert a.stabilized == b.stabilized
        assert a.stabilization_round == b.stabilization_round
        assert a.rounds_executed == b.rounds_executed
        if a.mis is None:
            assert b.mis is None
        else:
            assert np.array_equal(a.mis, b.mis)


def assert_engines_match_serial(
    engine_cls,
    build,
    graphs,
    seeds,
    max_rounds=MAX_ROUNDS,
    corrupt=None,
):
    """Serial runs vs every batched engine mode, bitwise.

    ``build(graph, coins)`` constructs one replica; ``corrupt`` (if
    given) is applied to every replica before running.  Checks
    results, final state vectors and per-replica coin-stream
    positions.
    """
    reference = None
    for mode in ("serial",) + ENGINES:
        coins = [CountingCoins(s) for s in seeds]
        procs = [build(g, c) for g, c in zip(graphs, coins)]
        if corrupt is not None:
            for i, p in enumerate(procs):
                corrupt(i, p)
        if mode == "serial":
            results = [
                run_until_stable(p, max_rounds=max_rounds) for p in procs
            ]
        else:
            results = engine_cls(procs, engine=mode).run(max_rounds)
        observed = (
            results,
            [p.state_vector() for p in procs],
            [p.round for p in procs],
            [c.draws for c in coins],
        )
        if reference is None:
            reference = observed
            continue
        assert_same_results(reference[0], observed[0])
        for a, b in zip(reference[1], observed[1]):
            assert np.array_equal(a, b), mode
        assert reference[2] == observed[2], mode
        assert reference[3] == observed[3], mode


@st.composite
def sparse_graphs(draw):
    n = draw(st.integers(min_value=2, max_value=110))
    density = draw(st.floats(min_value=0.0, max_value=0.3))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    return gnp_random_graph(n, density, rng=seed)


class TestEngineEquivalence:
    @given(graph=sparse_graphs(), seed=st.integers(0, 2**20))
    @settings(max_examples=25, deadline=None)
    def test_two_state_shared_graph(self, graph, seed):
        engine_cls, build = FAMILIES["two_state"]
        seeds = spawn_seeds(seed, 7)
        assert_engines_match_serial(
            engine_cls, build, [graph] * 7, seeds
        )

    @given(graph=sparse_graphs(), seed=st.integers(0, 2**20))
    @settings(max_examples=15, deadline=None)
    def test_three_state_shared_graph(self, graph, seed):
        engine_cls, build = FAMILIES["three_state"]
        seeds = spawn_seeds(seed, 6)
        assert_engines_match_serial(
            engine_cls, build, [graph] * 6, seeds
        )

    @given(graph=sparse_graphs(), seed=st.integers(0, 2**20))
    @settings(max_examples=15, deadline=None)
    def test_scheduled_shared_graph(self, graph, seed):
        engine_cls, build = FAMILIES["scheduled"]
        seeds = spawn_seeds(seed, 6)
        assert_engines_match_serial(
            engine_cls, build, [graph] * 6, seeds, max_rounds=200_000
        )

    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=20, deadline=None)
    def test_two_state_resampled_graphs(self, seed):
        # Per-trial resampled graphs ride the block-diagonal CSR path.
        engine_cls, build = FAMILIES["two_state"]
        seeds = spawn_seeds(seed, 8)
        graphs = [
            gnp_random_graph(60, 0.05, rng=s + 1) for s in seeds
        ]
        assert_engines_match_serial(engine_cls, build, graphs, seeds)

    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=10, deadline=None)
    def test_three_state_resampled_graphs(self, seed):
        engine_cls, build = FAMILIES["three_state"]
        seeds = spawn_seeds(seed, 6)
        graphs = [
            gnp_random_graph(50, 0.06, rng=s + 1) for s in seeds
        ]
        assert_engines_match_serial(engine_cls, build, graphs, seeds)

    @given(
        graph=sparse_graphs(),
        seed=st.integers(0, 2**20),
        frac=st.floats(0.0, 1.0),
    )
    @settings(max_examples=20, deadline=None)
    def test_corrupted_starts(self, graph, seed, frac):
        # Arbitrary (adversarial) initial configurations: the frontier
        # bookkeeping must recover them identically to serial runs.
        engine_cls, build = FAMILIES["two_state"]
        seeds = spawn_seeds(seed, 6)

        def corrupt(i, process):
            rng = np.random.default_rng(seed + 31 * i)
            process.corrupt(rng.random(graph.n) < frac)

        assert_engines_match_serial(
            engine_cls, build, [graph] * 6, seeds, corrupt=corrupt
        )

    @given(seed=st.integers(0, 2**20), budget=st.integers(0, 6))
    @settings(max_examples=20, deadline=None)
    def test_budget_exhaustion_mixed_with_retirement(self, seed, budget):
        # Replicas retire mid-run as they stabilize; the rest exhaust
        # the budget — the frontier state must compact consistently
        # through both kinds of drop.
        from repro.graphs.generators import complete_graph

        engine_cls, build = FAMILIES["two_state"]
        graph = complete_graph(16)
        seeds = spawn_seeds(seed, 12)
        assert_engines_match_serial(
            engine_cls, build, [graph] * 12, seeds, max_rounds=budget
        )

    @given(graph=sparse_graphs(), seed=st.integers(0, 2**20))
    @settings(max_examples=10, deadline=None)
    def test_eager_ablation_replicas_veto_pair_rounds(self, graph, seed):
        # eager_white_promotion replicas change the activity rule; the
        # engine must still be exact (pair rounds are vetoed).
        engine_cls = BatchedTwoStateMIS
        seeds = spawn_seeds(seed, 5)

        def build(g, coins):
            return TwoStateMIS(g, coins=coins, eager_white_promotion=True)

        assert_engines_match_serial(
            engine_cls, build, [graph] * 5, seeds
        )


class TestEngineReuse:
    def test_fault_waves_reuse_one_engine(self):
        # run() re-adopts process state, so one engine can serve a
        # whole fault-injection campaign (and, on the block path, keep
        # its block CSR across waves).
        seeds = spawn_seeds(3, 10)
        graphs = [gnp_random_graph(70, 0.05, rng=s + 9) for s in seeds]

        def wave_runs(mode):
            procs = [
                TwoStateMIS(g, coins=s) for g, s in zip(graphs, seeds)
            ]
            outs = []
            if mode == "serial":
                outs.append(
                    [run_until_stable(p, max_rounds=MAX_ROUNDS) for p in procs]
                )
            else:
                engine = BatchedTwoStateMIS(procs, engine=mode)
                outs.append(engine.run(MAX_ROUNDS))
            for wave in range(2):
                for i, p in enumerate(procs):
                    rng = np.random.default_rng(1000 * wave + i)
                    p.corrupt_vertices(
                        rng.choice(p.n, size=4, replace=False), black=True
                    )
                if mode == "serial":
                    outs.append(
                        [
                            run_until_stable(p, max_rounds=MAX_ROUNDS)
                            for p in procs
                        ]
                    )
                else:
                    outs.append(engine.run(MAX_ROUNDS))
            return outs, [p.black.copy() for p in procs]

        ref_outs, ref_state = wave_runs("serial")
        for mode in ENGINES:
            outs, state = wave_runs(mode)
            for a, b in zip(ref_outs, outs):
                assert_same_results(a, b)
            for a, b in zip(ref_state, state):
                assert np.array_equal(a, b), mode

    def test_mutations_between_construction_and_run_are_adopted(self):
        # run() adopts the processes' *current* state: corruption (or
        # any mutation) after the engine is constructed must not be
        # lost.
        graph = gnp_random_graph(80, 0.06, rng=2)
        seeds = spawn_seeds(7, 6)
        batch_procs = [TwoStateMIS(graph, coins=s) for s in seeds]
        engine = BatchedTwoStateMIS(batch_procs, engine="auto")
        serial_procs = [TwoStateMIS(graph, coins=s) for s in seeds]
        for procs in (batch_procs, serial_procs):
            for i, p in enumerate(procs):
                rng = np.random.default_rng(50 + i)
                p.corrupt(rng.random(graph.n) < 0.5)
        serial = [
            run_until_stable(p, max_rounds=MAX_ROUNDS)
            for p in serial_procs
        ]
        assert_same_results(serial, engine.run(MAX_ROUNDS))
        for sp, bp in zip(serial_procs, batch_procs):
            assert np.array_equal(sp.black, bp.black)

    def test_block_kept_across_waves(self):
        seeds = spawn_seeds(5, 6)
        graphs = [gnp_random_graph(40, 0.08, rng=s) for s in seeds]
        procs = [TwoStateMIS(g, coins=s) for g, s in zip(graphs, seeds)]
        engine = BatchedTwoStateMIS(procs, engine="frontier")
        engine.run(MAX_ROUNDS)
        block = engine._block
        assert block is not None  # frontier mode skips compaction
        for p in procs:
            p.corrupt_vertices([0, 1], black=True)
        engine.run(MAX_ROUNDS)
        assert engine._block is block  # reused, graphs are immutable


class TestMonteCarloEntryPoints:
    def test_engine_kwarg_identical_stats(self):
        def make(s):
            rng = np.random.default_rng(s)
            graph = gnp_random_graph(60, 0.06, rng=rng)
            return TwoStateMIS(graph, coins=rng)

        kw = dict(trials=18, max_rounds=MAX_ROUNDS, seed=11)
        by_engine = {
            engine: estimate_stabilization_time(make, engine=engine, **kw)
            for engine in ENGINES
        }
        serial = estimate_stabilization_time(make, batch=None, **kw)
        for engine, stats in by_engine.items():
            assert np.array_equal(serial.times, stats.times), engine
            assert serial.failures == stats.failures

    def test_run_many_rejects_unknown_engine(self):
        graph = Graph(4, [(0, 1), (2, 3)])
        procs = [TwoStateMIS(graph, coins=s) for s in range(3)]
        with pytest.raises(ValueError, match="unknown engine"):
            run_many_until_stable(procs, engine="warp")
        with pytest.raises(ValueError, match="unknown engine"):
            estimate_stabilization_time(
                lambda s: TwoStateMIS(graph, coins=s),
                trials=2,
                max_rounds=10,
                engine="warp",
            )
        with pytest.raises(ValueError, match="unknown engine"):
            BatchedTwoStateMIS(procs, engine="warp")

    def test_sweep_engine_kwarg(self):
        from repro.sim.montecarlo import sweep_stabilization_times

        def make_factory(n):
            def factory(s):
                return TwoStateMIS(
                    gnp_random_graph(n, 0.1, rng=s), coins=s
                )

            return factory

        grids = {}
        for engine in ("full", "auto"):
            result = sweep_stabilization_times(
                make_factory,
                grid=[20, 30],
                trials=6,
                max_rounds=MAX_ROUNDS,
                seed=2,
                engine=engine,
            )
            grids[engine] = {
                point: stats.times.tolist()
                for point, stats in result.items()
            }
        assert grids["full"] == grids["auto"]


class TestFlatScatterPrimitives:
    def test_apply_flat_delta_matches_dense_update(self):
        rng = np.random.default_rng(7)
        counts = rng.integers(0, 5, size=400).astype(np.int64)
        expected = counts.copy()
        up = rng.integers(0, 400, size=90).astype(np.int64)
        down = rng.integers(0, 400, size=350).astype(np.int64)
        np.add.at(expected, up, 1)
        np.subtract.at(expected, down, 1)
        apply_flat_delta(counts, up, down)
        assert np.array_equal(counts, expected)

    def test_apply_flat_delta_one_sided_and_empty(self):
        counts = np.zeros(64, dtype=np.int64)
        apply_flat_delta(counts, np.array([3, 3, 5], dtype=np.int64), None)
        assert counts[3] == 2 and counts[5] == 1
        apply_flat_delta(counts, None, np.array([3], dtype=np.int64))
        assert counts[3] == 1
        apply_flat_delta(counts, None, None)
        assert counts.sum() == 2

    def test_flat_targets_shared_and_block_agree(self):
        # The shared-graph and block-diagonal gathers must produce the
        # same multiset of live-coordinate scatter targets.
        graph = gnp_random_graph(30, 0.2, rng=1)
        seeds = spawn_seeds(0, 4)
        shared = BatchedTwoStateMIS(
            [TwoStateMIS(graph, coins=s) for s in seeds]
        )
        # Distinct-but-equal graph objects force the block path.
        clones = [
            Graph(graph.n, list(zip(*graph.edge_arrays())))
            for _ in seeds
        ]
        blocked = BatchedTwoStateMIS(
            [TwoStateMIS(g, coins=s) for g, s in zip(clones, seeds)]
        )
        assert not blocked.shared_graph
        blocked._rebuild_block(np.arange(4))
        pos = np.arange(4)
        rng = np.random.default_rng(3)
        rows = rng.integers(0, 4, size=10).astype(np.int64)
        verts = rng.integers(0, 30, size=10).astype(np.int64)
        a = shared._flat_targets(rows, verts, None)
        b = blocked._flat_targets(rows, verts, pos)
        assert np.array_equal(np.sort(a), np.sort(b))


class TestStabilityBookkeeping:
    def test_removal_fallback_recomputes(self):
        # Removals from I_t cannot arise from the dynamics, but the
        # tracker must stay exact if driven there by hand.
        graph = Graph(4, [(0, 1), (2, 3)])
        procs = [TwoStateMIS(graph, coins=s) for s in range(2)]
        engine = BatchedTwoStateMIS(procs, engine="frontier")
        aggregates = BatchedFrontierAggregates(engine, adaptive=False)
        black = np.array(
            [[True, False, True, False], [True, False, True, False]]
        )
        aggregates.rebuild(black, None)
        assert np.array_equal(aggregates.unstable, [0, 0])
        new_black = black.copy()
        new_black[0, 1] = True  # vertex 1 joins 0 in replica 0 only
        delta = RoundDelta(
            up_rows=np.array([0], dtype=np.int64),
            up_verts=np.array([1], dtype=np.int64),
            down_rows=np.empty(0, dtype=np.int64),
            down_verts=np.empty(0, dtype=np.int64),
        )
        aggregates.advance(new_black, delta, None)
        expected_stable = new_black & (
            engine._count_nbrs(new_black, None) == 0
        )
        assert np.array_equal(aggregates.stable, expected_stable)
        expected_covered = expected_stable | (
            engine._count_nbrs(expected_stable, None) > 0
        )
        assert np.array_equal(aggregates.covered, expected_covered)
        assert np.array_equal(
            aggregates.unstable,
            graph.n - expected_covered.sum(axis=1),
        )

    def test_recovery_needs_one_reduction_total(self):
        # The O(1)-retirement contract: a near-stable fleet recovers
        # on the scatter path with exactly one count reduction (the
        # rebuild) — no per-round reductions, no final coverage pass.
        graph = gnp_random_graph(300, 0.02, rng=4)
        seeds = spawn_seeds(9, 8)

        class CountingEngine(BatchedTwoStateMIS):
            reductions = 0

            def _count_nbrs(self, masks, pos):
                type(self).reductions += 1
                return super()._count_nbrs(masks, pos)

        procs = [TwoStateMIS(graph, coins=s) for s in seeds]
        engine = CountingEngine(procs, engine="frontier")
        engine.run(MAX_ROUNDS, verify=False)
        for i, p in enumerate(procs):
            rng = np.random.default_rng(100 + i)
            p.corrupt_vertices(
                rng.choice(p.n, size=3, replace=False), black=True
            )
        CountingEngine.reductions = 0
        results = engine.run(MAX_ROUNDS, verify=False)
        assert all(r.stabilized for r in results)
        assert CountingEngine.reductions == 1  # the rebuild, nothing else

    def test_frontier_mode_never_takes_full_rounds(self):
        from repro.core import batched_frontier as bf

        calls = {"full": 0, "scatter": 0}
        orig_full = bf.BatchedFrontierAggregates.full_round
        orig_adv = bf.BatchedFrontierAggregates.advance

        def full_round(self, *args, **kwargs):
            calls["full"] += 1
            return orig_full(self, *args, **kwargs)

        def advance(self, *args, **kwargs):
            calls["scatter"] += 1
            return orig_adv(self, *args, **kwargs)

        bf.BatchedFrontierAggregates.full_round = full_round
        bf.BatchedFrontierAggregates.advance = advance
        try:
            graph = gnp_random_graph(120, 0.04, rng=2)
            procs = [TwoStateMIS(graph, coins=s) for s in range(6)]
            BatchedTwoStateMIS(procs, engine="frontier").run(MAX_ROUNDS)
        finally:
            bf.BatchedFrontierAggregates.full_round = orig_full
            bf.BatchedFrontierAggregates.advance = orig_adv
        assert calls["full"] == 0
        assert calls["scatter"] > 0
