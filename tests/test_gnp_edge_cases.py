"""G(n, p) sampler edge cases: extreme p, path boundaries, determinism.

Regression suite for the geometric-skip overflow (``np.log1p(-p)``
underflowing toward ``-0.0`` for denormal ``p``, sending the skip
quotient to ``inf`` before integer conversion) plus invariants at the
dense/sparse path crossover and a seed-determinism pin of the fixed
sampler's output.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph

#: Extreme but legal probabilities, including the denormal that used to
#: raise OverflowError and values adjacent to both endpoints.
EXTREME_PS = [5e-324, 1e-320, 1e-12, 0.5, 1 - 1e-12, 1e-9, 1 - 2**-53]


def graph_invariants(g: Graph, n: int) -> None:
    assert g.n == n
    assert 0 <= g.m <= n * (n - 1) // 2
    assert int(g.degrees().sum()) == 2 * g.m
    for u, v in g.edges():
        assert 0 <= u < v < n


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=80),
    st.sampled_from(EXTREME_PS),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_extreme_p_invariants(n, p, seed):
    graph_invariants(gnp_random_graph(n, p, rng=seed), n)


def test_denormal_p_regression():
    # The exact Hypothesis counterexample class from the seed suite:
    # log1p(-p) underflows and int(inf) raised OverflowError.
    g = gnp_random_graph(50, 5e-324, rng=0)
    assert g.m == 0


def test_tiny_p_is_effectively_empty():
    # Expected edge count ~ 1e-9; any sampled edge would be a miracle.
    g = gnp_random_graph(100, 1e-12, rng=123)
    assert g.m == 0


def test_p_adjacent_to_one_is_nearly_complete():
    n = 40
    g = gnp_random_graph(n, 1 - 1e-12, rng=7)
    assert g.m == n * (n - 1) // 2


@settings(max_examples=30, deadline=None)
@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_full_p_range_small_n(p, seed):
    graph_invariants(gnp_random_graph(25, p, rng=seed), 25)


class TestPathBoundary:
    """The sampler picks between a vectorized dense path (expected
    edges > 50k, n <= 6000) and geometric skipping; both sides of the
    crossover must satisfy the same invariants."""

    def test_just_below_dense_threshold(self):
        # n=500, p=0.4: E[m] ~ 49_900 < 50_000 -> geometric skipping.
        n, p = 500, 0.4
        assert p * n * (n - 1) / 2 < 50_000
        graph_invariants(gnp_random_graph(n, p, rng=11), n)

    def test_just_above_dense_threshold(self):
        # n=500, p=0.41: E[m] ~ 51_100 > 50_000 -> dense path.
        n, p = 500, 0.41
        assert p * n * (n - 1) / 2 > 50_000
        graph_invariants(gnp_random_graph(n, p, rng=11), n)

    def test_large_n_always_geometric(self):
        # n > 6000 stays on the skip path even when dense-eligible by
        # expected edge count.
        n, p = 6500, 0.003
        g = gnp_random_graph(n, p, rng=13)
        graph_invariants(g, n)
        expected = p * n * (n - 1) / 2
        sigma = np.sqrt(expected * (1 - p))
        assert abs(g.m - expected) < 6 * sigma

    def test_edge_counts_concentrate_both_sides(self):
        n = 500
        for p in (0.4, 0.41):
            g = gnp_random_graph(n, p, rng=29)
            expected = p * n * (n - 1) / 2
            sigma = np.sqrt(expected * (1 - p))
            assert abs(g.m - expected) < 6 * sigma


class TestSeedDeterminism:
    def test_same_seed_same_graph(self):
        for p in (0.01, 0.3, 0.9):
            assert gnp_random_graph(64, p, rng=99) == gnp_random_graph(
                64, p, rng=99
            )

    def test_pinned_sparse_sample(self):
        # Regression pin of the fixed sampler's exact output: the
        # geometric-skip draw order must never silently change (it
        # would invalidate every recorded experiment seed).
        g = gnp_random_graph(12, 0.2, rng=2024)
        assert g.edge_list() == [
            (0, 10),
            (1, 4),
            (2, 3),
            (2, 6),
            (2, 10),
            (2, 11),
            (3, 4),
            (3, 10),
            (3, 11),
            (6, 9),
            (7, 9),
            (7, 10),
            (7, 11),
            (8, 9),
            (8, 11),
        ]

    def test_pinned_denormal_sample_is_empty(self):
        assert gnp_random_graph(1000, 5e-324, rng=0).m == 0


def test_invalid_p_still_rejected():
    for bad in (-1e-9, 1 + 1e-9, float("nan")):
        with pytest.raises(ValueError):
            gnp_random_graph(10, bad, rng=0)
