"""Tests for the beeping model (repro.models.beeping)."""

import numpy as np
import pytest

from repro.core.two_state import TwoStateMIS
from repro.core.verify import is_maximal_independent_set
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.models.beeping import (
    BeepingNetwork,
    BeepingTwoStateMIS,
    TwoStateBeepNode,
)
from repro.sim.runner import run_until_stable


class TestBeepingNetwork:
    def test_delivery_semantics(self):
        g = path_graph(3)
        net = BeepingNetwork(g)
        heard = net.deliver(np.array([True, False, False]))
        # Only the middle vertex neighbours the beeper.
        assert heard.tolist() == [False, True, False]

    def test_collision_visibility(self):
        # Two adjacent beepers hear each other (sender collision detection).
        g = path_graph(2)
        net = BeepingNetwork(g)
        heard = net.deliver(np.array([True, True]))
        assert heard.all()

    def test_no_self_hearing(self):
        g = Graph(2)
        net = BeepingNetwork(g)
        heard = net.deliver(np.array([True, True]))
        assert not heard.any()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BeepingNetwork(path_graph(3)).deliver(np.array([True]))


class TestBeepNode:
    def test_black_beeps_white_listens(self):
        assert TwoStateBeepNode(True).emit() is True
        assert TwoStateBeepNode(False).emit() is False

    def test_black_collision_rerandomizes(self):
        node = TwoStateBeepNode(True)
        node.observe(heard_beep=True, coin=False)
        assert not node.black

    def test_black_no_collision_keeps(self):
        node = TwoStateBeepNode(True)
        node.observe(heard_beep=False, coin=False)
        assert node.black

    def test_white_silence_rerandomizes(self):
        node = TwoStateBeepNode(False)
        node.observe(heard_beep=False, coin=True)
        assert node.black

    def test_white_hearing_keeps(self):
        node = TwoStateBeepNode(False)
        node.observe(heard_beep=True, coin=True)
        assert not node.black


class TestBeepingExecution:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: complete_graph(12),
            lambda: cycle_graph(11),
            lambda: star_graph(8),
        ],
        ids=["clique", "cycle", "star"],
    )
    def test_equivalent_to_abstract_process(self, graph_factory):
        graph = graph_factory()
        seed = 31
        abstract = TwoStateMIS(graph, coins=seed)
        beeping = BeepingTwoStateMIS(graph, coins=seed)
        assert np.array_equal(abstract.black_mask(), beeping.black_mask())
        for _ in range(50):
            abstract.step()
            beeping.step()
            assert np.array_equal(
                abstract.black_mask(), beeping.black_mask()
            )
            assert np.array_equal(
                abstract.active_mask(), beeping.active_mask()
            )

    def test_runs_with_runner(self, small_zoo):
        for seed, g in enumerate(small_zoo.values()):
            proc = BeepingTwoStateMIS(g, coins=seed)
            result = run_until_stable(proc, max_rounds=50_000)
            assert result.stabilized
            assert is_maximal_independent_set(g, result.mis)

    def test_explicit_init(self):
        g = path_graph(3)
        proc = BeepingTwoStateMIS(
            g, coins=0, init=np.array([True, False, True])
        )
        assert proc.black_mask().tolist() == [True, False, True]
        assert proc.is_stabilized()

    def test_corrupt_and_recover(self):
        g = star_graph(10)
        proc = BeepingTwoStateMIS(g, coins=2)
        run_until_stable(proc, max_rounds=50_000)
        proc.corrupt(np.ones(10, dtype=bool))
        assert not proc.is_stabilized()
        recovery = run_until_stable(proc, max_rounds=50_000)
        assert recovery.stabilized

    def test_corrupt_validates_shape(self):
        proc = BeepingTwoStateMIS(path_graph(3), coins=0)
        with pytest.raises(ValueError):
            proc.corrupt(np.ones(5, dtype=bool))

    def test_mis_before_stable_raises(self):
        proc = BeepingTwoStateMIS(
            complete_graph(6), coins=0, init="all_black"
        )
        with pytest.raises(RuntimeError):
            proc.mis()


class TestTrafficAccounting:
    def test_counters_track_protocol_rounds_only(self):
        from repro.graphs.generators import cycle_graph

        proc = BeepingTwoStateMIS(cycle_graph(10), coins=1)
        proc.step(5)
        assert proc.network.deliveries == 5
        # Introspection must not inflate the counters.
        proc.active_mask()
        proc.covered_mask()
        proc.is_stabilized()
        assert proc.network.deliveries == 5

    def test_beeps_bounded_by_one_per_node_round(self):
        from repro.graphs.generators import star_graph

        proc = BeepingTwoStateMIS(star_graph(12), coins=2)
        proc.step(20)
        rate = proc.network.beeps_per_node_round()
        assert 0.0 <= rate <= 1.0

    def test_empty_network_rate(self):
        net = BeepingNetwork(Graph(3))
        assert net.beeps_per_node_round() == 0.0
