"""Tests for repro.baselines (Luby, greedy, sequential)."""

import numpy as np
import pytest

from repro.baselines.greedy import greedy_mis, random_order_greedy_mis
from repro.baselines.luby import LubyMIS, luby_mis
from repro.baselines.sequential import (
    AdversarialDaemon,
    CentralDaemon,
    RandomDaemon,
    SequentialSelfStabilizingMIS,
)
from repro.core.verify import is_maximal_independent_set
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.graph import Graph


class TestGreedy:
    def test_lexicographic_path(self):
        assert greedy_mis(path_graph(5)).tolist() == [0, 2, 4]

    def test_always_valid(self, small_zoo):
        for g in small_zoo.values():
            assert is_maximal_independent_set(g, greedy_mis(g))

    def test_custom_order(self):
        g = path_graph(3)
        assert greedy_mis(g, order=[1, 0, 2]).tolist() == [1]

    def test_order_validation(self):
        with pytest.raises(ValueError):
            greedy_mis(path_graph(3), order=[0, 0, 1])

    def test_random_order_valid(self, small_zoo):
        for seed, g in enumerate(small_zoo.values()):
            mis = random_order_greedy_mis(g, rng=seed)
            assert is_maximal_independent_set(g, mis)

    def test_random_order_reproducible(self):
        g = complete_graph(10)
        a = random_order_greedy_mis(g, rng=3)
        b = random_order_greedy_mis(g, rng=3)
        assert np.array_equal(a, b)


class TestLuby:
    def test_one_shot_valid(self, small_zoo):
        for seed, g in enumerate(small_zoo.values()):
            mis, phases = luby_mis(g, rng=seed)
            assert is_maximal_independent_set(g, mis)
            assert phases >= (1 if g.n else 0)

    def test_phase_count_logarithmic_smoke(self):
        g = complete_graph(128)
        _, phases = luby_mis(g, rng=1)
        assert phases <= 10  # one phase suffices on a clique usually

    def test_stepped_interface_matches_semantics(self):
        g = star_graph(10)
        luby = LubyMIS(g, coins=2)
        rounds = 0
        while not luby.is_stabilized():
            luby.step()
            rounds += 1
            assert rounds < 1000
        assert is_maximal_independent_set(g, luby.mis())
        # Two rounds per phase.
        assert rounds % 2 == 0

    def test_stepped_mis_before_done_raises(self):
        luby = LubyMIS(complete_graph(4), coins=0)
        with pytest.raises(RuntimeError):
            luby.mis()

    def test_empty_graph(self):
        mis, phases = luby_mis(Graph(0), rng=0)
        assert mis.size == 0


class TestSequential:
    def test_stabilizes_from_all_white(self, small_zoo):
        for g in small_zoo.values():
            algo = SequentialSelfStabilizingMIS(g)
            algo.run()
            assert algo.is_stabilized()
            assert is_maximal_independent_set(g, algo.mis())

    def test_stabilizes_from_random_states(self, small_zoo):
        rng = np.random.default_rng(0)
        for g in small_zoo.values():
            algo = SequentialSelfStabilizingMIS(
                g, init=rng.random(g.n) < 0.5
            )
            algo.run()
            assert is_maximal_independent_set(g, algo.mis())

    @pytest.mark.parametrize(
        "daemon_factory",
        [CentralDaemon, lambda: RandomDaemon(rng=1), AdversarialDaemon],
        ids=["central", "random", "adversarial"],
    )
    def test_two_moves_per_vertex_bound(self, small_zoo, daemon_factory):
        # The classical theorem: each vertex moves at most twice,
        # regardless of daemon.
        rng = np.random.default_rng(1)
        for g in small_zoo.values():
            algo = SequentialSelfStabilizingMIS(
                g, init=rng.random(g.n) < 0.5, daemon=daemon_factory()
            )
            algo.run(max_moves=2 * g.n + 1)
            assert algo.move_counts.max(initial=0) <= 2

    def test_total_moves_at_most_2n(self, small_zoo):
        rng = np.random.default_rng(2)
        for g in small_zoo.values():
            algo = SequentialSelfStabilizingMIS(
                g, init=rng.random(g.n) < 0.5,
                daemon=AdversarialDaemon(),
            )
            moves = algo.run()
            assert moves <= 2 * g.n

    def test_step_returns_false_when_quiescent(self):
        g = path_graph(3)
        algo = SequentialSelfStabilizingMIS(
            g, init=np.array([False, True, False])
        )
        assert not algo.step()

    def test_init_shape_validated(self):
        with pytest.raises(ValueError):
            SequentialSelfStabilizingMIS(
                path_graph(3), init=np.ones(4, dtype=bool)
            )
