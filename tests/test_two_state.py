"""Tests for the 2-state MIS process (Definition 4)."""

import numpy as np
import pytest

from repro.core.two_state import TwoStateMIS
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.sim.rng import ScriptedCoins
from repro.sim.runner import run_until_stable


def scripted(n, *rounds_bits, init_bits=None):
    """Build a ScriptedCoins for n vertices: optional init draw + rounds."""
    script = []
    if init_bits is not None:
        script.append(init_bits)
    script.extend(rounds_bits)
    return ScriptedCoins(script)


class TestInitialization:
    def test_explicit_init_array(self):
        g = path_graph(3)
        init = np.array([True, False, True])
        proc = TwoStateMIS(g, coins=0, init=init)
        assert np.array_equal(proc.black_mask(), init)

    def test_init_strings(self):
        g = path_graph(4)
        assert TwoStateMIS(g, coins=0, init="all_black").black_mask().all()
        assert not TwoStateMIS(g, coins=0, init="all_white").black_mask().any()

    def test_init_invalid_string(self):
        with pytest.raises(ValueError):
            TwoStateMIS(path_graph(3), coins=0, init="rainbow")

    def test_init_random_consumes_one_draw(self):
        coins = scripted(3, init_bits=[True, False, True])
        proc = TwoStateMIS(path_graph(3), coins=coins)
        assert np.array_equal(
            proc.black_mask(), [True, False, True]
        )

    def test_init_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            TwoStateMIS(path_graph(3), coins=0, init=np.ones(4, dtype=bool))

    def test_init_array_copied(self):
        init = np.zeros(3, dtype=bool)
        proc = TwoStateMIS(path_graph(3), coins=0, init=init)
        init[0] = True
        assert not proc.black_mask()[0]


class TestUpdateRule:
    def test_isolated_white_vertex_flips_with_coin(self):
        # Single vertex, white, no neighbours → active; coin black.
        proc = TwoStateMIS(
            Graph(1), coins=ScriptedCoins([[True]]),
            init=np.array([False]),
        )
        proc.step()
        assert proc.black_mask()[0]

    def test_isolated_black_vertex_is_stable(self):
        proc = TwoStateMIS(Graph(1), coins=0, init=np.array([True]))
        assert proc.is_stabilized()
        proc_black = proc.black_mask().copy()
        proc.step(5)
        assert np.array_equal(proc.black_mask(), proc_black)

    def test_conflicted_blacks_flip(self):
        # Edge, both black → both active; coins (black, white).
        g = Graph(2, [(0, 1)])
        proc = TwoStateMIS(
            g, coins=ScriptedCoins([[True, False]]),
            init=np.array([True, True]),
        )
        proc.step()
        assert proc.black_mask().tolist() == [True, False]
        assert proc.is_stabilized()

    def test_lonely_whites_flip(self):
        g = Graph(2, [(0, 1)])
        proc = TwoStateMIS(
            g, coins=ScriptedCoins([[False, True]]),
            init=np.array([False, False]),
        )
        proc.step()
        assert proc.black_mask().tolist() == [False, True]

    def test_satisfied_vertices_ignore_coins(self):
        # Path 0-1-2 with only middle black: everyone satisfied.
        g = path_graph(3)
        init = np.array([False, True, False])
        proc = TwoStateMIS(
            g, coins=ScriptedCoins([[True, False, True]] * 3), init=init
        )
        proc.step(3)
        assert np.array_equal(proc.black_mask(), init)

    def test_active_mask_definition(self):
        # Star: hub black, one leaf black → both active; other leaves
        # white with black neighbour → inactive.
        g = star_graph(4)
        init = np.array([True, True, False, False])
        proc = TwoStateMIS(g, coins=0, init=init)
        assert proc.active_mask().tolist() == [True, True, False, False]

    def test_round_counter(self):
        proc = TwoStateMIS(path_graph(5), coins=0)
        proc.step(7)
        assert proc.round == 7

    def test_step_negative_rejected(self):
        with pytest.raises(ValueError):
            TwoStateMIS(path_graph(3), coins=0).step(-1)


class TestStability:
    def test_stable_black_mask(self):
        g = path_graph(4)
        init = np.array([True, False, False, True])
        proc = TwoStateMIS(g, coins=0, init=init)
        assert proc.stable_black_mask().tolist() == [True, False, False, True]

    def test_stability_is_permanent(self):
        # Once stabilized, many further rounds change nothing.
        g = cycle_graph(9)
        proc = TwoStateMIS(g, coins=5)
        result = run_until_stable(proc, max_rounds=10_000)
        assert result.stabilized
        frozen = proc.black_mask()
        proc.step(50)
        assert np.array_equal(proc.black_mask(), frozen)

    def test_stabilized_iff_no_active(self):
        # For the 2-state process, A_t = ∅ ⟺ all vertices stable.
        rng = np.random.default_rng(1)
        for seed in range(10):
            g = cycle_graph(12)
            proc = TwoStateMIS(
                g, coins=seed, init=rng.random(12) < 0.5
            )
            for _ in range(30):
                assert proc.is_stabilized() == (not proc.active_mask().any())
                if proc.is_stabilized():
                    break
                proc.step()

    def test_mis_requires_stabilization(self):
        g = Graph(2, [(0, 1)])
        proc = TwoStateMIS(g, coins=0, init=np.array([True, True]))
        with pytest.raises(RuntimeError):
            proc.mis()


class TestStabilizationOutcome:
    @pytest.mark.parametrize("seed", range(5))
    def test_always_valid_mis(self, small_zoo, seed):
        from repro.core.verify import is_maximal_independent_set

        for g in small_zoo.values():
            proc = TwoStateMIS(g, coins=seed)
            result = run_until_stable(proc, max_rounds=50_000)
            assert result.stabilized
            assert is_maximal_independent_set(g, result.mis)

    def test_clique_mis_is_singleton(self):
        g = complete_graph(20)
        result = run_until_stable(TwoStateMIS(g, coins=3), max_rounds=50_000)
        assert len(result.mis) == 1

    def test_star_from_adversarial_init(self):
        # All leaves black, hub black: messy start, must still converge.
        g = star_graph(10)
        proc = TwoStateMIS(g, coins=8, init="all_black")
        result = run_until_stable(proc, max_rounds=50_000)
        assert result.stabilized


class TestCorruption:
    def test_corrupt_full_vector(self):
        g = path_graph(4)
        proc = TwoStateMIS(g, coins=1)
        run_until_stable(proc, max_rounds=10_000)
        proc.corrupt(np.array([True, True, True, True]))
        assert proc.black_mask().all()
        result = run_until_stable(proc, max_rounds=10_000)
        assert result.stabilized

    def test_corrupt_vertices(self):
        g = path_graph(5)
        proc = TwoStateMIS(g, coins=1, init="all_white")
        proc.corrupt_vertices([0, 2], black=True)
        assert proc.black_mask().tolist() == [True, False, True, False, False]

    def test_corrupt_vertices_out_of_range(self):
        proc = TwoStateMIS(path_graph(3), coins=0)
        with pytest.raises(ValueError):
            proc.corrupt_vertices([5], black=True)


class TestKActivity:
    def test_k_active_mask_star(self):
        g = star_graph(4)
        init = np.ones(4, dtype=bool)  # all black: hub has 3 active nbrs
        proc = TwoStateMIS(g, coins=0, init=init)
        assert proc.k_active_mask(3).tolist() == [True, True, True, True]
        assert proc.k_active_mask(2).tolist() == [False, True, True, True]

    def test_active_neighbor_counts(self):
        g = star_graph(4)
        proc = TwoStateMIS(g, coins=0, init=np.ones(4, dtype=bool))
        counts = proc.active_neighbor_counts()
        assert counts[0] == 3
        assert np.all(counts[1:] == 1)


class TestEagerAblation:
    def test_eager_white_promotion(self):
        # Lonely white becomes black deterministically, even on tails coin.
        g = Graph(1)
        proc = TwoStateMIS(
            g, coins=ScriptedCoins([[False]]),
            init=np.array([False]), eager_white_promotion=True,
        )
        proc.step()
        assert proc.black_mask()[0]

    def test_eager_black_still_randomized(self):
        g = Graph(2, [(0, 1)])
        proc = TwoStateMIS(
            g, coins=ScriptedCoins([[False, False]]),
            init=np.array([True, True]), eager_white_promotion=True,
        )
        proc.step()
        assert not proc.black_mask().any()

    def test_eager_still_finds_mis(self, small_zoo):
        for g in small_zoo.values():
            proc = TwoStateMIS(g, coins=4, eager_white_promotion=True)
            result = run_until_stable(proc, max_rounds=50_000)
            assert result.stabilized


class TestBackends:
    @pytest.mark.parametrize("backend", ["dense", "sparse", "adjlist"])
    def test_backends_equivalent_trajectories(self, backend):
        g = cycle_graph(15)
        reference = TwoStateMIS(g, coins=9, backend="dense")
        other = TwoStateMIS(g, coins=9, backend=backend)
        for _ in range(40):
            reference.step()
            other.step()
            assert np.array_equal(reference.black_mask(), other.black_mask())
