"""Equivalence suites for the batched engine family (repro.core.batched).

Same contract as ``tests/test_batched.py``, extended to the 3-state,
3-color and scheduled engines: every replica of a batched engine must
reproduce *bitwise* the trajectory its wrapped process would have
produced under :func:`run_until_stable` with the same coin stream —
on a shared graph and on per-trial resampled graphs, from clean and
corrupted starts.
"""

import numpy as np
import pytest

from repro.core.batched import (
    BatchedScheduledTwoStateMIS,
    BatchedThreeColorMIS,
    BatchedThreeStateMIS,
    BatchedTwoStateMIS,
    batchable,
    engine_for,
)
from repro.core.schedulers import (
    AdversarialGreedyScheduler,
    IndependentScheduler,
    ScheduledTwoStateMIS,
    SingleVertexScheduler,
    SynchronousScheduler,
)
from repro.core.switch import OracleSwitch, RandomizedLogSwitch
from repro.core.three_color import ThreeColorMIS
from repro.core.three_state import ThreeStateMIS
from repro.core.two_state import TwoStateMIS
from repro.graphs.generators import complete_graph, cycle_graph
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.montecarlo import estimate_stabilization_time
from repro.sim.rng import spawn_seeds
from repro.sim.runner import run_many_until_stable, run_until_stable


def serial_results(build, seeds, max_rounds=50_000):
    return [
        run_until_stable(build(s), max_rounds=max_rounds) for s in seeds
    ]


def assert_same_results(serial, batched):
    assert len(serial) == len(batched)
    for a, b in zip(serial, batched):
        assert a.stabilized == b.stabilized
        assert a.stabilization_round == b.stabilization_round
        assert a.rounds_executed == b.rounds_executed
        if a.mis is None:
            assert b.mis is None
        else:
            assert np.array_equal(a.mis, b.mis)


class TestThreeStateEquivalence:
    def test_shared_graph(self):
        g = gnp_random_graph(100, 0.07, rng=3)
        seeds = spawn_seeds(11, 20)
        serial = serial_results(lambda s: ThreeStateMIS(g, coins=s), seeds)
        procs = [ThreeStateMIS(g, coins=s) for s in seeds]
        batched = BatchedThreeStateMIS(procs).run(50_000)
        assert_same_results(serial, batched)

    def test_resampled_graphs(self):
        def build(s):
            rng = np.random.default_rng(s)
            graph = gnp_random_graph(70, 0.06, rng=rng)
            return ThreeStateMIS(graph, coins=rng)

        seeds = spawn_seeds(7, 18)
        serial = serial_results(build, seeds)
        batched = BatchedThreeStateMIS([build(s) for s in seeds]).run(50_000)
        assert_same_results(serial, batched)

    def test_sparse_backend_graph(self):
        # n > 512 with low density routes to the sparse backend.
        g = gnp_random_graph(600, 0.01, rng=2)
        seeds = spawn_seeds(17, 6)
        serial = serial_results(lambda s: ThreeStateMIS(g, coins=s), seeds)
        procs = [ThreeStateMIS(g, coins=s) for s in seeds]
        batched = BatchedThreeStateMIS(procs).run(50_000)
        assert_same_results(serial, batched)

    def test_budget_exhaustion_mixed_with_successes(self):
        g = complete_graph(24)
        seeds = spawn_seeds(31, 30)
        serial = serial_results(
            lambda s: ThreeStateMIS(g, coins=s), seeds, max_rounds=2
        )
        procs = [ThreeStateMIS(g, coins=s) for s in seeds]
        batched = BatchedThreeStateMIS(procs).run(2)
        assert_same_results(serial, batched)
        assert any(not r.stabilized for r in batched)

    def test_writeback_matches_serial_processes(self):
        g = cycle_graph(40)
        seeds = spawn_seeds(3, 10)
        serial_procs = [ThreeStateMIS(g, coins=s) for s in seeds]
        for p in serial_procs:
            run_until_stable(p, max_rounds=50_000)
        batch_procs = [ThreeStateMIS(g, coins=s) for s in seeds]
        BatchedThreeStateMIS(batch_procs).run(50_000)
        for sp, bp in zip(serial_procs, batch_procs):
            assert np.array_equal(sp.states, bp.states)
            assert sp.round == bp.round

    def test_all_init_specs(self):
        g = gnp_random_graph(40, 0.12, rng=8)
        for init in ("all_white", "all_black1", "all_black0"):
            seeds = spawn_seeds(5, 8)
            serial = serial_results(
                lambda s, i=init: ThreeStateMIS(g, coins=s, init=i), seeds
            )
            procs = [ThreeStateMIS(g, coins=s, init=init) for s in seeds]
            batched = BatchedThreeStateMIS(procs).run(50_000)
            assert_same_results(serial, batched)


class TestThreeColorEquivalence:
    def test_shared_graph(self):
        g = gnp_random_graph(90, 0.08, rng=5)
        seeds = spawn_seeds(13, 16)
        serial = serial_results(
            lambda s: ThreeColorMIS(g, coins=s, a=16.0), seeds
        )
        procs = [ThreeColorMIS(g, coins=s, a=16.0) for s in seeds]
        batched = BatchedThreeColorMIS(procs).run(50_000)
        assert_same_results(serial, batched)

    def test_resampled_graphs(self):
        def build(s):
            rng = np.random.default_rng(s)
            graph = gnp_random_graph(60, 0.07, rng=rng)
            return ThreeColorMIS(graph, coins=rng, a=16.0)

        seeds = spawn_seeds(19, 14)
        serial = serial_results(build, seeds)
        batched = BatchedThreeColorMIS([build(s) for s in seeds]).run(50_000)
        assert_same_results(serial, batched)

    def test_corrupted_switch_starts(self):
        # Self-stabilization contract: arbitrary (adversarial) switch
        # levels and colors must recover identically on both paths.
        g = gnp_random_graph(50, 0.1, rng=9)
        seeds = spawn_seeds(23, 12)

        def corrupted(s):
            p = ThreeColorMIS(g, coins=s, a=16.0)
            rng = np.random.default_rng(s + 1)
            p.corrupt(rng.integers(0, 3, size=g.n).astype(np.int8))
            p.corrupt_switch(rng.integers(0, 6, size=g.n).astype(np.int8))
            return p

        serial = serial_results(corrupted, seeds)
        batched = BatchedThreeColorMIS(
            [corrupted(s) for s in seeds]
        ).run(50_000)
        assert_same_results(serial, batched)

    def test_per_replica_zeta(self):
        # Replicas with different switch parameters batch together.
        g = gnp_random_graph(40, 0.15, rng=1)
        seeds = spawn_seeds(29, 10)

        def build(i, s):
            return ThreeColorMIS(g, coins=s, a=16.0 * (1 + i % 3))

        serial = [
            run_until_stable(build(i, s), max_rounds=50_000)
            for i, s in enumerate(seeds)
        ]
        batched = BatchedThreeColorMIS(
            [build(i, s) for i, s in enumerate(seeds)]
        ).run(50_000)
        assert_same_results(serial, batched)

    def test_writeback_includes_switch_state(self):
        g = cycle_graph(30)
        seeds = spawn_seeds(37, 8)
        serial_procs = [ThreeColorMIS(g, coins=s, a=16.0) for s in seeds]
        for p in serial_procs:
            run_until_stable(p, max_rounds=50_000)
        batch_procs = [ThreeColorMIS(g, coins=s, a=16.0) for s in seeds]
        BatchedThreeColorMIS(batch_procs).run(50_000)
        for sp, bp in zip(serial_procs, batch_procs):
            assert np.array_equal(sp.colors, bp.colors)
            assert np.array_equal(sp.switch.levels, bp.switch.levels)
            assert sp.switch.round == bp.switch.round
            assert sp.round == bp.round

    def test_oracle_switch_not_batchable(self):
        g = complete_graph(8)
        p = ThreeColorMIS(g, coins=0, switch=OracleSwitch(8))
        assert not batchable(p)
        with pytest.raises(TypeError):
            BatchedThreeColorMIS([p])

    def test_cross_graph_switch_not_batchable(self):
        g, h = complete_graph(8), cycle_graph(8)
        p = ThreeColorMIS(
            g, coins=0, switch=RandomizedLogSwitch(h, coins=1)
        )
        assert not batchable(p)


class TestScheduledEquivalence:
    @pytest.mark.parametrize("q", [0.1, 0.5, 1.0])
    def test_independent_scheduler_shared_graph(self, q):
        g = gnp_random_graph(60, 0.1, rng=4)
        seeds = spawn_seeds(41, 12)

        def build(s):
            return ScheduledTwoStateMIS(
                g, scheduler=IndependentScheduler(q), coins=s
            )

        serial = serial_results(build, seeds, max_rounds=200_000)
        batched = BatchedScheduledTwoStateMIS(
            [build(s) for s in seeds]
        ).run(200_000)
        assert_same_results(serial, batched)

    def test_synchronous_scheduler(self):
        g = gnp_random_graph(50, 0.1, rng=6)
        seeds = spawn_seeds(43, 10)

        def build(s):
            return ScheduledTwoStateMIS(
                g, scheduler=SynchronousScheduler(), coins=s
            )

        serial = serial_results(build, seeds)
        batched = BatchedScheduledTwoStateMIS(
            [build(s) for s in seeds]
        ).run(50_000)
        assert_same_results(serial, batched)

    def test_mixed_daemons_in_one_batch(self):
        # Synchronous and independent replicas (different q) coexist.
        g = gnp_random_graph(40, 0.12, rng=7)
        seeds = spawn_seeds(47, 9)

        def build(i, s):
            if i % 3 == 0:
                sched = SynchronousScheduler()
            else:
                sched = IndependentScheduler(0.25 * (i % 3 + 1))
            return ScheduledTwoStateMIS(g, scheduler=sched, coins=s)

        serial = [
            run_until_stable(build(i, s), max_rounds=200_000)
            for i, s in enumerate(seeds)
        ]
        batched = BatchedScheduledTwoStateMIS(
            [build(i, s) for i, s in enumerate(seeds)]
        ).run(200_000)
        assert_same_results(serial, batched)

    def test_resampled_graphs(self):
        def build(s):
            rng = np.random.default_rng(s)
            graph = gnp_random_graph(50, 0.08, rng=rng)
            return ScheduledTwoStateMIS(
                graph, scheduler=IndependentScheduler(0.5), coins=rng
            )

        seeds = spawn_seeds(53, 12)
        serial = serial_results(build, seeds, max_rounds=200_000)
        batched = BatchedScheduledTwoStateMIS(
            [build(s) for s in seeds]
        ).run(200_000)
        assert_same_results(serial, batched)

    def test_single_vertex_daemons_not_batchable(self):
        g = complete_graph(8)
        for sched in (SingleVertexScheduler(), AdversarialGreedyScheduler()):
            p = ScheduledTwoStateMIS(g, coins=0, scheduler=sched)
            assert not batchable(p)
            with pytest.raises(TypeError):
                BatchedScheduledTwoStateMIS([p])


class TestDispatch:
    def test_engine_for_each_family(self):
        g = complete_graph(10)
        assert engine_for(TwoStateMIS(g, coins=0)) is BatchedTwoStateMIS
        assert (
            engine_for(ThreeStateMIS(g, coins=0)) is BatchedThreeStateMIS
        )
        assert (
            engine_for(ThreeColorMIS(g, coins=0)) is BatchedThreeColorMIS
        )
        assert (
            engine_for(
                ScheduledTwoStateMIS(
                    g, coins=0, scheduler=IndependentScheduler(0.5)
                )
            )
            is BatchedScheduledTwoStateMIS
        )
        assert engine_for(object()) is None

    def test_run_many_groups_by_engine(self):
        # A mixed list: every family batches with its own engine, and
        # results come back in input order, bitwise-equal to serial.
        g = gnp_random_graph(40, 0.1, rng=2)
        seeds = spawn_seeds(59, 16)

        def build(i, s):
            kind = i % 4
            if kind == 0:
                return TwoStateMIS(g, coins=s)
            if kind == 1:
                return ThreeStateMIS(g, coins=s)
            if kind == 2:
                return ThreeColorMIS(g, coins=s, a=16.0)
            return ScheduledTwoStateMIS(
                g, scheduler=IndependentScheduler(0.5), coins=s
            )

        serial = [
            run_until_stable(build(i, s), max_rounds=200_000)
            for i, s in enumerate(seeds)
        ]
        mixed = [build(i, s) for i, s in enumerate(seeds)]
        batched = run_many_until_stable(mixed, max_rounds=200_000)
        assert_same_results(serial, batched)

    def test_empty_and_mismatched_inputs_rejected(self):
        with pytest.raises(ValueError):
            BatchedThreeStateMIS([])
        with pytest.raises(ValueError):
            BatchedThreeColorMIS(
                [
                    ThreeColorMIS(complete_graph(4), coins=0),
                    ThreeColorMIS(complete_graph(5), coins=1),
                ]
            )

    def test_initially_stable_replicas_report_round_zero(self):
        g = Graph(5)  # edgeless: all-black1 is already an MIS
        procs = [
            ThreeStateMIS(g, coins=s, init="all_black1") for s in range(4)
        ]
        results = BatchedThreeStateMIS(procs).run(100)
        assert all(r.stabilization_round == 0 for r in results)
        assert all(np.array_equal(r.mis, np.arange(5)) for r in results)


class TestMonteCarloFastPath:
    def test_three_state_identical_across_batch_modes(self):
        def make(s):
            rng = np.random.default_rng(s)
            graph = gnp_random_graph(60, 0.07, rng=rng)
            return ThreeStateMIS(graph, coins=rng)

        kw = dict(trials=20, max_rounds=50_000, seed=13)
        st_serial = estimate_stabilization_time(make, batch=None, **kw)
        st_auto = estimate_stabilization_time(make, batch="auto", **kw)
        st_chunk = estimate_stabilization_time(make, batch=6, **kw)
        assert np.array_equal(st_serial.times, st_auto.times)
        assert np.array_equal(st_serial.times, st_chunk.times)

    def test_three_color_identical_across_batch_modes(self):
        g = gnp_random_graph(50, 0.1, rng=4)
        kw = dict(trials=12, max_rounds=50_000, seed=5)
        st_auto = estimate_stabilization_time(
            lambda s: ThreeColorMIS(g, coins=s, a=16.0), batch="auto", **kw
        )
        st_serial = estimate_stabilization_time(
            lambda s: ThreeColorMIS(g, coins=s, a=16.0), batch=None, **kw
        )
        assert np.array_equal(st_auto.times, st_serial.times)

    def test_scheduled_identical_across_batch_modes(self):
        g = gnp_random_graph(50, 0.1, rng=8)

        def make(s):
            return ScheduledTwoStateMIS(
                g, scheduler=IndependentScheduler(0.5), coins=s
            )

        kw = dict(trials=12, max_rounds=200_000, seed=3)
        st_auto = estimate_stabilization_time(make, batch="auto", **kw)
        st_serial = estimate_stabilization_time(make, batch=None, **kw)
        assert np.array_equal(st_auto.times, st_serial.times)
