"""Tests for repro.graphs.properties and repro.graphs.flow."""

import numpy as np
import pytest

from repro.graphs import generators as gen
from repro.graphs.flow import FlowNetwork
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    arboricity_bounds,
    connected_components,
    core_numbers,
    degeneracy,
    degeneracy_ordering,
    diameter,
    eccentricity,
    is_connected,
    max_average_degree,
    max_common_neighbors,
    theta_upper_bound,
    triangle_count,
)
from repro.graphs.random_graphs import gnp_random_graph, random_tree


class TestFlow:
    def test_simple_max_flow(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 3)
        net.add_edge(0, 2, 2)
        net.add_edge(1, 3, 2)
        net.add_edge(2, 3, 3)
        assert net.max_flow(0, 3) == pytest.approx(4.0)

    def test_bottleneck(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 10)
        net.add_edge(1, 2, 1)
        assert net.max_flow(0, 2) == pytest.approx(1.0)

    def test_disconnected(self):
        net = FlowNetwork(3)
        net.add_edge(0, 1, 5)
        assert net.max_flow(0, 2) == 0.0

    def test_min_cut_side(self):
        net = FlowNetwork(4)
        net.add_edge(0, 1, 1)
        net.add_edge(1, 2, 10)
        net.add_edge(2, 3, 10)
        net.max_flow(0, 3)
        assert net.min_cut_side(0) == {0}

    def test_same_source_sink_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.max_flow(1, 1)

    def test_negative_capacity_rejected(self):
        net = FlowNetwork(2)
        with pytest.raises(ValueError):
            net.add_edge(0, 1, -1)


class TestConnectivity:
    def test_components(self):
        g = Graph(6, [(0, 1), (2, 3), (3, 4)])
        comps = connected_components(g)
        assert sorted(map(tuple, comps)) == [(0, 1), (2, 3, 4), (5,)]

    def test_is_connected(self, small_zoo):
        assert is_connected(small_zoo["path10"])
        assert not is_connected(small_zoo["empty5"])
        assert is_connected(small_zoo["single"])
        assert is_connected(Graph(0))

    def test_eccentricity_path(self):
        g = gen.path_graph(5)
        assert eccentricity(g, 0) == 4
        assert eccentricity(g, 2) == 2

    def test_eccentricity_disconnected_raises(self):
        with pytest.raises(ValueError):
            eccentricity(Graph(3, [(0, 1)]), 0)

    def test_diameter_known(self):
        assert diameter(gen.complete_graph(5)) == 1
        assert diameter(gen.path_graph(7)) == 6
        assert diameter(gen.cycle_graph(8)) == 4
        assert diameter(Graph(0)) == 0
        assert diameter(Graph(1)) == 0


class TestCoresAndDegeneracy:
    def test_core_numbers_clique(self):
        g = gen.complete_graph(5)
        assert np.all(core_numbers(g) == 4)

    def test_core_numbers_star(self):
        g = gen.star_graph(6)
        assert np.all(core_numbers(g) == 1)

    def test_core_numbers_mixed(self):
        # Triangle with a pendant.
        g = Graph(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        cores = core_numbers(g)
        assert cores[3] == 1
        assert cores[0] == cores[1] == cores[2] == 2

    def test_degeneracy_values(self):
        assert degeneracy(gen.complete_graph(6)) == 5
        assert degeneracy(gen.path_graph(10)) == 1
        assert degeneracy(gen.cycle_graph(10)) == 2
        assert degeneracy(gen.grid_graph(4, 4)) == 2
        assert degeneracy(Graph(0)) == 0

    def test_degeneracy_ordering_is_permutation(self, small_zoo):
        for g in small_zoo.values():
            order = degeneracy_ordering(g)
            assert sorted(order) == list(range(g.n))

    def test_tree_degeneracy_one(self):
        for seed in range(3):
            assert degeneracy(random_tree(40, rng=seed)) == 1


class TestMaxAverageDegree:
    def test_clique(self):
        assert max_average_degree(gen.complete_graph(6)) == pytest.approx(5.0)

    def test_tree(self):
        g = random_tree(20, rng=0)
        mad = max_average_degree(g)
        # Densest subgraph of a tree is the whole tree-ish: < 2.
        assert 1.0 <= mad < 2.0

    def test_empty(self):
        assert max_average_degree(Graph(5)) == 0.0

    def test_planted_dense_subgraph_found(self):
        # A K5 hidden in a sparse path: mad must be 4.
        b = gen.disjoint_union([gen.complete_graph(5), gen.path_graph(20)])
        assert max_average_degree(b) == pytest.approx(4.0)


class TestArboricity:
    def test_tree_bounds(self):
        lower, upper = arboricity_bounds(random_tree(30, rng=1))
        assert lower == 1
        assert upper == 1

    def test_clique_bounds(self):
        lower, upper = arboricity_bounds(gen.complete_graph(8))
        # True arboricity of K_8 is ceil(8/2) = 4.
        assert lower <= 4 <= upper

    def test_cycle(self):
        lower, upper = arboricity_bounds(gen.cycle_graph(12))
        assert lower <= 2 and upper >= 1

    def test_empty(self):
        assert arboricity_bounds(Graph(4)) == (0, 0)

    def test_bounds_ordered(self, small_zoo):
        for g in small_zoo.values():
            lower, upper = arboricity_bounds(g)
            assert lower <= upper


class TestCommonNeighborsAndTriangles:
    def test_max_common_neighbors_known(self):
        assert max_common_neighbors(gen.complete_graph(6)) == 4
        assert max_common_neighbors(gen.star_graph(6)) == 1
        assert max_common_neighbors(gen.path_graph(5)) == 1
        assert max_common_neighbors(Graph(1)) == 0

    def test_max_common_neighbors_sparse_path_matches_dense(self):
        g = gnp_random_graph(80, 0.2, rng=2)
        dense = max_common_neighbors(g)
        # Force the sparse code path by lying about size? Instead
        # recompute by brute force.
        brute = max(
            (len(g.common_neighbors(u, v))
             for u in g.vertices() for v in g.vertices() if u < v),
            default=0,
        )
        assert dense == brute

    def test_triangle_count_known(self):
        assert triangle_count(gen.complete_graph(5)) == 10
        assert triangle_count(gen.cycle_graph(3)) == 1
        assert triangle_count(gen.cycle_graph(5)) == 0
        assert triangle_count(gen.star_graph(10)) == 0

    def test_theta_upper_bound_star(self):
        g = gen.star_graph(8)
        # Hub: neighbours are leaves; each leaf shares 0 common nbrs
        # with hub beyond itself, so bound = min(deg, i * 1).
        assert theta_upper_bound(g, 0, 3) == 3
        assert theta_upper_bound(g, 0, 100) == 7

    def test_theta_upper_bound_zero_cases(self):
        g = gen.path_graph(3)
        assert theta_upper_bound(g, 0, 0) == 0
        assert theta_upper_bound(Graph(2), 0, 5) == 0


class TestThetaProfile:
    def test_star_hub_profile(self):
        from repro.graphs.properties import theta_profile

        g = gen.star_graph(8)
        # Each leaf covers only itself within N(hub).
        assert theta_profile(g, 0, 1) == 1
        assert theta_profile(g, 0, 3) == 3
        assert theta_profile(g, 0, 100) == 7

    def test_clique_profile_saturates(self):
        from repro.graphs.properties import theta_profile

        g = gen.complete_graph(6)
        assert theta_profile(g, 0, 1) == 5

    def test_zero_cases(self):
        from repro.graphs.properties import theta_profile

        assert theta_profile(gen.path_graph(3), 0, 0) == 0
        assert theta_profile(Graph(2), 0, 4) == 0

    def test_profile_lower_bounds_exact_theta(self):
        from repro.core.activity import theta_u
        from repro.graphs.properties import theta_profile

        g = gnp_random_graph(16, 0.3, rng=4)
        for u in range(6):
            for i in (1, 2, 3):
                assert theta_profile(g, u, i) <= theta_u(g, u, i)
