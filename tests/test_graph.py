"""Tests for repro.graphs.graph.Graph."""

import numpy as np
import pytest

from repro.graphs.graph import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph(0)
        assert g.n == 0
        assert g.m == 0
        assert list(g.edges()) == []

    def test_basic_edges(self):
        g = Graph(4, [(0, 1), (2, 3), (1, 2)])
        assert g.n == 4
        assert g.m == 3
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_duplicate_edges_collapsed(self):
        g = Graph(3, [(0, 1), (1, 0), (0, 1)])
        assert g.m == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            Graph(3, [(1, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            Graph(3, [(0, 3)])

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError):
            Graph(-1)

    def test_from_edge_list_infers_n(self):
        g = Graph.from_edge_list([(0, 5), (2, 3)])
        assert g.n == 6
        assert g.m == 2

    def test_from_edge_list_explicit_n(self):
        g = Graph.from_edge_list([(0, 1)], n=10)
        assert g.n == 10

    def test_from_adjacency(self):
        g = Graph.from_adjacency([[1, 2], [0], [0]])
        assert g.m == 2
        assert g.has_edge(0, 1)
        assert g.has_edge(0, 2)


class TestAccessors:
    def test_neighbors_sorted(self):
        g = Graph(5, [(0, 4), (0, 2), (0, 1)])
        assert g.neighbors(0) == (1, 2, 4)

    def test_closed_neighborhood(self):
        g = Graph(4, [(0, 1), (0, 3)])
        assert g.closed_neighborhood(0) == (0, 1, 3)
        assert g.closed_neighborhood(2) == (2,)

    def test_degree_and_degrees(self, triangle):
        assert triangle.degree(0) == 2
        assert np.array_equal(triangle.degrees(), [2, 2, 2])

    def test_max_degree(self):
        g = Graph(4, [(0, 1), (0, 2), (0, 3)])
        assert g.max_degree() == 3
        assert Graph(0).max_degree() == 0

    def test_average_degree(self, triangle):
        assert triangle.average_degree() == 2.0
        assert Graph(3).average_degree() == 0.0

    def test_edges_ordered(self):
        g = Graph(4, [(3, 1), (2, 0)])
        assert sorted(g.edges()) == [(0, 2), (1, 3)]

    def test_common_neighbors(self):
        g = Graph(5, [(0, 2), (1, 2), (0, 3), (1, 3), (0, 4)])
        assert g.common_neighbors(0, 1) == (2, 3)

    def test_density(self, triangle):
        assert triangle.density() == 1.0
        assert Graph(1).density() == 0.0

    def test_len(self, triangle):
        assert len(triangle) == 3


class TestSetNeighborhoods:
    def test_neighborhood_of_set(self):
        g = Graph(6, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert g.neighborhood_of_set({1, 2}) == {0, 3}

    def test_closed_neighborhood_of_set(self):
        g = Graph(6, [(0, 1), (1, 2), (2, 3)])
        assert g.closed_neighborhood_of_set({1}) == {0, 1, 2}

    def test_edges_between_disjoint(self):
        g = Graph(4, [(0, 2), (0, 3), (1, 2)])
        assert g.edges_between({0, 1}, {2, 3}) == 3

    def test_edges_between_overlapping_counts_once(self):
        g = Graph(3, [(0, 1), (1, 2)])
        # E(S, T) with S = {0,1}, T = {1,2}: edges (0,1) and (1,2).
        assert g.edges_between({0, 1}, {1, 2}) == 2

    def test_induced_edge_count(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert g.induced_edge_count({0, 1, 2}) == 2
        assert g.induced_edge_count({0, 2}) == 0


class TestDerivedGraphs:
    def test_subgraph_relabels(self):
        g = Graph(5, [(0, 2), (2, 4), (1, 3)])
        sub, mapping = g.subgraph([0, 2, 4])
        assert sub.n == 3
        assert sub.m == 2
        assert mapping == {0: 0, 2: 1, 4: 2}
        assert sub.has_edge(0, 1)
        assert sub.has_edge(1, 2)

    def test_subgraph_deduplicates_input(self):
        g = Graph(3, [(0, 1)])
        sub, _ = g.subgraph([1, 0, 1])
        assert sub.n == 2

    def test_complement(self, triangle):
        comp = triangle.complement()
        assert comp.m == 0
        g = Graph(3, [(0, 1)])
        assert g.complement().m == 2

    def test_complement_involution(self):
        g = Graph(6, [(0, 1), (2, 3), (4, 5), (0, 5)])
        assert g.complement().complement() == g

    def test_complement_matches_loop_reference(self):
        # The vectorized complement must equal the O(n²) double loop it
        # replaced, on random graphs of assorted densities.
        rng = np.random.default_rng(0)
        for n, p in [(1, 0.5), (7, 0.0), (13, 0.3), (24, 0.7), (30, 1.0)]:
            mask = rng.random((n, n)) < p
            edges = [
                (u, v) for u in range(n) for v in range(u + 1, n)
                if mask[u, v]
            ]
            g = Graph(n, edges)
            loop_edges = [
                (u, v)
                for u in range(n)
                for v in range(u + 1, n)
                if v not in set(g.neighbors(u))
            ]
            assert g.complement() == Graph(n, loop_edges)

    def test_with_edges_added(self):
        g = Graph(3, [(0, 1)])
        g2 = g.with_edges_added([(1, 2)])
        assert g2.m == 2
        assert g.m == 1  # original unchanged

    def test_relabeled(self):
        g = Graph(3, [(0, 1)])
        g2 = g.relabeled([2, 1, 0])
        assert g2.has_edge(2, 1)
        assert not g2.has_edge(0, 1)

    def test_relabeled_rejects_non_permutation(self):
        g = Graph(3, [(0, 1)])
        with pytest.raises(ValueError):
            g.relabeled([0, 0, 1])


class TestMatrices:
    def test_dense_adjacency_symmetric(self, triangle):
        a = triangle.adjacency_dense()
        assert np.array_equal(a, a.T)
        assert a.sum() == 2 * triangle.m
        assert np.all(np.diag(a) == 0)

    def test_csr_matches_dense(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4), (0, 5)])
        assert np.array_equal(
            g.adjacency_csr().toarray(), g.adjacency_dense()
        )

    def test_matrices_cached(self, triangle):
        assert triangle.adjacency_dense() is triangle.adjacency_dense()
        assert triangle.adjacency_csr() is triangle.adjacency_csr()


class TestTraversal:
    def test_bfs_distances_path(self):
        g = Graph(4, [(0, 1), (1, 2), (2, 3)])
        assert np.array_equal(g.bfs_distances(0), [0, 1, 2, 3])

    def test_bfs_unreachable(self):
        g = Graph(3, [(0, 1)])
        dist = g.bfs_distances(0)
        assert dist[2] == -1

    def test_bfs_source_out_of_range(self, triangle):
        with pytest.raises(ValueError):
            triangle.bfs_distances(5)


class TestEqualityConversion:
    def test_eq_and_hash(self):
        g1 = Graph(3, [(0, 1)])
        g2 = Graph(3, [(1, 0)])
        g3 = Graph(3, [(0, 2)])
        assert g1 == g2
        assert hash(g1) == hash(g2)
        assert g1 != g3

    def test_networkx_roundtrip(self, small_zoo):
        pytest.importorskip("networkx")
        for g in small_zoo.values():
            back = Graph.from_networkx(g.to_networkx())
            assert back == g

    def test_repr(self, triangle):
        assert "n=3" in repr(triangle)
        assert "m=3" in repr(triangle)


class TestFromNumpyEdges:
    def test_matches_regular_constructor(self):
        rng = np.random.default_rng(0)
        n = 40
        us = rng.integers(0, n, size=120)
        vs = rng.integers(0, n, size=120)
        keep = us != vs
        us, vs = us[keep], vs[keep]
        fast = Graph.from_numpy_edges(n, us, vs)
        slow = Graph(n, list(zip(us.tolist(), vs.tolist())))
        assert fast == slow
        assert fast.m == slow.m

    def test_empty_edges(self):
        g = Graph.from_numpy_edges(5, np.array([]), np.array([]))
        assert g.n == 5
        assert g.m == 0

    def test_duplicate_edges_collapsed(self):
        g = Graph.from_numpy_edges(
            3, np.array([0, 1, 0]), np.array([1, 0, 1])
        )
        assert g.m == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Graph.from_numpy_edges(3, np.array([0]), np.array([3]))
        with pytest.raises(ValueError):
            Graph.from_numpy_edges(3, np.array([1]), np.array([1]))
        with pytest.raises(ValueError):
            Graph.from_numpy_edges(-1, np.array([]), np.array([]))

    def test_downstream_operations_work(self):
        g = Graph.from_numpy_edges(
            4, np.array([0, 1, 2]), np.array([1, 2, 3])
        )
        assert g.neighbors(1) == (0, 2)
        assert g.adjacency_dense().sum() == 6
        assert g.bfs_distances(0).tolist() == [0, 1, 2, 3]
        sub, _ = g.subgraph([1, 2, 3])
        assert sub.m == 2
