"""Shared fixtures: a small zoo of graphs used across the test suite."""

from __future__ import annotations

import pytest

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    empty_graph,
    grid_graph,
    path_graph,
    petersen_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph, random_tree


@pytest.fixture
def triangle() -> Graph:
    return Graph(3, [(0, 1), (1, 2), (0, 2)])


@pytest.fixture
def small_zoo() -> dict[str, Graph]:
    """A varied set of small graphs for behavioural tests."""
    return {
        "empty5": empty_graph(5),
        "single": empty_graph(1),
        "edge": Graph(2, [(0, 1)]),
        "path10": path_graph(10),
        "cycle9": cycle_graph(9),
        "star12": star_graph(12),
        "clique8": complete_graph(8),
        "grid4x5": grid_graph(4, 5),
        "petersen": petersen_graph(),
        "tree30": random_tree(30, rng=1),
        "gnp40": gnp_random_graph(40, 0.15, rng=2),
    }


@pytest.fixture
def connected_zoo(small_zoo) -> dict[str, Graph]:
    """The connected members of the zoo (n >= 2)."""
    return {
        name: g
        for name, g in small_zoo.items()
        if name not in ("empty5", "single")
    }
