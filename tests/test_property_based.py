"""Property-based tests (hypothesis) on core invariants.

These probe the process semantics and graph substrate over randomly
generated graphs and states — the invariants here are the load-bearing
facts the paper's proofs rest on.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.activity import active_set, stable_black_set, unstable_set
from repro.core.states import BLACK1, WHITE
from repro.core.three_state import ThreeStateMIS
from repro.core.two_state import TwoStateMIS
from repro.core.verify import (
    is_independent_set,
    is_maximal_independent_set,
)
from repro.baselines.greedy import greedy_mis
from repro.graphs.graph import Graph
from repro.sim.runner import run_until_stable


@st.composite
def graphs(draw, max_n=24):
    """Random simple graphs with adversarially chosen edge subsets."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=60)
        if possible
        else st.just([])
    )
    return Graph(n, edges)


@st.composite
def graphs_with_states(draw, max_n=24):
    g = draw(graphs(max_n))
    bits = draw(
        st.lists(st.booleans(), min_size=g.n, max_size=g.n)
    )
    return g, np.array(bits, dtype=bool)


@settings(max_examples=60, deadline=None)
@given(graphs_with_states())
def test_stable_black_set_is_independent(gs):
    g, black = gs
    stable = stable_black_set(g, black)
    assert is_independent_set(g, stable)


@settings(max_examples=60, deadline=None)
@given(graphs_with_states())
def test_active_iff_not_locally_consistent(gs):
    g, black = gs
    active = active_set(g, black)
    for u in g.vertices():
        has_black = any(black[v] for v in g.neighbors(u))
        expected = (black[u] and has_black) or (
            not black[u] and not has_black
        )
        assert active[u] == expected


@settings(max_examples=60, deadline=None)
@given(graphs_with_states())
def test_no_active_iff_black_set_is_mis(gs):
    # The central observation of §2: A_t = ∅ ⟺ B_t is an MIS.
    g, black = gs
    active = active_set(g, black)
    assert (not active.any()) == is_maximal_independent_set(g, black)


@settings(max_examples=40, deadline=None)
@given(graphs_with_states(), st.integers(min_value=0, max_value=2**32 - 1))
def test_stability_is_monotone(gs, seed):
    # Once covered (stable), a vertex stays covered forever.
    g, black = gs
    proc = TwoStateMIS(g, coins=seed, init=black)
    covered = proc.covered_mask()
    for _ in range(15):
        proc.step()
        new_covered = proc.covered_mask()
        assert not np.any(covered & ~new_covered)
        covered = new_covered


@settings(max_examples=40, deadline=None)
@given(graphs_with_states(), st.integers(min_value=0, max_value=2**32 - 1))
def test_stable_black_vertices_keep_their_color(gs, seed):
    g, black = gs
    proc = TwoStateMIS(g, coins=seed, init=black)
    stable = proc.stable_black_mask()
    for _ in range(15):
        proc.step()
        assert np.all(proc.black_mask()[stable])
        stable = proc.stable_black_mask()


@settings(max_examples=30, deadline=None)
@given(graphs(), st.integers(min_value=0, max_value=2**32 - 1))
def test_two_state_stabilizes_to_valid_mis(g, seed):
    proc = TwoStateMIS(g, coins=seed)
    result = run_until_stable(proc, max_rounds=100_000)
    assert result.stabilized
    assert is_maximal_independent_set(g, result.mis)


@settings(max_examples=30, deadline=None)
@given(graphs(), st.integers(min_value=0, max_value=2**32 - 1))
def test_three_state_stabilizes_to_valid_mis(g, seed):
    proc = ThreeStateMIS(g, coins=seed)
    result = run_until_stable(proc, max_rounds=100_000)
    assert result.stabilized
    assert is_maximal_independent_set(g, result.mis)


@settings(max_examples=40, deadline=None)
@given(graphs_with_states())
def test_three_state_randomizers_stay_black(gs):
    # Any vertex that re-randomizes is black afterwards; any black0
    # vertex hearing black1 turns white: together the black mask after
    # one round is exactly (randomizers ∪ unchanged blacks).
    g, bits = gs
    init = np.where(bits, BLACK1, WHITE).astype(np.int8)
    proc = ThreeStateMIS(g, coins=1, init=init)
    randomizers = proc.active_mask()
    proc.step()
    after_black = proc.black_mask()
    assert np.all(after_black[randomizers])


@settings(max_examples=60, deadline=None)
@given(graphs())
def test_greedy_mis_always_valid(g):
    assert is_maximal_independent_set(g, greedy_mis(g))


@settings(max_examples=60, deadline=None)
@given(graphs_with_states())
def test_unstable_set_closed_under_coverage(gs):
    # V_t is exactly the complement of N+[I_t].
    g, black = gs
    unstable = unstable_set(g, black)
    stable = stable_black_set(g, black)
    for u in g.vertices():
        covered = stable[u] or any(stable[v] for v in g.neighbors(u))
        assert unstable[u] == (not covered)


@settings(max_examples=40, deadline=None)
@given(graphs(max_n=16), st.integers(min_value=0, max_value=2**32 - 1))
def test_subgraph_consistency(g, seed):
    # Induced subgraph on a random half of the vertices has consistent
    # adjacency with the parent.
    rng = np.random.default_rng(seed)
    subset = [u for u in g.vertices() if rng.random() < 0.5]
    sub, mapping = g.subgraph(subset)
    for u in subset:
        for v in subset:
            if u < v:
                assert g.has_edge(u, v) == sub.has_edge(
                    mapping[u], mapping[v]
                )


@settings(max_examples=30, deadline=None)
@given(graphs(max_n=14))
def test_line_graph_degree_identity(g):
    # deg_{L(G)}(e=(u,v)) = deg(u) + deg(v) - 2.
    from repro.graphs.transforms import line_graph

    lg, edges = line_graph(g)
    for i, (u, v) in enumerate(edges):
        assert lg.degree(i) == g.degree(u) + g.degree(v) - 2


@settings(max_examples=25, deadline=None)
@given(graphs(max_n=10), st.integers(min_value=0, max_value=2**32 - 1))
def test_matching_reduction_end_to_end(g, seed):
    from repro.apps.matching import SelfStabilizingMatching

    app = SelfStabilizingMatching(g, coins=seed)
    app.run(max_rounds=200_000)  # run() verifies maximality itself


@settings(max_examples=15, deadline=None)
@given(graphs(max_n=8), st.integers(min_value=0, max_value=2**32 - 1))
def test_coloring_reduction_end_to_end(g, seed):
    from repro.apps.coloring import SelfStabilizingColoring

    app = SelfStabilizingColoring(g, coins=seed)
    colors = app.run(max_rounds=500_000)  # run() verifies properness
    assert colors.max(initial=0) <= g.max_degree()
