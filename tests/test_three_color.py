"""Tests for the 3-color MIS process (Definition 28)."""

import numpy as np
import pytest

from repro.core.states import BLACK, GRAY, WHITE
from repro.core.switch import OracleSwitch, RandomizedLogSwitch
from repro.core.three_color import ThreeColorMIS
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.sim.rng import ScriptedCoins
from repro.sim.runner import run_until_stable


def always_on(n):
    """An oracle switch that is permanently on."""
    return OracleSwitch(n, on_run=1, off_run=0)


def always_off(n):
    """An oracle switch that is on only 1 round in a huge period."""
    switch = OracleSwitch(n, on_run=1, off_run=10**6)
    switch.round = 1  # move past the on round
    return switch


class TestInitialization:
    def test_explicit_init(self):
        init = np.array([WHITE, GRAY, BLACK], dtype=np.int8)
        proc = ThreeColorMIS(
            path_graph(3), coins=0, init=init, switch=always_on(3)
        )
        assert np.array_equal(proc.state_vector(), init)

    def test_init_strings(self):
        for name, value in (
            ("all_black", BLACK), ("all_white", WHITE), ("all_gray", GRAY)
        ):
            proc = ThreeColorMIS(
                path_graph(3), coins=0, init=name, switch=always_on(3)
            )
            assert np.all(proc.state_vector() == value)

    def test_default_switch_is_randomized(self):
        proc = ThreeColorMIS(path_graph(3), coins=0)
        assert isinstance(proc.switch, RandomizedLogSwitch)
        assert proc.switch.zeta == pytest.approx(4.0 / 512.0)

    def test_state_count_is_18(self):
        assert ThreeColorMIS.state_count == 18


class TestUpdateRule:
    def test_conflicted_black_goes_gray_not_white(self):
        g = Graph(2, [(0, 1)])
        proc = ThreeColorMIS(
            g, coins=ScriptedCoins([[False, False]]),
            init="all_black", switch=always_off(2),
        )
        proc.step()
        assert np.all(proc.state_vector() == GRAY)

    def test_conflicted_black_stays_black_on_heads(self):
        g = Graph(2, [(0, 1)])
        proc = ThreeColorMIS(
            g, coins=ScriptedCoins([[True, False]]),
            init="all_black", switch=always_off(2),
        )
        proc.step()
        assert proc.state_vector().tolist() == [BLACK, GRAY]

    def test_lonely_white_randomizes(self):
        g = path_graph(2)
        proc = ThreeColorMIS(
            g, coins=ScriptedCoins([[True, False]]),
            init="all_white", switch=always_off(2),
        )
        proc.step()
        assert proc.state_vector().tolist() == [BLACK, WHITE]

    def test_gray_waits_for_switch(self):
        proc = ThreeColorMIS(
            Graph(1), coins=ScriptedCoins([[True]] * 3),
            init="all_gray", switch=always_off(1),
        )
        proc.step(3)
        assert proc.state_vector()[0] == GRAY

    def test_gray_wakes_when_switch_on(self):
        proc = ThreeColorMIS(
            Graph(1), coins=ScriptedCoins([[False]]),
            init="all_gray", switch=always_on(1),
        )
        proc.step()
        assert proc.state_vector()[0] == WHITE

    def test_gray_treated_as_nonblack_by_neighbors(self):
        # White vertex whose only neighbour is gray: no black neighbour
        # → active (randomizes).
        g = path_graph(2)
        proc = ThreeColorMIS(
            g, coins=ScriptedCoins([[True, False]]),
            init=np.array([WHITE, GRAY], dtype=np.int8),
            switch=always_off(2),
        )
        proc.step()
        assert proc.state_vector()[0] == BLACK

    def test_white_with_black_neighbor_keeps(self):
        g = path_graph(2)
        proc = ThreeColorMIS(
            g, coins=ScriptedCoins([[True, True]]),
            init=np.array([BLACK, WHITE], dtype=np.int8),
            switch=always_off(2),
        )
        proc.step()
        assert proc.state_vector().tolist() == [BLACK, WHITE]


class TestMasksAndStability:
    def test_masks_partition(self):
        proc = ThreeColorMIS(path_graph(6), coins=1)
        for _ in range(20):
            black = proc.black_mask()
            gray = proc.gray_mask()
            white = proc.white_mask()
            total = (
                black.astype(int) + gray.astype(int) + white.astype(int)
            )
            assert np.all(total == 1)
            proc.step()

    def test_gray_never_active(self):
        proc = ThreeColorMIS(
            path_graph(4), coins=2,
            init="all_gray", switch=always_off(4),
        )
        assert not proc.active_mask().any()

    def test_stable_black_definition(self):
        g = path_graph(3)
        init = np.array([BLACK, WHITE, GRAY], dtype=np.int8)
        proc = ThreeColorMIS(g, coins=0, init=init, switch=always_off(3))
        assert proc.stable_black_mask().tolist() == [True, False, False]
        # Vertex 2 (gray) has no stable-black neighbour → not covered.
        assert proc.covered_mask().tolist() == [True, True, False]
        assert not proc.is_stabilized()

    def test_stabilizes_on_suite(self, small_zoo):
        from repro.core.verify import is_maximal_independent_set

        for seed, g in enumerate(small_zoo.values()):
            proc = ThreeColorMIS(g, coins=seed, a=8.0)
            result = run_until_stable(proc, max_rounds=200_000)
            assert result.stabilized, g
            assert is_maximal_independent_set(g, result.mis)

    def test_dense_graph_stabilizes(self):
        g = complete_graph(32)
        result = run_until_stable(
            ThreeColorMIS(g, coins=4, a=8.0), max_rounds=200_000
        )
        assert result.stabilized
        assert len(result.mis) == 1


class TestSwitchIntegration:
    def test_full_state_vector(self):
        proc = ThreeColorMIS(path_graph(3), coins=0)
        full = proc.full_state_vector()
        assert full.shape == (2, 3)

    def test_full_state_requires_randomized_switch(self):
        proc = ThreeColorMIS(
            path_graph(3), coins=0, switch=always_on(3)
        )
        with pytest.raises(TypeError):
            proc.full_state_vector()

    def test_corrupt_switch(self):
        proc = ThreeColorMIS(path_graph(3), coins=0)
        proc.corrupt_switch(np.array([1, 2, 3], dtype=np.int8))
        assert proc.switch.levels.tolist() == [1, 2, 3]

    def test_corrupt_switch_requires_randomized(self):
        proc = ThreeColorMIS(path_graph(3), coins=0, switch=always_on(3))
        with pytest.raises(TypeError):
            proc.corrupt_switch(np.zeros(3, dtype=np.int8))

    def test_corrupt_colors_and_recover(self):
        g = star_graph(10)
        proc = ThreeColorMIS(g, coins=5, a=8.0)
        result = run_until_stable(proc, max_rounds=200_000)
        assert result.stabilized
        proc.corrupt(np.full(10, GRAY, dtype=np.int8))
        recovery = run_until_stable(proc, max_rounds=200_000)
        assert recovery.stabilized

    def test_switch_advances_with_process(self):
        proc = ThreeColorMIS(path_graph(4), coins=3)
        switch_round_before = proc.switch.round
        proc.step(5)
        assert proc.switch.round == switch_round_before + 5
