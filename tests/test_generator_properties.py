"""Property-based tests for graph generators and substrate invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graphs import generators as gen
from repro.graphs.graph import Graph
from repro.graphs.properties import (
    connected_components,
    degeneracy,
    is_connected,
)
from repro.graphs.random_graphs import (
    gnm_random_graph,
    gnp_random_graph,
    random_regular_graph,
    random_tree,
)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=60),
       st.integers(min_value=0, max_value=2**32 - 1))
def test_random_tree_is_tree(n, seed):
    g = random_tree(n, rng=seed)
    assert g.m == n - 1
    assert is_connected(g)
    assert degeneracy(g) <= 1


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=50),
       st.floats(min_value=0.0, max_value=1.0),
       st.integers(min_value=0, max_value=2**32 - 1))
def test_gnp_basic_invariants(n, p, seed):
    g = gnp_random_graph(n, p, rng=seed)
    assert g.n == n
    assert 0 <= g.m <= n * (n - 1) // 2
    # Degree sum identity.
    assert int(g.degrees().sum()) == 2 * g.m


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=2, max_value=30), st.data())
def test_gnm_exact_edges(n, data):
    max_m = n * (n - 1) // 2
    m = data.draw(st.integers(min_value=0, max_value=max_m))
    seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
    g = gnm_random_graph(n, m, rng=seed)
    assert g.m == m


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=25), st.data())
def test_random_regular_degrees(n, data):
    d = data.draw(st.integers(min_value=0, max_value=min(n - 1, 8)))
    if (n * d) % 2 == 1:
        d -= 1
    seed = data.draw(st.integers(min_value=0, max_value=2**32 - 1))
    g = random_regular_graph(n, max(d, 0), rng=seed)
    assert all(g.degree(u) == max(d, 0) for u in g.vertices())


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=12),
       st.integers(min_value=1, max_value=12))
def test_grid_structure(rows, cols):
    g = gen.grid_graph(rows, cols)
    assert g.n == rows * cols
    assert g.m == rows * (cols - 1) + cols * (rows - 1)
    assert is_connected(g)
    assert degeneracy(g) <= 2


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=8))
def test_disjoint_cliques_components(count, size):
    g = gen.disjoint_cliques(count, size)
    comps = connected_components(g)
    assert len(comps) == count
    assert all(len(c) == size for c in comps)
    assert g.m == count * size * (size - 1) // 2


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=7))
def test_hypercube_structure(dim):
    g = gen.hypercube_graph(dim)
    assert g.n == 2 ** dim
    assert g.m == dim * 2 ** (dim - 1) if dim else g.m == 0
    if dim >= 1:
        assert all(g.degree(u) == dim for u in g.vertices())
        # Bipartite by parity: no edge joins same-parity vertices.
        for u, v in g.edges():
            assert bin(u).count("1") % 2 != bin(v).count("1") % 2


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=40),
       st.floats(min_value=0.0, max_value=1.0),
       st.integers(min_value=0, max_value=2**32 - 1))
def test_gnp_roundtrips_through_numpy_constructor(n, p, seed):
    # from_numpy_edges output must behave identically to a rebuilt
    # plain-constructor graph.
    g = gnp_random_graph(n, p, rng=seed)
    rebuilt = Graph(n, g.edge_list())
    assert rebuilt == g
    assert np.array_equal(rebuilt.degrees(), g.degrees())
