"""Tests for the self-healing supervision layer (PR 9).

The resilience contract under test:

* **Chaos equivalence** — under any deterministic fault schedule
  (worker kills, hangs past the deadline, poisoned results, seeded
  mixes) a supervised campaign's results are bitwise-identical to the
  fault-free serial run, including final process state and coin
  streams.
* **Bounded retries** — a shard that keeps failing exhausts its
  budget and raises :class:`ShardFailedError` carrying the witness
  shard range, the attempt count, and the chaos seed; shards that
  completed first were already delivered (and journaled).
* **Degradation** — a deadline-expired shard is killed and re-run
  in-process when the dispatcher provides a local runner, retried
  otherwise.
* **Hygiene** — close() is idempotent and reports zombies; interrupts
  mid-campaign leak no ``/dev/shm`` segments; chaos-killed workers
  leak nothing either.
"""

import numpy as np
import pytest

from repro.core.two_state import TwoStateMIS
from repro.graphs.random_graphs import gnp_random_graph
from repro.parallel import (
    ChaosPolicy,
    RetryPolicy,
    ShardFailedError,
    SupervisedPool,
    WorkerPool,
    iter_chaos_fault_plan,
    leaked_segments,
    shard_ranges,
    supervised_pool_for,
)
from repro.parallel.config import default_supervision, get_default_supervision
from repro.parallel.jobs import GraphRegistry, ShardJob
from repro.parallel.shared_graph import SharedGraphStore
from repro.sim.montecarlo import sweep_stabilization_times
from repro.sim.runner import run_many_until_stable


def _assert_no_leaks():
    assert leaked_segments() == []


def _fleet(size, *, n=48, p=0.1, graph_seed=11, coin_base=1000):
    graph = gnp_random_graph(n, p, rng=graph_seed)
    return [TwoStateMIS(graph, coins=coin_base + i) for i in range(size)]


def _assert_identical(serial, supervised, rs, rp):
    assert len(rs) == len(rp)
    for a, b in zip(rs, rp):
        assert a.stabilized == b.stabilized
        assert a.stabilization_round == b.stabilization_round
        assert a.rounds_executed == b.rounds_executed
        assert (a.mis is None) == (b.mis is None)
        if a.mis is not None:
            assert np.array_equal(a.mis, b.mis)
    for a, b in zip(serial, supervised):
        assert np.array_equal(a.state_vector(), b.state_vector())
        assert np.array_equal(a.coins.bits(8), b.coins.bits(8))


def _event_kinds(pool):
    return [event.kind for event in pool.events]


# ---------------------------------------------------------------------------
# Chaos equivalence: every recovery path is invisible in the results
# ---------------------------------------------------------------------------


def test_kill_every_shard_respawns_and_matches_serial():
    size, workers = 12, 2
    serial, supervised = _fleet(size), _fleet(size)
    rs = run_many_until_stable(serial, max_rounds=400)
    plan = iter_chaos_fault_plan(
        shard_ranges(size, workers), ["kill"] * workers
    )
    with SupervisedPool(
        workers,
        chaos=ChaosPolicy.scripted(plan),
        retry=RetryPolicy(backoff_base=0.01),
    ) as pool:
        rp = run_many_until_stable(
            supervised, max_rounds=400, pool=pool
        )
        assert pool.respawns >= workers
        kinds = _event_kinds(pool)
        assert "respawn" in kinds and "retry" in kinds
    _assert_identical(serial, supervised, rs, rp)
    _assert_no_leaks()


def test_poisoned_results_quarantined_and_matches_serial():
    size, workers = 12, 3
    serial, supervised = _fleet(size), _fleet(size)
    rs = run_many_until_stable(serial, max_rounds=400)
    plan = iter_chaos_fault_plan(
        shard_ranges(size, workers), ["poison"] * workers
    )
    with SupervisedPool(
        workers,
        chaos=ChaosPolicy.scripted(plan),
        retry=RetryPolicy(backoff_base=0.0),
    ) as pool:
        rp = run_many_until_stable(
            supervised, max_rounds=400, pool=pool
        )
        kinds = _event_kinds(pool)
        assert kinds.count("quarantine") == workers
        assert "retry" in kinds
    _assert_identical(serial, supervised, rs, rp)
    _assert_no_leaks()


def test_hang_past_deadline_degrades_in_process():
    size, workers = 8, 2
    serial, supervised = _fleet(size), _fleet(size)
    rs = run_many_until_stable(serial, max_rounds=400)
    ranges = shard_ranges(size, workers)
    plan = iter_chaos_fault_plan(ranges, ["hang"])
    with SupervisedPool(
        workers,
        chaos=ChaosPolicy.scripted(plan, hang_seconds=30.0),
        deadline=0.4,
    ) as pool:
        rp = run_many_until_stable(
            supervised, max_rounds=400, pool=pool
        )
        kinds = _event_kinds(pool)
        assert "deadline-kill" in kinds and "degrade" in kinds
        hung = next(e for e in pool.events if e.kind == "deadline-kill")
        assert hung.shard == tuple(ranges[0])
    _assert_identical(serial, supervised, rs, rp)
    _assert_no_leaks()


def test_seeded_chaos_mix_matches_serial():
    # Seeded mode: rates draw faults pseudo-randomly, but only on
    # first attempts (max_faulty_attempts=1), so convergence is
    # guaranteed and the whole schedule replays from the seed.
    size = 24
    serial, supervised = _fleet(size), _fleet(size)
    rs = run_many_until_stable(serial, max_rounds=400)
    chaos = ChaosPolicy(seed=42, kill=0.4, poison=0.3, slow=0.2)
    with SupervisedPool(
        3, chaos=chaos, retry=RetryPolicy(backoff_base=0.01)
    ) as pool:
        rp = run_many_until_stable(
            supervised, max_rounds=400, n_jobs=6, pool=pool
        )
    _assert_identical(serial, supervised, rs, rp)
    _assert_no_leaks()


def test_acceptance_256_replica_fleet_under_seeded_chaos():
    # ISSUE 9 acceptance: a 256-replica fleet under a seeded
    # ChaosPolicy completes bitwise-identical to the fault-free
    # serial path.
    size = 256
    serial, supervised = (
        _fleet(size, n=32, p=0.12),
        _fleet(size, n=32, p=0.12),
    )
    rs = run_many_until_stable(serial, max_rounds=500)
    chaos = ChaosPolicy(seed=9, kill=0.3, poison=0.2)
    with SupervisedPool(
        4, chaos=chaos, retry=RetryPolicy(backoff_base=0.01)
    ) as pool:
        rp = run_many_until_stable(
            supervised, max_rounds=500, n_jobs=8, pool=pool
        )
    _assert_identical(serial, supervised, rs, rp)
    _assert_no_leaks()


def test_acceptance_sweep_under_chaos_matches_serial():
    # ISSUE 9 acceptance: a 12-point sweep dispatched under a seeded
    # ChaosPolicy produces the exact SweepResult of the serial path.
    grid = [0.04 + 0.01 * i for i in range(12)]

    def make_factory(p):
        def factory(trial_seed):
            return TwoStateMIS(
                gnp_random_graph(30, p, rng=trial_seed),
                coins=trial_seed,
            )

        return factory

    baseline = sweep_stabilization_times(
        make_factory, grid, trials=6, max_rounds=400, seed=5
    )
    chaos = ChaosPolicy(seed=7, kill=0.35, poison=0.25)
    with default_supervision(
        chaos=chaos, retry=RetryPolicy(backoff_base=0.01)
    ):
        chaotic = sweep_stabilization_times(
            make_factory, grid, trials=6, max_rounds=400, seed=5,
            n_jobs=2,
        )
    for a, b in zip(baseline.entries, chaotic.entries):
        assert a[0] == b[0]
        assert np.array_equal(a[1].times, b[1].times)
        assert a[1].failures == b[1].failures
    _assert_no_leaks()


# ---------------------------------------------------------------------------
# Bounded retries and terminal failure
# ---------------------------------------------------------------------------


def test_retry_exhaustion_raises_with_witness_and_seed():
    size, workers = 8, 2
    fleet = _fleet(size)
    ranges = shard_ranges(size, workers)
    doomed = tuple(ranges[1])
    # Kill *every* attempt of the second shard; the first runs clean.
    plan = {(doomed, attempt): "kill" for attempt in range(10)}
    completed = []
    with SupervisedPool(
        workers,
        chaos=ChaosPolicy.scripted(plan, seed=99),
        retry=RetryPolicy(max_retries=2, backoff_base=0.0),
    ) as pool:
        registry, store, jobs = _make_jobs(fleet, ranges)
        with store:
            with pytest.raises(ShardFailedError) as excinfo:
                pool.run_jobs(
                    jobs,
                    on_result=lambda key, result: completed.append(key),
                )
    err = excinfo.value
    assert err.indices == doomed
    assert err.attempts == 3  # max_retries=2 -> at most 3 attempts
    assert err.chaos_seed == 99
    assert "died" in str(err) and "chaos seed 99" in str(err)
    # The healthy shard completed (and was delivered) first.
    assert completed == [tuple(ranges[0])]
    _assert_no_leaks()


def _make_jobs(fleet, ranges, max_rounds=400):
    """Shard jobs over a single-graph fleet (mirrors run_fleet_sharded)."""
    graphs = [fleet[0].graph]
    registry = GraphRegistry(graphs)
    for process in fleet:
        registry.register_ops(process.ops)
    store = SharedGraphStore(graphs)
    jobs = [
        ShardJob(
            indices=(lo, hi),
            payload=registry.dumps(fleet[lo:hi]),
            handle=store.handle,
            max_rounds=max_rounds,
            verify=False,
            batch="auto",
            engine="auto",
        )
        for lo, hi in ranges
    ]
    return registry, store, jobs


def test_deadline_without_local_runner_consumes_a_retry():
    size, workers = 6, 2
    fleet = _fleet(size)
    ranges = shard_ranges(size, workers)
    plan = iter_chaos_fault_plan(ranges, ["hang"])
    with SupervisedPool(
        workers,
        chaos=ChaosPolicy.scripted(plan, hang_seconds=30.0),
        deadline=0.4,
        retry=RetryPolicy(backoff_base=0.0),
    ) as pool:
        registry, store, jobs = _make_jobs(fleet, ranges)
        with store:
            done = pool.run_jobs(jobs)  # no local_runner
        kinds = _event_kinds(pool)
        assert "deadline-kill" in kinds
        assert "degrade" not in kinds
        assert "retry" in kinds
    assert set(done) == {tuple(r) for r in ranges}
    _assert_no_leaks()


def test_python_level_job_errors_stay_fail_fast():
    # A deterministic in-job bug must not burn retries: it raises
    # RuntimeError immediately, exactly like the PR 8 pool.
    fleet = _fleet(4)
    with SupervisedPool(2) as pool:
        with pytest.raises(RuntimeError, match="max_rounds"):
            run_many_until_stable(fleet, max_rounds=-1, pool=pool)
        assert "retry" not in _event_kinds(pool)
    _assert_no_leaks()


def test_shard_failed_error_is_a_worker_crash_error():
    from repro.parallel import WorkerCrashError

    err = ShardFailedError((0, 8), 4, "worker died (exit code 86)")
    assert isinstance(err, WorkerCrashError)
    assert err.chaos_seed is None
    assert "chaos seed" not in str(err)


# ---------------------------------------------------------------------------
# Pool lifecycle and hygiene
# ---------------------------------------------------------------------------


def test_close_is_idempotent_and_reports_no_zombies():
    pool = SupervisedPool(2)
    assert pool.close() == []
    assert pool.close() == []
    with pytest.raises(RuntimeError, match="closed"):
        pool.run_jobs([])


def test_run_jobs_rejects_duplicate_indices():
    fleet = _fleet(4)
    ranges = [(0, 2), (0, 2)]
    with SupervisedPool(1) as pool:
        registry, store, jobs = _make_jobs(fleet, ranges)
        with store:
            with pytest.raises(ValueError, match="distinct"):
                pool.run_jobs(jobs)
    _assert_no_leaks()


def test_interrupt_mid_campaign_leaks_nothing(monkeypatch):
    # Satellite 1 regression: Ctrl-C while shards are in flight must
    # unlink the published /dev/shm segment and leave the pool
    # closeable with no zombies.
    fleet = _fleet(8)
    with SupervisedPool(2) as pool:
        def bomb(timeout):
            raise KeyboardInterrupt

        monkeypatch.setattr(pool, "_drain", bomb)
        with pytest.raises(KeyboardInterrupt):
            run_many_until_stable(fleet, max_rounds=400, pool=pool)
        monkeypatch.undo()
        assert pool.close() == []
    _assert_no_leaks()


def test_chaos_killed_workers_leak_nothing():
    size, workers = 8, 2
    fleet = _fleet(size)
    plan = iter_chaos_fault_plan(
        shard_ranges(size, workers), ["kill", "kill"]
    )
    with SupervisedPool(
        workers,
        chaos=ChaosPolicy.scripted(plan),
        retry=RetryPolicy(backoff_base=0.0),
    ) as pool:
        run_many_until_stable(fleet, max_rounds=400, pool=pool)
    _assert_no_leaks()


def test_constructor_validation():
    with pytest.raises(ValueError, match="workers"):
        SupervisedPool(0)
    with pytest.raises(ValueError, match="deadline"):
        SupervisedPool(1, deadline=0.0)


def test_supervised_pool_for_clamps_to_jobs():
    from repro.parallel.pool import resolve_n_jobs

    pool = supervised_pool_for(2, 16)
    try:
        # Width = min(shard count, usable CPUs), never below 1.
        assert pool.workers == max(1, min(2, resolve_n_jobs(16)))
    finally:
        pool.close()


# ---------------------------------------------------------------------------
# Process-wide supervision defaults
# ---------------------------------------------------------------------------


def test_default_supervision_context():
    chaos = ChaosPolicy(seed=1, kill=0.1)
    retry = RetryPolicy(max_retries=7)
    with default_supervision(retry=retry, deadline=2.5, chaos=chaos):
        pool = SupervisedPool(1)
        try:
            assert pool.retry == retry
            assert pool.deadline == 2.5
            assert pool.chaos == chaos
        finally:
            pool.close()
    defaults = get_default_supervision()
    assert defaults.retry is None
    assert defaults.deadline is None
    assert defaults.chaos is None
    pool = SupervisedPool(1)
    try:
        assert pool.retry == RetryPolicy()
        assert pool.deadline is None
        assert pool.chaos is None
    finally:
        pool.close()


def test_explicit_args_beat_defaults():
    with default_supervision(retry=RetryPolicy(max_retries=9)):
        pool = SupervisedPool(1, retry=RetryPolicy(max_retries=0))
        try:
            assert pool.retry.max_retries == 0
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# Chaos policy semantics
# ---------------------------------------------------------------------------


def test_chaos_policy_validates_rates_and_plans():
    with pytest.raises(ValueError, match="fault rates"):
        ChaosPolicy(kill=0.9, hang=0.9)
    with pytest.raises(ValueError, match="fault rates"):
        ChaosPolicy(kill=-0.1)
    with pytest.raises(ValueError, match="unknown fault"):
        ChaosPolicy.scripted({((0, 4), 0): "meteor"})


def test_chaos_fault_for_is_deterministic_and_bounded():
    policy = ChaosPolicy(seed=3, kill=0.5, poison=0.3)
    draws = [policy.fault_for((0, 64), 0) for _ in range(5)]
    assert len(set(draws)) == 1  # pure function of (seed, key, attempt)
    # Default max_faulty_attempts=1: retries never fault again.
    assert policy.fault_for((0, 64), 1) is None
    assert policy.fault_for((0, 64), 7) is None
    # Scripted mode: exactly the plan, nothing else.
    scripted = ChaosPolicy.scripted({((0, 4), 0): "kill"})
    assert scripted.fault_for((0, 4), 0) == "kill"
    assert scripted.fault_for((0, 4), 1) is None
    assert scripted.fault_for((4, 8), 0) is None


def test_iter_chaos_fault_plan_zips_ranges():
    plan = iter_chaos_fault_plan([(0, 4), (4, 8), (8, 12)], ["kill", "hang"])
    assert plan == {((0, 4), 0): "kill", ((4, 8), 0): "hang"}


def test_retry_policy_backoff_schedule():
    policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0, backoff_max=0.3)
    assert policy.delay(0) == pytest.approx(0.1)
    assert policy.delay(1) == pytest.approx(0.2)
    assert policy.delay(2) == pytest.approx(0.3)  # capped
    assert policy.delay(9) == pytest.approx(0.3)
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff_factor=0.5)


# ---------------------------------------------------------------------------
# Legacy pool interop
# ---------------------------------------------------------------------------


def test_legacy_worker_pool_still_dispatches():
    serial, legacy = _fleet(6), _fleet(6)
    rs = run_many_until_stable(serial, max_rounds=400)
    with WorkerPool(2) as pool:
        rp = run_many_until_stable(legacy, max_rounds=400, pool=pool)
    _assert_identical(serial, legacy, rs, rp)
    _assert_no_leaks()
