"""Tests for the batched trial engine (repro.core.batched).

The contract under test is *bitwise* serial/batched equivalence: every
replica of :class:`BatchedTwoStateMIS` must reproduce exactly the
trajectory the wrapped :class:`TwoStateMIS` would have produced under
:func:`run_until_stable` with the same coin stream.
"""

import numpy as np
import pytest

from repro.core.batched import BatchedTwoStateMIS, batchable
from repro.core.schedulers import IndependentScheduler, ScheduledTwoStateMIS
from repro.core.three_color import ThreeColorMIS
from repro.core.two_state import TwoStateMIS
from repro.graphs.generators import complete_graph, cycle_graph, path_graph
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.montecarlo import (
    estimate_stabilization_time,
    sweep_stabilization_times,
)
from repro.sim.rng import ScriptedCoins, spawn_coin_sources, spawn_seeds
from repro.sim.runner import run_many_until_stable, run_until_stable


def serial_results(build, seeds, max_rounds=10_000):
    return [
        run_until_stable(build(s), max_rounds=max_rounds) for s in seeds
    ]


def assert_same_results(serial, batched):
    assert len(serial) == len(batched)
    for a, b in zip(serial, batched):
        assert a.stabilized == b.stabilized
        assert a.stabilization_round == b.stabilization_round
        assert a.rounds_executed == b.rounds_executed
        if a.mis is None:
            assert b.mis is None
        else:
            assert np.array_equal(a.mis, b.mis)


class TestEquivalenceSharedGraph:
    def test_gnp_shared_graph(self):
        g = gnp_random_graph(120, 0.08, rng=5)
        seeds = spawn_seeds(11, 24)
        serial = serial_results(lambda s: TwoStateMIS(g, coins=s), seeds)
        # spawn_coin_sources(seed, k)[r] draws exactly what a process
        # seeded with spawn_seeds(seed, k)[r] would.
        procs = [
            TwoStateMIS(g, coins=c) for c in spawn_coin_sources(11, 24)
        ]
        batched = BatchedTwoStateMIS(procs).run(10_000)
        assert_same_results(serial, batched)

    def test_writeback_matches_serial_processes(self):
        g = cycle_graph(40)
        seeds = spawn_seeds(3, 10)
        serial_procs = [TwoStateMIS(g, coins=s) for s in seeds]
        for p in serial_procs:
            run_until_stable(p, max_rounds=10_000)
        batch_procs = [TwoStateMIS(g, coins=s) for s in seeds]
        BatchedTwoStateMIS(batch_procs).run(10_000)
        for sp, bp in zip(serial_procs, batch_procs):
            assert np.array_equal(sp.black, bp.black)
            assert sp.round == bp.round

    def test_sparse_backend_graph(self):
        # n > 512 with low density routes to the sparse backend.
        g = gnp_random_graph(700, 0.01, rng=2)
        seeds = spawn_seeds(17, 8)
        serial = serial_results(lambda s: TwoStateMIS(g, coins=s), seeds)
        procs = [TwoStateMIS(g, coins=s) for s in seeds]
        batched = BatchedTwoStateMIS(procs).run(10_000)
        assert_same_results(serial, batched)

    def test_eager_white_promotion_replicas(self):
        g = gnp_random_graph(60, 0.1, rng=9)
        seeds = spawn_seeds(23, 12)

        def build(s):
            return TwoStateMIS(g, coins=s, eager_white_promotion=True)

        serial = serial_results(build, seeds)
        batched = BatchedTwoStateMIS([build(s) for s in seeds]).run(10_000)
        assert_same_results(serial, batched)

    def test_initially_stable_replicas_report_round_zero(self):
        g = Graph(5)  # edgeless: all-black is already an MIS
        procs = [
            TwoStateMIS(g, coins=s, init="all_black") for s in range(4)
        ]
        results = BatchedTwoStateMIS(procs).run(100)
        assert all(r.stabilization_round == 0 for r in results)
        assert all(np.array_equal(r.mis, np.arange(5)) for r in results)

    def test_budget_exhaustion_mixed_with_successes(self):
        # On K_n some seeds stabilize fast; a tiny budget forces a mix.
        g = complete_graph(24)
        seeds = spawn_seeds(31, 30)
        serial = serial_results(
            lambda s: TwoStateMIS(g, coins=s), seeds, max_rounds=2
        )
        procs = [TwoStateMIS(g, coins=s) for s in seeds]
        batched = BatchedTwoStateMIS(procs).run(2)
        assert_same_results(serial, batched)
        assert any(not r.stabilized for r in batched)
        assert any(r.stabilized for r in batched)

    def test_scripted_coins_replicas(self):
        # Path 0-1-2, all white: both endpoints and the middle are
        # active; scripted coins force an exact trajectory.
        g = path_graph(3)
        script_a = [[0, 0, 0], [1, 0, 1]]  # init draw consumed by init=...
        script_b = [[0, 1, 0]]

        def build(script):
            return TwoStateMIS(
                g, coins=ScriptedCoins(script), init="all_white"
            )

        serial = [
            run_until_stable(build(script_a), max_rounds=10),
            run_until_stable(build(script_b), max_rounds=10),
        ]
        batched = BatchedTwoStateMIS(
            [build(script_a), build(script_b)]
        ).run(10)
        assert_same_results(serial, batched)
        assert np.array_equal(batched[1].mis, np.array([1]))


class TestEquivalenceHeterogeneousGraphs:
    def test_resampled_graphs_per_replica(self):
        def build(s):
            rng = np.random.default_rng(s)
            graph = gnp_random_graph(90, 0.05, rng=rng)
            return TwoStateMIS(graph, coins=rng)

        seeds = spawn_seeds(7, 20)
        serial = serial_results(build, seeds)
        batched = BatchedTwoStateMIS([build(s) for s in seeds]).run(10_000)
        assert_same_results(serial, batched)

    def test_block_compaction_with_long_straggler(self):
        # Mix near-instant replicas (edgeless graphs) with slow ones so
        # retirements trigger block compaction mid-run.
        def build(s):
            rng = np.random.default_rng(s)
            if s % 3 == 0:
                graph = Graph(50)
            else:
                graph = gnp_random_graph(50, 0.3, rng=rng)
            return TwoStateMIS(graph, coins=rng)

        seeds = list(range(30))
        serial = serial_results(build, seeds)
        batched = BatchedTwoStateMIS([build(s) for s in seeds]).run(10_000)
        assert_same_results(serial, batched)


class TestRunManyUntilStable:
    def test_mixed_process_types_preserve_order(self):
        g = gnp_random_graph(40, 0.1, rng=1)
        seeds = spawn_seeds(19, 6)

        def build(i, s):
            if i % 2 == 0:
                return TwoStateMIS(g, coins=s)
            return ThreeColorMIS(g, coins=s)

        serial = [
            run_until_stable(build(i, s), max_rounds=50_000)
            for i, s in enumerate(seeds)
        ]
        mixed = [build(i, s) for i, s in enumerate(seeds)]
        batched = run_many_until_stable(mixed, max_rounds=50_000)
        assert_same_results(serial, batched)

    def test_batch_none_forces_serial(self):
        g = complete_graph(16)
        seeds = spawn_seeds(2, 5)
        a = run_many_until_stable(
            [TwoStateMIS(g, coins=s) for s in seeds], batch=None
        )
        b = run_many_until_stable(
            [TwoStateMIS(g, coins=s) for s in seeds], batch="auto"
        )
        assert_same_results(a, b)

    def test_int_batch_chunks(self):
        g = complete_graph(16)
        seeds = spawn_seeds(4, 9)
        a = run_many_until_stable(
            [TwoStateMIS(g, coins=s) for s in seeds], batch=4
        )
        b = run_many_until_stable(
            [TwoStateMIS(g, coins=s) for s in seeds], batch=None
        )
        assert_same_results(b, a)

    def test_invalid_batch_rejected(self):
        g = complete_graph(4)
        with pytest.raises(ValueError):
            run_many_until_stable([TwoStateMIS(g, coins=0)], batch=0)
        with pytest.raises(ValueError):
            run_many_until_stable([TwoStateMIS(g, coins=0)], batch="fast")


class TestBatchableAndValidation:
    def test_batchable_predicate(self):
        g = complete_graph(6)
        assert batchable(TwoStateMIS(g, coins=0))
        # Since the engine-family generalization the 3-state, 3-color
        # (randomized switch) and independently-scheduled processes are
        # batchable too — see tests/test_batched_families.py for their
        # dispatch and equivalence suites.
        assert batchable(ThreeColorMIS(g, coins=0))
        assert batchable(
            ScheduledTwoStateMIS(
                g, coins=0, scheduler=IndependentScheduler(0.5)
            )
        )

        class TwoStateSubclass(TwoStateMIS):
            pass

        # Subclasses may override _advance; they stay on the serial path.
        assert not batchable(TwoStateSubclass(g, coins=0))

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchedTwoStateMIS([])

    def test_non_batchable_process_rejected(self):
        g = complete_graph(6)
        with pytest.raises(TypeError):
            BatchedTwoStateMIS([ThreeColorMIS(g, coins=0)])

    def test_mismatched_n_rejected(self):
        with pytest.raises(ValueError):
            BatchedTwoStateMIS(
                [
                    TwoStateMIS(complete_graph(4), coins=0),
                    TwoStateMIS(complete_graph(5), coins=1),
                ]
            )

    def test_negative_max_rounds_rejected(self):
        engine = BatchedTwoStateMIS(
            [TwoStateMIS(complete_graph(4), coins=0)]
        )
        with pytest.raises(ValueError):
            engine.run(-1)


class TestMonteCarloIntegration:
    def test_estimate_identical_across_batch_modes(self):
        def make(s):
            rng = np.random.default_rng(s)
            graph = gnp_random_graph(70, 0.06, rng=rng)
            return TwoStateMIS(graph, coins=rng)

        kw = dict(trials=25, max_rounds=10_000, seed=13)
        st_serial = estimate_stabilization_time(make, batch=None, **kw)
        st_auto = estimate_stabilization_time(make, batch="auto", **kw)
        st_chunk = estimate_stabilization_time(make, batch=7, **kw)
        assert np.array_equal(st_serial.times, st_auto.times)
        assert np.array_equal(st_serial.times, st_chunk.times)
        assert st_serial.failures == st_auto.failures == st_chunk.failures

    def test_estimate_serial_fallback_for_three_color(self):
        g = gnp_random_graph(40, 0.1, rng=4)
        kw = dict(trials=8, max_rounds=50_000, seed=5)
        st_a = estimate_stabilization_time(
            lambda s: ThreeColorMIS(g, coins=s), batch="auto", **kw
        )
        st_b = estimate_stabilization_time(
            lambda s: ThreeColorMIS(g, coins=s), batch=None, **kw
        )
        assert np.array_equal(st_a.times, st_b.times)

    def test_invalid_batch_rejected(self):
        g = complete_graph(8)
        with pytest.raises(ValueError):
            estimate_stabilization_time(
                lambda s: TwoStateMIS(g, coins=s),
                trials=2,
                max_rounds=10,
                batch=-3,
            )


def _grid_point_factory(n):
    """Module-level (hence picklable) make_factory for the n_jobs pool."""

    def factory(s):
        rng = np.random.default_rng(s)
        return TwoStateMIS(gnp_random_graph(int(n), 0.1, rng=rng), coins=rng)

    return factory


class TestSweepProcessPool:
    def test_n_jobs_matches_in_process(self):
        kw = dict(
            grid=[20, 30, 40], trials=6, max_rounds=10_000, seed=21
        )
        solo = sweep_stabilization_times(_grid_point_factory, **kw)
        pooled = sweep_stabilization_times(
            _grid_point_factory, n_jobs=2, **kw
        )
        assert solo.keys() == pooled.keys()
        for point in solo:
            assert np.array_equal(solo[point].times, pooled[point].times)
            assert solo[point].failures == pooled[point].failures
