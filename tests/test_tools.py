"""Tests for the repo tooling (docs generator)."""

import pathlib
import sys

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))


def test_api_docs_render_covers_key_symbols():
    import gen_api_docs

    text = gen_api_docs.render()
    for symbol in (
        "repro.core.two_state.TwoStateMIS",
        "repro.core.three_color.ThreeColorMIS",
        "repro.core.switch.RandomizedLogSwitch",
        "repro.graphs.graph.Graph",
        "repro.sim.runner.run_until_stable",
        "repro.theory.bounds.lemma6_probability",
    ):
        assert symbol in text, symbol


def test_first_paragraph_handling():
    import gen_api_docs

    assert gen_api_docs.first_paragraph(None) == "*(undocumented)*"
    assert gen_api_docs.first_paragraph(
        "Line one\ncontinued.\n\nSecond para."
    ) == "Line one continued."


def test_checked_in_api_doc_is_fresh():
    # The committed docs/API.md must match a regeneration (guards
    # against drift between code and docs).
    import gen_api_docs

    committed = (
        TOOLS.parent / "docs" / "API.md"
    ).read_text()
    assert committed == gen_api_docs.render()


def test_check_docs_fresh_passes(capsys):
    import check_docs

    assert check_docs.main([]) == 0
    assert "up to date" in capsys.readouterr().out


def test_check_docs_detects_staleness(monkeypatch, tmp_path, capsys):
    import check_docs

    stale = tmp_path / "API.md"
    stale.write_text("# stale contents\n")
    monkeypatch.setattr(check_docs, "API_MD", stale)
    assert check_docs.main([]) == 1
    assert "stale" in capsys.readouterr().out
    # --fix rewrites the file and then the check passes.
    assert check_docs.main(["--fix"]) == 0
    assert check_docs.main([]) == 0
