"""Tests for repro.graphs.good (Definition 17 checkers)."""

import math


from repro.graphs import generators as gen
from repro.graphs.good import (
    check_good_graph,
    check_p1_induced_density,
    check_p2_dominating_degree,
    check_p3_neighborhood_growth,
    check_p4_cut_edges,
    check_p5_common_neighbors,
    check_p6_diameter,
)
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph


class TestP1:
    def test_exhaustive_on_tiny_graph(self):
        g = gen.complete_graph(5)
        # K_5 with p = 1: bound is max(8 * 1 * |S|, 4 ln 5) — generous.
        result = check_p1_induced_density(g, 1.0)
        assert result.holds
        assert result.exhaustive

    def test_detects_violation_small_p(self):
        # K_10 claimed to be G(10, 0.001)-good: avg degree 9 >>
        # max(8*0.001*10, 4 ln 10) ≈ 9.2... borderline; use K_12.
        g = gen.complete_graph(12)
        result = check_p1_induced_density(g, 0.001)
        assert not result.holds

    def test_sampled_path_ok(self):
        g = gen.path_graph(100)
        result = check_p1_induced_density(g, 0.05, rng=0)
        assert result.holds
        assert not result.exhaustive


class TestP2:
    def test_vacuous_when_threshold_exceeds_n(self):
        g = gen.path_graph(20)
        result = check_p2_dominating_degree(g, 0.01, rng=0)
        assert result.holds
        assert result.exhaustive  # vacuous

    def test_dense_gnp_passes(self):
        g = gnp_random_graph(120, 0.5, rng=1)
        result = check_p2_dominating_degree(g, 0.5, rng=2)
        assert result.holds

    def test_empty_graph_fails_when_applicable(self):
        # Empty graph claimed to be G(n, 0.9)-good: every vertex has 0
        # neighbours in any S, so P2 must fail for large S.
        # Need the threshold size well below n so that many outside
        # vertices (all with 0 neighbours in S) witness the violation.
        g = Graph(1000)  # threshold 40 ln(1000)/0.9 ≈ 307
        result = check_p2_dominating_degree(g, 0.9, rng=0)
        assert not result.holds

    def test_p_zero_vacuous(self):
        assert check_p2_dominating_degree(Graph(10), 0.0).holds


class TestP3:
    def test_gnp_passes(self):
        g = gnp_random_graph(100, 0.2, rng=3)
        result = check_p3_neighborhood_growth(g, 0.2, rng=4, samples=20)
        assert result.holds

    def test_p_zero_vacuous(self):
        assert check_p3_neighborhood_growth(Graph(10), 0.0).holds

    def test_slack_makes_small_graphs_pass(self):
        # 8 ln²(n)/p is enormous for small n; anything passes.
        g = gen.star_graph(30)
        assert check_p3_neighborhood_growth(g, 0.5, rng=0).holds


class TestP4:
    def test_gnp_passes(self):
        g = gnp_random_graph(100, 0.3, rng=5)
        assert check_p4_cut_edges(g, 0.3, rng=6).holds

    def test_structured_violation_detected(self):
        # Complete bipartite K_{2,200} claimed good for p where
        # |T| = 2 <= ln(n)/p: |E(S,T)| = 400 > 6 * 200 * ln(202)?
        # 6*200*5.3 ≈ 6360 — too big; build a denser violation:
        # star with huge hub set.  Use K_{5, 2000} with p tuned so
        # t_cap >= 5: ln(2005)/p >= 5 → p <= 1.5.  |E| = 10000 vs
        # 6 * 2000 * 7.6 = 91k — still passes.  P4 is hard to violate
        # with simple graphs (that's the point); check the checker's
        # arithmetic directly on a crafted tiny case instead by
        # monkey-level maths: 6 |S| ln n with |S|=1: complete graph
        # K_2 has 1 edge <= 6 ln 2 ≈ 4.2 — holds.  So just assert the
        # checker runs and reports sampled coverage.
        g = gen.complete_bipartite_graph(5, 50)
        result = check_p4_cut_edges(g, 0.5, rng=0)
        assert result.checked > 0

    def test_p_zero_vacuous(self):
        assert check_p4_cut_edges(Graph(10), 0.0).holds


class TestP5:
    def test_exact_pass(self):
        g = gnp_random_graph(80, 0.1, rng=7)
        assert check_p5_common_neighbors(g, 0.1).holds

    def test_exact_fail(self):
        # K_{2,60}: the two hub-side vertices share 60 common neighbours;
        # bound for p = 0.01, n = 62: max(6*62*0.0001, 4 ln 62) ≈ 16.5.
        g = gen.complete_bipartite_graph(2, 60)
        result = check_p5_common_neighbors(g, 0.01)
        assert not result.holds
        assert "common" in result.witness

    def test_tiny_graph(self):
        assert check_p5_common_neighbors(Graph(1), 0.5).holds


class TestP6:
    def test_below_threshold_vacuous(self):
        g = gen.path_graph(100)  # diameter 99, but p below threshold
        assert check_p6_diameter(g, 0.01).holds

    def test_above_threshold_diam2_passes(self):
        n = 60
        p = 0.8
        g = gnp_random_graph(n, p, rng=8)
        assert check_p6_diameter(g, p).holds

    def test_above_threshold_path_fails(self):
        n = 100
        p = 2.5 * math.sqrt(math.log(n) / n)
        g = gen.path_graph(n)
        result = check_p6_diameter(g, p)
        assert not result.holds

    def test_disconnected_fails(self):
        n = 100
        p = 2.5 * math.sqrt(math.log(n) / n)
        result = check_p6_diameter(Graph(n), p)
        assert not result.holds
        assert result.witness == "disconnected"


class TestFullReport:
    def test_gnp_sample_is_good(self):
        n, p = 100, 0.3
        g = gnp_random_graph(n, p, rng=9)
        report = check_good_graph(g, p, rng=10, samples=15)
        assert report.all_hold, report.summary()
        assert report.failed() == []
        assert set(report.results) == {"P1", "P2", "P3", "P4", "P5", "P6"}

    def test_summary_format(self):
        g = gnp_random_graph(50, 0.2, rng=11)
        report = check_good_graph(g, 0.2, rng=12, samples=5)
        text = report.summary()
        for name in ("P1", "P5", "P6"):
            assert name in text

    def test_bad_graph_reported(self):
        g = gen.complete_bipartite_graph(2, 60)
        report = check_good_graph(g, 0.01, rng=13, samples=5)
        assert "P5" in report.failed()
        assert not report.all_hold
