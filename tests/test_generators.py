"""Tests for repro.graphs.generators."""

import pytest

from repro.graphs import generators as gen
from repro.graphs.properties import (
    connected_components,
    diameter,
    is_connected,
)


class TestBasicFamilies:
    def test_empty_graph(self):
        g = gen.empty_graph(7)
        assert (g.n, g.m) == (7, 0)

    def test_complete_graph(self):
        g = gen.complete_graph(6)
        assert g.m == 15
        assert g.max_degree() == 5
        assert diameter(g) == 1

    def test_complete_graph_trivial(self):
        assert gen.complete_graph(0).n == 0
        assert gen.complete_graph(1).m == 0

    def test_path_graph(self):
        g = gen.path_graph(5)
        assert g.m == 4
        assert g.degree(0) == 1
        assert g.degree(2) == 2
        assert diameter(g) == 4

    def test_cycle_graph(self):
        g = gen.cycle_graph(6)
        assert g.m == 6
        assert all(g.degree(u) == 2 for u in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            gen.cycle_graph(2)

    def test_star_graph(self):
        g = gen.star_graph(7)
        assert g.m == 6
        assert g.degree(0) == 6
        assert all(g.degree(u) == 1 for u in range(1, 7))

    def test_complete_bipartite(self):
        g = gen.complete_bipartite_graph(3, 4)
        assert g.n == 7
        assert g.m == 12
        # No edges within parts.
        assert not g.has_edge(0, 1)
        assert not g.has_edge(3, 4)


class TestStructuredFamilies:
    def test_grid_graph(self):
        g = gen.grid_graph(3, 4)
        assert g.n == 12
        assert g.m == 3 * 3 + 2 * 4  # vertical + horizontal
        assert g.max_degree() == 4

    def test_grid_degenerate(self):
        g = gen.grid_graph(1, 5)
        assert g.m == 4

    def test_hypercube(self):
        g = gen.hypercube_graph(3)
        assert g.n == 8
        assert g.m == 12
        assert all(g.degree(u) == 3 for u in g.vertices())

    def test_hypercube_dim0(self):
        assert gen.hypercube_graph(0).n == 1

    def test_balanced_tree(self):
        g = gen.balanced_tree(2, 3)
        assert g.n == 15
        assert g.m == 14
        assert is_connected(g)

    def test_balanced_tree_height0(self):
        assert gen.balanced_tree(3, 0).n == 1

    def test_caterpillar(self):
        g = gen.caterpillar_graph(4, 2)
        assert g.n == 4 + 8
        assert g.m == 3 + 8
        assert is_connected(g)

    def test_petersen(self):
        g = gen.petersen_graph()
        assert g.n == 10
        assert g.m == 15
        assert all(g.degree(u) == 3 for u in g.vertices())
        assert diameter(g) == 2


class TestCompositeFamilies:
    def test_disjoint_cliques(self):
        g = gen.disjoint_cliques(3, 4)
        assert g.n == 12
        assert g.m == 3 * 6
        comps = connected_components(g)
        assert len(comps) == 3
        assert all(len(c) == 4 for c in comps)

    def test_disjoint_union(self):
        g = gen.disjoint_union(
            [gen.complete_graph(3), gen.path_graph(4)]
        )
        assert g.n == 7
        assert g.m == 3 + 3
        assert len(connected_components(g)) == 2

    def test_disjoint_union_empty_list(self):
        assert gen.disjoint_union([]).n == 0

    def test_ring_of_cliques(self):
        g = gen.ring_of_cliques(4, 3)
        assert g.n == 12
        assert g.m == 4 * 3 + 4
        assert is_connected(g)

    def test_ring_of_cliques_validates(self):
        with pytest.raises(ValueError):
            gen.ring_of_cliques(2, 3)

    def test_lollipop(self):
        g = gen.lollipop_graph(4, 3)
        assert g.n == 7
        assert g.m == 6 + 3
        assert is_connected(g)

    def test_barbell(self):
        g = gen.barbell_graph(3, 2)
        assert g.n == 8
        assert g.m == 3 + 3 + 3
        assert is_connected(g)
