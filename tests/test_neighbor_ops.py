"""Tests for repro.core.neighbor_ops: the three backends must agree."""

import numpy as np
import pytest

from repro.core.neighbor_ops import (
    AdjListNeighborOps,
    BitsetNeighborOps,
    DenseNeighborOps,
    SparseNeighborOps,
    make_neighbor_ops,
)
from repro.graphs.generators import complete_graph, star_graph
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph

BACKENDS = [
    DenseNeighborOps,
    SparseNeighborOps,
    BitsetNeighborOps,
    AdjListNeighborOps,
]


@pytest.fixture(
    params=BACKENDS, ids=["dense", "sparse", "bitset", "adjlist"]
)
def backend_cls(request):
    return request.param


class TestCount:
    def test_count_star(self, backend_cls):
        g = star_graph(5)
        ops = backend_cls(g)
        mask = np.array([False, True, True, False, False])
        counts = ops.count(mask)
        assert counts[0] == 2  # hub sees both marked leaves
        assert counts[1] == 0  # leaf sees unmarked hub
        mask_hub = np.array([True, False, False, False, False])
        counts = ops.count(mask_hub)
        assert counts[0] == 0
        assert np.all(counts[1:] == 1)

    def test_count_all_marked_clique(self, backend_cls):
        g = complete_graph(6)
        ops = backend_cls(g)
        counts = ops.count(np.ones(6, dtype=bool))
        assert np.all(counts == 5)

    def test_count_none_marked(self, backend_cls):
        g = complete_graph(4)
        ops = backend_cls(g)
        assert np.all(ops.count(np.zeros(4, dtype=bool)) == 0)

    def test_exists_matches_count(self, backend_cls):
        g = gnp_random_graph(40, 0.2, rng=1)
        ops = backend_cls(g)
        rng = np.random.default_rng(2)
        mask = rng.random(40) < 0.3
        assert np.array_equal(ops.exists(mask), ops.count(mask) > 0)


class TestMaxClosed:
    def test_max_closed_includes_self(self, backend_cls):
        g = Graph(3, [(0, 1)])
        ops = backend_cls(g)
        values = np.array([5, 1, 3])
        out = ops.max_closed(values)
        assert out[0] == 5  # self
        assert out[1] == 5  # neighbour 0
        assert out[2] == 3  # isolated

    def test_max_closed_levels(self, backend_cls):
        g = complete_graph(5)
        ops = backend_cls(g)
        values = np.array([0, 1, 2, 3, 4])
        assert np.all(ops.max_closed(values) == 4)

    def test_max_closed_shifted_levels(self, backend_cls):
        # All levels strictly positive: the level-set loop skips the
        # minimum-level probe (always all-True), which must not change
        # the result.
        g = gnp_random_graph(30, 0.2, rng=7)
        ops = backend_cls(g)
        rng = np.random.default_rng(11)
        values = rng.integers(2, 8, size=30)
        ref = AdjListNeighborOps(g)
        assert np.array_equal(ops.max_closed(values), ref.max_closed(values))

    def test_max_closed_constant_levels(self, backend_cls):
        # A single distinct level: the loop body never runs; N+ includes
        # self, so the output is the input.
        g = gnp_random_graph(12, 0.3, rng=1)
        ops = backend_cls(g)
        values = np.full(12, 3)
        assert np.array_equal(ops.max_closed(values), values)


class TestCrossBackendAgreement:
    def test_all_backends_agree(self):
        g = gnp_random_graph(60, 0.15, rng=3)
        rng = np.random.default_rng(4)
        mask = rng.random(60) < 0.4
        values = rng.integers(0, 6, size=60)
        results_count = []
        results_max = []
        for cls in BACKENDS:
            ops = cls(g)
            results_count.append(np.asarray(ops.count(mask)))
            results_max.append(np.asarray(ops.max_closed(values)))
        for other in results_count[1:]:
            assert np.array_equal(results_count[0], other)
        for other in results_max[1:]:
            assert np.array_equal(results_max[0], other)


class TestFactory:
    def test_explicit_backends(self):
        g = complete_graph(4)
        assert isinstance(make_neighbor_ops(g, "dense"), DenseNeighborOps)
        assert isinstance(make_neighbor_ops(g, "sparse"), SparseNeighborOps)
        assert isinstance(
            make_neighbor_ops(g, "bitset"), BitsetNeighborOps
        )
        assert isinstance(
            make_neighbor_ops(g, "adjlist"), AdjListNeighborOps
        )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            make_neighbor_ops(complete_graph(3), "gpu")

    def test_auto_small_graph_dense(self):
        assert isinstance(
            make_neighbor_ops(complete_graph(50), "auto"), DenseNeighborOps
        )

    def test_auto_large_sparse_graph_sparse(self):
        g = gnp_random_graph(5000, 0.0005, rng=5)
        assert isinstance(make_neighbor_ops(g, "auto"), SparseNeighborOps)

    def test_auto_midsize_dense_graph_bitset(self):
        # Past the dense backend's n cap but dense enough that the
        # bit-packed rows beat CSR: the mid-size dense regime.
        g = gnp_random_graph(6000, 0.15, rng=6)
        assert isinstance(make_neighbor_ops(g, "auto"), BitsetNeighborOps)

    def test_auto_huge_graph_stays_sparse(self):
        g = gnp_random_graph(40_000, 0.0001, rng=7)
        assert isinstance(make_neighbor_ops(g, "auto"), SparseNeighborOps)


class TestCountBatch:
    def test_matches_rowwise_count(self, backend_cls):
        g = gnp_random_graph(60, 0.15, rng=8)
        ops = backend_cls(g)
        rng = np.random.default_rng(0)
        masks = rng.random((7, 60)) < 0.4
        batch = ops.count_batch(masks)
        assert batch.shape == (7, 60)
        for r in range(7):
            assert np.array_equal(
                np.asarray(batch[r]), np.asarray(ops.count(masks[r]))
            )

    def test_exists_batch_matches_count_batch(self, backend_cls):
        g = gnp_random_graph(30, 0.2, rng=3)
        ops = backend_cls(g)
        rng = np.random.default_rng(1)
        masks = rng.random((5, 30)) < 0.5
        assert np.array_equal(
            ops.exists_batch(masks), ops.count_batch(masks) > 0
        )

    def test_empty_batch(self, backend_cls):
        g = complete_graph(6)
        ops = backend_cls(g)
        out = ops.count_batch(np.zeros((0, 6), dtype=bool))
        assert out.shape == (0, 6)

    def test_bad_shape_rejected(self, backend_cls):
        g = complete_graph(6)
        ops = backend_cls(g)
        with pytest.raises(ValueError):
            ops.count_batch(np.zeros(6, dtype=bool))
        with pytest.raises(ValueError):
            ops.count_batch(np.zeros((2, 5), dtype=bool))


class TestMaxClosedBatch:
    def test_matches_rowwise_max_closed(self, backend_cls):
        g = gnp_random_graph(40, 0.15, rng=9)
        ops = backend_cls(g)
        rng = np.random.default_rng(2)
        values = rng.integers(0, 6, size=(6, 40)).astype(np.int8)
        batch = ops.max_closed_batch(values)
        assert batch.shape == (6, 40)
        for r in range(6):
            assert np.array_equal(
                np.asarray(batch[r]), np.asarray(ops.max_closed(values[r]))
            )

    def test_includes_self(self, backend_cls):
        # An isolated maximum stays put: N+ includes the vertex itself.
        g = complete_graph(1)
        ops = backend_cls(g)
        values = np.array([[3]], dtype=np.int8)
        assert np.array_equal(ops.max_closed_batch(values), [[3]])

    def test_bad_shape_rejected(self, backend_cls):
        g = complete_graph(6)
        ops = backend_cls(g)
        with pytest.raises(ValueError):
            ops.max_closed_batch(np.zeros(6, dtype=np.int8))
