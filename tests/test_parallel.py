"""Tests for the multi-core fleet sharding layer (:mod:`repro.parallel`).

The load-bearing guarantees under test:

* **Bitwise identity** — sharded fleets produce exactly the serial
  results and final process states for any worker count and shard
  boundaries (shared graphs, per-trial resampled graphs, corrupted
  starts, resumed runs, mixed stabilization times).
* **Shared-memory hygiene** — no ``/dev/shm`` segment survives a pool
  shutdown, an exception, a dropped owner, or a worker crash mid-job.
* **Dispatch plumbing** — ``n_jobs`` resolution/clamping, the
  process-wide default, sweep fleet-vs-points routing, and pool reuse.
"""

import gc
import os
import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.three_state import ThreeStateMIS
from repro.core.two_state import TwoStateMIS
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.parallel import (
    SharedGraphStore,
    WorkerCrashError,
    WorkerPool,
    adopt_state,
    cpu_count,
    default_n_jobs,
    fleet_shards,
    get_default_n_jobs,
    leaked_segments,
    resolve_n_jobs,
    set_default_n_jobs,
    shard_ranges,
)
from repro.sim.montecarlo import (
    estimate_stabilization_time,
    sweep_stabilization_times,
)
from repro.sim.runner import run_many_until_stable


def _assert_no_leaks():
    assert leaked_segments() == []


def _two_state_fleet(size, shared, *, n=60, p=0.08, graph_seed=7, coin_base=100):
    graph = gnp_random_graph(n, p, rng=graph_seed)
    fleet = []
    for i in range(size):
        g = graph if shared else gnp_random_graph(n, p, rng=graph_seed + 1 + i)
        fleet.append(TwoStateMIS(g, coins=coin_base + i))
    return fleet


def _assert_fleets_identical(serial, parallel, serial_results, parallel_results):
    assert len(serial_results) == len(parallel_results)
    for a, b in zip(serial_results, parallel_results):
        assert a.stabilized == b.stabilized
        assert a.stabilization_round == b.stabilization_round
        assert a.rounds_executed == b.rounds_executed
        assert (a.mis is None) == (b.mis is None)
        if a.mis is not None:
            assert np.array_equal(a.mis, b.mis)
    for a, b in zip(serial, parallel):
        assert a.round == b.round
        assert np.array_equal(a.state_vector(), b.state_vector())
        # The coin streams advanced in lockstep: the next draws agree.
        assert np.array_equal(a.coins.bits(8), b.coins.bits(8))


# ---------------------------------------------------------------------------
# Bitwise identity: serial vs sharded
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("shared", [True, False])
@pytest.mark.parametrize("n_jobs", [2, 3, 4])
def test_fleet_identical_to_serial(shared, n_jobs):
    serial = _two_state_fleet(9, shared)
    parallel = _two_state_fleet(9, shared)
    rs = run_many_until_stable(serial, max_rounds=400)
    rp = run_many_until_stable(parallel, max_rounds=400, n_jobs=n_jobs)
    _assert_fleets_identical(serial, parallel, rs, rp)
    for a, b in zip(serial, parallel):
        # Writeback preserved object and graph identity.
        assert b.graph is a.graph or b.graph.n == a.graph.n
    _assert_no_leaks()


def test_fleet_identical_with_explicit_pool():
    serial = _two_state_fleet(8, True)
    parallel = _two_state_fleet(8, True)
    rs = run_many_until_stable(serial, max_rounds=400)
    with WorkerPool(2) as pool:
        rp = run_many_until_stable(parallel, max_rounds=400, pool=pool)
    _assert_fleets_identical(serial, parallel, rs, rp)
    _assert_no_leaks()


def test_fleet_preserves_graph_identity():
    graph = gnp_random_graph(40, 0.1, rng=3)
    fleet = [TwoStateMIS(graph, coins=i) for i in range(4)]
    run_many_until_stable(fleet, max_rounds=400, n_jobs=2)
    for process in fleet:
        assert process.graph is graph
        assert process.ops.graph is graph


def test_fleet_three_state_identical():
    graph = gnp_random_graph(50, 0.08, rng=11)
    serial = [ThreeStateMIS(graph, coins=200 + i) for i in range(6)]
    parallel = [ThreeStateMIS(graph, coins=200 + i) for i in range(6)]
    rs = run_many_until_stable(serial, max_rounds=600)
    rp = run_many_until_stable(parallel, max_rounds=600, n_jobs=3)
    _assert_fleets_identical(serial, parallel, rs, rp)
    _assert_no_leaks()


def test_fleet_mixed_graph_sizes_and_retirement():
    # Replicas on different graphs stabilize at very different rounds;
    # early finishers retire from their shard's batch mid-run.
    def fleet():
        out = []
        for i in range(6):
            g = gnp_random_graph(20 + 15 * i, 0.1, rng=50 + i)
            out.append(TwoStateMIS(g, coins=300 + i))
        return out

    serial, parallel = fleet(), fleet()
    rs = run_many_until_stable(serial, max_rounds=500)
    rp = run_many_until_stable(parallel, max_rounds=500, n_jobs=4)
    _assert_fleets_identical(serial, parallel, rs, rp)
    _assert_no_leaks()


def test_fleet_resume_after_corruption():
    # Partial run, targeted corruption, then a resumed run — state and
    # round counters must cross the process boundary bitwise-intact.
    serial = _two_state_fleet(6, True)
    parallel = _two_state_fleet(6, True)
    rs = run_many_until_stable(serial, max_rounds=2)
    rp = run_many_until_stable(parallel, max_rounds=2, n_jobs=3)
    _assert_fleets_identical(serial, parallel, rs, rp)
    for fleet in (serial, parallel):
        for process in fleet:
            process.corrupt_vertices([0, 1, 2], black=True)
    rs = run_many_until_stable(serial, max_rounds=400)
    rp = run_many_until_stable(parallel, max_rounds=400, n_jobs=2)
    _assert_fleets_identical(serial, parallel, rs, rp)
    _assert_no_leaks()


@st.composite
def small_fleets(draw):
    n = draw(st.integers(min_value=2, max_value=16))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(st.lists(st.sampled_from(possible), unique=True, max_size=30))
    size = draw(st.integers(min_value=2, max_value=5))
    coin_base = draw(st.integers(min_value=0, max_value=2**16))
    shared = draw(st.booleans())
    return n, tuple(edges), size, coin_base, shared


@settings(max_examples=15, deadline=None)
@given(small_fleets(), st.integers(min_value=2, max_value=4))
def test_fleet_identity_property(spec, n_jobs):
    n, edges, size, coin_base, shared = spec

    def fleet():
        base = Graph(n, list(edges))
        out = []
        for i in range(size):
            g = base if shared else Graph(n, list(edges))
            out.append(TwoStateMIS(g, coins=coin_base + i))
        return out

    serial, parallel = fleet(), fleet()
    rs = run_many_until_stable(serial, max_rounds=300)
    rp = run_many_until_stable(parallel, max_rounds=300, n_jobs=n_jobs)
    _assert_fleets_identical(serial, parallel, rs, rp)


def test_estimate_stabilization_time_parallel_identical():
    def factory(seed):
        return TwoStateMIS(gnp_random_graph(40, 0.1, rng=seed), coins=seed)

    a = estimate_stabilization_time(factory, trials=8, max_rounds=400, seed=5)
    b = estimate_stabilization_time(
        factory, trials=8, max_rounds=400, seed=5, n_jobs=2
    )
    assert np.array_equal(a.times, b.times)
    assert a.failures == b.failures
    _assert_no_leaks()


# ---------------------------------------------------------------------------
# Sweep dispatch: fleet vs legacy points
# ---------------------------------------------------------------------------


def _module_level_make_factory(n):
    def factory(seed):
        return TwoStateMIS(gnp_random_graph(n, 0.1, rng=seed), coins=seed)

    return factory


def test_sweep_fleet_dispatch_handles_lambdas():
    make = lambda n: (  # noqa: E731 - the point is an unpicklable factory
        lambda seed: TwoStateMIS(gnp_random_graph(n, 0.1, rng=seed), coins=seed)
    )
    serial = sweep_stabilization_times(
        make, grid=[20, 30], trials=4, max_rounds=300, seed=2
    )
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # fleet path must not warn
        parallel = sweep_stabilization_times(
            make, grid=[20, 30], trials=4, max_rounds=300, seed=2, n_jobs=2
        )
    for (pa, sa), (pb, sb) in zip(serial.entries, parallel.entries):
        assert pa == pb
        assert np.array_equal(sa.times, sb.times)
        assert sa.failures == sb.failures
    _assert_no_leaks()


def test_sweep_points_dispatch_warns_on_unpicklable_factory():
    make = lambda n: (  # noqa: E731
        lambda seed: TwoStateMIS(gnp_random_graph(n, 0.1, rng=seed), coins=seed)
    )
    serial = sweep_stabilization_times(
        make, grid=[20], trials=4, max_rounds=300, seed=2
    )
    with pytest.warns(RuntimeWarning, match="fleet"):
        fallback = sweep_stabilization_times(
            make,  # repro-lint: disable=parallel-safety (the legacy path's degradation is the behavior under test)
            grid=[20],
            trials=4,
            max_rounds=300,
            seed=2,
            n_jobs=2,
            dispatch="points",
        )
    assert np.array_equal(serial[20].times, fallback[20].times)


def test_sweep_rejects_unknown_dispatch():
    with pytest.raises(ValueError, match="dispatch"):
        sweep_stabilization_times(
            _module_level_make_factory,
            grid=[10],
            trials=2,
            max_rounds=100,
            dispatch="banana",
        )


# ---------------------------------------------------------------------------
# Shared-memory hygiene
# ---------------------------------------------------------------------------


def test_store_close_unlinks_segment():
    graph = gnp_random_graph(30, 0.1, rng=1)
    store = SharedGraphStore([graph])
    assert store.handle.segment in leaked_segments()
    store.close()
    _assert_no_leaks()
    store.close()  # idempotent


def test_store_context_manager_unlinks_on_exception():
    graph = gnp_random_graph(30, 0.1, rng=1)
    with pytest.raises(RuntimeError, match="boom"):
        with SharedGraphStore([graph]):
            raise RuntimeError("boom")
    _assert_no_leaks()


def test_store_finalizer_backstop_unlinks_dropped_owner():
    store = SharedGraphStore([gnp_random_graph(30, 0.1, rng=1)])
    assert leaked_segments() == [store.handle.segment]
    del store
    gc.collect()
    _assert_no_leaks()


def _check_view(original, view):
    # A helper so view references die on return: the attached store
    # must be able to unmap cleanly once the caller is done.
    assert view.n == original.n
    assert view.m == original.m
    assert np.array_equal(view.indptr, original.indptr)
    assert np.array_equal(view.indices, original.indices)
    assert not view.indices.flags.writeable


def test_attached_store_roundtrips_graphs():
    graphs = [gnp_random_graph(25, 0.15, rng=s) for s in (1, 2)]
    with SharedGraphStore(graphs) as store:
        with store.handle.attach() as attached:
            assert len(attached.graphs) == 2
            for i, original in enumerate(graphs):
                _check_view(original, attached.graphs[i])
    _assert_no_leaks()


class _CrashOnLoad(TwoStateMIS):
    """A process whose unpickling kills the worker outright."""

    def __setstate__(self, state):
        os._exit(3)


def test_worker_crash_raises_and_leaks_nothing():
    graph = gnp_random_graph(30, 0.1, rng=1)
    fleet = [_CrashOnLoad(graph, coins=i) for i in range(4)]
    with pytest.raises(WorkerCrashError, match="died"):
        run_many_until_stable(fleet, max_rounds=100, n_jobs=2)
    _assert_no_leaks()


def test_pool_survives_python_level_job_errors():
    graph = gnp_random_graph(30, 0.1, rng=1)
    with WorkerPool(1) as pool:
        bad = [TwoStateMIS(graph, coins=i) for i in range(2)]
        with pytest.raises(RuntimeError, match="max_rounds"):
            run_many_until_stable(bad, max_rounds=-1, n_jobs=2, pool=pool)
        # The worker caught the exception and keeps serving jobs.
        good = [TwoStateMIS(graph, coins=i) for i in range(2)]
        results = run_many_until_stable(good, max_rounds=400, pool=pool)
        assert len(results) == 2
    _assert_no_leaks()


def test_pool_reuse_across_different_graph_stores():
    with WorkerPool(2) as pool:
        for seed in (1, 2, 3):  # each call publishes a fresh segment
            graph = gnp_random_graph(30, 0.1, rng=seed)
            serial = [TwoStateMIS(graph, coins=10 * seed + i) for i in range(4)]
            parallel = [
                TwoStateMIS(graph, coins=10 * seed + i) for i in range(4)
            ]
            rs = run_many_until_stable(serial, max_rounds=400)
            rp = run_many_until_stable(parallel, max_rounds=400, pool=pool)
            _assert_fleets_identical(serial, parallel, rs, rp)
    _assert_no_leaks()


def test_closed_pool_rejects_submission():
    pool = WorkerPool(1)
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(RuntimeError, match="closed"):
        pool.submit(None)


# ---------------------------------------------------------------------------
# Plumbing: n_jobs resolution, sharding, config default
# ---------------------------------------------------------------------------


def test_resolve_n_jobs():
    assert resolve_n_jobs(None) == 1
    assert resolve_n_jobs(1) == 1
    assert resolve_n_jobs("auto") == cpu_count()
    assert resolve_n_jobs(10**6) == cpu_count()  # clamped pool width
    assert resolve_n_jobs(10**6, clamp=False) == 10**6  # verbatim shards
    for bad in (0, -1, True, False, "many", 1.5):
        with pytest.raises((ValueError, TypeError)):
            resolve_n_jobs(bad)


def test_fleet_shards_resolution():
    assert fleet_shards(None, None) == 1
    assert fleet_shards(4, None) == 4  # unclamped: machine-independent
    assert fleet_shards("auto", None) == cpu_count()
    with WorkerPool(2) as pool:
        assert fleet_shards(None, pool) == 2
        assert fleet_shards(3, pool) == 3  # explicit n_jobs wins


@settings(max_examples=60, deadline=None)
@given(
    st.integers(min_value=0, max_value=200),
    st.integers(min_value=1, max_value=32),
)
def test_shard_ranges_properties(count, shards):
    ranges = shard_ranges(count, shards)
    if count == 0:
        assert ranges == []
        return
    assert len(ranges) == min(shards, count)
    assert ranges[0][0] == 0
    assert ranges[-1][1] == count
    sizes = []
    for (lo, hi), nxt in zip(ranges, ranges[1:] + [(count, None)]):
        assert lo < hi  # never empty
        assert hi == nxt[0]  # contiguous
        sizes.append(hi - lo)
    assert max(sizes) - min(sizes) <= 1  # near-equal


def test_adopt_state_rejects_type_mismatch():
    graph = gnp_random_graph(10, 0.2, rng=1)
    two = TwoStateMIS(graph, coins=1)
    three = ThreeStateMIS(graph, coins=1)
    with pytest.raises(TypeError, match="adopt"):
        adopt_state(two, three)


def test_default_n_jobs_config():
    assert get_default_n_jobs() is None
    with default_n_jobs(2):
        assert get_default_n_jobs() == 2
        serial = _two_state_fleet(4, True)
        parallel = _two_state_fleet(4, True)
        rp = run_many_until_stable(parallel, max_rounds=400)  # fleet path
        rs = run_many_until_stable(serial, max_rounds=400, n_jobs=1)
        _assert_fleets_identical(serial, parallel, rs, rp)
    assert get_default_n_jobs() is None
    with pytest.raises(ValueError):
        set_default_n_jobs(0)
    assert get_default_n_jobs() is None
    _assert_no_leaks()


def test_single_replica_or_single_shard_stays_serial():
    graph = gnp_random_graph(30, 0.1, rng=1)
    lone = [TwoStateMIS(graph, coins=0)]
    results = run_many_until_stable(lone, max_rounds=400, n_jobs=4)
    assert len(results) == 1
    serial = [TwoStateMIS(graph, coins=i) for i in range(3)]
    results = run_many_until_stable(serial, max_rounds=400, n_jobs=1)
    assert len(results) == 3
    _assert_no_leaks()
