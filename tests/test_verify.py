"""Tests for repro.core.verify."""

import numpy as np
import pytest

from repro.core.verify import (
    assert_valid_mis,
    greedy_mis_size_bounds,
    independence_violations,
    is_independent_set,
    is_maximal_independent_set,
    maximality_violations,
)
from repro.graphs.generators import complete_graph, cycle_graph, path_graph
from repro.graphs.graph import Graph


class TestIndependence:
    def test_empty_set_independent(self, triangle):
        assert is_independent_set(triangle, [])

    def test_violations_listed(self, triangle):
        violations = independence_violations(triangle, [0, 1])
        assert violations == [(0, 1)]

    def test_accepts_boolean_mask(self, triangle):
        mask = np.array([True, False, True])
        assert not is_independent_set(triangle, mask)

    def test_mask_shape_validation(self, triangle):
        with pytest.raises(ValueError):
            is_independent_set(triangle, np.array([True, False]))

    def test_index_out_of_range(self, triangle):
        with pytest.raises(ValueError):
            is_independent_set(triangle, [0, 5])


class TestMaximality:
    def test_maximality_violations(self):
        g = path_graph(5)
        # {0} is independent but 2, 3, 4 are uncovered.
        assert maximality_violations(g, [0]) == [2, 3, 4]

    def test_valid_mis(self):
        g = path_graph(5)
        assert is_maximal_independent_set(g, [0, 2, 4])
        assert not is_maximal_independent_set(g, [0, 2])  # 4 uncovered
        assert not is_maximal_independent_set(g, [0, 1, 3])  # not indep

    def test_cycle_mis(self):
        g = cycle_graph(6)
        assert is_maximal_independent_set(g, [0, 2, 4])
        assert not is_maximal_independent_set(g, [0, 3, 1])

    def test_clique_mis_any_single_vertex(self):
        g = complete_graph(5)
        for u in range(5):
            assert is_maximal_independent_set(g, [u])

    def test_empty_graph_mis_is_everything(self):
        g = Graph(4)
        assert is_maximal_independent_set(g, [0, 1, 2, 3])
        assert not is_maximal_independent_set(g, [0, 1])


class TestAssertValidMis:
    def test_passes_silently(self):
        assert_valid_mis(path_graph(3), [0, 2])

    def test_independence_error_message(self, triangle):
        with pytest.raises(AssertionError, match="independence"):
            assert_valid_mis(triangle, [0, 1])

    def test_maximality_error_message(self):
        with pytest.raises(AssertionError, match="maximality"):
            assert_valid_mis(path_graph(5), [0])


class TestSizeBounds:
    def test_bounds_bracket_known_mis(self):
        g = cycle_graph(9)
        lower, upper = greedy_mis_size_bounds(g)
        # C_9: MIS sizes range 3..4.
        assert lower <= 3
        assert upper >= 4

    def test_clique_bounds(self):
        lower, upper = greedy_mis_size_bounds(complete_graph(10))
        assert lower == 1
        assert upper >= 1

    def test_empty_graph(self):
        assert greedy_mis_size_bounds(Graph(0)) == (0, 0)
        lower, upper = greedy_mis_size_bounds(Graph(5))
        assert lower >= 1
        assert upper == 5
