"""Tests for repro.theory (bounds and budgets)."""

import math

import pytest

from repro.graphs.generators import complete_graph, path_graph
from repro.graphs.random_graphs import gnp_random_graph, random_tree
from repro.theory import bounds, budgets


class TestAlpha:
    def test_alpha_value(self):
        # α = 1/log₂(4/3) ≈ 2.409, and the paper says α <= 2.41.
        assert 2.40 < bounds.ALPHA <= 2.41

    def test_alpha_identity(self):
        # Defining identity: (3/4)^α = 1/2.
        assert (3 / 4) ** bounds.ALPHA == pytest.approx(0.5)


class TestLemmaBounds:
    def test_lemma6(self):
        assert bounds.lemma6_rounds(1) == 1
        assert bounds.lemma6_rounds(3) == 2
        assert bounds.lemma6_rounds(7) == 3
        assert bounds.lemma6_probability(1) == pytest.approx(
            1 / (2 * math.e)
        )
        with pytest.raises(ValueError):
            bounds.lemma6_probability(0)

    def test_lemma7(self):
        # Σ 1/(2k) with many tiny k saturates the min at 1 → 1/5.
        assert bounds.lemma7_probability([1] * 10) == pytest.approx(0.2)
        assert bounds.lemma7_probability([4]) == pytest.approx(0.2 / 8)
        with pytest.raises(ValueError):
            bounds.lemma7_probability([])

    def test_theorem8_band(self):
        lo, hi = bounds.theorem8_tail_exponent_band()
        assert 0 < lo < hi < 1

    def test_theorem12(self):
        assert bounds.theorem12_round_bound(1024, 8) == pytest.approx(
            24 * math.e * 8 * 10
        )
        assert bounds.theorem12_round_bound(1, 5) == 0.0

    def test_switch_bounds(self):
        n, zeta = 256, 0.125
        s1 = bounds.switch_s1_bound(n, zeta)
        s2 = bounds.switch_s2_bound(n, zeta)
        assert s1 == pytest.approx(6 * s2)
        with pytest.raises(ValueError):
            bounds.switch_s1_bound(n, 0.9)


class TestGoodGraphBounds:
    def test_p1(self):
        assert bounds.p1_density_bound(100, 0.5, 10) == pytest.approx(
            max(40.0, 4 * math.log(100))
        )

    def test_p2_threshold(self):
        assert bounds.p2_threshold_size(100, 0.0) == math.inf
        assert bounds.p2_threshold_size(100, 0.5) == pytest.approx(
            80 * math.log(100)
        )

    def test_p3_slack_and_p4(self):
        assert bounds.p3_slack(100, 0.1) == pytest.approx(
            80 * math.log(100) ** 2
        )
        assert bounds.p4_edge_bound(100, 10) == pytest.approx(
            60 * math.log(100)
        )

    def test_p5_and_p6(self):
        assert bounds.p5_common_neighbor_bound(1000, 0.1) == pytest.approx(
            max(60.0, 4 * math.log(1000))
        )
        threshold = bounds.p6_probability_threshold(400)
        assert threshold == pytest.approx(2 * math.sqrt(math.log(400) / 400))
        assert bounds.p6_probability_threshold(1) == math.inf


class TestBudgets:
    def test_monotone_in_n(self):
        assert budgets.clique_budget(1024) > budgets.clique_budget(64)
        assert budgets.gnp_budget(1024) > budgets.gnp_budget(64)

    def test_trivial_graphs(self):
        assert budgets.clique_budget(1) == 1
        assert budgets.recommended_budget(path_graph(1)) == 1

    def test_recommended_uses_clique_bound_for_cliques(self):
        g = complete_graph(256)
        assert budgets.recommended_budget(g) == budgets.clique_budget(256)

    def test_recommended_tree_uses_arboricity(self):
        g = random_tree(256, rng=0)
        assert budgets.recommended_budget(g) == budgets.arboricity_budget(
            256, 1
        )

    def test_recommended_three_color_at_least_switch_scale(self):
        g = gnp_random_graph(256, 0.3, rng=1)
        b2 = budgets.recommended_budget(g, "2-state")
        b3 = budgets.recommended_budget(g, "3-color")
        assert b3 >= b2

    def test_unknown_process_rejected(self):
        with pytest.raises(ValueError):
            budgets.recommended_budget(path_graph(5), "4-state")

    def test_budgets_are_sufficient_in_practice(self):
        # The whole point: a recommended budget virtually never fails.
        from repro.core.two_state import TwoStateMIS
        from repro.sim.montecarlo import estimate_stabilization_time

        g = complete_graph(128)
        stats = estimate_stabilization_time(
            lambda s: TwoStateMIS(g, coins=s),
            trials=20,
            max_rounds=budgets.recommended_budget(g),
            seed=0,
        )
        assert stats.success_rate == 1.0
