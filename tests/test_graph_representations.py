"""Representation-cache consistency of the CSR-native Graph.

The CSR arrays are the single source of truth; every derived
representation — the scipy CSR wrapper, the dense int8 matrix, the
bit-packed uint64 rows, and the lazy Python tuple/set views — must
describe the same adjacency, on every construction path (edge-list
constructor, ``from_numpy_edges``, derived graphs) including the
empty- and singleton-graph corners.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph


def unpack_bitset(bits: np.ndarray, n: int) -> np.ndarray:
    """Expand ``(n, ⌈n/64⌉)`` uint64 rows back into a boolean matrix."""
    if n == 0:
        return np.zeros((0, 0), dtype=bool)
    expanded = np.unpackbits(
        bits.view(np.uint8).reshape(n, -1), axis=1, bitorder="little"
    )
    return expanded[:, :n].astype(bool)


def assert_representations_agree(g: Graph) -> None:
    n = g.n
    dense = g.adjacency_dense()
    # dense: symmetric, zero diagonal, edge count consistent.
    assert dense.shape == (n, n)
    assert np.array_equal(dense, dense.T)
    assert int(dense.sum()) == 2 * g.m
    if n:
        assert np.all(np.diag(dense) == 0)
    # scipy CSR wrapper agrees with dense.
    assert np.array_equal(g.adjacency_csr().toarray(), dense)
    # bit-packed rows agree with dense.
    assert np.array_equal(unpack_bitset(g.adjacency_bitset(), n), dense != 0)
    # lazy tuple/set views agree with dense rows, sorted.
    for u in range(n):
        row = np.flatnonzero(dense[u]).tolist()
        assert list(g.neighbors(u)) == row
        assert g._adj_sets[u] == set(row)
        assert g.degree(u) == len(row)
    assert np.array_equal(g.degrees(), dense.sum(axis=1).astype(np.int64))
    # edge arrays roundtrip through from_numpy_edges.
    us, vs = g.edge_arrays()
    assert np.all(us < vs)
    assert us.size == g.m
    assert Graph.from_numpy_edges(n, us, vs) == g


@st.composite
def graphs(draw):
    n = draw(st.integers(min_value=0, max_value=40))
    max_edges = n * (n - 1) // 2
    k = draw(st.integers(min_value=0, max_value=min(max_edges, 80)))
    edges = []
    if n >= 2:
        edges = [
            (draw(st.integers(0, n - 1)), draw(st.integers(0, n - 1)))
            for _ in range(k)
        ]
        edges = [(u, v) for u, v in edges if u != v]
    via_arrays = draw(st.booleans())
    if via_arrays:
        arr = np.array(edges, dtype=np.int64).reshape(-1, 2)
        return Graph.from_numpy_edges(n, arr[:, 0], arr[:, 1])
    return Graph(n, edges)


class TestRandomizedConsistency:
    @settings(max_examples=80, deadline=None)
    @given(graphs())
    def test_all_representations_agree(self, g):
        assert_representations_agree(g)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_gnp_sample_consistency(self, seed):
        assert_representations_agree(gnp_random_graph(30, 0.2, rng=seed))


class TestCorners:
    def test_empty_graph(self):
        g = Graph(0)
        assert_representations_agree(g)
        assert g.adjacency_bitset().shape == (0, 0)
        us, vs = g.edge_arrays()
        assert us.size == 0

    def test_singleton_graph(self):
        g = Graph(1)
        assert_representations_agree(g)
        assert g.adjacency_bitset().shape == (1, 1)
        assert g.neighbors(0) == ()

    def test_from_numpy_edges_empty(self):
        g = Graph.from_numpy_edges(5, np.array([]), np.array([]))
        assert_representations_agree(g)

    def test_word_boundary_sizes(self):
        # n = 63, 64, 65 straddle the uint64 word boundary.
        for n in (63, 64, 65):
            g = gnp_random_graph(n, 0.1, rng=n)
            assert_representations_agree(g)
            assert g.adjacency_bitset().shape == (n, (n + 63) // 64)

    def test_derived_graphs_stay_consistent(self):
        g = gnp_random_graph(25, 0.25, rng=3)
        sub, _ = g.subgraph(range(0, 25, 2))
        assert_representations_agree(sub)
        assert_representations_agree(g.complement())
        perm = np.random.default_rng(0).permutation(25)
        assert_representations_agree(g.relabeled(perm.tolist()))

    def test_caches_are_lazy_and_stable(self):
        g = gnp_random_graph(20, 0.3, rng=1)
        assert g.adjacency_dense() is g.adjacency_dense()
        assert g.adjacency_csr() is g.adjacency_csr()
        assert g.adjacency_bitset() is g.adjacency_bitset()
        assert g.neighbors(3) is g.neighbors(3)

    def test_pickle_roundtrip_drops_caches(self):
        import pickle

        g = gnp_random_graph(20, 0.3, rng=2)
        g.adjacency_dense()
        g.adjacency_bitset()
        back = pickle.loads(pickle.dumps(g))
        assert back == g
        assert back._dense is None and back._bits is None
        assert_representations_agree(back)


class TestVectorizedHelpers:
    """The CSR-vectorized set helpers agree with naive references."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=2, max_value=25),
    )
    def test_set_helpers_match_reference(self, seed, n):
        g = gnp_random_graph(n, 0.3, rng=seed)
        rng = np.random.default_rng(seed)
        s = set(rng.integers(0, n, size=max(1, n // 3)).tolist())
        t = set(rng.integers(0, n, size=max(1, n // 3)).tolist())
        ref_nbhd = set()
        for u in s:
            ref_nbhd |= set(g.neighbors(u))
        assert g.neighborhood_of_set(s) == ref_nbhd - s
        assert g.closed_neighborhood_of_set(s) == ref_nbhd | s
        ref_between = {
            (min(u, v), max(u, v))
            for u in s
            for v in g.neighbors(u)
            if v in t
        }
        assert g.edges_between(s, t) == len(ref_between)
        ref_induced = sum(
            1 for u in s for v in g.neighbors(u) if v in s and u < v
        )
        assert g.induced_edge_count(s) == ref_induced

    def test_bfs_matches_reference(self):
        g = gnp_random_graph(40, 0.08, rng=9)
        # Reference BFS via per-vertex loops.
        for source in (0, 7, 39):
            dist = np.full(g.n, -1)
            dist[source] = 0
            frontier = [source]
            d = 0
            while frontier:
                d += 1
                nxt = []
                for u in frontier:
                    for v in g.neighbors(u):
                        if dist[v] < 0:
                            dist[v] = d
                            nxt.append(v)
                frontier = nxt
            assert np.array_equal(g.bfs_distances(source), dist)


class TestFromAdjacencyIterators:
    """Regression: rows must be coerced once, not re-iterated."""

    def test_generator_rows_accepted(self):
        # One-shot generator rows: the old implementation re-iterated
        # adj[v] inside the asymmetry check, which silently saw an
        # exhausted iterator (empty row) and raised a bogus error.
        def gen_rows():
            yield (x for x in [1, 2])
            yield (x for x in [0])
            yield (x for x in [0])

        g = Graph.from_adjacency(list(gen_rows()))
        assert g.m == 2
        assert g.has_edge(0, 1) and g.has_edge(0, 2)

    def test_generator_rows_asymmetry_still_detected(self):
        rows = [(x for x in [1]), (x for x in []), (x for x in [0])]
        with pytest.raises(ValueError, match="asymmetric"):
            Graph.from_adjacency(rows)

    def test_tuple_rows_unchanged(self):
        g = Graph.from_adjacency([[1, 2], [0], [0]])
        assert g.m == 2
