"""Tests for repro.core.activity (§2 / §4.1 notation)."""

import numpy as np
import pytest

from repro.core.activity import (
    active_set,
    k_active_set,
    stable_black_set,
    theta_u,
    unstable_set,
)
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.graph import Graph


class TestActiveSet:
    def test_black_with_black_neighbor_active(self):
        g = path_graph(2)
        assert active_set(g, np.array([True, True])).all()

    def test_black_isolated_inactive(self):
        g = path_graph(2)
        active = active_set(g, np.array([True, False]))
        assert not active.any()

    def test_all_white_all_active(self):
        g = complete_graph(4)
        assert active_set(g, np.zeros(4, dtype=bool)).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            active_set(path_graph(3), np.array([True, False]))


class TestKActiveSet:
    def test_star_all_black(self):
        g = star_graph(5)
        black = np.ones(5, dtype=bool)
        assert k_active_set(g, black, 4).tolist() == [True] * 5
        assert k_active_set(g, black, 3).tolist() == [False, True, True,
                                                      True, True]
        assert k_active_set(g, black, 0).tolist() == [False] * 5

    def test_k_active_subset_of_active(self):
        g = complete_graph(6)
        rng = np.random.default_rng(0)
        for _ in range(5):
            black = rng.random(6) < 0.5
            active = active_set(g, black)
            for k in (0, 1, 3, 10):
                k_act = k_active_set(g, black, k)
                assert not np.any(k_act & ~active)


class TestStableAndUnstable:
    def test_stable_black_is_independent(self):
        g = path_graph(5)
        black = np.array([True, True, False, False, True])
        stable = stable_black_set(g, black)
        assert stable.tolist() == [False, False, False, False, True]

    def test_unstable_set_complement_of_coverage(self):
        g = path_graph(5)
        black = np.array([True, False, False, False, False])
        unstable = unstable_set(g, black)
        # Vertex 0 stable black, vertex 1 covered; 2, 3, 4 unstable.
        assert unstable.tolist() == [False, False, True, True, True]

    def test_empty_black_all_unstable(self):
        g = path_graph(4)
        assert unstable_set(g, np.zeros(4, dtype=bool)).all()


class TestTheta:
    def test_theta_star_hub(self):
        # Hub of a star: any neighbour v covers only itself among N(u).
        g = star_graph(6)
        assert theta_u(g, 0, 1) == 1
        assert theta_u(g, 0, 3) == 3
        assert theta_u(g, 0, 100) == 5

    def test_theta_clique(self):
        # In K_5, any single neighbour v of u covers all of N(u).
        g = complete_graph(5)
        assert theta_u(g, 0, 1) == 4

    def test_theta_zero_cases(self):
        g = path_graph(3)
        assert theta_u(g, 0, 0) == 0
        assert theta_u(Graph(2), 0, 3) == 0

    def test_theta_monotone_in_i(self):
        g = complete_graph(6).with_edges_added([])
        for u in range(3):
            previous = 0
            for i in range(1, 5):
                value = theta_u(g, u, i)
                assert value >= previous
                previous = value

    def test_theta_path_middle(self):
        # u = middle of path of 5: N(u) = {1, 3}; S = {1}: N+(1) ∩ N(u)
        # = {1}; S = {1, 3} covers both.
        g = path_graph(5)
        assert theta_u(g, 2, 1) == 1
        assert theta_u(g, 2, 2) == 2
