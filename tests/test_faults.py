"""Tests for repro.models.faults."""

import numpy as np
import pytest

from repro.core.three_color import ThreeColorMIS
from repro.core.two_state import TwoStateMIS
from repro.graphs.generators import complete_graph, star_graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.models.faults import (
    FaultInjectionCampaign,
    MISFlipCorruption,
    RandomCorruption,
    TargetedCorruption,
)
from repro.sim.runner import run_until_stable


@pytest.fixture
def stabilized_process():
    g = gnp_random_graph(80, 0.08, rng=1)
    proc = TwoStateMIS(g, coins=2)
    result = run_until_stable(proc, max_rounds=50_000)
    assert result.stabilized
    return proc


class TestRandomCorruption:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            RandomCorruption(1.5)

    def test_rate_zero_noop(self, stabilized_process):
        before = stabilized_process.state_vector()
        RandomCorruption(0.0).apply(
            stabilized_process, np.random.default_rng(0)
        )
        assert np.array_equal(stabilized_process.state_vector(), before)

    def test_rate_one_randomizes_roughly_half(self, stabilized_process):
        RandomCorruption(1.0).apply(
            stabilized_process, np.random.default_rng(0)
        )
        black_frac = stabilized_process.black_mask().mean()
        assert 0.25 < black_frac < 0.75

    def test_works_on_three_color(self):
        g = complete_graph(12)
        proc = ThreeColorMIS(g, coins=1, a=8.0)
        RandomCorruption(1.0).apply(proc, np.random.default_rng(1))
        states = proc.state_vector()
        assert set(np.unique(states)) <= {0, 1, 2}


class TestTargetedCorruption:
    def test_sets_exact_vertices(self, stabilized_process):
        TargetedCorruption([0, 1, 2], True).apply(
            stabilized_process, np.random.default_rng(0)
        )
        assert stabilized_process.black_mask()[:3].all()


class TestMISFlipCorruption:
    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            MISFlipCorruption(0.0)

    def test_unstabilizes(self, stabilized_process):
        assert stabilized_process.is_stabilized()
        MISFlipCorruption(1.0).apply(
            stabilized_process, np.random.default_rng(0)
        )
        assert not stabilized_process.is_stabilized()

    def test_noop_when_nothing_black(self):
        g = star_graph(5)
        proc = TwoStateMIS(g, coins=0, init="all_white")
        MISFlipCorruption(0.5).apply(proc, np.random.default_rng(0))
        assert not proc.black_mask().any()


class TestCampaign:
    def test_full_campaign(self):
        g = gnp_random_graph(60, 0.1, rng=3)
        campaign = FaultInjectionCampaign(
            lambda s: TwoStateMIS(g, coins=s),
            corruption=RandomCorruption(0.5),
            injections=2,
            max_rounds=50_000,
        )
        summary = campaign.run(trials=4, seed=0)
        assert summary["failures"] == 0
        assert len(summary["cold_start_times"]) == 4
        assert len(summary["recovery_times"]) == 8
        assert summary["recovery_mean"] >= 0

    def test_single_trial_structure(self):
        g = complete_graph(16)
        campaign = FaultInjectionCampaign(
            lambda s: TwoStateMIS(g, coins=s),
            corruption=MISFlipCorruption(1.0),
            injections=3,
            max_rounds=50_000,
        )
        cold, events = campaign.run_trial(seed=5)
        assert cold is not None
        assert len(events) == 3
        for event in events:
            assert event.recovery_rounds is not None
            assert event.unstable_after_fault > 0

    def test_budget_exhaustion_counted(self):
        g = complete_graph(30)
        campaign = FaultInjectionCampaign(
            lambda s: TwoStateMIS(g, coins=s, init="all_black"),
            corruption=RandomCorruption(1.0),
            injections=1,
            max_rounds=0,
        )
        summary = campaign.run(trials=3, seed=1)
        assert summary["failures"] == 3
