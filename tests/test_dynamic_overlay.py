"""DeltaOverlay/DeltaNeighborOps correctness and the repair==rebuild law.

Two layers of guarantees:

* The overlay is an exact mutable view: every query (``has_edge``,
  ``neighbors_of``, ``degrees``, ``count``, ``gather``,
  ``apply_count_delta``) answers identically to a from-scratch
  immutable :class:`~repro.graphs.graph.Graph` built from the same
  edge set, before and after compaction.
* The frontier's incremental topology repair is exact: after *any*
  mutation sequence — random edge flips, vertex churn, corrupted
  states, interleaved rounds, 2-state and 3-state — the repaired
  :class:`~repro.core.frontier.FrontierAggregates` are bitwise-identical
  to a from-scratch ``rebuild()`` on the snapshot graph.  Hypothesis
  drives the sequences.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.frontier import FrontierAggregates
from repro.core.neighbor_ops import make_neighbor_ops
from repro.core.two_state import TwoStateMIS
from repro.dynamic import (
    DeltaNeighborOps,
    DeltaOverlay,
    MISService,
    MutationEvent,
    ScriptedStream,
)
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph


def edge_set(graph: Graph) -> set:
    us, vs = graph.edge_arrays()
    return set(zip(us.tolist(), vs.tolist()))


def overlay_edge_set(overlay: DeltaOverlay) -> set:
    return edge_set(overlay.snapshot())


# ---------------------------------------------------------------------------
# DeltaOverlay vs a pure-python reference edge set
# ---------------------------------------------------------------------------


class TestDeltaOverlay:
    def test_toggles_match_reference(self):
        graph = gnp_random_graph(30, 0.15, rng=0)
        overlay = DeltaOverlay(graph)
        ref = edge_set(graph)
        rng = np.random.default_rng(1)
        for _ in range(300):
            u, v = rng.integers(0, 30, size=2)
            if u == v:
                continue
            key = (min(int(u), int(v)), max(int(u), int(v)))
            if rng.random() < 0.5:
                changed = overlay.add_edge(u, v)
                assert changed == (key not in ref)
                ref.add(key)
            else:
                changed = overlay.remove_edge(u, v)
                assert changed == (key in ref)
                ref.discard(key)
            assert overlay.m == len(ref)
            assert overlay.has_edge(u, v) == ((key[0], key[1]) in ref)
        assert overlay_edge_set(overlay) == ref
        # Invariants: added disjoint from base, removed subset of base.
        base_keys = {u * overlay.n + v for u, v in edge_set(overlay.base)}
        assert not (overlay._added & base_keys)
        assert overlay._removed <= base_keys

    def test_flapping_never_grows_delta(self):
        graph = gnp_random_graph(20, 0.2, rng=3)
        overlay = DeltaOverlay(graph)
        us, vs = graph.edge_arrays()
        u, v = int(us[0]), int(vs[0])
        for _ in range(10):
            assert overlay.remove_edge(u, v)
            assert overlay.delta_size() == 1
            assert overlay.add_edge(u, v)
            assert overlay.delta_size() == 0

    def test_neighbors_and_degrees(self):
        graph = gnp_random_graph(25, 0.2, rng=5)
        overlay = DeltaOverlay(graph)
        rng = np.random.default_rng(7)
        for _ in range(120):
            u, v = rng.integers(0, 25, size=2)
            if u == v:
                continue
            if rng.random() < 0.5:
                overlay.add_edge(u, v)
            else:
                overlay.remove_edge(u, v)
        snap = overlay.snapshot()
        for u in range(25):
            np.testing.assert_array_equal(
                overlay.neighbors_of(u), np.sort(snap._row(u))
            )
        np.testing.assert_array_equal(overlay.degrees(), snap.degrees())
        assert overlay.volume() == 2 * snap.m

    def test_vertex_churn(self):
        graph = gnp_random_graph(16, 0.3, rng=2)
        overlay = DeltaOverlay(graph)
        deg_before = int(overlay.degrees()[3])
        rem_us, rem_vs = overlay.remove_vertex(3)
        assert rem_us.size == deg_before
        assert not overlay.alive[3]
        assert overlay.neighbors_of(3).size == 0
        assert overlay.degrees()[3] == 0
        add_us, add_vs = overlay.add_vertex(3, (0, 1, 1, 3, 5))
        assert overlay.alive[3]
        # Self-loop and duplicate skipped; edges {3,0}, {3,1}, {3,5}.
        assert sorted(add_vs.tolist()) == [0, 1, 5]
        np.testing.assert_array_equal(
            overlay.neighbors_of(3), np.array([0, 1, 5])
        )

    def test_apply_event_returns_effective_delta(self):
        graph = gnp_random_graph(12, 0.3, rng=4)
        overlay = DeltaOverlay(graph)
        us, vs = graph.edge_arrays()
        u, v = int(us[0]), int(vs[0])
        # Adding a present edge is a no-op: four empty arrays.
        out = overlay.apply_event(MutationEvent("add-edge", u, v))
        assert all(a.size == 0 for a in out)
        au, av, ru, rv = overlay.apply_event(MutationEvent("del-edge", u, v))
        assert (ru.tolist(), rv.tolist()) == ([u], [v])
        with pytest.raises(ValueError):
            overlay.apply_event(MutationEvent("frobnicate", 0))

    def test_compaction_is_representation_only(self):
        graph = gnp_random_graph(24, 0.2, rng=9)
        overlay = DeltaOverlay(graph, compact_fraction=0.01)
        degrees_obj = overlay.degrees()
        rng = np.random.default_rng(11)
        for _ in range(60):
            u, v = rng.integers(0, 24, size=2)
            if u == v:
                continue
            before = overlay_edge_set(overlay)
            if rng.random() < 0.5:
                overlay.add_edge(u, v)
            else:
                overlay.remove_edge(u, v)
            if overlay.should_compact():
                after = overlay_edge_set(overlay)
                overlay.compact()
                assert overlay.delta_size() == 0
                assert edge_set(overlay.base) == after
                # The degrees array object survives compaction.
                assert overlay.degrees() is degrees_obj
        assert overlay.compactions > 0

    def test_rejects_bad_vertices_and_self_loops(self):
        overlay = DeltaOverlay(gnp_random_graph(8, 0.2, rng=0))
        with pytest.raises(IndexError):
            overlay.add_edge(0, 8)
        with pytest.raises(IndexError):
            overlay.remove_edge(-1, 2)
        with pytest.raises(ValueError):
            overlay.add_edge(3, 3)
        assert not overlay.has_edge(3, 3)
        assert not overlay.has_edge(0, 99)


# ---------------------------------------------------------------------------
# DeltaNeighborOps vs the static backends on the snapshot graph
# ---------------------------------------------------------------------------


def churned_overlay(n=28, p=0.15, steps=150, seed=13):
    overlay = DeltaOverlay(gnp_random_graph(n, p, rng=seed))
    rng = np.random.default_rng(seed + 1)
    for _ in range(steps):
        u, v = rng.integers(0, n, size=2)
        if u == v:
            continue
        if rng.random() < 0.5:
            overlay.add_edge(u, v)
        else:
            overlay.remove_edge(u, v)
    return overlay


class TestDeltaNeighborOps:
    def test_count_matches_snapshot_backend(self):
        overlay = churned_overlay()
        ops = DeltaNeighborOps(overlay)
        snap_ops = make_neighbor_ops(overlay.snapshot())
        rng = np.random.default_rng(2)
        for _ in range(20):
            mask = rng.random(overlay.n) < rng.random()
            np.testing.assert_array_equal(
                ops.count(mask), snap_ops.count(mask)
            )

    def test_gather_matches_snapshot(self):
        overlay = churned_overlay(seed=21)
        ops = DeltaNeighborOps(overlay)
        snap = overlay.snapshot()
        snap_ops = make_neighbor_ops(snap)
        rng = np.random.default_rng(3)
        verts = np.unique(rng.integers(0, overlay.n, size=10))
        got = np.sort(ops.gather(verts))
        want = np.sort(snap_ops.gather(verts))
        np.testing.assert_array_equal(got, want)

    def test_apply_count_delta_matches(self):
        overlay = churned_overlay(seed=31)
        ops = DeltaNeighborOps(overlay)
        snap_ops = make_neighbor_ops(overlay.snapshot())
        rng = np.random.default_rng(4)
        counts_a = np.zeros(overlay.n, dtype=np.int64)
        counts_b = np.zeros(overlay.n, dtype=np.int64)
        up = np.unique(rng.integers(0, overlay.n, size=6))
        down = np.unique(rng.integers(0, overlay.n, size=4))
        ops.apply_count_delta(counts_a, up, down)
        snap_ops.apply_count_delta(counts_b, up, down)
        np.testing.assert_array_equal(counts_a, counts_b)

    def test_rebase_after_compaction(self):
        overlay = churned_overlay(seed=41)
        ops = DeltaNeighborOps(overlay)
        mask = np.arange(overlay.n) % 3 == 0
        before = ops.count(mask)
        overlay.compact()
        ops.rebase()
        assert ops.graph is overlay.base
        np.testing.assert_array_equal(ops.count(mask), before)

    def test_inherited_reductions(self):
        overlay = churned_overlay(seed=51)
        ops = DeltaNeighborOps(overlay)
        snap_ops = make_neighbor_ops(overlay.snapshot())
        mask = np.arange(overlay.n) % 2 == 0
        np.testing.assert_array_equal(ops.exists(mask), snap_ops.exists(mask))
        np.testing.assert_array_equal(
            ops.degrees(), overlay.snapshot().degrees()
        )
        assert ops.volume() == 2 * overlay.m


# ---------------------------------------------------------------------------
# Hypothesis: incremental topology repair == from-scratch rebuild
# ---------------------------------------------------------------------------

#: One mutation as draw-friendly integers: (op, a, b).  ``op`` selects
#: edge-toggle / vertex-kill / vertex-revive / state-corruption /
#: round-step; a and b are reduced mod n at application time.
MUTATIONS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    ),
    min_size=1,
    max_size=30,
)


def _assert_repair_matches_rebuild(service: MISService) -> None:
    """The engine's repaired aggregates == a from-scratch rebuild."""
    proc = service.proc
    frontier = proc._frontier
    token, black, aux = service._state_arrays()
    if frontier is None or frontier.token is not token:
        return  # nothing incremental to audit
    snap = service.overlay.snapshot()
    ref = FrontierAggregates(
        snap, make_neighbor_ops(snap), track_aux=frontier.track_aux
    )
    ref.rebuild(black, token, aux=aux)
    np.testing.assert_array_equal(frontier.counts, ref.counts)
    np.testing.assert_array_equal(frontier.has_black, ref.has_black)
    np.testing.assert_array_equal(frontier.stable, ref.stable)
    np.testing.assert_array_equal(frontier.covered, ref.covered)
    assert frontier.unstable_total == ref.unstable_total
    if frontier.track_aux:
        np.testing.assert_array_equal(frontier.aux_counts, ref.aux_counts)
        np.testing.assert_array_equal(frontier.aux_has, ref.aux_has)


def _drive(process: str, n: int, p_seed: int, moves) -> None:
    graph = gnp_random_graph(n, 0.2, rng=p_seed)
    events = []
    for op, a, b in moves:
        u, v = a % n, b % n
        if op <= 5:  # edge toggles dominate the mix
            if u != v:
                events.append(MutationEvent("toggle", u, v))
        elif op == 6:
            events.append(MutationEvent("del-vertex", u))
        elif op == 7:
            events.append(
                MutationEvent("add-vertex", u, neighbors=(v, (v + 1) % n))
            )
        else:
            events.append(MutationEvent("corrupt-or-step", u, v))
    if not events:
        return
    service = MISService(
        graph,
        ScriptedStream(n, [MutationEvent("add-edge", 0, 1)]),  # placeholder
        seed=p_seed,
        process=process,
        settle_every=3,
        compact_fraction=0.5,
    )
    rng = np.random.default_rng(p_seed)
    for event in events:
        if event.kind == "toggle":
            kind = (
                "del-edge"
                if service.overlay.has_edge(event.u, event.v)
                else "add-edge"
            )
            real = MutationEvent(kind, event.u, event.v)
        elif event.kind == "corrupt-or-step":
            # Corruption (stale token → rebuild path) or a plain round
            # (advance path); both must leave repair exact afterwards.
            if event.v % 2:
                if process == "3-state":
                    states = rng.integers(0, 3, size=n).astype(np.int8)
                    service.proc.corrupt(states)
                else:
                    service.proc.corrupt(rng.random(n) < 0.5)
            else:
                service.proc.step()
            _assert_repair_matches_rebuild(service)
            continue
        else:
            real = event
        service.apply_event(real)
        _assert_repair_matches_rebuild(service)
    # Drain to stability and audit once more.
    service.proc.step(5)
    _assert_repair_matches_rebuild(service)


@settings(max_examples=40, deadline=None)
@given(
    moves=MUTATIONS,
    n=st.integers(min_value=2, max_value=24),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_repair_matches_rebuild_two_state(moves, n, seed):
    _drive("2-state", n, seed, moves)


@settings(max_examples=40, deadline=None)
@given(
    moves=MUTATIONS,
    n=st.integers(min_value=2, max_value=24),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_repair_matches_rebuild_three_state(moves, n, seed):
    _drive("3-state", n, seed, moves)


def test_direct_topology_delta_actions():
    """apply_topology_delta's three outcomes, pinned deterministically."""
    graph = gnp_random_graph(40, 0.1, rng=17)
    overlay = DeltaOverlay(graph)
    ops = DeltaNeighborOps(overlay)
    proc = TwoStateMIS(graph, coins=3, ops=ops)
    proc.run(max_rounds=500)
    frontier = proc._frontier_aggregates()
    assert frontier is not None and frontier.token is proc.black
    empty = np.zeros(0, dtype=np.int64)

    # Adding an edge between two non-stable-adjacent vertices: repair.
    white = np.flatnonzero(~proc.black)
    if white.size >= 2:
        u, v = int(white[0]), int(white[1])
        if not overlay.has_edge(u, v):
            overlay.add_edge(u, v)
            action = frontier.apply_topology_delta(
                proc.black,
                np.array([u]), np.array([v]), empty, empty,
                token=proc.black,
            )
            assert action in ("repair", "repair+recover")
            proc._topology_changed()
            _assert_frontier_exact(overlay, frontier, proc.black)

    # Deleting an edge incident to a stable vertex: repair+recover.
    stable = np.flatnonzero(frontier.stable)
    u = int(stable[0])
    nbrs = overlay.neighbors_of(u)
    if nbrs.size:
        v = int(nbrs[0])
        overlay.remove_edge(u, v)
        action = frontier.apply_topology_delta(
            proc.black,
            empty, empty, np.array([u]), np.array([v]),
            token=proc.black,
        )
        assert action == "repair+recover"
        proc._topology_changed()
        _assert_frontier_exact(overlay, frontier, proc.black)

    # A stale token always falls back to rebuild.
    frontier.invalidate()
    action = frontier.apply_topology_delta(
        proc.black, empty, empty, empty, empty, token=proc.black
    )
    assert action == "rebuild"
    assert frontier.topology_rebuilds >= 1
    assert frontier.topology_repairs >= 1


def _assert_frontier_exact(overlay, frontier, black):
    snap = overlay.snapshot()
    ref = FrontierAggregates(snap, make_neighbor_ops(snap))
    ref.rebuild(black, black)
    np.testing.assert_array_equal(frontier.counts, ref.counts)
    np.testing.assert_array_equal(frontier.stable, ref.stable)
    np.testing.assert_array_equal(frontier.covered, ref.covered)
    assert frontier.unstable_total == ref.unstable_total


def test_huge_delta_falls_back_to_rebuild():
    """A delta bigger than the scatter threshold rebuilds (adaptive)."""
    graph = gnp_random_graph(30, 0.4, rng=23)
    overlay = DeltaOverlay(graph)
    ops = DeltaNeighborOps(overlay)
    proc = TwoStateMIS(graph, coins=5, ops=ops)
    proc.run(max_rounds=500)
    frontier = proc._frontier_aggregates()
    assert frontier is not None
    rem_us, rem_vs = overlay.remove_vertex(int(np.argmax(overlay.degrees())))
    # Hand the frontier a delta worth more than crossover * volume.
    while frontier.changed_volume(
        np.concatenate((rem_us, rem_vs))
    ) <= frontier._threshold:
        u = int(np.argmax(overlay.degrees()))
        ru, rv = overlay.remove_vertex(u)
        rem_us = np.concatenate((rem_us, ru))
        rem_vs = np.concatenate((rem_vs, rv))
    empty = np.zeros(0, dtype=np.int64)
    action = frontier.apply_topology_delta(
        proc.black, empty, empty, rem_us, rem_vs, token=proc.black
    )
    assert action == "rebuild"
    _assert_frontier_exact(overlay, frontier, proc.black)
