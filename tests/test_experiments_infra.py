"""Tests for the experiment infrastructure: fitting, tables, plots, registry."""

import numpy as np
import pytest

from repro.experiments.asciiplot import ascii_plot
from repro.experiments.fitting import (
    classify_growth,
    fit_polylog,
    fit_power_law,
)
from repro.experiments.registry import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.tables import format_table


class TestFitting:
    def test_power_law_recovery(self):
        ns = np.array([100, 200, 400, 800, 1600])
        times = 3.0 * ns ** 0.7
        fit = fit_power_law(ns, times)
        assert fit.b == pytest.approx(0.7, abs=0.01)
        assert fit.a == pytest.approx(3.0, rel=0.05)
        assert fit.r_squared > 0.999

    def test_polylog_recovery(self):
        ns = np.array([64, 256, 1024, 4096, 16384])
        times = 2.0 * np.log(ns) ** 1.5
        fit = fit_polylog(ns, times)
        assert fit.b == pytest.approx(1.5, abs=0.01)
        assert fit.model == "polylog"
        assert fit.predict(100) == pytest.approx(
            2.0 * np.log(100) ** 1.5, rel=0.05
        )

    def test_polylog_data_has_small_power_exponent(self):
        ns = np.array([64, 256, 1024, 4096, 16384, 65536])
        times = 5.0 * np.log(ns) ** 2
        fit = fit_power_law(ns, times)
        assert fit.b < 0.35

    def test_nonpositive_points_dropped(self):
        ns = np.array([10, 100, 1000, 10000])
        times = np.array([0.0, 5.0, 7.0, 9.0])
        fit = fit_polylog(ns, times)  # must not crash on the zero
        assert np.isfinite(fit.b)

    def test_too_few_points_raises(self):
        with pytest.raises(ValueError):
            fit_power_law(np.array([10]), np.array([5]))

    def test_classify_growth(self):
        ns = np.array([64, 256, 1024, 4096, 16384, 65536])
        assert classify_growth(ns, 4 * np.log(ns) ** 2) == "polylog"
        assert classify_growth(ns, 0.5 * ns ** 0.8) == "polynomial"

    def test_str_representation(self):
        ns = np.array([100, 1000, 10000])
        fit = fit_power_law(ns, 2.0 * ns ** 0.5)
        assert "n^" in str(fit)
        assert "R²" in str(fit)


class TestTables:
    def test_basic_render(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.5], ["beta", 22]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "alpha" in text and "1.50" in text and "22" in text

    def test_alignment(self):
        text = format_table(["k", "v"], [["x", 1], ["longer", 2]])
        lines = text.splitlines()
        # All lines same width structure: data rows aligned.
        assert len(lines[1]) == len(lines[2])

    def test_nan_rendered_as_dash(self):
        text = format_table(["a"], [[float("nan")]])
        assert "-" in text.splitlines()[-1]

    def test_large_and_small_floats(self):
        text = format_table(["a", "b"], [[123456.0, 0.00012]])
        assert "1.23e+05" in text or "123000" in text.replace(",", "")
        assert "e-" in text or "0.00012" in text


class TestAsciiPlot:
    def test_contains_markers_and_labels(self):
        text = ascii_plot([1, 2, 3], [10, 20, 30], width=20, height=5)
        assert "*" in text
        assert "10" in text and "30" in text

    def test_log_axes(self):
        text = ascii_plot(
            [10, 100, 1000], [1, 2, 3], logx=True, width=20, height=5,
            title="loggy",
        )
        assert text.splitlines()[0] == "loggy"

    def test_log_drops_nonpositive(self):
        text = ascii_plot([0, 10, 100], [1, 2, 3], logx=True)
        assert "*" in text

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            ascii_plot([], [])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ascii_plot([1, 2], [1])

    def test_constant_data(self):
        # Degenerate spans must not divide by zero.
        text = ascii_plot([5, 5, 5], [7, 7, 7], width=10, height=4)
        assert "*" in text


class TestRegistry:
    def test_all_experiments_registered(self):
        ids = [eid for eid, _ in list_experiments()]
        assert ids == [f"E{i}" for i in range(1, 21)]

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("E99")

    def test_result_pass_logic(self):
        result = ExperimentResult("EX", "t", verdicts={"a": True})
        assert result.passed
        result.verdicts["b"] = False
        assert not result.passed

    def test_report_contains_verdicts(self):
        result = ExperimentResult(
            "EX", "demo", tables=["tbl"],
            verdicts={"check": True},
        )
        text = result.report()
        assert "EX" in text and "tbl" in text and "[PASS] check" in text

    def test_run_experiment_dispatch(self):
        result = run_experiment("E9", fast=True, seed=0)
        assert result.experiment_id == "E9"


class TestReproducibility:
    def test_experiment_runs_are_deterministic(self):
        # Same id + seed => identical measured data (guards against
        # unseeded randomness sneaking into an experiment).
        a = run_experiment("E9", fast=True, seed=7)
        b = run_experiment("E9", fast=True, seed=7)
        assert a.data == b.data
        assert a.tables == b.tables

    def test_seed_changes_data(self):
        a = run_experiment("E9", fast=True, seed=1)
        b = run_experiment("E9", fast=True, seed=2)
        assert a.data != b.data
