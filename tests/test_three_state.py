"""Tests for the 3-state MIS process (Definition 5)."""

import numpy as np
import pytest

from repro.core.states import BLACK0, BLACK1, WHITE
from repro.core.three_state import ThreeStateMIS
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.sim.rng import ScriptedCoins
from repro.sim.runner import run_until_stable


class TestInitialization:
    def test_explicit_init(self):
        init = np.array([WHITE, BLACK0, BLACK1], dtype=np.int8)
        proc = ThreeStateMIS(path_graph(3), coins=0, init=init)
        assert np.array_equal(proc.state_vector(), init)

    def test_init_strings(self):
        g = path_graph(3)
        assert np.all(
            ThreeStateMIS(g, coins=0, init="all_white").state_vector()
            == WHITE
        )
        assert np.all(
            ThreeStateMIS(g, coins=0, init="all_black1").state_vector()
            == BLACK1
        )
        assert np.all(
            ThreeStateMIS(g, coins=0, init="all_black0").state_vector()
            == BLACK0
        )

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ThreeStateMIS(
                path_graph(3), coins=0,
                init=np.array([0, 1, 7], dtype=np.int8),
            )

    def test_random_init_consumes_two_draws(self):
        coins = ScriptedCoins([
            [True, True, False],   # black?
            [True, False, True],   # black1?
            [False, False, False],  # round 1 φ
        ])
        proc = ThreeStateMIS(path_graph(3), coins=coins)
        assert proc.state_vector().tolist() == [BLACK1, BLACK0, WHITE]


class TestUpdateRule:
    def test_black1_always_rerandomizes(self):
        # Isolated black1 vertex: stays black, sub-state follows coin.
        proc = ThreeStateMIS(
            Graph(1), coins=ScriptedCoins([[False], [True]]),
            init=np.array([BLACK1], dtype=np.int8),
        )
        proc.step()
        assert proc.state_vector()[0] == BLACK0
        proc.step()
        assert proc.state_vector()[0] == BLACK1

    def test_black0_with_black1_neighbor_retreats(self):
        g = Graph(2, [(0, 1)])
        init = np.array([BLACK1, BLACK0], dtype=np.int8)
        proc = ThreeStateMIS(
            g, coins=ScriptedCoins([[True, True]]), init=init
        )
        proc.step()
        states = proc.state_vector()
        assert states[0] == BLACK1  # re-randomized to coin
        assert states[1] == WHITE   # retreated

    def test_black0_without_black1_neighbor_rerandomizes(self):
        g = Graph(2, [(0, 1)])
        init = np.array([BLACK0, WHITE], dtype=np.int8)
        proc = ThreeStateMIS(
            g, coins=ScriptedCoins([[False, False]]), init=init
        )
        proc.step()
        states = proc.state_vector()
        assert states[0] == BLACK0
        # White with a black (black0) neighbour keeps state.
        assert states[1] == WHITE

    def test_white_with_all_white_neighbors_rerandomizes(self):
        g = path_graph(2)
        proc = ThreeStateMIS(
            g, coins=ScriptedCoins([[True, False]]),
            init=np.array([WHITE, WHITE], dtype=np.int8),
        )
        proc.step()
        assert proc.state_vector().tolist() == [BLACK1, BLACK0]

    def test_white_with_black_neighbor_stays(self):
        g = path_graph(2)
        proc = ThreeStateMIS(
            g, coins=ScriptedCoins([[True, True]] * 2),
            init=np.array([BLACK0, WHITE], dtype=np.int8),
        )
        proc.step()
        assert proc.state_vector()[1] == WHITE


class TestStability:
    def test_stable_black_alternates_substates(self):
        # Stable black vertex alternates black1/black0 but black_mask is
        # constant and stability holds throughout.
        g = path_graph(2)
        init = np.array([BLACK1, WHITE], dtype=np.int8)
        proc = ThreeStateMIS(g, coins=11, init=init)
        assert proc.is_stabilized()
        seen = set()
        for _ in range(20):
            proc.step()
            assert proc.is_stabilized()
            assert proc.black_mask().tolist() == [True, False]
            seen.add(int(proc.state_vector()[0]))
        assert seen == {BLACK0, BLACK1}

    def test_mis_on_suite(self, small_zoo):
        from repro.core.verify import is_maximal_independent_set

        for seed, g in enumerate(small_zoo.values()):
            proc = ThreeStateMIS(g, coins=seed)
            result = run_until_stable(proc, max_rounds=50_000)
            assert result.stabilized
            assert is_maximal_independent_set(g, result.mis)

    def test_clique_singleton(self):
        result = run_until_stable(
            ThreeStateMIS(complete_graph(16), coins=2), max_rounds=50_000
        )
        assert len(result.mis) == 1

    def test_remark10_no_black_extinction(self):
        # Remark 10's engine: on K_n, once some vertex is black, the
        # black set never becomes empty (black1 vertices re-randomize to
        # black; black0 ones retreat only if a black1 exists, which then
        # stays black).
        g = complete_graph(12)
        proc = ThreeStateMIS(g, coins=13, init="all_black1")
        for _ in range(100):
            proc.step()
            assert proc.black_mask().any()


class TestCorruption:
    def test_corrupt_and_recover(self):
        g = star_graph(8)
        proc = ThreeStateMIS(g, coins=3)
        result = run_until_stable(proc, max_rounds=50_000)
        assert result.stabilized
        proc.corrupt(np.full(8, BLACK1, dtype=np.int8))
        recovery = run_until_stable(proc, max_rounds=50_000)
        assert recovery.stabilized

    def test_corrupt_validates(self):
        proc = ThreeStateMIS(path_graph(3), coins=0)
        with pytest.raises(ValueError):
            proc.corrupt(np.array([9, 9, 9], dtype=np.int8))


class TestActiveMask:
    def test_active_mask_matches_randomizers(self):
        # active_mask must flag exactly the vertices whose next state is
        # random: verify against a manual recomputation.
        g = star_graph(6)
        rng = np.random.default_rng(0)
        for _ in range(10):
            init = rng.integers(0, 3, size=6).astype(np.int8)
            proc = ThreeStateMIS(g, coins=1, init=init)
            active = proc.active_mask()
            for u in range(6):
                nc = {int(init[v]) for v in g.neighbors(u)}
                expected = (
                    init[u] == BLACK1
                    or (init[u] == BLACK0 and BLACK1 not in nc)
                    or (init[u] == WHITE and nc <= {WHITE})
                )
                assert active[u] == expected
