"""Tests for repro.core.states validators and encodings."""

import numpy as np
import pytest

from repro.core import states


class TestEncodings:
    def test_distinct_values(self):
        assert len({states.WHITE, states.GRAY, states.BLACK}) == 3
        assert len({states.WHITE, states.BLACK0, states.BLACK1}) == 3

    def test_name_tables(self):
        assert states.TWO_STATE_NAMES[True] == "black"
        assert states.THREE_STATE_NAMES[states.BLACK1] == "black1"
        assert states.THREE_COLOR_NAMES[states.GRAY] == "gray"

    def test_switch_constants(self):
        assert states.SWITCH_LEVELS == 6
        assert states.SWITCH_ON_MAX_LEVEL == 2


class TestTwoStateValidator:
    def test_bool_passthrough_copies(self):
        arr = np.array([True, False])
        out = states.validate_two_state(arr, 2)
        assert out.dtype == bool
        out[0] = False
        assert arr[0]  # original untouched

    def test_int01_coerced(self):
        out = states.validate_two_state(np.array([0, 1, 1]), 3)
        assert out.dtype == bool
        assert out.tolist() == [False, True, True]

    def test_bad_values_rejected(self):
        with pytest.raises(ValueError):
            states.validate_two_state(np.array([0, 2]), 2)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            states.validate_two_state(np.array([True]), 2)


class TestThreeStateValidator:
    def test_valid(self):
        arr = np.array([0, 1, 2])
        out = states.validate_three_state(arr, 3)
        assert out.dtype == np.int8

    def test_out_of_alphabet(self):
        with pytest.raises(ValueError):
            states.validate_three_state(np.array([0, 3]), 2)

    def test_shape(self):
        with pytest.raises(ValueError):
            states.validate_three_state(np.array([0]), 2)


class TestThreeColorValidator:
    def test_valid(self):
        out = states.validate_three_color(
            np.array([states.WHITE, states.GRAY, states.BLACK]), 3
        )
        assert out.dtype == np.int8

    def test_invalid(self):
        with pytest.raises(ValueError):
            states.validate_three_color(np.array([5, 0]), 2)


class TestSwitchValidator:
    def test_all_levels_accepted(self):
        out = states.validate_switch_levels(np.arange(6), 6)
        assert out.tolist() == [0, 1, 2, 3, 4, 5]

    def test_level_six_rejected(self):
        with pytest.raises(ValueError):
            states.validate_switch_levels(np.array([6]), 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            states.validate_switch_levels(np.array([-1]), 1)
