"""Tests for the command-line interfaces (repro.__main__ and
repro.experiments.__main__)."""

import pytest

from repro.__main__ import main as repro_main
from repro.experiments.__main__ import main as experiments_main


class TestReproCli:
    def test_run_gnp(self, capsys):
        code = repro_main([
            "run", "--graph", "gnp", "--n", "120", "--p", "0.05",
            "--process", "2-state", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "stabilized after" in out
        assert "MIS size" in out

    def test_run_with_trace_and_mis(self, capsys):
        code = repro_main([
            "run", "--graph", "clique", "--n", "32",
            "--process", "3-state", "--trace", "--print-mis",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "|V_t|" in out
        assert "MIS:" in out

    @pytest.mark.parametrize(
        "process", ["2-state", "3-state", "3-color", "beeping", "stone-age"]
    )
    def test_all_processes_run(self, process, capsys):
        code = repro_main([
            "run", "--graph", "star", "--n", "24",
            "--process", process, "--seed", "1",
        ])
        assert code == 0

    def test_budget_exhaustion_exit_code(self, capsys):
        code = repro_main([
            "run", "--graph", "clique", "--n", "64",
            "--process", "2-state", "--max-rounds", "0",
        ])
        assert code == 1
        assert "DID NOT STABILIZE" in capsys.readouterr().out

    def test_unknown_graph_family(self):
        with pytest.raises(SystemExit):
            repro_main(["run", "--graph", "mystery"])

    def test_unknown_process(self):
        with pytest.raises(SystemExit):
            repro_main(["run", "--process", "4-state"])

    def test_budget_command(self, capsys):
        code = repro_main(["budget", "--graph", "tree", "--n", "128"])
        assert code == 0
        out = capsys.readouterr().out
        assert "2-state:" in out and "3-color:" in out

    def test_edge_list_input(self, tmp_path, capsys):
        from repro.graphs.generators import cycle_graph
        from repro.io import write_edge_list

        path = tmp_path / "g.txt"
        write_edge_list(cycle_graph(12), path)
        code = repro_main([
            "run", "--edge-list", str(path), "--process", "2-state",
        ])
        assert code == 0


class TestExperimentsCli:
    def test_list(self, capsys):
        assert experiments_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "E1" in out and "E14" in out

    def test_run_single(self, capsys):
        assert experiments_main(["run", "E9"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            experiments_main(["run", "E99"])

    def test_checkpoint_writes_scoped_journals(self, tmp_path, capsys):
        from repro.sim.checkpoint import (
            get_default_checkpoint_dir,
            set_default_checkpoint_dir,
        )

        try:
            code = experiments_main(
                ["run", "E1", "--checkpoint", str(tmp_path)]
            )
            assert code == 0
            journals = list(tmp_path.glob("E1-*.journal"))
            assert journals, "campaigns were not journaled"
            # Resuming replays the journals and still passes.
            code = experiments_main(
                ["run", "E1", "--checkpoint", str(tmp_path), "--resume"]
            )
            assert code == 0
            assert get_default_checkpoint_dir() == tmp_path
        finally:
            set_default_checkpoint_dir(None)

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit):
            experiments_main(["run", "E9", "--resume"])


class TestReportCommand:
    def test_report_writes_markdown(self, tmp_path, capsys, monkeypatch):
        # Patch the registry to a single cheap experiment so the report
        # command is fast in CI.
        import repro.experiments.registry as registry

        original = dict(registry._REGISTRY)
        registry._REGISTRY.clear()
        registry._REGISTRY["E9"] = original["E9"]
        try:
            out = tmp_path / "report.md"
            code = experiments_main(["report", "--out", str(out)])
            assert code == 0
            text = out.read_text()
            assert "# Experiment report" in text
            assert "E9" in text and "PASS" in text
        finally:
            registry._REGISTRY.clear()
            registry._REGISTRY.update(original)
