"""Tests for the stone age model (repro.models.stone_age)."""

import numpy as np
import pytest

from repro.core.states import BLACK0, BLACK1, WHITE
from repro.core.three_state import ThreeStateMIS
from repro.core.verify import is_maximal_independent_set
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.models.stone_age import (
    CHANNEL_BLACK,
    CHANNEL_BLACK1,
    StoneAgeNetwork,
    StoneAgeThreeStateMIS,
    ThreeStateStoneAgeNode,
)
from repro.sim.runner import run_until_stable


class TestNetwork:
    def test_per_channel_delivery(self):
        g = path_graph(3)
        net = StoneAgeNetwork(g)
        heard = net.deliver([CHANNEL_BLACK1, None, CHANNEL_BLACK])
        assert heard[1, CHANNEL_BLACK1]
        assert heard[1, CHANNEL_BLACK]
        assert not heard[0, CHANNEL_BLACK1]  # no self-hearing
        assert heard[0, CHANNEL_BLACK] == False  # vertex 2 not adjacent to 0

    def test_emission_validation(self):
        net = StoneAgeNetwork(path_graph(2))
        with pytest.raises(ValueError):
            net.deliver([0])
        with pytest.raises(ValueError):
            net.deliver([7, None])


class TestNode:
    def test_emissions(self):
        assert ThreeStateStoneAgeNode(BLACK1).emit() == CHANNEL_BLACK1
        assert ThreeStateStoneAgeNode(BLACK0).emit() == CHANNEL_BLACK
        assert ThreeStateStoneAgeNode(WHITE).emit() is None

    def test_invalid_state(self):
        with pytest.raises(ValueError):
            ThreeStateStoneAgeNode(7)

    def test_black1_rerandomizes(self):
        node = ThreeStateStoneAgeNode(BLACK1)
        node.observe(True, True, coin=False)
        assert node.state == BLACK0

    def test_black0_retreats_on_black1(self):
        node = ThreeStateStoneAgeNode(BLACK0)
        node.observe(True, True, coin=True)
        assert node.state == WHITE

    def test_black0_rerandomizes_without_black1(self):
        node = ThreeStateStoneAgeNode(BLACK0)
        node.observe(False, True, coin=True)
        assert node.state == BLACK1

    def test_white_joins_on_silence(self):
        node = ThreeStateStoneAgeNode(WHITE)
        node.observe(False, False, coin=False)
        assert node.state == BLACK0

    def test_white_stays_on_black_tone(self):
        node = ThreeStateStoneAgeNode(WHITE)
        node.observe(False, True, coin=True)
        assert node.state == WHITE


class TestExecution:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: complete_graph(10),
            lambda: path_graph(12),
            lambda: star_graph(8),
        ],
        ids=["clique", "path", "star"],
    )
    def test_equivalent_to_abstract_three_state(self, graph_factory):
        graph = graph_factory()
        seed = 17
        abstract = ThreeStateMIS(graph, coins=seed)
        stone = StoneAgeThreeStateMIS(graph, coins=seed)
        assert np.array_equal(abstract.state_vector(), stone.state_vector())
        for _ in range(50):
            abstract.step()
            stone.step()
            assert np.array_equal(
                abstract.state_vector(), stone.state_vector()
            )

    def test_stabilizes_on_suite(self, small_zoo):
        for seed, g in enumerate(small_zoo.values()):
            proc = StoneAgeThreeStateMIS(g, coins=seed)
            result = run_until_stable(proc, max_rounds=50_000)
            assert result.stabilized
            assert is_maximal_independent_set(g, result.mis)

    def test_active_mask_matches_abstract(self):
        graph = star_graph(7)
        seed = 23
        abstract = ThreeStateMIS(graph, coins=seed)
        stone = StoneAgeThreeStateMIS(graph, coins=seed)
        for _ in range(20):
            assert np.array_equal(
                abstract.active_mask(), stone.active_mask()
            )
            abstract.step()
            stone.step()

    def test_corrupt_and_recover(self):
        g = complete_graph(8)
        proc = StoneAgeThreeStateMIS(g, coins=3)
        run_until_stable(proc, max_rounds=50_000)
        proc.corrupt(np.full(8, BLACK1, dtype=np.int8))
        recovery = run_until_stable(proc, max_rounds=50_000)
        assert recovery.stabilized
        assert len(recovery.mis) == 1
