"""Cross-module integration tests.

These exercise whole pipelines the way the experiments and examples do:
graph generation → process → runner → verification → statistics, plus
the experiment registry end-to-end in ultra-fast settings.
"""

import math

import numpy as np
import pytest

from repro import (
    ThreeColorMIS,
    ThreeStateMIS,
    TwoStateMIS,
    assert_valid_mis,
    complete_graph,
    disjoint_cliques,
    gnp_random_graph,
    random_tree,
    run_until_stable,
    estimate_stabilization_time,
)
from repro.baselines.greedy import greedy_mis
from repro.core.switch import OracleSwitch
from repro.models.beeping import BeepingTwoStateMIS
from repro.models.faults import FaultInjectionCampaign, RandomCorruption
from repro.sim.metrics import progress_curve


class TestEndToEndPipelines:
    def test_gnp_pipeline_all_processes(self):
        g = gnp_random_graph(120, 0.05, rng=0)
        for cls, kwargs in (
            (TwoStateMIS, {}),
            (ThreeStateMIS, {}),
            (ThreeColorMIS, {"a": 8.0}),
        ):
            proc = cls(g, coins=1, **kwargs)
            result = run_until_stable(proc, max_rounds=200_000)
            assert result.stabilized
            assert_valid_mis(g, result.mis)

    def test_mis_size_comparable_to_greedy(self):
        # The process MIS and greedy MIS differ but live in the same
        # ballpark (within 2x on sparse G(n,p)); a gross mismatch would
        # indicate a semantics bug.
        g = gnp_random_graph(300, 0.02, rng=2)
        greedy_size = len(greedy_mis(g))
        result = run_until_stable(TwoStateMIS(g, coins=3))
        process_size = len(result.mis)
        assert greedy_size / 2 <= process_size <= 2 * greedy_size

    def test_disjoint_cliques_mis_one_per_component(self):
        g = disjoint_cliques(6, 5)
        result = run_until_stable(TwoStateMIS(g, coins=4))
        assert len(result.mis) == 6
        # Exactly one per clique block.
        blocks = {int(v) // 5 for v in result.mis}
        assert len(blocks) == 6

    def test_trace_statistics_consistency(self):
        g = gnp_random_graph(100, 0.05, rng=5)
        result = run_until_stable(
            TwoStateMIS(g, coins=6), record_trace=True
        )
        curve = progress_curve(result.trace)
        assert curve.unstable[0] <= 100
        assert curve.unstable[-1] == 0
        # halving times are nondecreasing.
        halvings = curve.halving_times()
        assert halvings == sorted(halvings)

    def test_montecarlo_tree_vs_clique_ordering(self):
        # Trees (Theorem 11, O(log n)) should stabilize no slower than
        # same-size cliques only modestly; the real check is both are
        # far below n.
        n = 256
        tree_stats = estimate_stabilization_time(
            lambda s: TwoStateMIS(random_tree(n, rng=s), coins=s + 1),
            trials=8, max_rounds=100_000, seed=0,
        )
        clique_stats = estimate_stabilization_time(
            lambda s: TwoStateMIS(complete_graph(n), coins=s),
            trials=8, max_rounds=100_000, seed=1,
        )
        assert tree_stats.mean < n / 4
        assert clique_stats.mean < n / 4


class TestSharedCoinsAcrossImplementations:
    def test_beeping_is_the_abstract_process(self):
        g = gnp_random_graph(60, 0.08, rng=7)
        abstract = TwoStateMIS(g, coins=99)
        beeping = BeepingTwoStateMIS(g, coins=99)
        result_a = run_until_stable(abstract, max_rounds=100_000)
        result_b = run_until_stable(beeping, max_rounds=100_000)
        assert result_a.stabilization_round == result_b.stabilization_round
        assert np.array_equal(result_a.mis, result_b.mis)


class TestThreeColorWithOracle:
    def test_oracle_switch_period_controls_gray_dwell(self):
        # With a long off period, gray vertices dwell; with always-on,
        # gray drains immediately.
        g = complete_graph(12)
        slow = ThreeColorMIS(
            g, coins=1, init="all_gray",
            switch=OracleSwitch(12, on_run=1, off_run=50),
        )
        fast = ThreeColorMIS(
            g, coins=1, init="all_gray",
            switch=OracleSwitch(12, on_run=1, off_run=0),
        )
        fast.step()
        assert not fast.gray_mask().any()
        slow.step()  # oracle starts "on" at round 0... step consumes it
        # After the first on-round the slow switch goes off for 50
        # rounds; fill with gray again and verify dwell.
        slow.corrupt(np.full(12, 1, dtype=np.int8))  # GRAY
        slow.step(10)
        assert slow.gray_mask().any()


class TestFaultRecoveryIntegration:
    def test_recovery_statistics(self):
        g = gnp_random_graph(80, 0.06, rng=8)
        campaign = FaultInjectionCampaign(
            lambda s: TwoStateMIS(g, coins=s),
            corruption=RandomCorruption(0.5),
            injections=2,
            max_rounds=100_000,
        )
        summary = campaign.run(trials=5, seed=3)
        assert summary["failures"] == 0
        # Recovery from 50% corruption should be at most ~ a cold start
        # plus noise.
        assert summary["recovery_mean"] <= 3 * summary["cold_mean"] + 10


class TestExperimentRegistryEndToEnd:
    @pytest.mark.parametrize("eid", ["E9", "E7", "E8"])
    def test_cheap_experiments_pass(self, eid):
        from repro.experiments.registry import run_experiment

        result = run_experiment(eid, fast=True, seed=0)
        assert result.passed, result.report()

    def test_experiment_report_renders(self):
        from repro.experiments.registry import run_experiment

        result = run_experiment("E9", fast=True, seed=1)
        text = result.report()
        assert "Lemma 6" in text


class TestScalingSmoke:
    def test_large_sparse_graph_fast_backend(self):
        # 20k vertices, sparse: must finish quickly via the CSR backend.
        n = 20_000
        g = gnp_random_graph(n, 3.0 / n, rng=9)
        result = run_until_stable(
            TwoStateMIS(g, coins=10), max_rounds=10_000
        )
        assert result.stabilized
        assert_valid_mis(g, result.mis)

    def test_budgets_match_theory(self):
        # K_n stabilization within ~log² n: generous constant, tiny
        # failure probability.
        n = 512
        budget = 40 * int(math.log(n)) ** 2
        stats = estimate_stabilization_time(
            lambda s: TwoStateMIS(complete_graph(n), coins=s),
            trials=10, max_rounds=budget, seed=4,
        )
        assert stats.success_rate == 1.0
