"""Tests for repro.apps (coloring and matching reductions) and
repro.graphs.transforms."""

import numpy as np
import pytest

from repro.apps.coloring import (
    SelfStabilizingColoring,
    coloring_from_mis,
    verify_proper_coloring,
)
from repro.apps.matching import (
    SelfStabilizingMatching,
    verify_maximal_matching,
)
from repro.core.three_state import ThreeStateMIS
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.graphs.transforms import color_product_graph, line_graph


class TestLineGraph:
    def test_path(self):
        lg, edges = line_graph(path_graph(4))
        # P4 has 3 edges; its line graph is P3.
        assert lg.n == 3
        assert lg.m == 2
        assert edges == [(0, 1), (1, 2), (2, 3)]

    def test_star(self):
        lg, _ = line_graph(star_graph(5))
        # All 4 edges share the hub: line graph is K4.
        assert lg.n == 4
        assert lg.m == 6

    def test_triangle(self):
        lg, _ = line_graph(complete_graph(3))
        assert lg.n == 3
        assert lg.m == 3  # K3's line graph is K3

    def test_empty(self):
        lg, edges = line_graph(Graph(5))
        assert lg.n == 0
        assert edges == []


class TestColorProduct:
    def test_dimensions(self):
        g = path_graph(3)
        product, palette = color_product_graph(g)
        assert palette == 3  # Δ + 1 = 2 + 1
        assert product.n == 9
        # Edges: per-vertex palette cliques 3*C(3,2)=9 + cross 2*3=6.
        assert product.m == 15

    def test_explicit_palette(self):
        g = path_graph(2)
        product, palette = color_product_graph(g, colors=5)
        assert palette == 5
        assert product.n == 10

    def test_palette_validation(self):
        with pytest.raises(ValueError):
            color_product_graph(path_graph(2), colors=0)


class TestColoringDecoding:
    def test_decode_roundtrip(self):
        # 2 vertices, palette 2: choose (0, 1) and (1, 0).
        colors = coloring_from_mis(np.array([1, 2]), n=2, palette=2)
        assert colors.tolist() == [1, 0]

    def test_double_choice_rejected(self):
        with pytest.raises(ValueError, match="two colors"):
            coloring_from_mis(np.array([0, 1]), n=1, palette=2)

    def test_missing_choice_rejected(self):
        with pytest.raises(ValueError, match="without"):
            coloring_from_mis(np.array([0]), n=2, palette=2)

    def test_verify_proper(self):
        g = path_graph(3)
        verify_proper_coloring(g, np.array([0, 1, 0]))
        with pytest.raises(AssertionError):
            verify_proper_coloring(g, np.array([0, 0, 1]))


class TestSelfStabilizingColoring:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: cycle_graph(9),
            lambda: petersen_graph(),
            lambda: star_graph(6),
            lambda: gnp_random_graph(24, 0.15, rng=1),
        ],
        ids=["cycle", "petersen", "star", "gnp"],
    )
    def test_produces_proper_coloring(self, graph_factory):
        graph = graph_factory()
        app = SelfStabilizingColoring(graph, coins=3)
        colors = app.run(max_rounds=200_000)
        # run() verifies; double-check palette bound here.
        assert colors.max() <= graph.max_degree()

    def test_recovers_from_total_corruption(self):
        graph = cycle_graph(12)
        app = SelfStabilizingColoring(graph, coins=4)
        app.run(max_rounds=200_000)
        app.corrupt_all(rng=5)
        colors = app.run(max_rounds=200_000)
        verify_proper_coloring(graph, colors)

    def test_works_with_three_state_process(self):
        graph = path_graph(8)
        app = SelfStabilizingColoring(
            graph, coins=6, process_cls=ThreeStateMIS
        )
        colors = app.run(max_rounds=200_000)
        verify_proper_coloring(graph, colors)


class TestSelfStabilizingMatching:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: cycle_graph(10),
            lambda: complete_graph(8),
            lambda: gnp_random_graph(20, 0.2, rng=2),
        ],
        ids=["cycle", "clique", "gnp"],
    )
    def test_produces_maximal_matching(self, graph_factory):
        graph = graph_factory()
        app = SelfStabilizingMatching(graph, coins=7)
        matching = app.run(max_rounds=200_000)
        assert len(matching) >= 1

    def test_matching_size_bounds(self):
        g = complete_graph(10)
        app = SelfStabilizingMatching(g, coins=8)
        matching = app.run(max_rounds=200_000)
        # Maximal matchings of K10 have 5 edges (perfect is forced:
        # any maximal matching of K_{2k} is perfect).
        assert len(matching) == 5

    def test_verify_rejects_bad_matchings(self):
        g = path_graph(4)
        with pytest.raises(AssertionError, match="not an edge"):
            verify_maximal_matching(g, [(0, 2)])
        with pytest.raises(AssertionError, match="reused"):
            verify_maximal_matching(g, [(0, 1), (1, 2)])
        with pytest.raises(AssertionError, match="not maximal"):
            verify_maximal_matching(g, [])  # (0,1) is addable

    def test_empty_graph(self):
        app = SelfStabilizingMatching(Graph(4), coins=9)
        assert app.run(max_rounds=1000) == []
