"""MISService lifecycle: determinism, checkpoint/resume, chaos recovery.

The daemon's contracts, in increasing order of adversity:

* same (graph, stream, seed) ⇒ bitwise-identical trajectory and
  records, with or without journaling, whatever the compaction cadence;
* incremental frontier repair is a pure performance transformation —
  ``repair=False`` (rebuild after every event) matches bitwise;
* a service killed at any offset resumes from its journal to the exact
  uninterrupted trajectory — including when the kill tears the journal
  tail mid-record (the ``"poison"`` fault), and for any
  ``checkpoint_every`` cadence;
* queries filter dead slots; streams are seekable pure functions.
"""

import os

import numpy as np
import pytest

from repro.dynamic import (
    ChurnRecord,
    MISService,
    MutationEvent,
    ScriptedStream,
    ServiceKilledError,
    make_stream,
    run_with_chaos,
)
from repro.dynamic.mutations import STREAM_KINDS
from repro.graphs.random_graphs import gnp_random_graph
from repro.parallel.chaos import ServiceChaosPolicy
from repro.sim.checkpoint import CheckpointJournal

N, EVENTS = 128, 40


@pytest.fixture
def graph():
    return gnp_random_graph(N, 3.0 / N, rng=11)


@pytest.fixture
def stream():
    return make_stream("uniform", N, seed=3)


def state_of(service):
    return service._state_arrays()[0]


def records_of(service):
    return [r.to_dict() for r in service.records]


def run_reference(graph, stream, **kwargs):
    service = MISService(graph, stream, seed=1, **kwargs)
    service.run(EVENTS)
    return service


# ---------------------------------------------------------------------------
# Determinism and the repair==rebuild transformation
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_same_seed_same_trajectory(self, graph, stream):
        a = run_reference(graph, stream)
        b = run_reference(graph, stream)
        np.testing.assert_array_equal(state_of(a), state_of(b))
        assert records_of(a) == records_of(b)
        assert a.proc.round == b.proc.round

    @pytest.mark.parametrize("process", ["2-state", "3-state"])
    def test_repair_equals_rebuild(self, graph, stream, process):
        fast = run_reference(graph, stream, process=process)
        slow = run_reference(graph, stream, process=process, repair=False)
        np.testing.assert_array_equal(state_of(fast), state_of(slow))
        assert [r.rounds for r in fast.records] == [
            r.rounds for r in slow.records
        ]
        assert fast.repairs > 0 and slow.rebuilds > 0

    def test_compaction_is_bitwise_neutral(self, graph, stream):
        eager = run_reference(graph, stream, compact_fraction=0.02)
        never = run_reference(graph, stream, compact_fraction=1e9)
        assert eager.overlay.compactions > 0
        assert never.overlay.compactions == 0
        np.testing.assert_array_equal(state_of(eager), state_of(never))
        assert [r.rounds for r in eager.records] == [
            r.rounds for r in never.records
        ]

    def test_settle_batching(self, graph, stream):
        batched = run_reference(graph, stream, settle_every=8)
        settled = [r.offset for r in batched.records if r.rounds >= 0
                   and (r.offset + 1) % 8 == 0]
        unsettled = [r for r in batched.records if (r.offset + 1) % 8 != 0]
        assert all(r.rounds == 0 for r in unsettled)
        assert len(settled) == EVENTS // 8


# ---------------------------------------------------------------------------
# Queries and dead-slot semantics
# ---------------------------------------------------------------------------


class TestQueries:
    def test_mis_is_maximal_independent_on_alive(self, graph, stream):
        service = run_reference(graph, stream)
        assert service.is_stable()
        mis = service.mis()
        members = np.zeros(N, dtype=bool)
        members[mis] = True
        snap = service.overlay.snapshot()
        us, vs = snap.edge_arrays()
        assert not np.any(members[us] & members[vs])  # independent
        covered = members.copy()
        covered[us[members[vs]]] = True
        covered[vs[members[us]]] = True
        assert covered.all()  # maximal (dead slots are isolated+black)

    def test_dead_slots_filtered(self, graph):
        events = [MutationEvent("del-vertex", 5)]
        service = MISService(graph, ScriptedStream(N, events), seed=1)
        service.run(1)
        assert not service.overlay.alive[5]
        assert not service.is_member(5)
        assert 5 not in service.mis()
        # The dead slot still parks as a stable singleton internally.
        assert service._state_arrays()[1][5]
        with pytest.raises(IndexError):
            service.is_member(N)

    def test_mis_requires_stability(self, graph, stream):
        service = MISService(
            graph, stream, seed=1, max_recovery_rounds=0, settle_every=1
        )
        if not service.is_stable():
            with pytest.raises(RuntimeError):
                service.mis()

    def test_constructor_validation(self, graph):
        with pytest.raises(ValueError):
            MISService(graph, make_stream("uniform", N + 1, seed=0))
        with pytest.raises(ValueError):
            MISService(graph, make_stream("uniform", N, seed=0),
                       process="5-state")
        with pytest.raises(ValueError):
            MISService(graph, make_stream("uniform", N, seed=0),
                       settle_every=0)


# ---------------------------------------------------------------------------
# Checkpoint / resume
# ---------------------------------------------------------------------------


class TestCheckpointResume:
    @pytest.mark.parametrize("cadence", [1, 4, 7])
    def test_resume_is_bitwise(self, graph, stream, tmp_path, cadence):
        ref = run_reference(graph, stream)
        path = tmp_path / "svc.ckpt"
        first = MISService(
            graph, stream, seed=1, checkpoint=path, checkpoint_every=cadence
        )
        first.run(EVENTS // 2)
        first.close()
        resumed = MISService(
            graph, stream, seed=1, checkpoint=path, checkpoint_every=cadence
        )
        # Snapshots only exist at cadence boundaries (plus the initial
        # one), so the resume point is the last boundary before half.
        assert resumed.next_offset >= EVENTS // 2 - cadence
        resumed.run(EVENTS)
        resumed.close()
        np.testing.assert_array_equal(state_of(ref), state_of(resumed))
        assert records_of(ref) == records_of(resumed)
        assert ref.proc.round == resumed.proc.round

    def test_resume_three_state(self, graph, tmp_path):
        stream = make_stream("burst", N, seed=5)
        ref = MISService(graph, stream, seed=2, process="3-state")
        ref.run(EVENTS)
        path = tmp_path / "svc3.ckpt"
        first = MISService(
            graph, stream, seed=2, process="3-state", checkpoint=path
        )
        first.run(EVENTS // 3)
        first.close()
        resumed = MISService(
            graph, stream, seed=2, process="3-state", checkpoint=path
        )
        resumed.run(EVENTS)
        resumed.close()
        np.testing.assert_array_equal(state_of(ref), state_of(resumed))
        assert records_of(ref) == records_of(resumed)

    def test_resume_false_starts_fresh(self, graph, stream, tmp_path):
        path = tmp_path / "svc.ckpt"
        first = MISService(graph, stream, seed=1, checkpoint=path)
        first.run(10)
        first.close()
        fresh = MISService(
            graph, stream, seed=1, checkpoint=path, resume=False
        )
        assert fresh.next_offset == 0
        fresh.close()

    def test_resume_through_compaction(self, graph, stream, tmp_path):
        ref = run_reference(graph, stream, compact_fraction=0.05)
        path = tmp_path / "svc.ckpt"
        first = MISService(
            graph, stream, seed=1, checkpoint=path, compact_fraction=0.05
        )
        first.run(EVENTS // 2)
        assert first.overlay.compactions > 0
        first.close()
        resumed = MISService(
            graph, stream, seed=1, checkpoint=path, compact_fraction=0.05
        )
        resumed.run(EVENTS)
        resumed.close()
        np.testing.assert_array_equal(state_of(ref), state_of(resumed))
        assert records_of(ref) == records_of(resumed)

    def test_shared_journal_view(self, graph, stream, tmp_path):
        # Services can share one journal through scoped views.
        journal = CheckpointJournal(tmp_path / "shared.ckpt", {"suite": 1})
        service = MISService(
            graph, stream, seed=1, checkpoint=journal.scoped("svc/")
        )
        service.run(5)
        assert any(k.startswith("svc/rec:") for k in journal.keys())
        journal.close()


# ---------------------------------------------------------------------------
# Chaos: kill / poison (torn tail) / hang / slow
# ---------------------------------------------------------------------------


class TestChaosRecovery:
    def test_scripted_kill_resume(self, graph, stream, tmp_path):
        ref = run_reference(graph, stream)
        path = tmp_path / "svc.ckpt"
        chaos = ServiceChaosPolicy.scripted(
            {(8, 0): "kill", (20, 0): "kill", (30, 0): "hang", (31, 0): "slow"}
        )

        def make_service():
            return MISService(
                graph, stream, seed=1, checkpoint=path, checkpoint_every=3
            )

        service, restarts = run_with_chaos(make_service, EVENTS, chaos)
        assert restarts == 2
        np.testing.assert_array_equal(state_of(ref), state_of(service))
        assert records_of(ref) == records_of(service)
        service.close()

    def test_torn_tail_resume(self, graph, stream, tmp_path):
        ref = run_reference(graph, stream)
        path = tmp_path / "svc.ckpt"
        chaos = ServiceChaosPolicy.scripted({(13, 0): "poison"})

        def make_service():
            return MISService(
                graph, stream, seed=1, checkpoint=path, checkpoint_every=2
            )

        service, restarts = run_with_chaos(make_service, EVENTS, chaos)
        assert restarts == 1
        np.testing.assert_array_equal(state_of(ref), state_of(service))
        assert records_of(ref) == records_of(service)
        service.close()
        # The torn fragment must have been truncated away on resume.
        with open(path, "rb") as fh:
            assert fh.read().endswith(b"\n")

    def test_seeded_chaos_converges(self, graph, stream, tmp_path):
        ref = run_reference(graph, stream)
        path = tmp_path / "svc.ckpt"
        chaos = ServiceChaosPolicy(seed=17, kill=0.08, poison=0.04)

        def make_service():
            return MISService(graph, stream, seed=1, checkpoint=path)

        service, restarts = run_with_chaos(make_service, EVENTS, chaos)
        np.testing.assert_array_equal(state_of(ref), state_of(service))
        assert records_of(ref) == records_of(service)
        service.close()

    def test_kill_without_journal_raises(self, graph, stream):
        chaos = ServiceChaosPolicy.scripted({(2, 0): "kill"})
        service = MISService(graph, stream, seed=1)
        with pytest.raises(ServiceKilledError) as err:
            service.run(EVENTS, chaos=chaos)
        assert err.value.offset == 2

    def test_run_with_chaos_restart_bound(self, graph, stream, tmp_path):
        # An unbounded policy that always kills offset 0 must exhaust.
        chaos = ServiceChaosPolicy(
            seed=0, kill=1.0, max_faulty_attempts=None
        )

        def make_service():
            return MISService(
                graph, stream, seed=1, checkpoint=tmp_path / "svc.ckpt"
            )

        with pytest.raises(ServiceKilledError):
            run_with_chaos(make_service, 4, chaos, max_restarts=3)


# ---------------------------------------------------------------------------
# Streams and the chaos policy
# ---------------------------------------------------------------------------


class TestStreams:
    @pytest.mark.parametrize("kind", STREAM_KINDS)
    def test_streams_deterministic_and_seekable(self, kind):
        from repro.dynamic import DeltaOverlay

        graph = gnp_random_graph(32, 0.15, rng=1)
        events = []
        overlay = DeltaOverlay(graph)
        stream = make_stream(kind, 32, seed=9)
        for offset in range(25):
            event = stream.event_at(offset, overlay)
            events.append(event.to_tuple())
            overlay.apply_event(event)
        # Replaying from scratch yields the identical event sequence.
        overlay2 = DeltaOverlay(graph)
        stream2 = make_stream(kind, 32, seed=9)
        for offset in range(25):
            event = stream2.event_at(offset, overlay2)
            assert event.to_tuple() == events[offset]
            overlay2.apply_event(event)
        assert stream.spec() == stream2.spec()
        assert stream.spec()["stream"] == kind

    def test_spec_distinguishes_seeds_and_params(self):
        assert (
            make_stream("uniform", 16, seed=1).spec()
            != make_stream("uniform", 16, seed=2).spec()
        )
        assert (
            make_stream("flapping", 16, seed=1, links=4).spec()
            != make_stream("flapping", 16, seed=1, links=8).spec()
        )
        with pytest.raises(ValueError):
            make_stream("nope", 16)

    def test_hub_stream_targets_max_degree(self):
        graph = gnp_random_graph(32, 0.2, rng=3)
        from repro.dynamic import DeltaOverlay

        overlay = DeltaOverlay(graph)
        stream = make_stream("hub", 32, seed=0)
        event = stream.event_at(0, overlay)
        assert event.kind == "del-vertex"
        assert overlay.degrees()[event.u] == overlay.degrees().max()

    def test_churn_record_roundtrip(self):
        record = ChurnRecord(
            offset=3, kind="add-edge", added=1, removed=0,
            action="repair", compacted=False, rounds=2,
            stabilized=True, round_end=7,
        )
        assert ChurnRecord.from_dict(record.to_dict()) == record


class TestServiceChaosPolicy:
    def test_seeded_draws_are_stable(self):
        policy = ServiceChaosPolicy(seed=5, kill=0.3, hang=0.2)
        draws = [policy.fault_for(o, 0) for o in range(50)]
        assert draws == [policy.fault_for(o, 0) for o in range(50)]
        assert any(d == "kill" for d in draws)
        # Attempt 1 never faults under the default bound.
        assert all(policy.fault_for(o, 1) is None for o in range(50))

    def test_namespace_disjoint_from_worker_policy(self):
        from repro.parallel.chaos import ChaosPolicy

        worker = ChaosPolicy(seed=5, kill=0.5)
        service = ServiceChaosPolicy(seed=5, kill=0.5)
        worker_draws = [worker.fault_for((o, o + 1), 0) for o in range(40)]
        service_draws = [service.fault_for(o, 0) for o in range(40)]
        assert worker_draws != service_draws

    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceChaosPolicy(kill=0.9, poison=0.9)
        with pytest.raises(ValueError):
            ServiceChaosPolicy.scripted({(0, 0): "explode"})
