"""Property-based tests specific to the 3-color process and the switch."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.randphase import RandPhaseClock
from repro.core.states import BLACK, GRAY, WHITE
from repro.core.switch import OracleSwitch, RandomizedLogSwitch
from repro.core.three_color import ThreeColorMIS
from repro.core.verify import is_maximal_independent_set
from repro.graphs.graph import Graph
from repro.sim.runner import run_until_stable


@st.composite
def graphs(draw, max_n=18):
    n = draw(st.integers(min_value=1, max_value=max_n))
    possible = [(u, v) for u in range(n) for v in range(u + 1, n)]
    edges = draw(
        st.lists(st.sampled_from(possible), unique=True, max_size=45)
        if possible
        else st.just([])
    )
    return Graph(n, edges)


@st.composite
def graphs_with_colors(draw, max_n=18):
    g = draw(graphs(max_n))
    colors = draw(
        st.lists(
            st.sampled_from([WHITE, GRAY, BLACK]),
            min_size=g.n, max_size=g.n,
        )
    )
    return g, np.array(colors, dtype=np.int8)


@settings(max_examples=40, deadline=None)
@given(graphs_with_colors(), st.integers(min_value=0, max_value=2**32 - 1))
def test_black_never_becomes_white_directly(gs, seed):
    # Definition 28: black → black or gray; never black → white in one
    # round.  (The ablation-relevant structural difference vs 2-state.)
    g, colors = gs
    proc = ThreeColorMIS(g, coins=seed, a=8.0, init=colors)
    for _ in range(10):
        before = proc.colors.copy()
        proc.step()
        after = proc.colors
        went_white = (before == BLACK) & (after == WHITE)
        assert not went_white.any()


@settings(max_examples=40, deadline=None)
@given(graphs_with_colors(), st.integers(min_value=0, max_value=2**32 - 1))
def test_gray_only_moves_to_white(gs, seed):
    # A gray vertex either stays gray or becomes white — it can never
    # jump straight to black (re-entry is metered by the switch).
    g, colors = gs
    proc = ThreeColorMIS(g, coins=seed, a=8.0, init=colors)
    for _ in range(10):
        before = proc.colors.copy()
        proc.step()
        after = proc.colors
        jumped = (before == GRAY) & (after == BLACK)
        assert not jumped.any()


@settings(max_examples=40, deadline=None)
@given(graphs_with_colors(), st.integers(min_value=0, max_value=2**32 - 1))
def test_stable_black_frozen_in_three_color(gs, seed):
    g, colors = gs
    proc = ThreeColorMIS(g, coins=seed, a=8.0, init=colors)
    stable = proc.stable_black_mask()
    for _ in range(12):
        proc.step()
        assert np.all(proc.colors[stable] == BLACK)
        stable = proc.stable_black_mask()


@settings(max_examples=25, deadline=None)
@given(graphs(max_n=14), st.integers(min_value=0, max_value=2**32 - 1))
def test_three_color_stabilizes_to_valid_mis(g, seed):
    proc = ThreeColorMIS(g, coins=seed, a=8.0)
    result = run_until_stable(proc, max_rounds=200_000)
    assert result.stabilized
    assert is_maximal_independent_set(g, result.mis)


@settings(max_examples=40, deadline=None)
@given(
    graphs(max_n=16),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.sampled_from([0.0625, 0.125, 0.25, 0.5]),
)
def test_switch_levels_invariant(g, seed, zeta):
    switch = RandomizedLogSwitch(g, coins=seed, zeta=zeta)
    for _ in range(30):
        switch.step()
        assert switch.levels.min() >= 0
        assert switch.levels.max() <= 5
        # σ is exactly the level <= 2 mask.
        assert np.array_equal(switch.sigma(), switch.levels <= 2)


@settings(max_examples=30, deadline=None)
@given(
    graphs(max_n=16),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=0, max_value=2**32 - 1),
)
def test_randphase_levels_invariant(g, d, seed):
    clock = RandPhaseClock(g, d=d, coins=seed, zeta=0.25)
    for _ in range(25):
        clock.step()
        assert clock.levels.min() >= 0
        assert clock.levels.max() <= clock.top


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=8),
)
def test_oracle_switch_period(n, on_run, off_run):
    switch = OracleSwitch(n, on_run=on_run, off_run=off_run)
    period = on_run + off_run
    history = []
    for _ in range(3 * period):
        history.append(switch.sigma().copy())
        switch.step()
    for t in range(period, len(history)):
        assert np.array_equal(history[t], history[t - period])
