"""Tests for repro.sim.rng."""

import numpy as np
import pytest

from repro.sim.rng import (
    ScriptedCoins,
    SeededCoins,
    as_coin_source,
    spawn_seeds,
)


class TestSeededCoins:
    def test_bits_shape_and_dtype(self):
        coins = SeededCoins(0)
        bits = coins.bits(100)
        assert bits.shape == (100,)
        assert bits.dtype == bool

    def test_reproducible(self):
        a = SeededCoins(42).bits(50)
        b = SeededCoins(42).bits(50)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = SeededCoins(1).bits(200)
        b = SeededCoins(2).bits(200)
        assert not np.array_equal(a, b)

    def test_bits_fair(self):
        bits = SeededCoins(3).bits(20_000)
        assert abs(bits.mean() - 0.5) < 0.02

    def test_bernoulli_rate(self):
        draws = SeededCoins(4).bernoulli(20_000, 0.1)
        assert abs(draws.mean() - 0.1) < 0.02

    def test_bernoulli_validates(self):
        with pytest.raises(ValueError):
            SeededCoins(0).bernoulli(10, 1.5)

    def test_wraps_existing_generator(self):
        gen = np.random.default_rng(5)
        coins = SeededCoins(gen)
        assert coins.generator is gen


class TestScriptedCoins:
    def test_replays_in_order(self):
        coins = ScriptedCoins([[True, False], [False, False]])
        assert coins.bits(2).tolist() == [True, False]
        assert coins.bernoulli(2, 0.9).tolist() == [False, False]
        assert coins.draws_consumed == 2

    def test_exhaustion_raises(self):
        coins = ScriptedCoins([[True]])
        coins.bits(1)
        with pytest.raises(IndexError):
            coins.bits(1)

    def test_shape_mismatch_raises(self):
        coins = ScriptedCoins([[True, False]])
        with pytest.raises(ValueError):
            coins.bits(3)


class TestAsCoinSource:
    def test_passthrough(self):
        coins = SeededCoins(0)
        assert as_coin_source(coins) is coins

    def test_seed_coercion(self):
        assert isinstance(as_coin_source(7), SeededCoins)
        assert isinstance(as_coin_source(None), SeededCoins)


class TestSpawnSeeds:
    def test_count_and_reproducibility(self):
        seeds = spawn_seeds(0, 10)
        assert len(seeds) == 10
        assert seeds == spawn_seeds(0, 10)

    def test_distinct(self):
        seeds = spawn_seeds(1, 100)
        assert len(set(seeds)) == 100

    def test_prefix_stability(self):
        # The first k seeds don't depend on the total count.
        assert spawn_seeds(2, 5) == spawn_seeds(2, 10)[:5]
