"""Tests for repro.graphs.mis_exact — and ground-truth checks of the
processes against the exact enumeration."""

import pytest

from repro.core.three_color import ThreeColorMIS
from repro.core.three_state import ThreeStateMIS
from repro.core.two_state import TwoStateMIS
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    star_graph,
)
from repro.graphs.graph import Graph
from repro.graphs.mis_exact import (
    enumerate_maximal_independent_sets,
    independence_number,
    independent_domination_number,
    is_among_maximal_independent_sets,
    maximum_independent_set,
)
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.runner import run_until_stable


class TestEnumeration:
    def test_empty_graph(self):
        assert enumerate_maximal_independent_sets(Graph(0)) == [frozenset()]

    def test_edgeless_graph(self):
        sets = enumerate_maximal_independent_sets(Graph(3))
        assert sets == [frozenset({0, 1, 2})]

    def test_single_edge(self):
        sets = set(enumerate_maximal_independent_sets(Graph(2, [(0, 1)])))
        assert sets == {frozenset({0}), frozenset({1})}

    def test_triangle(self):
        sets = set(
            enumerate_maximal_independent_sets(complete_graph(3))
        )
        assert sets == {frozenset({0}), frozenset({1}), frozenset({2})}

    def test_path4_known(self):
        # P4 (0-1-2-3): maximal independent sets are {0,2}, {0,3}, {1,3}.
        sets = set(enumerate_maximal_independent_sets(path_graph(4)))
        assert sets == {
            frozenset({0, 2}), frozenset({0, 3}), frozenset({1, 3})
        }

    def test_cycle5_count(self):
        # C5 has exactly 5 maximal independent sets (all of size 2).
        sets = enumerate_maximal_independent_sets(cycle_graph(5))
        assert len(sets) == 5
        assert all(len(s) == 2 for s in sets)

    def test_all_results_are_maximal_independent(self):
        from repro.core.verify import is_maximal_independent_set

        for g in (
            petersen_graph(),
            gnp_random_graph(14, 0.3, rng=1),
            star_graph(7),
        ):
            for s in enumerate_maximal_independent_sets(g):
                assert is_maximal_independent_set(g, sorted(s))


class TestExtremalSizes:
    def test_independence_number_known(self):
        assert independence_number(complete_graph(7)) == 1
        assert independence_number(path_graph(5)) == 3
        assert independence_number(cycle_graph(6)) == 3
        assert independence_number(cycle_graph(7)) == 3
        assert independence_number(petersen_graph()) == 4
        assert independence_number(Graph(4)) == 4

    def test_maximum_set_is_independent(self):
        from repro.core.verify import is_independent_set

        g = gnp_random_graph(18, 0.25, rng=2)
        s = maximum_independent_set(g)
        assert is_independent_set(g, sorted(s))

    def test_max_matches_enumeration(self):
        for seed in range(3):
            g = gnp_random_graph(13, 0.3, rng=seed)
            alpha = independence_number(g)
            best = max(
                len(s) for s in enumerate_maximal_independent_sets(g)
            )
            assert alpha == best

    def test_independent_domination_number(self):
        assert independent_domination_number(star_graph(6)) == 1
        assert independent_domination_number(path_graph(4)) == 2
        assert independent_domination_number(complete_graph(5)) == 1


class TestProcessesAgainstGroundTruth:
    @pytest.mark.parametrize(
        "process_factory",
        [
            lambda g, s: TwoStateMIS(g, coins=s),
            lambda g, s: ThreeStateMIS(g, coins=s),
            lambda g, s: ThreeColorMIS(g, coins=s, a=8.0),
        ],
        ids=["2-state", "3-state", "3-color"],
    )
    def test_output_is_an_exact_maximal_independent_set(
        self, process_factory
    ):
        for seed in range(4):
            g = gnp_random_graph(12, 0.25, rng=seed)
            proc = process_factory(g, seed + 10)
            result = run_until_stable(proc, max_rounds=200_000)
            assert result.stabilized
            assert is_among_maximal_independent_sets(g, result.mis)

    def test_size_within_exact_bounds(self):
        g = gnp_random_graph(14, 0.3, rng=5)
        lo = independent_domination_number(g)
        hi = independence_number(g)
        for seed in range(6):
            result = run_until_stable(
                TwoStateMIS(g, coins=seed), max_rounds=200_000
            )
            assert lo <= len(result.mis) <= hi

    def test_process_reaches_multiple_sets(self):
        # Randomness should spread outcomes across several of the
        # maximal independent sets, not lock onto one.
        g = cycle_graph(7)
        outcomes = set()
        for seed in range(30):
            result = run_until_stable(
                TwoStateMIS(g, coins=seed), max_rounds=200_000
            )
            outcomes.add(frozenset(result.mis.tolist()))
        assert len(outcomes) >= 3
