"""Tests for repro.graphs.random_graphs."""

import numpy as np
import pytest

from repro.graphs import random_graphs as rg
from repro.graphs.properties import is_connected


class TestGnp:
    def test_p_zero(self):
        assert rg.gnp_random_graph(50, 0.0, rng=0).m == 0

    def test_p_one_is_complete(self):
        g = rg.gnp_random_graph(20, 1.0, rng=0)
        assert g.m == 190

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            rg.gnp_random_graph(10, 1.5)
        with pytest.raises(ValueError):
            rg.gnp_random_graph(10, -0.1)

    def test_reproducible(self):
        g1 = rg.gnp_random_graph(100, 0.1, rng=42)
        g2 = rg.gnp_random_graph(100, 0.1, rng=42)
        assert g1 == g2

    def test_edge_count_concentrates(self):
        # E[m] = p * C(n,2); check within 5 sigma.
        n, p = 300, 0.1
        expected = p * n * (n - 1) / 2
        sigma = np.sqrt(expected * (1 - p))
        g = rg.gnp_random_graph(n, p, rng=7)
        assert abs(g.m - expected) < 5 * sigma

    def test_degree_distribution_mean(self):
        n, p = 400, 0.05
        g = rg.gnp_random_graph(n, p, rng=3)
        assert abs(g.average_degree() - p * (n - 1)) < 2.0

    def test_small_n(self):
        assert rg.gnp_random_graph(0, 0.5, rng=0).n == 0
        assert rg.gnp_random_graph(1, 0.5, rng=0).m == 0

    def test_vectorized_skip_path_deterministic(self):
        # n > 6000 rides the block-vectorized geometric-skip sampler.
        g1 = rg.gnp_random_graph(7000, 0.0005, rng=17)
        g2 = rg.gnp_random_graph(7000, 0.0005, rng=17)
        assert g1 == g2
        expected = 0.0005 * 7000 * 6999 / 2
        sigma = (expected * (1 - 0.0005)) ** 0.5
        assert abs(g1.m - expected) < 6 * sigma

    def test_vectorized_skip_multi_block(self, monkeypatch):
        # Shrink the per-block skip cap so the sampler must continue
        # across many blocks; the sample must stay a valid G(n, p) draw.
        monkeypatch.setattr(rg, "_SKIP_BLOCK_CAP", 64)
        n, p = 7000, 0.0005  # E[m] ~ 12k edges -> ~190 blocks
        g = rg.gnp_random_graph(n, p, rng=23)
        expected = p * n * (n - 1) / 2
        sigma = (expected * (1 - p)) ** 0.5
        assert abs(g.m - expected) < 6 * sigma
        us, vs = g.edge_arrays()
        assert us.size == g.m
        assert ((0 <= us) & (us < vs) & (vs < n)).all()


class TestGnm:
    def test_exact_edge_count(self):
        g = rg.gnm_random_graph(30, 50, rng=0)
        assert g.m == 50

    def test_extremes(self):
        assert rg.gnm_random_graph(10, 0, rng=0).m == 0
        assert rg.gnm_random_graph(10, 45, rng=0).m == 45

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            rg.gnm_random_graph(5, 11)

    def test_no_duplicate_edges(self):
        g = rg.gnm_random_graph(20, 100, rng=5)
        assert g.m == 100  # Graph collapses duplicates; count must survive


class TestRandomTree:
    def test_is_tree(self):
        for seed in range(5):
            g = rg.random_tree(50, rng=seed)
            assert g.m == 49
            assert is_connected(g)

    def test_small_cases(self):
        assert rg.random_tree(0).n == 0
        assert rg.random_tree(1).m == 0
        assert rg.random_tree(2).m == 1
        g3 = rg.random_tree(3, rng=0)
        assert g3.m == 2
        assert is_connected(g3)

    def test_reproducible(self):
        assert rg.random_tree(40, rng=9) == rg.random_tree(40, rng=9)

    def test_prufer_uniformity_smoke(self):
        # Over labelled trees on 3 vertices there are 3 shapes (choice of
        # center); check all appear.
        centers = set()
        for seed in range(60):
            g = rg.random_tree(3, rng=seed)
            center = max(g.vertices(), key=g.degree)
            centers.add(center)
        assert centers == {0, 1, 2}


class TestRandomRegular:
    @pytest.mark.parametrize("n,d", [(10, 3), (20, 4), (50, 2), (64, 7)])
    def test_regularity(self, n, d):
        g = rg.random_regular_graph(n, d, rng=1)
        assert all(g.degree(u) == d for u in g.vertices())
        assert g.m == n * d // 2

    def test_d_zero(self):
        assert rg.random_regular_graph(5, 0).m == 0

    def test_odd_product_rejected(self):
        with pytest.raises(ValueError):
            rg.random_regular_graph(5, 3)

    def test_d_too_large_rejected(self):
        with pytest.raises(ValueError):
            rg.random_regular_graph(4, 4)

    def test_no_self_loops_or_multiedges_many_seeds(self):
        for seed in range(10):
            g = rg.random_regular_graph(30, 6, rng=seed)
            assert all(g.degree(u) == 6 for u in g.vertices())


class TestBipartiteAndPlanted:
    def test_bipartite_no_intra_part_edges(self):
        g = rg.random_bipartite_graph(10, 15, 0.3, rng=0)
        for u in range(10):
            for v in range(10):
                assert not g.has_edge(u, v) or u == v
        assert g.n == 25

    def test_bipartite_p_extremes(self):
        assert rg.random_bipartite_graph(5, 5, 0.0, rng=0).m == 0
        assert rg.random_bipartite_graph(5, 5, 1.0, rng=0).m == 25

    def test_planted_partition_block_structure(self):
        g = rg.planted_partition_graph([20, 20], 0.9, 0.01, rng=3)
        intra = g.induced_edge_count(range(20))
        inter = g.edges_between(range(20), range(20, 40))
        assert intra > inter

    def test_planted_partition_validates(self):
        with pytest.raises(ValueError):
            rg.planted_partition_graph([5, 5], 1.5, 0.1)
