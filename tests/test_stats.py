"""Tests for repro.sim.stats."""

import numpy as np
import pytest

from repro.sim.stats import (
    bootstrap_mean_ci,
    geometric_tail_fit,
    mann_whitney_faster,
    success_rate_ci,
)


class TestGeometricTailFit:
    def test_recovers_known_rate(self):
        # Geometric sample: P[T >= k] = rho^k exactly for geometric T.
        rng = np.random.default_rng(0)
        rho = 0.5
        times = rng.geometric(1 - rho, size=50_000).astype(float)
        fit = geometric_tail_fit(times, block=1.0)
        assert fit["rho"] == pytest.approx(rho, abs=0.05)
        assert fit["points"] >= 3

    def test_insufficient_points(self):
        fit = geometric_tail_fit(np.array([1.0, 1.0, 1.0]), block=10.0)
        assert np.isnan(fit["rho"])

    def test_block_validation(self):
        with pytest.raises(ValueError):
            geometric_tail_fit(np.array([1.0]), block=0.0)

    def test_theorem8_application(self):
        # Actual clique stabilization times show sub-unit rho.
        import math

        from repro.core.two_state import TwoStateMIS
        from repro.graphs.generators import complete_graph
        from repro.sim.montecarlo import estimate_stabilization_time

        n = 64
        stats = estimate_stabilization_time(
            lambda s: TwoStateMIS(complete_graph(n), coins=s),
            trials=300, max_rounds=10_000, seed=1,
        )
        fit = geometric_tail_fit(stats.times, block=math.log(n))
        if not np.isnan(fit["rho"]):
            assert fit["rho"] < 0.9


class TestBootstrap:
    def test_contains_sample_mean(self):
        rng = np.random.default_rng(2)
        sample = rng.exponential(10.0, size=400)
        lo, hi = bootstrap_mean_ci(sample, seed=3)
        assert lo <= sample.mean() <= hi
        # Width should be a few standard errors, not degenerate or huge.
        sem = sample.std() / np.sqrt(sample.size)
        assert 2 * sem < (hi - lo) < 8 * sem

    def test_degenerate_cases(self):
        assert bootstrap_mean_ci(np.array([5.0])) == (5.0, 5.0)
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.array([]))

    def test_reproducible(self):
        sample = np.arange(50, dtype=float)
        assert bootstrap_mean_ci(sample, seed=4) == bootstrap_mean_ci(
            sample, seed=4
        )


class TestMannWhitney:
    def test_detects_clear_separation(self):
        rng = np.random.default_rng(5)
        fast = rng.normal(10, 2, size=200)
        slow = rng.normal(30, 2, size=200)
        result = mann_whitney_faster(fast, slow)
        assert result["faster"]
        assert result["p_value"] < 1e-10

    def test_no_false_positive_on_identical(self):
        rng = np.random.default_rng(6)
        a = rng.normal(10, 2, size=200)
        b = rng.normal(10, 2, size=200)
        result = mann_whitney_faster(a, b)
        assert not result["faster"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mann_whitney_faster(np.array([]), np.array([1.0]))


class TestWilson:
    def test_perfect_success_not_degenerate(self):
        lo, hi = success_rate_ci(100, 100)
        assert hi == 1.0
        assert 0.9 < lo < 1.0

    def test_half(self):
        lo, hi = success_rate_ci(50, 100)
        assert lo < 0.5 < hi

    def test_validation(self):
        with pytest.raises(ValueError):
            success_rate_ci(5, 0)
        with pytest.raises(ValueError):
            success_rate_ci(11, 10)
