"""Smoke tests: every example script runs to completion."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize(
    "script", EXAMPLES, ids=[s.stem for s in EXAMPLES]
)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()  # examples narrate what they do
