"""Monte-Carlo checks of the 3-color-specific lemmas (§5.2/§5.3).

* Lemma 29: for t >= a ln n, a vertex gray at t was active in one of
  the previous a ln n rounds (gray is only entered from active black,
  and lasts at most a ln n rounds by S1).
* Lemma 30 (diam <= 2): the expected number of rounds a vertex is
  non-stable black within any window of a/6 ln n rounds is at most 4.
* Lemma 31: up to the first round u is white with >= d black
  neighbours (or stable), the expected number of rounds u is black
  with >= d black neighbours is at most 3.
"""

import math

import numpy as np
import pytest

from repro.core.states import BLACK, GRAY
from repro.core.three_color import ThreeColorMIS
from repro.graphs.generators import complete_graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.rng import spawn_seeds

A_PARAM = 16.0


class TestLemma29:
    def test_gray_implies_recent_activity(self):
        # Track per-vertex activity history; whenever a vertex is gray
        # at round t >= a ln n, it must have been active black within
        # the previous a ln n rounds.
        n = 48
        graph = gnp_random_graph(n, 0.15, rng=1)
        window = int(A_PARAM * math.log(n)) + 1
        for seed in spawn_seeds(0, 3):
            proc = ThreeColorMIS(graph, coins=seed, a=A_PARAM)
            last_active = np.full(n, -10**9, dtype=np.int64)
            for t in range(3 * window):
                active = proc.active_mask()
                black = proc.black_mask()
                active_black = active & black
                last_active[active_black] = t
                if t >= window:
                    gray = proc.colors == GRAY
                    for u in np.flatnonzero(gray):
                        assert t - last_active[u] <= window, (
                            f"vertex {u} gray at {t}, last active black "
                            f"at {last_active[u]}"
                        )
                proc.step()


class TestLemma30:
    def test_bounded_nonstable_black_rounds_on_diam2(self):
        # diam(K_n) = 1 <= 2; count per-window non-stable-black rounds.
        n = 32
        graph = complete_graph(n)
        window = max(4, int((A_PARAM / 6.0) * math.log(n)))
        counts = []
        for seed in spawn_seeds(1, 10):
            proc = ThreeColorMIS(graph, coins=seed, a=A_PARAM)
            # Warm up past the switch's synchronization prefix.
            proc.step(window)
            per_vertex = np.zeros(n, dtype=np.int64)
            for _ in range(window):
                nonstable_black = proc.black_mask() & proc.unstable_mask()
                per_vertex += nonstable_black
                proc.step()
            counts.append(per_vertex.mean())
        # Lemma 30's bound is 4 in expectation; allow sampling slack.
        assert float(np.mean(counts)) <= 5.0


class TestLemma31:
    @pytest.mark.parametrize("d", [2, 4])
    def test_black_with_many_black_neighbors_is_transient(self, d):
        # Count rounds where u is black with >= d black neighbours
        # before u first is white-with->=d-black-neighbours or stable.
        n = 24
        graph = complete_graph(n)
        totals = []
        for seed in spawn_seeds(2, 20):
            proc = ThreeColorMIS(graph, coins=seed, a=A_PARAM)
            u = 0
            count = 0
            for _ in range(500):
                black = proc.black_mask()
                black_nbrs = sum(
                    1 for v in graph.neighbors(u) if black[v]
                )
                covered = proc.covered_mask()[u]
                if (not black[u] and proc.colors[u] == 0
                        and black_nbrs >= d) or covered:
                    break
                if black[u] and black_nbrs >= d:
                    count += 1
                proc.step()
            totals.append(count)
        # Lemma 31: expectation <= 3; generous slack for 20 trials.
        assert float(np.mean(totals)) <= 4.5


class TestGrayLifetime:
    def test_gray_runs_bounded_by_s1(self):
        # A corollary used throughout §5: no vertex stays gray longer
        # than the S1 bound a ln n (w.h.p.).
        n = 40
        graph = gnp_random_graph(n, 0.2, rng=3)
        bound = int(A_PARAM * math.log(n)) + 1
        for seed in spawn_seeds(3, 3):
            proc = ThreeColorMIS(graph, coins=seed, a=A_PARAM)
            gray_run = np.zeros(n, dtype=np.int64)
            for _ in range(4 * bound):
                gray = proc.colors == GRAY
                gray_run[gray] += 1
                gray_run[~gray] = 0
                assert gray_run.max() <= bound
                proc.step()


class TestBlackEntryMetering:
    def test_black_reentry_rate_limited_after_gray(self):
        # The design intent: a vertex that leaves black must pass
        # through gray (switch-metered) and white before becoming black
        # again — verify the state machine admits no shortcut.
        n = 16
        graph = complete_graph(n)
        proc = ThreeColorMIS(graph, coins=4, a=A_PARAM)
        prev = proc.colors.copy()
        for _ in range(300):
            proc.step()
            cur = proc.colors
            # gray -> black forbidden in one step:
            assert not np.any((prev == GRAY) & (cur == BLACK))
            prev = cur.copy()
