"""Frontier-engine equivalence and aggregate-memoization guarantees.

The incremental frontier engine (:mod:`repro.core.frontier`) must be a
pure performance transformation: for every seed, every round and every
observable — state vectors, active/stable/covered masks, stabilization
round, coin-stream position — ``engine="frontier"`` and
``engine="auto"`` are bitwise-identical to ``engine="full"``.  This
suite pins that, plus the cache-invalidation paths (``corrupt`` /
``corrupt_vertices`` / batched-engine write-back) and the
reduction-count contract of the memoized full path.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.frontier import ENGINES, FrontierAggregates, resolve_engine
from repro.core.neighbor_ops import SparseNeighborOps, gather_neighbors
from repro.core.three_state import ThreeStateMIS
from repro.core.two_state import TwoStateMIS
from repro.graphs.graph import Graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.rng import SeededCoins
from repro.sim.runner import run_until_stable

MAX_ROUNDS = 4000


class CountingCoins(SeededCoins):
    """Seeded coins that count draw calls (stream-position probe)."""

    def __init__(self, seed):
        super().__init__(seed)
        self.draws = 0

    def bits(self, n):
        self.draws += 1
        return super().bits(n)

    def bernoulli(self, n, prob):
        self.draws += 1
        return super().bernoulli(n, prob)


class CountingOps(SparseNeighborOps):
    """Sparse backend that counts neighbourhood reductions."""

    def __init__(self, graph):
        super().__init__(graph)
        self.reductions = 0

    def count(self, mask):
        self.reductions += 1
        return super().count(mask)


def make_pair(cls, graph, seed, engine, **kwargs):
    coins = CountingCoins(seed)
    return cls(graph, coins=coins, engine=engine, **kwargs), coins


def assert_lockstep_equal(cls, graph, seed, rounds=80, corrupt_at=None, **kw):
    """Advance one process per engine in lockstep; compare everything."""
    procs = {}
    coins = {}
    for engine in ENGINES:
        procs[engine], coins[engine] = make_pair(
            cls, graph, seed, engine, **kw
        )
    corrupt_rng = np.random.default_rng(seed + 1)
    corrupt_states = None
    if corrupt_at is not None:
        if cls is TwoStateMIS:
            corrupt_states = corrupt_rng.random(graph.n) < 0.5
        else:
            corrupt_states = corrupt_rng.integers(
                0, 3, graph.n
            ).astype(np.int8)
    for r in range(rounds):
        reference = None
        for engine in ENGINES:
            proc = procs[engine]
            observed = (
                proc.state_vector(),
                proc.active_mask(),
                proc.stable_black_mask(),
                proc.covered_mask(),
                proc.unstable_mask(),
                proc.is_stabilized(),
                proc.trajectory_counts(),
                coins[engine].draws,
            )
            if reference is None:
                reference = observed
            else:
                for a, b in zip(observed, reference):
                    if isinstance(a, np.ndarray):
                        assert np.array_equal(a, b), (engine, r)
                    else:
                        assert a == b, (engine, r)
        if reference[5]:  # stabilized — nothing changes afterwards
            break
        if corrupt_at is not None and r == corrupt_at:
            for proc in procs.values():
                proc.corrupt(corrupt_states)
        for proc in procs.values():
            proc.step()


@st.composite
def sparse_graphs(draw):
    n = draw(st.integers(min_value=0, max_value=120))
    density = draw(st.floats(min_value=0.0, max_value=0.35))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    return gnp_random_graph(n, density, rng=seed)


class TestEngineEquivalence:
    @given(graph=sparse_graphs(), seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_two_state_lockstep(self, graph, seed):
        assert_lockstep_equal(TwoStateMIS, graph, seed)

    @given(graph=sparse_graphs(), seed=st.integers(0, 2**20))
    @settings(max_examples=30, deadline=None)
    def test_three_state_lockstep(self, graph, seed):
        assert_lockstep_equal(ThreeStateMIS, graph, seed)

    @given(graph=sparse_graphs(), seed=st.integers(0, 2**20))
    @settings(max_examples=20, deadline=None)
    def test_two_state_eager_lockstep(self, graph, seed):
        assert_lockstep_equal(
            TwoStateMIS, graph, seed, eager_white_promotion=True
        )

    @given(
        graph=sparse_graphs(),
        seed=st.integers(0, 2**20),
        corrupt_at=st.integers(0, 12),
    )
    @settings(max_examples=25, deadline=None)
    def test_corrupt_redirties_incremental_state(
        self, graph, seed, corrupt_at
    ):
        assert_lockstep_equal(
            TwoStateMIS, graph, seed, corrupt_at=corrupt_at
        )

    @given(
        graph=sparse_graphs(),
        seed=st.integers(0, 2**20),
        corrupt_at=st.integers(0, 12),
    )
    @settings(max_examples=15, deadline=None)
    def test_corrupt_three_state(self, graph, seed, corrupt_at):
        assert_lockstep_equal(
            ThreeStateMIS, graph, seed, corrupt_at=corrupt_at
        )

    @given(seed=st.integers(0, 2**20), check_every=st.integers(1, 7))
    @settings(max_examples=25, deadline=None)
    def test_run_until_stable_check_every(self, seed, check_every):
        graph = gnp_random_graph(96, 0.05, rng=seed)
        results = {}
        for engine in ENGINES:
            proc = TwoStateMIS(graph, coins=seed, engine=engine)
            results[engine] = (
                run_until_stable(
                    proc, max_rounds=MAX_ROUNDS, check_every=check_every
                ),
                proc.state_vector(),
            )
        ref, ref_state = results["full"]
        for engine in ("frontier", "auto"):
            res, state = results[engine]
            assert res.stabilization_round == ref.stabilization_round
            assert res.rounds_executed == ref.rounds_executed
            assert np.array_equal(res.mis, ref.mis)
            assert np.array_equal(state, ref_state)

    def test_corrupt_vertices_dirties_counts(self):
        graph = gnp_random_graph(150, 0.04, rng=3)
        procs = {
            e: TwoStateMIS(graph, coins=11, engine=e) for e in ENGINES
        }
        for proc in procs.values():
            proc.step(3)
            proc.corrupt_vertices([0, 5, 9, 100], black=True)
            proc.corrupt_vertices([1, 6], black=False)
        ref = None
        for engine, proc in procs.items():
            observed = (
                proc.covered_mask(),
                proc.stable_black_mask(),
                proc.is_stabilized(),
            )
            if ref is None:
                ref = observed
            else:
                assert np.array_equal(observed[0], ref[0]), engine
                assert np.array_equal(observed[1], ref[1]), engine
                assert observed[2] == ref[2]
        # and the subsequent trajectories still agree
        finals = {
            e: run_until_stable(p, max_rounds=MAX_ROUNDS)
            for e, p in procs.items()
        }
        for engine in ("frontier", "auto"):
            assert (
                finals[engine].stabilization_round
                == finals["full"].stabilization_round
            )
            assert np.array_equal(finals[engine].mis, finals["full"].mis)

    def test_batched_writeback_invalidates_aggregates(self):
        from repro.core.batched import BatchedTwoStateMIS

        graph = gnp_random_graph(80, 0.06, rng=5)
        procs = [
            TwoStateMIS(graph, coins=s, engine="auto") for s in range(6)
        ]
        # Touch the frontier state before the batched run (the
        # write-back below must invalidate it, not reuse it).
        for proc in procs:
            proc.is_stabilized()
        results = BatchedTwoStateMIS(procs).run(max_rounds=MAX_ROUNDS)
        for proc, result in zip(procs, results):
            assert result.stabilized
            # The write-back rebound process.black; the stale frontier
            # aggregates must be rebuilt, not reused.
            assert proc.is_stabilized()
            fresh = TwoStateMIS(
                graph, coins=0, engine="full", init=proc.black
            )
            assert np.array_equal(
                proc.covered_mask(), fresh.covered_mask()
            )

    def test_trace_recording_equivalent(self):
        graph = gnp_random_graph(200, 0.03, rng=9)
        traces = {}
        for engine in ENGINES:
            proc = TwoStateMIS(graph, coins=4, engine=engine)
            res = run_until_stable(
                proc, max_rounds=MAX_ROUNDS, record_trace=True
            )
            traces[engine] = res.trace.as_arrays()
        for engine in ("frontier", "auto"):
            for key, curve in traces["full"].items():
                assert np.array_equal(traces[engine][key], curve), (
                    engine,
                    key,
                )


class TestEngineParameter:
    def test_resolve_engine_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown engine"):
            resolve_engine("warp")
        with pytest.raises(ValueError):
            TwoStateMIS(Graph(4, [(0, 1)]), coins=0, engine="warp")
        with pytest.raises(ValueError):
            ThreeStateMIS(Graph(4, [(0, 1)]), coins=0, engine="warp")

    def test_engines_accepted(self):
        graph = Graph(5, [(0, 1), (1, 2), (3, 4)])
        for engine in ENGINES:
            proc = TwoStateMIS(graph, coins=0, engine=engine)
            assert proc.engine == engine
            run_until_stable(proc, max_rounds=MAX_ROUNDS)

    def test_empty_and_singleton_graphs(self):
        for n in (0, 1):
            graph = Graph(n)
            for engine in ENGINES:
                proc = TwoStateMIS(graph, coins=0, engine=engine)
                res = run_until_stable(proc, max_rounds=50)
                assert res.stabilized

    def test_auto_switches_to_scatter(self):
        graph = gnp_random_graph(4096, 3.0 / 4096, rng=0)
        proc = TwoStateMIS(graph, coins=1, engine="auto")
        run_until_stable(proc, max_rounds=MAX_ROUNDS, verify=False)
        frontier = proc._frontier
        assert frontier is not None
        assert frontier.scatter_rounds > 0

    def test_frontier_mode_always_scatters(self):
        graph = gnp_random_graph(512, 0.02, rng=0)
        proc = TwoStateMIS(graph, coins=1, engine="frontier")
        run_until_stable(proc, max_rounds=MAX_ROUNDS, verify=False)
        assert proc._frontier.full_rounds == 0


class TestFrontierAggregates:
    def test_rebuild_matches_reductions(self):
        graph = gnp_random_graph(300, 0.05, rng=1)
        proc = TwoStateMIS(graph, coins=2, engine="full")
        frontier = FrontierAggregates(graph, proc.ops)
        frontier.rebuild(proc.black, token=proc.black)
        assert np.array_equal(
            frontier.counts, proc.ops.count(proc.black)
        )
        assert np.array_equal(
            frontier.has_black, proc.ops.exists(proc.black)
        )
        assert np.array_equal(frontier.stable, proc.stable_black_mask())
        assert np.array_equal(frontier.covered, proc.covered_mask())
        assert frontier.unstable_total == int(
            np.count_nonzero(proc.unstable_mask())
        )

    def test_removal_fallback_recomputes(self):
        # Removals from I_t cannot arise from the dynamics, but the
        # tracker must stay exact if driven there by hand.
        graph = Graph(4, [(0, 1), (2, 3)])
        ops = SparseNeighborOps(graph)
        frontier = FrontierAggregates(graph, ops)
        black = np.array([True, False, True, False])
        frontier.rebuild(black, token=black)
        assert frontier.unstable_total == 0
        new_black = np.array([True, True, True, False])  # 1 joins 0
        frontier.advance(
            new_black,
            up=np.array([1]),
            down=np.array([], dtype=np.int64),
            token=new_black,
        )
        assert np.array_equal(
            frontier.stable, new_black & ~ops.exists(new_black)
        )
        stable = frontier.stable
        covered = stable | ops.exists(stable)
        assert np.array_equal(frontier.covered, covered)
        assert frontier.unstable_total == int(
            np.count_nonzero(~covered)
        )

    def test_gather_neighbors_matches_slices(self):
        graph = gnp_random_graph(60, 0.2, rng=2)
        rng = np.random.default_rng(0)
        for k in (0, 1, 7, 60):
            verts = rng.choice(60, size=k, replace=False)
            expected = (
                np.concatenate(
                    [
                        graph.indices[
                            graph.indptr[v]:graph.indptr[v + 1]
                        ]
                        for v in verts
                    ]
                )
                if k
                else graph.indices[:0]
            )
            got = gather_neighbors(graph.indptr, graph.indices, verts)
            assert np.array_equal(got, expected)

    def test_apply_count_delta_roundtrip(self):
        graph = gnp_random_graph(200, 0.08, rng=4)
        ops = SparseNeighborOps(graph)
        rng = np.random.default_rng(1)
        mask = rng.random(200) < 0.5
        counts = ops.count(mask).astype(np.int64)
        flip_up = rng.choice(np.flatnonzero(~mask), 40, replace=False)
        flip_down = rng.choice(np.flatnonzero(mask), 40, replace=False)
        new_mask = mask.copy()
        new_mask[flip_up] = True
        new_mask[flip_down] = False
        ops.apply_count_delta(counts, flip_up, flip_down)
        assert np.array_equal(counts, ops.count(new_mask))


class TestMemoizedFullPath:
    def test_run_until_stable_two_reductions_per_round(self):
        """The memo kills the redundant step/is_stabilized recompute.

        Per round of the full-path run loop: ``is_stabilized`` misses
        on exists(black) and exists(I); the next ``_advance`` reuses
        the cached exists(black).  Total reductions for R rounds are
        exactly 2R + 2 (the +2 is the pre-loop stabilization check).
        """
        graph = gnp_random_graph(220, 0.04, rng=7)
        ops = CountingOps(graph)
        proc = TwoStateMIS(graph, coins=3, engine="full")
        proc.ops = ops
        result = run_until_stable(proc, max_rounds=MAX_ROUNDS)
        assert result.stabilized
        assert ops.reductions == 2 * result.rounds_executed + 2

    def test_aggregate_cache_invalidated_by_state_change(self):
        graph = gnp_random_graph(60, 0.1, rng=8)
        proc = TwoStateMIS(graph, coins=2, engine="full")
        before = proc.active_mask()
        proc.corrupt_vertices(range(30), black=True)
        after = proc.active_mask()
        fresh = TwoStateMIS(
            graph, coins=0, engine="full", init=proc.black
        )
        assert np.array_equal(after, fresh.active_mask())
        assert before.shape == after.shape

    def test_frontier_is_stabilized_constant_time(self):
        graph = gnp_random_graph(400, 0.02, rng=9)
        proc = TwoStateMIS(graph, coins=1, engine="frontier")
        run_until_stable(proc, max_rounds=MAX_ROUNDS, verify=False)
        ops = CountingOps(graph)
        proc.ops = ops
        # The frontier state is synced; the O(1) counter needs no
        # further reductions no matter how often it is polled.
        for _ in range(5):
            assert proc.is_stabilized()
        assert ops.reductions == 0
