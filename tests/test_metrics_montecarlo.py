"""Tests for repro.sim.metrics and repro.sim.montecarlo."""

import numpy as np
import pytest

from repro.core.two_state import TwoStateMIS
from repro.graphs.generators import complete_graph, path_graph
from repro.sim.metrics import (
    ProgressCurve,
    empirical_decay_rate,
    progress_curve,
    stabilization_profile,
)
from repro.sim.montecarlo import (
    SweepResult,
    TrialStats,
    estimate_stabilization_time,
    sweep_stabilization_times,
)
from repro.sim.runner import run_until_stable


class TestProgressCurve:
    def test_halving_times(self):
        curve = ProgressCurve(np.array([16, 8, 8, 4, 1, 0]))
        # Targets: 8 at t=1, 4 at t=3, 2 at t=4, 1 at t=4.
        assert curve.halving_times() == [1, 3, 4, 4]

    def test_decay_rate_geometric(self):
        curve = ProgressCurve(np.array([100, 50, 25, 12.5]))
        assert curve.decay_rate() == pytest.approx(0.5)

    def test_decay_rate_degenerate(self):
        assert ProgressCurve(np.array([5])).decay_rate() == 0.0
        assert ProgressCurve(np.array([], dtype=np.int64)).decay_rate() == 0.0

    def test_from_trace(self):
        result = run_until_stable(
            TwoStateMIS(complete_graph(16), coins=1), record_trace=True
        )
        curve = progress_curve(result.trace)
        assert curve.unstable[-1] == 0
        assert curve.rounds == result.rounds_executed + 1


class TestStabilizationProfile:
    def test_profile_monotone_meaning(self):
        times = stabilization_profile(
            lambda: TwoStateMIS(path_graph(20), coins=3), max_rounds=10_000
        )
        assert times.shape == (20,)
        assert (times >= 0).all()  # everything stabilizes on a path

    def test_profile_budget(self):
        times = stabilization_profile(
            lambda: TwoStateMIS(
                complete_graph(20), coins=0, init="all_black"
            ),
            max_rounds=0,
        )
        assert (times == -1).all()

    def test_profile_matches_runner(self):
        graph = complete_graph(12)
        times = stabilization_profile(
            lambda: TwoStateMIS(graph, coins=9), max_rounds=10_000
        )
        overall = run_until_stable(TwoStateMIS(graph, coins=9))
        assert times.max() == overall.stabilization_round


class TestEmpiricalDecay:
    def test_decay_rate_below_one(self):
        # On sparse graphs |V_t| decays gradually (on cliques it is
        # all-or-nothing and the rate is exactly 1 until the final drop).
        from repro.graphs.random_graphs import gnp_random_graph

        graph = gnp_random_graph(150, 0.03, rng=11)
        traces = []
        for seed in range(5):
            result = run_until_stable(
                TwoStateMIS(graph, coins=seed), record_trace=True
            )
            traces.append(result.trace)
        rate = empirical_decay_rate(traces)
        assert 0.0 < rate < 1.0

    def test_empty_input(self):
        assert empirical_decay_rate([]) == 0.0


class TestTrialStats:
    def make(self, times, failures=0):
        return TrialStats(
            times=np.array(times, dtype=np.int64),
            failures=failures,
            max_rounds=1000,
        )

    def test_basic_stats(self):
        stats = self.make([10, 20, 30])
        assert stats.trials == 3
        assert stats.mean == 20
        assert stats.median == 20
        assert stats.max == 30
        assert stats.min == 10
        assert stats.success_rate == 1.0

    def test_failures_counted(self):
        stats = self.make([10], failures=3)
        assert stats.trials == 4
        assert stats.success_rate == 0.25

    def test_empty_times(self):
        stats = self.make([], failures=2)
        assert np.isnan(stats.mean)
        assert stats.max == -1
        assert "0/2" in stats.summary()

    def test_quantile_and_ci(self):
        stats = self.make(list(range(1, 101)))
        assert stats.quantile(0.5) == pytest.approx(50.5)
        lo, hi = stats.mean_ci()
        assert lo < stats.mean < hi

    def test_ci_degenerate(self):
        stats = self.make([5])
        assert stats.mean_ci() == (5.0, 5.0)

    def test_summary_contains_key_fields(self):
        text = self.make([1, 2, 3]).summary()
        assert "mean=" in text and "median=" in text


class TestEstimation:
    def test_estimate_on_clique(self):
        stats = estimate_stabilization_time(
            lambda s: TwoStateMIS(complete_graph(16), coins=s),
            trials=10,
            max_rounds=10_000,
            seed=0,
        )
        assert stats.success_rate == 1.0
        assert stats.mean > 0

    def test_estimate_reproducible(self):
        def factory(s):
            return TwoStateMIS(complete_graph(12), coins=s)

        a = estimate_stabilization_time(factory, 8, 10_000, seed=1)
        b = estimate_stabilization_time(factory, 8, 10_000, seed=1)
        assert np.array_equal(a.times, b.times)

    def test_trials_validation(self):
        with pytest.raises(ValueError):
            estimate_stabilization_time(lambda s: None, 0, 10)

    def test_budget_failures_reported(self):
        stats = estimate_stabilization_time(
            lambda s: TwoStateMIS(
                complete_graph(24), coins=s, init="all_black"
            ),
            trials=5,
            max_rounds=1,
            seed=2,
        )
        assert stats.failures > 0


class TestSweep:
    def test_sweep_over_ns(self):
        results = sweep_stabilization_times(
            make_factory=lambda n: (
                lambda s: TwoStateMIS(complete_graph(n), coins=s)
            ),
            grid=[8, 16, 32],
            trials=5,
            max_rounds=10_000,
            seed=0,
        )
        assert set(results) == {8, 16, 32}
        assert all(stats.success_rate == 1.0 for stats in results.values())

    def test_sweep_callable_budget(self):
        results = sweep_stabilization_times(
            make_factory=lambda n: (
                lambda s: TwoStateMIS(complete_graph(n), coins=s)
            ),
            grid=[8, 16],
            trials=3,
            max_rounds=lambda n: 100 * n,
            seed=1,
        )
        assert all(s.max_rounds == 100 * n for n, s in results.items())


def _clique_grid_factory(n):
    """Module-level (picklable) make_factory for pool tests."""

    def factory(s):
        return TwoStateMIS(complete_graph(int(n)), coins=s)

    return factory


class TestSweepRegressions:
    """Regression tests for the two verified sweep bugs.

    1. A lambda/closure ``make_factory`` with ``n_jobs >= 2`` used to
       raise ``PicklingError`` from inside the process pool.
    2. ``dict(zip(grid, stats))`` silently collapsed duplicate grid
       points (grid ``[8, 8, 12]`` returned 2 entries).
    """

    def test_lambda_factory_parallelizes_via_fleet_dispatch(self):
        # The default dispatch="fleet" shards replicas, not factories:
        # lambdas parallelize with no degradation and no warning.
        kw = dict(
            make_factory=lambda n: (
                lambda s: TwoStateMIS(complete_graph(n), coins=s)
            ),
            grid=[8, 12],
            trials=3,
            max_rounds=10_000,
            seed=7,
        )
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            pooled = sweep_stabilization_times(n_jobs=2, **kw)
        solo = sweep_stabilization_times(**kw)
        assert solo.keys() == pooled.keys()
        for point in solo:
            assert np.array_equal(solo[point].times, pooled[point].times)

    def test_lambda_factory_points_dispatch_falls_back_in_process(self):
        # Only the legacy points path pickles factories; it still
        # probes up front and degrades with the warning.
        kw = dict(
            make_factory=lambda n: (
                lambda s: TwoStateMIS(complete_graph(n), coins=s)
            ),
            grid=[8, 12],
            trials=3,
            max_rounds=10_000,
            seed=7,
        )
        with pytest.warns(RuntimeWarning, match="not picklable"):
            pooled = sweep_stabilization_times(
                n_jobs=2, dispatch="points", **kw
            )
        solo = sweep_stabilization_times(**kw)
        assert solo.keys() == pooled.keys()
        for point in solo:
            assert np.array_equal(solo[point].times, pooled[point].times)

    def test_picklable_factory_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            results = sweep_stabilization_times(
                _clique_grid_factory,
                grid=[8, 12],
                trials=2,
                max_rounds=10_000,
                seed=1,
                n_jobs=2,
            )
        assert set(results) == {8, 12}

    def test_duplicate_grid_points_preserved(self):
        with pytest.warns(UserWarning, match="duplicate grid points"):
            results = sweep_stabilization_times(
                make_factory=lambda n: (
                    lambda s: TwoStateMIS(complete_graph(n), coins=s)
                ),
                grid=[8, 8, 12],
                trials=4,
                max_rounds=10_000,
                seed=0,
            )
        # One TrialStats per grid entry, none dropped.
        assert len(results.entries) == 3
        assert [point for point, _ in results.entries] == [8, 8, 12]
        assert len(results.stats_for(8)) == 2
        # Each duplicate entry ran with its own derived seed.
        first, second = results.stats_for(8)
        assert first.trials == second.trials == 4
        # Mapping-style access still works (first occurrence wins).
        assert results[8] is first
        assert set(results) == {8, 12}
        assert len(results) == 2

    def test_unique_grid_behaves_like_dict(self):
        results = sweep_stabilization_times(
            make_factory=lambda n: (
                lambda s: TwoStateMIS(complete_graph(n), coins=s)
            ),
            grid=[8, 16],
            trials=2,
            max_rounds=10_000,
            seed=2,
        )
        assert isinstance(results, SweepResult)
        assert dict(results) == {p: s for p, s in results.entries}
        assert len(results.entries) == len(results) == 2
