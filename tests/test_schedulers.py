"""Tests for repro.core.schedulers."""

import numpy as np
import pytest

from repro.core.schedulers import (
    AdversarialGreedyScheduler,
    IndependentScheduler,
    ScheduledTwoStateMIS,
    SingleVertexScheduler,
    SynchronousScheduler,
)
from repro.core.two_state import TwoStateMIS
from repro.core.verify import is_maximal_independent_set
from repro.graphs.generators import complete_graph, cycle_graph, star_graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.rng import ScriptedCoins
from repro.sim.runner import run_until_stable


class TestSynchronousEquivalence:
    def test_matches_two_state_process_exactly(self):
        # Under the synchronous scheduler, the scheduled process is the
        # Definition 4 process: bit-exact trajectories on shared coins.
        g = gnp_random_graph(40, 0.15, rng=1)
        scheduled = ScheduledTwoStateMIS(
            g, scheduler=SynchronousScheduler(), coins=42
        )
        plain = TwoStateMIS(g, coins=42)
        for _ in range(40):
            scheduled.step()
            plain.step()
            assert np.array_equal(
                scheduled.black_mask(), plain.black_mask()
            )


class TestIndependentScheduler:
    def test_q_validation(self):
        with pytest.raises(ValueError):
            IndependentScheduler(0.0)
        with pytest.raises(ValueError):
            IndependentScheduler(1.5)

    def test_q_one_selects_everyone(self):
        g = cycle_graph(10)
        proc = ScheduledTwoStateMIS(
            g, scheduler=IndependentScheduler(1.0), coins=0
        )
        assert IndependentScheduler(1.0).select(proc).all()

    @pytest.mark.parametrize("q", [0.1, 0.5, 0.9])
    def test_stabilizes_for_all_q(self, q):
        g = gnp_random_graph(60, 0.08, rng=2)
        proc = ScheduledTwoStateMIS(
            g, scheduler=IndependentScheduler(q), coins=3
        )
        result = run_until_stable(proc, max_rounds=200_000)
        assert result.stabilized
        assert is_maximal_independent_set(g, result.mis)

    def test_lower_q_slower_on_average(self):
        g = complete_graph(32)
        times = {}
        for q in (1.0, 0.25):
            total = 0
            for seed in range(10):
                proc = ScheduledTwoStateMIS(
                    g, scheduler=IndependentScheduler(q), coins=seed
                )
                total += run_until_stable(
                    proc, max_rounds=200_000
                ).stabilization_round
            times[q] = total
        assert times[0.25] > times[1.0]


class TestSingleVertexSchedulers:
    def test_random_daemon_selects_one(self):
        g = star_graph(9)
        proc = ScheduledTwoStateMIS(
            g, scheduler=SingleVertexScheduler(), coins=4
        )
        mask = SingleVertexScheduler().select(proc)
        assert mask.sum() == 1

    def test_random_daemon_stabilizes(self):
        g = cycle_graph(15)
        proc = ScheduledTwoStateMIS(
            g, scheduler=SingleVertexScheduler(), coins=5
        )
        result = run_until_stable(proc, max_rounds=500_000)
        assert result.stabilized
        assert is_maximal_independent_set(g, result.mis)

    def test_adversarial_daemon_selects_enabled_vertex(self):
        g = star_graph(6)
        proc = ScheduledTwoStateMIS(
            g, coins=0, init="all_black",
            scheduler=AdversarialGreedyScheduler(),
        )
        mask = AdversarialGreedyScheduler().select(proc)
        assert mask.sum() == 1
        assert proc.active_mask()[np.flatnonzero(mask)[0]]

    def test_adversarial_daemon_empty_when_stable(self):
        g = star_graph(4)
        init = np.array([True, False, False, False])
        proc = ScheduledTwoStateMIS(
            g, coins=0, init=init,
            scheduler=AdversarialGreedyScheduler(),
        )
        assert AdversarialGreedyScheduler().select(proc).sum() == 0

    def test_adversarial_daemon_stabilizes(self):
        g = gnp_random_graph(30, 0.2, rng=6)
        proc = ScheduledTwoStateMIS(
            g, scheduler=AdversarialGreedyScheduler(), coins=7
        )
        result = run_until_stable(proc, max_rounds=500_000)
        assert result.stabilized


class TestSchedulerHotPathRegressions:
    """Coin-stream pins for the vectorized scheduler hot paths.

    The single-vertex daemon now draws one ``bits(⌈log₂ n⌉)`` array per
    round (instead of ⌈log₂ n⌉ separate ``bits(1)`` draws) and the
    adversary scores candidates with one ``ops.count`` reduction
    (instead of a per-vertex Python loop).  These tests pin the
    resulting trajectories so any future change to the draw discipline
    or the tie-breaking is caught.
    """

    def test_single_vertex_daemon_pinned_selections(self):
        # Pinned for g = G(30, 0.2; rng=6), coins=4; regenerate the
        # constants if the coin discipline deliberately changes.
        g = gnp_random_graph(30, 0.2, rng=6)
        proc = ScheduledTwoStateMIS(
            g, scheduler=SingleVertexScheduler(), coins=4
        )
        daemon = SingleVertexScheduler()
        selections = [
            int(np.flatnonzero(daemon.select(proc))[0]) for _ in range(8)
        ]
        assert selections == [16, 26, 28, 19, 2, 23, 25, 6]

    def test_single_vertex_daemon_single_draw(self):
        # n = 30 needs ⌈log₂ 30⌉ = 5 bits: exactly ONE length-5 draw.
        g = cycle_graph(30)
        script = [[True, False, True, False, False]]  # index 5
        proc = ScheduledTwoStateMIS(
            g, scheduler=SingleVertexScheduler(), coins=ScriptedCoins(script),
            init="all_white",
        )
        mask = SingleVertexScheduler().select(proc)
        assert proc.coins.draws_consumed == 1
        assert np.flatnonzero(mask).tolist() == [5]

    def test_adversarial_daemon_matches_reference_loop(self):
        # The vectorized select must reproduce the original per-vertex
        # scoring loop (most enabled neighbours, ties → largest id).
        def reference_select(process):
            enabled = process.active_mask()
            mask = np.zeros(process.n, dtype=bool)
            if not enabled.any():
                return mask
            best_u, best_score = -1, -1
            for u in np.flatnonzero(enabled):
                score = sum(
                    1
                    for v in process.graph.neighbors(int(u))
                    if enabled[v]
                )
                if score > best_score or (
                    score == best_score and int(u) > best_u
                ):
                    best_score, best_u = score, int(u)
            mask[best_u] = True
            return mask

        g = gnp_random_graph(40, 0.15, rng=12)
        daemon = AdversarialGreedyScheduler()
        for seed in range(4):
            proc = ScheduledTwoStateMIS(g, scheduler=daemon, coins=seed)
            for _ in range(60):
                assert np.array_equal(
                    daemon.select(proc), reference_select(proc)
                )
                if proc.is_stabilized():
                    break
                proc.step()

    def test_adversarial_daemon_trajectory_unchanged(self):
        # The adversary draws no coins, so the full run is pinned.
        g = gnp_random_graph(30, 0.2, rng=6)
        proc = ScheduledTwoStateMIS(
            g, scheduler=AdversarialGreedyScheduler(), coins=7
        )
        result = run_until_stable(proc, max_rounds=500_000)
        assert result.stabilized
        assert result.stabilization_round == 13

    def test_single_vertex_daemon_pinned_stabilization(self):
        g = cycle_graph(12)
        proc = ScheduledTwoStateMIS(
            g, scheduler=SingleVertexScheduler(), coins=11
        )
        result = run_until_stable(proc, max_rounds=500_000)
        assert result.stabilized
        assert is_maximal_independent_set(g, result.mis)
        # Pinned trajectory under the one-draw-per-round discipline.
        assert result.stabilization_round == 43


class TestScheduledSemantics:
    def test_unselected_vertices_never_change(self):
        # A scheduler that selects nobody freezes the process.
        class NobodyScheduler:
            def select(self, process):
                return np.zeros(process.n, dtype=bool)

        g = complete_graph(8)
        proc = ScheduledTwoStateMIS(
            g, scheduler=NobodyScheduler(), coins=8, init="all_black"
        )
        before = proc.black_mask()
        proc.step(10)
        assert np.array_equal(proc.black_mask(), before)

    def test_corrupt_and_recover(self):
        g = cycle_graph(20)
        proc = ScheduledTwoStateMIS(
            g, scheduler=IndependentScheduler(0.5), coins=9
        )
        run_until_stable(proc, max_rounds=200_000)
        proc.corrupt(np.ones(20, dtype=bool))
        result = run_until_stable(proc, max_rounds=200_000)
        assert result.stabilized
