"""Tests for campaign checkpointing (:mod:`repro.sim.checkpoint`).

The persistence half of the PR 9 resilience contract:

* **Journal mechanics** — append/replay round-trips, bytes framing,
  scoped views, torn-tail tolerance, fingerprint/version/magic gates.
* **Campaign resume** — an estimate or sweep interrupted mid-campaign
  and re-run with ``resume`` skips completed units and produces
  results bitwise-identical to an uninterrupted run.
* **Default-directory plumbing** — the experiments CLI's
  ``--checkpoint DIR`` path: scope labels, campaign sequence numbers,
  and the child-process refusal.
"""

import numpy as np
import pytest

from repro.core.two_state import TwoStateMIS
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.checkpoint import (
    CheckpointError,
    CheckpointJournal,
    CheckpointMismatchError,
    campaign_fingerprint,
    checkpoint_scope,
    get_default_checkpoint_dir,
    open_default_journal,
    set_default_checkpoint_dir,
)
from repro.sim.montecarlo import (
    estimate_stabilization_time,
    sweep_stabilization_times,
)
from repro.sim.runner import run_many_until_stable


@pytest.fixture(autouse=True)
def _no_default_checkpoint_dir():
    # Tests that install a default directory must not leak it.
    yield
    set_default_checkpoint_dir(None)


def _factory(trial_seed):
    return TwoStateMIS(
        gnp_random_graph(30, 0.1, rng=trial_seed), coins=trial_seed
    )


def _assert_stats_equal(a, b):
    assert np.array_equal(a.times, b.times)
    assert a.failures == b.failures
    assert a.max_rounds == b.max_rounds


# ---------------------------------------------------------------------------
# Journal mechanics
# ---------------------------------------------------------------------------


def test_journal_roundtrip_and_replay(tmp_path):
    path = tmp_path / "campaign.journal"
    spec = {"kind": "test", "trials": 3}
    with CheckpointJournal(path, spec, resume=False) as journal:
        journal.put("stats", {"mean": 4.5})
        journal.put("trial:0", [True, 7])
        journal.put_bytes("shard:0:4", b"\x00payload\xff")
        assert len(journal) == 3
        assert "trial:0" in journal and "trial:9" not in journal
    with CheckpointJournal(path, spec, resume=True) as journal:
        assert journal.get("stats") == {"mean": 4.5}
        assert journal.get("trial:0") == [True, 7]
        assert journal.get_bytes("shard:0:4") == b"\x00payload\xff"
        assert journal.get("missing", "sentinel") == "sentinel"
        assert list(journal.keys()) == ["stats", "trial:0", "shard:0:4"]


def test_journal_fingerprint_mismatch_refuses_resume(tmp_path):
    path = tmp_path / "campaign.journal"
    CheckpointJournal(path, {"trials": 3}, resume=False).close()
    with pytest.raises(CheckpointMismatchError, match="different campaign"):
        CheckpointJournal(path, {"trials": 4}, resume=True)
    # resume=False starts over instead.
    journal = CheckpointJournal(path, {"trials": 4}, resume=False)
    assert len(journal) == 0
    journal.close()


def test_journal_rejects_foreign_and_future_files(tmp_path):
    alien = tmp_path / "alien.journal"
    alien.write_text('{"not": "a journal"}\n')
    with pytest.raises(CheckpointError, match="not a repro checkpoint"):
        CheckpointJournal(alien, {}, resume=True)
    future = tmp_path / "future.journal"
    fingerprint = campaign_fingerprint({})
    future.write_text(
        '{"magic": "repro-checkpoint", "version": 999, '
        f'"fingerprint": "{fingerprint}"}}\n'
    )
    with pytest.raises(CheckpointError, match="version"):
        CheckpointJournal(future, {}, resume=True)
    garbled = tmp_path / "garbled.journal"
    garbled.write_text("{{{\n")
    with pytest.raises(CheckpointError, match="header"):
        CheckpointJournal(garbled, {}, resume=True)


def test_journal_tolerates_torn_tail(tmp_path):
    path = tmp_path / "campaign.journal"
    spec = {"kind": "torn"}
    with CheckpointJournal(path, spec, resume=False) as journal:
        journal.put("trial:0", [True, 5])
        journal.put("trial:1", [True, 9])
    # Simulate a crash mid-append: a truncated final line.
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"key": "trial:2", "val')
    with CheckpointJournal(path, spec, resume=True) as journal:
        assert journal.get("trial:0") == [True, 5]
        assert journal.get("trial:1") == [True, 9]
        assert "trial:2" not in journal  # re-run, not misparsed


def test_closed_journal_refuses_writes(tmp_path):
    journal = CheckpointJournal(tmp_path / "j.journal", {}, resume=False)
    journal.close()
    journal.close()  # idempotent
    with pytest.raises(CheckpointError, match="closed"):
        journal.put("key", 1)


def test_scoped_views_nest_prefixes(tmp_path):
    with CheckpointJournal(
        tmp_path / "j.journal", {}, resume=False
    ) as journal:
        point = journal.scoped("p3:")
        point.put("stats", {"mean": 1.0})
        inner = point.scoped("chunk:")
        inner.put_bytes("0", b"abc")
        assert journal.get("p3:stats") == {"mean": 1.0}
        assert journal.get_bytes("p3:chunk:0") == b"abc"
        assert "stats" in point
        assert point.get_bytes("chunk:0") == b"abc"


def test_campaign_fingerprint_is_canonical():
    a = campaign_fingerprint({"trials": 3, "seed": 0})
    b = campaign_fingerprint({"seed": 0, "trials": 3})
    assert a == b  # key order is irrelevant
    assert a != campaign_fingerprint({"seed": 1, "trials": 3})


# ---------------------------------------------------------------------------
# Campaign resume: estimates
# ---------------------------------------------------------------------------


def test_estimate_checkpoint_caches_and_resumes(tmp_path):
    path = tmp_path / "estimate.journal"
    baseline = estimate_stabilization_time(
        _factory, trials=5, max_rounds=300, seed=2
    )
    first = estimate_stabilization_time(
        _factory, trials=5, max_rounds=300, seed=2, checkpoint=path
    )
    _assert_stats_equal(baseline, first)
    # Second run: everything is served from the journal ("stats" key).
    second = estimate_stabilization_time(
        _factory, trials=5, max_rounds=300, seed=2, checkpoint=path
    )
    _assert_stats_equal(baseline, second)


def test_estimate_checkpoint_mismatch_raises(tmp_path):
    path = tmp_path / "estimate.journal"
    estimate_stabilization_time(
        _factory, trials=5, max_rounds=300, seed=2, checkpoint=path
    )
    with pytest.raises(CheckpointMismatchError):
        estimate_stabilization_time(
            _factory, trials=6, max_rounds=300, seed=2, checkpoint=path
        )
    # resume=False starts the journal over for the new campaign.
    stats = estimate_stabilization_time(
        _factory, trials=6, max_rounds=300, seed=2, checkpoint=path,
        resume=False,
    )
    assert len(stats.times) + stats.failures == 6


def test_estimate_serial_path_resumes_per_trial(tmp_path):
    path = tmp_path / "estimate.journal"
    baseline = estimate_stabilization_time(
        _factory, trials=6, max_rounds=300, seed=4, batch=None
    )
    estimate_stabilization_time(
        _factory, trials=6, max_rounds=300, seed=4, batch=None,
        checkpoint=path,
    )
    # Drop the summary so the re-run must rebuild from trial keys.
    lines = path.read_text().splitlines()
    kept = [line for line in lines if '"key": "stats"' not in line]
    path.write_text("\n".join(kept) + "\n")
    resumed = estimate_stabilization_time(
        _factory, trials=6, max_rounds=300, seed=4, batch=None,
        checkpoint=path,
    )
    _assert_stats_equal(baseline, resumed)


# ---------------------------------------------------------------------------
# Campaign resume: sweeps
# ---------------------------------------------------------------------------


def test_acceptance_interrupted_sweep_resumes_identically(tmp_path):
    # ISSUE 9 acceptance: interrupt a sweep mid-campaign, re-run with
    # resume, get the identical SweepResult.
    grid = [0.05, 0.08, 0.11, 0.14]
    path = tmp_path / "sweep.journal"
    calls = {"count": 0}

    def make_factory(p):
        def factory(trial_seed):
            return TwoStateMIS(
                gnp_random_graph(28, p, rng=trial_seed), coins=trial_seed
            )

        return factory

    def bombing_factory(p):
        calls["count"] += 1
        if calls["count"] > 2:
            raise KeyboardInterrupt  # "Ctrl-C" after two grid points
        return make_factory(p)

    baseline = sweep_stabilization_times(
        make_factory, grid, trials=4, max_rounds=300, seed=6
    )
    with pytest.raises(KeyboardInterrupt):
        sweep_stabilization_times(
            bombing_factory, grid, trials=4, max_rounds=300, seed=6,
            checkpoint=path,
        )
    assert calls["count"] == 3  # two points completed, third bombed
    resumed = sweep_stabilization_times(
        make_factory, grid, trials=4, max_rounds=300, seed=6,
        checkpoint=path,
    )
    assert [p for p, _ in resumed.entries] == grid
    for (pa, a), (pb, b) in zip(baseline.entries, resumed.entries):
        assert pa == pb
        _assert_stats_equal(a, b)


def test_sweep_checkpoint_serves_cached_points(tmp_path):
    grid = [0.05, 0.1]
    path = tmp_path / "sweep.journal"

    def make_factory(p):
        def factory(trial_seed):
            return TwoStateMIS(
                gnp_random_graph(25, p, rng=trial_seed), coins=trial_seed
            )

        return factory

    first = sweep_stabilization_times(
        make_factory, grid, trials=3, max_rounds=300, seed=1,
        checkpoint=path,
    )

    def exploding_factory(p):
        raise AssertionError("cached points must not be re-evaluated")

    second = sweep_stabilization_times(
        exploding_factory, grid, trials=3, max_rounds=300, seed=1,
        checkpoint=path,
    )
    for (_, a), (_, b) in zip(first.entries, second.entries):
        _assert_stats_equal(a, b)


# ---------------------------------------------------------------------------
# Fleet-level shard journaling
# ---------------------------------------------------------------------------


def test_fleet_restores_journaled_shards(tmp_path):
    graph = gnp_random_graph(40, 0.1, rng=3)
    serial = [TwoStateMIS(graph, coins=50 + i) for i in range(8)]
    rs = run_many_until_stable(serial, max_rounds=400)

    path = tmp_path / "fleet.journal"
    with CheckpointJournal(path, {"kind": "fleet"}, resume=False) as journal:
        fleet = [TwoStateMIS(graph, coins=50 + i) for i in range(8)]
        run_many_until_stable(
            fleet, max_rounds=400, n_jobs=2, journal=journal.scoped("f:")
        )
        journaled = [k for k in journal.keys() if k.startswith("f:shard:")]
        assert len(journaled) == 2
    # A fresh run against the same journal re-dispatches nothing: the
    # results come straight from the journaled shard payloads.
    with CheckpointJournal(path, {"kind": "fleet"}, resume=True) as journal:
        restored = [TwoStateMIS(graph, coins=50 + i) for i in range(8)]
        rr = run_many_until_stable(
            restored, max_rounds=400, n_jobs=2, journal=journal.scoped("f:")
        )
    assert len(rr) == len(rs)
    for a, b in zip(rs, rr):
        assert a.stabilization_round == b.stabilization_round
    for a, b in zip(serial, restored):
        assert np.array_equal(a.state_vector(), b.state_vector())
        assert np.array_equal(a.coins.bits(8), b.coins.bits(8))


# ---------------------------------------------------------------------------
# Default-directory plumbing (the CLI's --checkpoint DIR)
# ---------------------------------------------------------------------------


def test_default_journal_names_scope_and_sequence(tmp_path):
    set_default_checkpoint_dir(tmp_path)
    assert get_default_checkpoint_dir() == tmp_path
    with checkpoint_scope("E7"):
        first = open_default_journal({"kind": "estimate"})
        second = open_default_journal({"kind": "estimate"})
        assert first is not None and second is not None
        try:
            assert first.path.name.startswith("E7-000-")
            assert second.path.name.startswith("E7-001-")
            # Same spec, different sequence number => distinct
            # fingerprints (and thus distinct journals).
            assert first.fingerprint != second.fingerprint
        finally:
            first.close()
            second.close()
    with checkpoint_scope("E7"):
        again = open_default_journal({"kind": "estimate"})
        assert again is not None
        try:
            # Scope entry resets the sequence: re-runs map the i-th
            # campaign to the i-th journal deterministically.
            assert again.path.name == first.path.name
        finally:
            again.close()


def test_default_journal_disabled_without_directory():
    set_default_checkpoint_dir(None)
    assert open_default_journal({"kind": "estimate"}) is None


def test_estimate_uses_default_directory(tmp_path):
    set_default_checkpoint_dir(tmp_path)
    baseline = estimate_stabilization_time(
        _factory, trials=4, max_rounds=300, seed=8
    )
    set_default_checkpoint_dir(tmp_path)  # reset the sequence counter
    cached = estimate_stabilization_time(
        _factory, trials=4, max_rounds=300, seed=8
    )
    _assert_stats_equal(baseline, cached)
    assert list(tmp_path.glob("campaign-000-*.journal"))
