"""Trajectory equivalence: vectorized engines vs literal references.

Under a shared coin source (same seed, same draw order), each vectorized
engine must produce the *exact* same state trajectory as the pure-python
pseudocode transcription in repro.core.reference.  This pins the fast
engines to the paper's definitions.
"""

import numpy as np
import pytest

from repro.core.reference import (
    ReferenceLogSwitch,
    ReferenceThreeColor,
    ReferenceThreeState,
    ReferenceTwoState,
)
from repro.core.switch import RandomizedLogSwitch
from repro.core.three_color import ThreeColorMIS
from repro.core.three_state import ThreeStateMIS
from repro.core.two_state import TwoStateMIS
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    petersen_graph,
    star_graph,
)
from repro.graphs.random_graphs import gnp_random_graph, random_tree

GRAPHS = [
    ("clique", complete_graph(12)),
    ("cycle", cycle_graph(13)),
    ("star", star_graph(9)),
    ("petersen", petersen_graph()),
    ("gnp", gnp_random_graph(25, 0.2, rng=0)),
    ("tree", random_tree(20, rng=1)),
]
ROUNDS = 40


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
class TestTwoStateEquivalence:
    def test_trajectory_identical(self, name, graph):
        seed = 101
        fast = TwoStateMIS(graph, coins=seed)
        ref = ReferenceTwoState(graph, coins=seed)
        assert np.array_equal(fast.black_mask(), ref.black_mask())
        for t in range(ROUNDS):
            fast.step()
            ref.step()
            assert np.array_equal(
                fast.black_mask(), ref.black_mask()
            ), f"{name}: divergence at round {t + 1}"

    def test_active_and_stable_sets_agree(self, name, graph):
        seed = 202
        fast = TwoStateMIS(graph, coins=seed)
        ref = ReferenceTwoState(graph, coins=seed)
        for _ in range(15):
            assert np.array_equal(fast.active_mask(), ref.active_mask())
            assert np.array_equal(
                fast.stable_black_mask(), ref.stable_black_mask()
            )
            assert fast.is_stabilized() == ref.is_stabilized()
            fast.step()
            ref.step()


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_three_state_equivalence(name, graph):
    seed = 303
    fast = ThreeStateMIS(graph, coins=seed)
    ref = ReferenceThreeState(graph, coins=seed)
    assert np.array_equal(fast.state_vector(), ref.states)
    for t in range(ROUNDS):
        fast.step()
        ref.step()
        assert np.array_equal(
            fast.state_vector(), ref.states
        ), f"{name}: divergence at round {t + 1}"


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_switch_equivalence(name, graph):
    seed = 404
    zeta = 0.25
    fast = RandomizedLogSwitch(graph, coins=seed, zeta=zeta)
    ref = ReferenceLogSwitch(graph, coins=seed, zeta=zeta)
    assert np.array_equal(fast.levels, ref.levels)
    for t in range(ROUNDS):
        fast.step()
        ref.step()
        assert np.array_equal(
            fast.levels, ref.levels
        ), f"{name}: switch divergence at round {t + 1}"
        assert np.array_equal(fast.sigma(), ref.sigma())


@pytest.mark.parametrize("name,graph", GRAPHS, ids=[n for n, _ in GRAPHS])
def test_three_color_equivalence(name, graph):
    seed = 505
    a = 16.0
    fast = ThreeColorMIS(graph, coins=seed, a=a)
    ref = ReferenceThreeColor(graph, coins=seed, a=a)
    assert np.array_equal(fast.colors, ref.colors)
    for t in range(ROUNDS):
        fast.step()
        ref.step()
        assert np.array_equal(
            fast.colors, ref.colors
        ), f"{name}: color divergence at round {t + 1}"
        assert np.array_equal(
            fast.switch.levels, ref.switch.levels
        ), f"{name}: switch divergence at round {t + 1}"


def test_equivalence_with_explicit_init():
    graph = cycle_graph(10)
    init = np.array([True] * 5 + [False] * 5)
    fast = TwoStateMIS(graph, coins=7, init=init)
    ref = ReferenceTwoState(graph, coins=7, init=init)
    for _ in range(25):
        fast.step()
        ref.step()
    assert np.array_equal(fast.black_mask(), ref.black_mask())
