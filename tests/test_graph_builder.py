"""Tests for repro.graphs.graph.GraphBuilder."""

import pytest

from repro.graphs.graph import GraphBuilder


def test_empty_builder():
    assert GraphBuilder().build().n == 0


def test_add_vertex_returns_index():
    b = GraphBuilder()
    assert b.add_vertex() == 0
    assert b.add_vertex() == 1
    assert b.n == 2


def test_add_vertices_returns_range():
    b = GraphBuilder(2)
    r = b.add_vertices(3)
    assert list(r) == [2, 3, 4]
    assert b.n == 5


def test_add_vertices_negative_rejected():
    with pytest.raises(ValueError):
        GraphBuilder().add_vertices(-1)


def test_add_edge_chains():
    g = GraphBuilder(3).add_edge(0, 1).add_edge(1, 2).build()
    assert g.m == 2


def test_add_edge_requires_existing_vertices():
    with pytest.raises(ValueError):
        GraphBuilder(2).add_edge(0, 2)


def test_add_edge_rejects_self_loop():
    with pytest.raises(ValueError):
        GraphBuilder(2).add_edge(1, 1)


def test_add_clique():
    g = GraphBuilder(4).add_clique([0, 1, 2, 3]).build()
    assert g.m == 6


def test_add_path():
    g = GraphBuilder(4).add_path([0, 1, 2, 3]).build()
    assert g.m == 3
    assert g.has_edge(2, 3)


def test_add_cycle():
    g = GraphBuilder(4).add_cycle([0, 1, 2, 3]).build()
    assert g.m == 4
    assert g.has_edge(3, 0)


def test_add_cycle_too_short():
    with pytest.raises(ValueError):
        GraphBuilder(2).add_cycle([0, 1])


def test_negative_initial_n():
    with pytest.raises(ValueError):
        GraphBuilder(-1)


def test_build_is_repeatable():
    b = GraphBuilder(2).add_edge(0, 1)
    assert b.build() == b.build()
