"""Tests for repro.sim.runner and repro.sim.trace."""

import numpy as np
import pytest

from repro.core.two_state import TwoStateMIS
from repro.graphs.generators import complete_graph, path_graph, star_graph
from repro.graphs.graph import Graph
from repro.sim.runner import run_until_stable
from repro.sim.trace import TraceRecorder


class TestRunUntilStable:
    def test_already_stable_returns_zero(self):
        g = path_graph(3)
        proc = TwoStateMIS(g, coins=0, init=np.array([False, True, False]))
        result = run_until_stable(proc)
        assert result.stabilized
        assert result.stabilization_round == 0
        assert result.rounds_executed == 0
        assert result.mis.tolist() == [1]

    def test_budget_exhaustion(self):
        g = complete_graph(30)
        proc = TwoStateMIS(g, coins=0, init="all_black")
        result = run_until_stable(proc, max_rounds=0)
        assert not result.stabilized
        assert result.stabilization_round is None
        assert result.mis is None

    def test_exact_stabilization_round(self):
        # Re-run the same seed twice; with check_every=1 the reported
        # round must be the first stable round: stepping a fresh copy
        # that many rounds is stable, one fewer is not.
        g = complete_graph(12)
        result = run_until_stable(TwoStateMIS(g, coins=9))
        t = result.stabilization_round
        assert t is not None and t > 0
        probe = TwoStateMIS(g, coins=9)
        probe.step(t - 1)
        assert not probe.is_stabilized()
        probe.step(1)
        assert probe.is_stabilized()

    def test_check_every_overshoots_boundedly(self):
        g = complete_graph(12)
        exact = run_until_stable(TwoStateMIS(g, coins=9)).stabilization_round
        coarse = run_until_stable(
            TwoStateMIS(g, coins=9), check_every=5
        ).stabilization_round
        assert exact <= coarse < exact + 5

    def test_invalid_args(self):
        proc = TwoStateMIS(path_graph(3), coins=0)
        with pytest.raises(ValueError):
            run_until_stable(proc, max_rounds=-1)
        with pytest.raises(ValueError):
            run_until_stable(proc, check_every=0)

    def test_verify_flag(self):
        g = star_graph(8)
        result = run_until_stable(TwoStateMIS(g, coins=1), verify=True)
        assert result.stabilized  # assert_valid_mis did not raise

    def test_continues_from_current_round(self):
        g = complete_graph(16)
        proc = TwoStateMIS(g, coins=2, init="all_black")
        proc.step(3)
        result = run_until_stable(proc, max_rounds=10_000)
        # stabilization_round counts from where the runner started.
        assert result.stabilized
        assert proc.round == 3 + result.rounds_executed


class TestTraceRecording:
    def test_trace_lengths(self):
        g = complete_graph(10)
        result = run_until_stable(
            TwoStateMIS(g, coins=3), record_trace=True
        )
        trace = result.trace
        assert trace is not None
        # One snapshot for the initial state + one per executed round.
        assert trace.rounds == result.rounds_executed + 1
        arrays = trace.as_arrays()
        assert set(arrays) == {"black", "active", "stable_black", "unstable"}

    def test_unstable_curve_ends_at_zero(self):
        g = star_graph(12)
        result = run_until_stable(
            TwoStateMIS(g, coins=4), record_trace=True
        )
        assert result.trace.unstable_counts[-1] == 0

    def test_unstable_monotone_nonincreasing(self):
        # Stable vertices stay stable, so |V_t| never increases.
        g = complete_graph(20)
        result = run_until_stable(
            TwoStateMIS(g, coins=5), record_trace=True
        )
        curve = result.trace.unstable_counts
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_state_recording(self):
        g = path_graph(5)
        result = run_until_stable(
            TwoStateMIS(g, coins=6), record_states=True
        )
        vectors = result.trace.state_vectors
        assert vectors is not None
        assert len(vectors) == result.rounds_executed + 1
        assert all(v.shape == (5,) for v in vectors)

    def test_recorder_standalone(self):
        recorder = TraceRecorder()
        proc = TwoStateMIS(path_graph(4), coins=7)
        recorder.snapshot(proc)
        proc.step()
        recorder.snapshot(proc)
        assert recorder.trace.rounds == 2


class TestRunMethodOnProcess:
    def test_process_run_shortcut(self):
        g = path_graph(6)
        result = TwoStateMIS(g, coins=8).run(max_rounds=10_000)
        assert result.stabilized

    def test_single_vertex_graph(self):
        result = TwoStateMIS(Graph(1), coins=0).run()
        assert result.stabilized
        assert result.mis.tolist() == [0]

    def test_empty_graph(self):
        result = TwoStateMIS(Graph(0), coins=0).run()
        assert result.stabilized
        assert result.mis.size == 0
