"""Tests for the repro-lint invariant checker suite (tools/repro_lint).

Each AST rule gets three fixtures: a true positive (the rule fires), a
clean negative (it does not), and a suppressed positive (a
``# repro-lint: disable=<rule>`` pragma silences it).  The end-to-end
tests then assert the real repository lints clean at HEAD — the same
gate ``make lint`` and CI run.
"""

import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.repro_lint.core import (  # noqa: E402
    Config,
    Finding,
    SourceFile,
    all_rules,
    load_config,
    path_matches,
    run_lint,
)
from tools.repro_lint.dataflow import ProjectIndex  # noqa: E402
from tools.repro_lint.rules import bench_floors, docs_drift  # noqa: E402

#: Default fixture location: inside every AST rule's path scope.
CORE_REL = "src/repro/core/fixture.py"


def lint_source(tmp_path, text, rule, rel=CORE_REL, config=None):
    """Lint one fixture snippet with a single rule; returns findings."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text))
    return run_lint(
        [path],
        tmp_path,
        config=config or Config(root=tmp_path),
        select=[rule],
    )


# ----------------------------------------------------------------------
# coin-purity
# ----------------------------------------------------------------------
def test_coin_purity_flags_conditional_draw(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def resolve(coins, flag):
            if flag:
                return coins.bits(8)
            return None
        """,
        "coin-purity",
    )
    assert len(findings) == 1
    assert "conditional coin draw" in findings[0].message


def test_coin_purity_flags_direct_numpy_random(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def draw(n):
            return np.random.rand(n)
        """,
        "coin-purity",
    )
    assert len(findings) == 1
    assert "np.random.rand" in findings[0].message


def test_coin_purity_flags_default_rng_and_random_import(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import random
        from numpy.random import default_rng
        """,
        "coin-purity",
    )
    assert {("stdlib" in f.message) for f in findings} == {True, False}
    assert len(findings) == 2


def test_coin_purity_clean_unconditional_draw(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def step(self):
            phi = self.coins.bits(self.n)
            return phi
        """,
        "coin-purity",
    )
    assert findings == []


def test_coin_purity_draws_in_loops_are_fine(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def run(self, rounds):
            for _ in range(rounds):
                phi = self.coins.bits(self.n)
        """,
        "coin-purity",
    )
    assert findings == []


def test_coin_purity_pragma_suppresses(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def resolve(coins, init):
            if init == "random":
                return coins.bits(8)  # repro-lint: disable=coin-purity
            return init
        """,
        "coin-purity",
    )
    assert findings == []


def test_coin_purity_ignores_files_outside_core(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def draw(n):
            return np.random.rand(n)
        """,
        "coin-purity",
        rel="src/repro/baselines/fixture.py",
    )
    assert findings == []


# ----------------------------------------------------------------------
# cache-invalidation
# ----------------------------------------------------------------------
def test_cache_invalidation_flags_unabsolved_mutation(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        class P:
            def corrupt(self, idx):
                self.black[idx] = True
        """,
        "cache-invalidation",
    )
    assert len(findings) == 1
    assert "identity-cached" in findings[0].message


def test_cache_invalidation_invalidator_absolves(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        class P:
            def corrupt(self, idx):
                self.black[idx] = True
                self._state_changed()
        """,
        "cache-invalidation",
    )
    assert findings == []


def test_cache_invalidation_rebinding_absolves(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        class P:
            def corrupt(self, idx, new):
                self.black[idx] = True
                self.black = self.black.copy()
        """,
        "cache-invalidation",
    )
    assert findings == []


def test_cache_invalidation_frozen_views_never_absolved(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def mutate(graph):
            graph.indptr[0] = 1
            graph._state_changed()
        """,
        "cache-invalidation",
    )
    assert len(findings) == 1
    assert "immutable Graph view" in findings[0].message


def test_cache_invalidation_pragma_suppresses(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        class P:
            def corrupt(self, idx):
                self.black[idx] = True  # repro-lint: disable=cache-invalidation
        """,
        "cache-invalidation",
    )
    assert findings == []


def test_cache_invalidation_config_allowlist(tmp_path):
    config = Config(
        root=tmp_path,
        rules={"cache-invalidation": {"allow": [CORE_REL]}},
    )
    findings = lint_source(
        tmp_path,
        """
        class P:
            def corrupt(self, idx):
                self.black[idx] = True
        """,
        "cache-invalidation",
        config=config,
    )
    assert findings == []


# ----------------------------------------------------------------------
# dtype-discipline
# ----------------------------------------------------------------------
def test_dtype_flags_bare_constructors_and_widening(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def build(n, x):
            a = np.zeros(n)
            b = np.cumsum(x)
            c = x.sum(axis=1)
            return a, b, c
        """,
        "dtype-discipline",
    )
    assert len(findings) == 3


def test_dtype_clean_with_explicit_dtype(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def build(n, x):
            a = np.zeros(n, dtype=np.int64)
            b = np.cumsum(x, dtype=np.int64)
            c = x.sum(axis=1, dtype=np.int32)
            d = x.sum()  # scalar reduction: no array accumulator
            return a, b, c, d
        """,
        "dtype-discipline",
    )
    assert findings == []


def test_dtype_pragma_suppresses(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def build(n):
            return np.zeros(n)  # repro-lint: disable=dtype-discipline
        """,
        "dtype-discipline",
    )
    assert findings == []


# ----------------------------------------------------------------------
# hot-loop-alloc
# ----------------------------------------------------------------------
def test_hot_loop_alloc_flags_allocation_in_run_loop(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def run(self, rounds):
            for _ in range(rounds):
                buf = np.zeros(self.n, dtype=bool)
        """,
        "hot-loop-alloc",
    )
    assert len(findings) == 1
    assert "every round" in findings[0].message


def test_hot_loop_alloc_clean_with_reuse_buffer(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def run(self, rounds):
            buf = np.zeros(self.n, dtype=bool)
            for _ in range(rounds):
                buf.fill(False)
        """,
        "hot-loop-alloc",
    )
    assert findings == []


def test_hot_loop_alloc_ignores_non_run_functions(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def retire(self, rows):
            for r in rows:
                scratch = np.zeros(self.n, dtype=bool)
        """,
        "hot-loop-alloc",
    )
    assert findings == []


def test_hot_loop_alloc_pragma_suppresses(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def run(self, rounds):
            for _ in range(rounds):
                buf = np.zeros(self.n, dtype=bool)  # repro-lint: disable=hot-loop-alloc
        """,
        "hot-loop-alloc",
    )
    assert findings == []


# ----------------------------------------------------------------------
# coin-flow (dataflow rule: transitive conditional draws)
# ----------------------------------------------------------------------
def test_coin_flow_flags_conditional_transitive_draw(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        class Engine:
            def _draw(self):
                return self.coins.bits(8)

            def _maybe(self):
                return self._draw()

            def step(self, flag):
                if flag:
                    self._maybe()
        """,
        "coin-flow",
    )
    assert len(findings) == 1
    assert "transitively draws" in findings[0].message
    assert "_maybe" in findings[0].message  # witness chain


def test_coin_flow_clean_unconditional_and_loops(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        class Engine:
            def _draw(self):
                return self.coins.bits(8)

            def step(self):
                for _ in range(4):
                    self._draw()

            def run(self):
                self._draw()
        """,
        "coin-flow",
    )
    assert findings == []


def test_coin_flow_literal_draws_left_to_coin_purity(tmp_path):
    # A literal conditional draw is coin-purity's finding, not ours.
    findings = lint_source(
        tmp_path,
        """
        class Engine:
            def step(self, flag):
                if flag:
                    return self.coins.bits(8)
        """,
        "coin-flow",
    )
    assert findings == []


def test_coin_flow_only_fires_in_hot_functions(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        class Engine:
            def _draw(self):
                return self.coins.bits(8)

            def describe(self, flag):
                if flag:
                    self._draw()
        """,
        "coin-flow",
    )
    assert findings == []


def test_coin_flow_pragma_suppresses(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        class Engine:
            def _draw(self):
                return self.coins.bits(8)

            def step(self, flag):
                if flag:
                    self._draw()  # repro-lint: disable=coin-flow
        """,
        "coin-flow",
    )
    assert findings == []


# ----------------------------------------------------------------------
# parallel-safety
# ----------------------------------------------------------------------
def test_parallel_safety_flags_lambda_into_pool(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def sweep(pool, xs):
            return pool.map(lambda x: x + 1, xs)
        """,
        "parallel-safety",
    )
    assert len(findings) == 1
    assert "lambda" in findings[0].message


def test_parallel_safety_flags_local_def_and_bound_method(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        class Sweeper:
            def go(self, executor, xs):
                def work(x):
                    return x

                a = executor.submit(work, xs)
                b = executor.map(self._work, xs)
                return a, b
        """,
        "parallel-safety",
    )
    messages = " | ".join(f.message for f in findings)
    assert "locally defined function `work`" in messages
    assert "bound method `self._work`" in messages
    assert len(findings) == 2


def test_parallel_safety_flags_lambda_at_n_jobs_site(tmp_path):
    # A generic callee advertising n_jobs still pickles its callables.
    findings = lint_source(
        tmp_path,
        """
        def run_sweep(grid):
            return some_external_sweep(
                lambda s: make(s), grid, n_jobs=4
            )
        """,
        "parallel-safety",
    )
    assert len(findings) == 1
    assert "n_jobs" in findings[0].message


def test_parallel_safety_exempts_fleet_dispatch_callees(tmp_path):
    # The repro.parallel fleet entry points shard replicas in-process:
    # lambdas/closures never cross the pickle boundary there.
    findings = lint_source(
        tmp_path,
        """
        def run_sweep(grid):
            def factory(seed):
                return make(seed)

            a = sweep_stabilization_times(
                lambda n: make(n), grid, n_jobs=4
            )
            b = estimate_stabilization_time(factory, 8, 100, n_jobs=2)
            return a, b
        """,
        "parallel-safety",
    )
    assert findings == []


def test_parallel_safety_flags_legacy_points_dispatch(tmp_path):
    # dispatch="points" opts back into the pickling executor path.
    findings = lint_source(
        tmp_path,
        """
        def run_sweep(grid):
            return sweep_stabilization_times(
                lambda n: make(n), grid, n_jobs=4, dispatch="points"
            )
        """,
        "parallel-safety",
    )
    assert len(findings) == 1
    assert "n_jobs" in findings[0].message


def test_parallel_safety_flags_worker_global_mutation(tmp_path):
    # Indexed path: the worker is resolved through the call graph.
    findings = lint_source(
        tmp_path,
        """
        _CACHE = {}

        def _record(x):
            _CACHE[x] = x

        def _work(x):
            _record(x)
            return x

        def sweep(pool, xs):
            return pool.map(_work, xs)
        """,
        "parallel-safety",
    )
    assert len(findings) == 1
    assert "_CACHE" in findings[0].message
    assert "start-method" in findings[0].message


def test_parallel_safety_same_file_fallback_outside_index(tmp_path):
    # tools/ is outside the dataflow roots: same-file scan still works.
    findings = lint_source(
        tmp_path,
        """
        _SEEN = []

        def _work(x):
            _SEEN.append(x)
            global _SEEN_COUNT
            _SEEN_COUNT = len(_SEEN)
            return x

        def sweep(pool, xs):
            return pool.map(_work, xs)
        """,
        "parallel-safety",
        rel="tools/fixture.py",
    )
    assert len(findings) == 1
    assert "_SEEN_COUNT" in findings[0].message


def test_parallel_safety_clean_module_level_worker(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def _work(x):
            return x * 2

        def sweep(pool, xs):
            return pool.map(_work, xs)
        """,
        "parallel-safety",
    )
    assert findings == []


def test_parallel_safety_exempts_supervised_run_jobs(tmp_path):
    # SupervisedPool.run_jobs keeps its callable keywords on the
    # master side (local_runner/validate/on_result are supervision
    # hooks) — lambdas there are idiomatic, not a pickle hazard.
    findings = lint_source(
        tmp_path,
        """
        def dispatch(pool, jobs, registry):
            return pool.run_jobs(
                jobs,
                local_runner=lambda job: run_shard(registry, job),
                validate=lambda job, result: True,
            )
        """,
        "parallel-safety",
    )
    assert findings == []


def test_parallel_safety_exempts_master_guarded_mutation(tmp_path):
    # A function that bails out of child processes before mutating
    # (the open_default_journal idiom) is master-side only: the
    # mutation can never happen in a worker's module copy.
    findings = lint_source(
        tmp_path,
        """
        import multiprocessing as mp

        _counter = 0

        def _next_index():
            global _counter
            if mp.parent_process() is not None:
                return None
            _counter += 1
            return _counter

        def _work(x):
            _next_index()
            return x

        def sweep(pool, xs):
            return pool.map(_work, xs)
        """,
        "parallel-safety",
    )
    assert findings == []


def test_parallel_safety_unguarded_mutation_still_flagged(tmp_path):
    # Same shape without the parent_process() guard stays a finding.
    findings = lint_source(
        tmp_path,
        """
        _counter = 0

        def _next_index():
            global _counter
            _counter += 1
            return _counter

        def _work(x):
            _next_index()
            return x

        def sweep(pool, xs):
            return pool.map(_work, xs)
        """,
        "parallel-safety",
    )
    assert len(findings) == 1
    assert "_counter" in findings[0].message


def test_parallel_safety_pragma_suppresses(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def sweep(pool, xs):
            return pool.map(lambda x: x + 1, xs)  # repro-lint: disable=parallel-safety
        """,
        "parallel-safety",
    )
    assert findings == []


# ----------------------------------------------------------------------
# alias-escape
# ----------------------------------------------------------------------
def test_alias_escape_flags_subscript_store(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def corrupt(graph):
            d = graph.degrees()
            d[0] = 99
        """,
        "alias-escape",
    )
    assert len(findings) == 1
    assert "degrees()" in findings[0].message


def test_alias_escape_tracks_unpack_and_method_mutation(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def corrupt(graph):
            indptr, indices = graph.adjacency_csr()
            indices.fill(0)
        """,
        "alias-escape",
    )
    assert len(findings) == 1
    assert "adjacency_csr()" in findings[0].message


def test_alias_escape_tracks_row_views_and_augassign(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def corrupt(graph, v):
            bits = graph.adjacency_bitset()
            row = bits[v]
            row |= 1
        """,
        "alias-escape",
    )
    assert len(findings) == 1
    assert "adjacency_bitset()" in findings[0].message


def test_alias_escape_copy_breaks_the_alias(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def fine(graph):
            d = graph.degrees().copy()
            d[0] = 99
            e = graph.degrees()
            e = e.astype(np.int64)
            e[0] = 99
            f = np.array(graph.adjacency_dense())
            f[0, 0] = True
        """,
        "alias-escape",
    )
    assert findings == []


def test_alias_escape_out_keyword_and_ufunc_at(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def corrupt(graph, idx, vals):
            d = graph.degrees()
            np.add.at(d, idx, vals)
            np.cumsum(vals, out=d)
        """,
        "alias-escape",
    )
    assert len(findings) == 2


def test_alias_escape_pragma_suppresses(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def corrupt(graph):
            d = graph.degrees()
            d[0] = 99  # repro-lint: disable=alias-escape
        """,
        "alias-escape",
    )
    assert findings == []


# ----------------------------------------------------------------------
# reduction-budget
# ----------------------------------------------------------------------
def test_reduction_budget_flags_over_budget_loop(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def _advance(self, rounds):
            # reduction-budget: 1
            for _ in range(rounds):
                a = self.ops.count(self.black)
                b = self.ops.exists(self.white)
        """,
        "reduction-budget",
    )
    assert len(findings) == 1
    assert "2 lexical" in findings[0].message
    assert "reduction-budget: 1" in findings[0].message


def test_reduction_budget_requires_annotation_in_run_paths(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def run(self):
            while True:
                c = self.ops.count(self.black)
        """,
        "reduction-budget",
    )
    assert len(findings) == 1
    assert "without a" in findings[0].message


def test_reduction_budget_clean_within_budget_and_helpers(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def run(self, rounds):
            # reduction-budget: 2
            for _ in range(rounds):
                a = self.ops.count(self.black)
                b = self.ops.exists(self.white)

        def helper(self, xs):
            for x in xs:
                self.ops.count(x)
        """,
        "reduction-budget",
    )
    assert findings == []


def test_reduction_budget_annotation_on_loop_line(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def run(self, rounds):
            for _ in range(rounds):  # reduction-budget: 1
                self.ops.count(self.black)
        """,
        "reduction-budget",
    )
    assert findings == []


def test_reduction_budget_counts_configured_wrappers(tmp_path):
    config = Config(
        root=tmp_path,
        rules={"reduction-budget": {"methods": ["_count_nbrs"]}},
    )
    findings = lint_source(
        tmp_path,
        """
        def run(self):
            while True:
                self._count_nbrs(self.black)
        """,
        "reduction-budget",
        config=config,
    )
    assert len(findings) == 1


def test_reduction_budget_pragma_suppresses(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def run(self):
            while True:  # repro-lint: disable=reduction-budget
                c = self.ops.count(self.black)
        """,
        "reduction-budget",
    )
    assert findings == []


# ----------------------------------------------------------------------
# Dataflow core (tools/repro_lint/dataflow.py)
# ----------------------------------------------------------------------
def _write_pkg(tmp_path, files):
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))


def test_dataflow_resolves_reexport_chains(tmp_path):
    _write_pkg(
        tmp_path,
        {
            "src/repro/__init__.py": "from repro.core import Engine\n",
            "src/repro/core/__init__.py": (
                "from repro.core.engine import Engine\n"
            ),
            "src/repro/core/engine.py": (
                "class Engine:\n    def run(self):\n        pass\n"
            ),
            "src/repro/user.py": (
                "from repro import Engine\n\n"
                "def make():\n    return Engine()\n"
            ),
        },
    )
    index = ProjectIndex.build(tmp_path)
    assert index.unresolved_imports == []
    assert (
        index.resolve_in_module("repro.user", "Engine")
        == "repro.core.engine.Engine"
    )


def test_dataflow_import_cycles_terminate(tmp_path):
    # Mutually recursive re-exports with no definition anywhere: the
    # resolver must terminate (cycle guard) and report, not recurse.
    _write_pkg(
        tmp_path,
        {
            "src/repro/a.py": "from repro.b import ghost\n",
            "src/repro/b.py": "from repro.a import ghost\n",
        },
    )
    index = ProjectIndex.build(tmp_path)
    assert len(index.unresolved_imports) == 2
    # A resolvable cycle (modules importing each other's real
    # functions) resolves fine.
    _write_pkg(
        tmp_path,
        {
            "src/repro/c.py": (
                "from repro.d import g\n\ndef f():\n    return g()\n"
            ),
            "src/repro/d.py": (
                "from repro.c import f\n\ndef g():\n    return f()\n"
            ),
        },
    )
    index = ProjectIndex.build(tmp_path)
    assert index.resolve_qualified("repro.c.f") == "repro.c.f"
    assert "repro.d.g" in index.callees("repro.c.f")
    assert "repro.c.f" in index.callees("repro.d.g")


def test_dataflow_dynamic_calls_degrade_to_warning(tmp_path):
    _write_pkg(
        tmp_path,
        {
            "src/repro/dyn.py": (
                "def run(table, key):\n"
                "    return table[key]()\n"
            ),
        },
    )
    index = ProjectIndex.build(tmp_path)
    assert any("dynamic call" in w for w in index.dynamic_calls)
    assert index.unresolved_imports == []  # warnings, not failures


def test_dataflow_dispatch_covers_subclass_overrides(tmp_path):
    _write_pkg(
        tmp_path,
        {
            "src/repro/base.py": (
                "class Base:\n"
                "    def step(self):\n"
                "        self._advance()\n"
                "    def _advance(self):\n"
                "        raise NotImplementedError\n"
            ),
            "src/repro/impl.py": (
                "from repro.base import Base\n\n"
                "class Impl(Base):\n"
                "    def _advance(self):\n"
                "        return self.coins.bits(4)\n"
            ),
        },
    )
    index = ProjectIndex.build(tmp_path)
    targets = index.dispatch("repro.base.Base", "_advance")
    assert "repro.impl.Impl._advance" in targets
    # step reaches the drawing override through the dispatch edge.
    assert "repro.base.Base.step" in index.coin_reaching()


def test_dataflow_unresolved_import_surfaces_as_run_lint_warning(tmp_path):
    warnings = []
    findings = lint_source_with_errors(
        tmp_path,
        """
        from repro.nowhere import ghost

        class Engine:
            def step(self, flag):
                if flag:
                    ghost()
        """,
        "coin-flow",
        warnings,
    )
    assert findings == []
    assert any(
        "warning" in w and "unresolved import" in w for w in warnings
    )


def lint_source_with_errors(tmp_path, text, rule, errors, rel=CORE_REL):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text))
    return run_lint(
        [path],
        tmp_path,
        config=Config(root=tmp_path),
        select=[rule],
        on_error=errors.append,
    )


def test_dataflow_repo_has_zero_unresolved_imports():
    # Acceptance gate: every intra-`repro` import in src/ resolves.
    index = ProjectIndex.build(REPO_ROOT)
    assert index.unresolved_imports == [], "\n".join(
        index.unresolved_imports
    )
    # Sanity: the index actually saw the codebase.
    assert len(index.modules) > 50
    assert index.resolve_qualified("repro.core.process.MISProcess")


def test_dataflow_hot_set_and_coin_closure_on_repo():
    index = ProjectIndex.build(REPO_ROOT)
    hot = index.hot_functions()
    draws = index.coin_reaching()
    assert "repro.core.process.MISProcess.step" in hot
    assert "repro.core.two_state.TwoStateMIS._advance" in hot
    assert "repro.core.two_state.TwoStateMIS._advance" in draws
    chain = index.draw_chain("repro.core.process.MISProcess.run")
    assert chain, "run() must transitively reach a draw"


# ----------------------------------------------------------------------
# bench-floors (project rule: validates BENCH_*.json artifacts)
# ----------------------------------------------------------------------
def _bench_entry(**overrides):
    entry = {
        "workload": "w",
        "seconds": 1.0,
        "speedup": 5.0,
        "floor": 3.0,
        "commit": "abc1234",
    }
    entry.update(overrides)
    return entry


def test_bench_floors_clean_file(tmp_path):
    path = tmp_path / "BENCH_ok.json"
    path.write_text(json.dumps([_bench_entry()]))
    findings, files = bench_floors.check_root(tmp_path)
    assert files == [path]
    assert findings == []


def test_bench_floors_flags_regression_and_missing_fields(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text(
        json.dumps(
            [
                _bench_entry(speedup=1.0),  # below its 3.0 floor
                {"workload": "incomplete"},  # missing fields
                _bench_entry(workload="dup"),
                _bench_entry(workload="dup"),  # duplicate label
                _bench_entry(workload="ungated", floor=0),
            ]
        )
    )
    findings, _ = bench_floors.check_root(tmp_path)
    messages = " | ".join(f.message for f in findings)
    assert "regressed below" in messages
    assert "missing fields" in messages
    assert "duplicate workload label" in messages
    assert "ungated" in messages
    assert len(findings) == 4


def test_bench_floors_reports_absent_trajectory(tmp_path):
    rule = all_rules()["bench-floors"]
    from tools.repro_lint.core import LintContext

    findings = rule.check_project(LintContext(config=Config(root=tmp_path)))
    assert len(findings) == 1
    assert "no BENCH_*.json" in findings[0].message


def test_bench_floors_unreadable_file(tmp_path):
    path = tmp_path / "BENCH_broken.json"
    path.write_text("{not json")
    findings, _ = bench_floors.check_root(tmp_path)
    assert len(findings) == 1
    assert "unreadable" in findings[0].message


# ----------------------------------------------------------------------
# docs-drift (project rule: docs/API.md freshness)
# ----------------------------------------------------------------------
def test_docs_drift_heading_diff():
    committed = "### `a.b` *function*\n### `a.c` *class*\n"
    fresh = "### `a.b` *function*\n### `a.d` *class*\n"
    drift = docs_drift.drifted_headings(committed, fresh)
    assert drift == ["### `a.c` *class*", "### `a.d` *class*"]
    assert docs_drift.drifted_headings(committed, committed) == []


def test_docs_drift_committed_reference_is_fresh():
    # Same invariant as tools/check_docs.py, through the rule's path.
    committed = (REPO_ROOT / "docs" / "API.md").read_text()
    assert committed == docs_drift.fresh_api_text(REPO_ROOT)


# ----------------------------------------------------------------------
# Core machinery
# ----------------------------------------------------------------------
def test_file_level_pragma_suppresses_whole_module(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        # repro-lint: disable-file=dtype-discipline
        import numpy as np

        def build(n):
            return np.zeros(n), np.ones(n)
        """,
        "dtype-discipline",
    )
    assert findings == []


def test_suppressed_checks_line_and_rule():
    src = SourceFile(
        pathlib.Path("x.py"),
        "x.py",
        "a = 1  # repro-lint: disable=dtype-discipline\nb = 2\n",
    )
    hit = Finding("x.py", 1, 0, "dtype-discipline", "m")
    other_line = Finding("x.py", 2, 0, "dtype-discipline", "m")
    other_rule = Finding("x.py", 1, 0, "coin-purity", "m")
    assert src.suppressed(hit)
    assert not src.suppressed(other_line)
    assert not src.suppressed(other_rule)


def test_suppressed_multiline_call_any_statement_line():
    text = (
        "x = build(\n"
        "    1,\n"
        "    2,\n"
        ")  # repro-lint: disable=dtype-discipline\n"
        "y = build(3)\n"
    )
    src = SourceFile(pathlib.Path("x.py"), "x.py", text)
    # Finding attributed to the statement's first line, pragma on its
    # last line: same statement, suppressed.
    assert src.suppressed(Finding("x.py", 1, 4, "dtype-discipline", "m"))
    assert src.suppressed(Finding("x.py", 2, 4, "dtype-discipline", "m"))
    # The next statement is not covered by that pragma.
    assert not src.suppressed(
        Finding("x.py", 5, 4, "dtype-discipline", "m")
    )


def test_suppressed_decorated_def_covers_header(tmp_path):
    text = (
        "@decorate  # repro-lint: disable=hot-loop-alloc\n"
        "def run(\n"
        "    rounds,\n"
        "):\n"
        "    pass\n"
    )
    src = SourceFile(pathlib.Path("x.py"), "x.py", text)
    # Findings on the def header lines share the decorator's statement.
    assert src.suppressed(Finding("x.py", 2, 0, "hot-loop-alloc", "m"))
    assert src.suppressed(Finding("x.py", 1, 1, "hot-loop-alloc", "m"))
    # The body is its own statement, not covered.
    assert not src.suppressed(Finding("x.py", 5, 4, "hot-loop-alloc", "m"))


def test_suppressed_multiline_end_to_end(tmp_path):
    # The rule reports on the call's first line; the pragma sits on the
    # closing-paren line.  Through run_lint, not just SourceFile.
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def build(n, m):
            return np.zeros(
                (n, m),
            )  # repro-lint: disable=dtype-discipline
        """,
        "dtype-discipline",
    )
    assert findings == []


def test_path_matches_prefixes_and_globs():
    assert path_matches("src/repro/core/x.py", ("src/repro/core",))
    assert path_matches("src/repro/core/x.py", ("src/repro/core/*.py",))
    assert not path_matches("src/repro/baselines/x.py", ("src/repro/core",))


def test_unknown_rule_selection_raises(tmp_path):
    with pytest.raises(ValueError, match="unknown rule"):
        run_lint([tmp_path], tmp_path, select=["no-such-rule"])


def test_all_expected_rules_registered():
    assert set(all_rules()) >= {
        "coin-purity",
        "coin-flow",
        "cache-invalidation",
        "dtype-discipline",
        "hot-loop-alloc",
        "bench-floors",
        "docs-drift",
        "parallel-safety",
        "alias-escape",
        "reduction-budget",
    }


def test_syntax_error_reported_not_fatal(tmp_path):
    bad = tmp_path / "src" / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def broken(:\n")
    errors = []
    findings = run_lint(
        [bad],
        tmp_path,
        config=Config(root=tmp_path),
        select=["dtype-discipline"],
        on_error=errors.append,
    )
    assert findings == []
    assert len(errors) == 1 and "cannot lint" in errors[0]


# ----------------------------------------------------------------------
# End-to-end: the repository itself lints clean at HEAD
# ----------------------------------------------------------------------
def test_repository_lints_clean():
    findings = run_lint(
        [REPO_ROOT / "src"],
        REPO_ROOT,
        config=load_config(REPO_ROOT),
    )
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_clean_and_list_rules():
    env_root = str(REPO_ROOT)
    proc = subprocess.run(
        [sys.executable, "-m", "tools.repro_lint", "src"],
        cwd=env_root,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "repro-lint: clean" in proc.stdout

    listed = subprocess.run(
        [sys.executable, "-m", "tools.repro_lint", "--list-rules"],
        cwd=env_root,
        capture_output=True,
        text=True,
    )
    assert listed.returncode == 0
    for rule in ("coin-purity", "bench-floors"):
        assert rule in listed.stdout


def test_cli_rejects_missing_path():
    proc = subprocess.run(
        [sys.executable, "-m", "tools.repro_lint", "no/such/dir"],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 2


def test_cli_default_surface_is_clean():
    # The acceptance gate: the whole configured lint surface at HEAD.
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "tools.repro_lint",
            "src",
            "tests",
            "benchmarks",
            "examples",
            "tools",
        ],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "repro-lint: clean" in proc.stdout


def test_cli_json_format(tmp_path):
    fixture = tmp_path / "src" / "repro" / "core" / "fixture.py"
    fixture.parent.mkdir(parents=True)
    fixture.write_text(
        "def resolve(coins, flag):\n"
        "    if flag:\n"
        "        return coins.bits(8)\n"
    )
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "tools.repro_lint",
            "--root",
            str(tmp_path),
            "--select",
            "coin-purity",
            "--format",
            "json",
            "src",
        ],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    report = json.loads(proc.stdout)
    assert len(report["findings"]) == 1
    finding = report["findings"][0]
    assert finding["rule"] == "coin-purity"
    assert finding["path"] == "src/repro/core/fixture.py"
    assert finding["line"] == 3


def test_cli_github_format(tmp_path):
    fixture = tmp_path / "src" / "repro" / "core" / "fixture.py"
    fixture.parent.mkdir(parents=True)
    fixture.write_text(
        "def resolve(coins, flag):\n"
        "    if flag:\n"
        "        return coins.bits(8)\n"
    )
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "tools.repro_lint",
            "--root",
            str(tmp_path),
            "--select",
            "coin-purity",
            "--format",
            "github",
            "src",
        ],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert (
        "::error file=src/repro/core/fixture.py,line=3,"
        in proc.stdout
    )
    assert "title=repro-lint/coin-purity" in proc.stdout


def test_cli_max_seconds_budget():
    # A budget no real run can meet: exit 1 with the budget message.
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "tools.repro_lint",
            "--select",
            "coin-purity",
            "--max-seconds",
            "0.000001",
            "src",
        ],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 1
    assert "runtime budget blown" in proc.stderr
    # And a sane budget passes (the CI gate is 10 s for the full run).
    ok = subprocess.run(
        [
            sys.executable,
            "-m",
            "tools.repro_lint",
            "--select",
            "coin-purity",
            "--max-seconds",
            "60",
            "src",
        ],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
    )
    assert ok.returncode == 0
