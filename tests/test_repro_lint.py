"""Tests for the repro-lint invariant checker suite (tools/repro_lint).

Each AST rule gets three fixtures: a true positive (the rule fires), a
clean negative (it does not), and a suppressed positive (a
``# repro-lint: disable=<rule>`` pragma silences it).  The end-to-end
tests then assert the real repository lints clean at HEAD — the same
gate ``make lint`` and CI run.
"""

import json
import pathlib
import subprocess
import sys
import textwrap

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))

from tools.repro_lint.core import (  # noqa: E402
    Config,
    Finding,
    SourceFile,
    all_rules,
    load_config,
    path_matches,
    run_lint,
)
from tools.repro_lint.rules import bench_floors, docs_drift  # noqa: E402

#: Default fixture location: inside every AST rule's path scope.
CORE_REL = "src/repro/core/fixture.py"


def lint_source(tmp_path, text, rule, rel=CORE_REL, config=None):
    """Lint one fixture snippet with a single rule; returns findings."""
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text))
    return run_lint(
        [path],
        tmp_path,
        config=config or Config(root=tmp_path),
        select=[rule],
    )


# ----------------------------------------------------------------------
# coin-purity
# ----------------------------------------------------------------------
def test_coin_purity_flags_conditional_draw(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def resolve(coins, flag):
            if flag:
                return coins.bits(8)
            return None
        """,
        "coin-purity",
    )
    assert len(findings) == 1
    assert "conditional coin draw" in findings[0].message


def test_coin_purity_flags_direct_numpy_random(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def draw(n):
            return np.random.rand(n)
        """,
        "coin-purity",
    )
    assert len(findings) == 1
    assert "np.random.rand" in findings[0].message


def test_coin_purity_flags_default_rng_and_random_import(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import random
        from numpy.random import default_rng
        """,
        "coin-purity",
    )
    assert {("stdlib" in f.message) for f in findings} == {True, False}
    assert len(findings) == 2


def test_coin_purity_clean_unconditional_draw(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def step(self):
            phi = self.coins.bits(self.n)
            return phi
        """,
        "coin-purity",
    )
    assert findings == []


def test_coin_purity_draws_in_loops_are_fine(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def run(self, rounds):
            for _ in range(rounds):
                phi = self.coins.bits(self.n)
        """,
        "coin-purity",
    )
    assert findings == []


def test_coin_purity_pragma_suppresses(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def resolve(coins, init):
            if init == "random":
                return coins.bits(8)  # repro-lint: disable=coin-purity
            return init
        """,
        "coin-purity",
    )
    assert findings == []


def test_coin_purity_ignores_files_outside_core(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def draw(n):
            return np.random.rand(n)
        """,
        "coin-purity",
        rel="src/repro/baselines/fixture.py",
    )
    assert findings == []


# ----------------------------------------------------------------------
# cache-invalidation
# ----------------------------------------------------------------------
def test_cache_invalidation_flags_unabsolved_mutation(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        class P:
            def corrupt(self, idx):
                self.black[idx] = True
        """,
        "cache-invalidation",
    )
    assert len(findings) == 1
    assert "identity-cached" in findings[0].message


def test_cache_invalidation_invalidator_absolves(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        class P:
            def corrupt(self, idx):
                self.black[idx] = True
                self._state_changed()
        """,
        "cache-invalidation",
    )
    assert findings == []


def test_cache_invalidation_rebinding_absolves(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        class P:
            def corrupt(self, idx, new):
                self.black[idx] = True
                self.black = self.black.copy()
        """,
        "cache-invalidation",
    )
    assert findings == []


def test_cache_invalidation_frozen_views_never_absolved(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        def mutate(graph):
            graph.indptr[0] = 1
            graph._state_changed()
        """,
        "cache-invalidation",
    )
    assert len(findings) == 1
    assert "immutable Graph view" in findings[0].message


def test_cache_invalidation_pragma_suppresses(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        class P:
            def corrupt(self, idx):
                self.black[idx] = True  # repro-lint: disable=cache-invalidation
        """,
        "cache-invalidation",
    )
    assert findings == []


def test_cache_invalidation_config_allowlist(tmp_path):
    config = Config(
        root=tmp_path,
        rules={"cache-invalidation": {"allow": [CORE_REL]}},
    )
    findings = lint_source(
        tmp_path,
        """
        class P:
            def corrupt(self, idx):
                self.black[idx] = True
        """,
        "cache-invalidation",
        config=config,
    )
    assert findings == []


# ----------------------------------------------------------------------
# dtype-discipline
# ----------------------------------------------------------------------
def test_dtype_flags_bare_constructors_and_widening(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def build(n, x):
            a = np.zeros(n)
            b = np.cumsum(x)
            c = x.sum(axis=1)
            return a, b, c
        """,
        "dtype-discipline",
    )
    assert len(findings) == 3


def test_dtype_clean_with_explicit_dtype(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def build(n, x):
            a = np.zeros(n, dtype=np.int64)
            b = np.cumsum(x, dtype=np.int64)
            c = x.sum(axis=1, dtype=np.int32)
            d = x.sum()  # scalar reduction: no array accumulator
            return a, b, c, d
        """,
        "dtype-discipline",
    )
    assert findings == []


def test_dtype_pragma_suppresses(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def build(n):
            return np.zeros(n)  # repro-lint: disable=dtype-discipline
        """,
        "dtype-discipline",
    )
    assert findings == []


# ----------------------------------------------------------------------
# hot-loop-alloc
# ----------------------------------------------------------------------
def test_hot_loop_alloc_flags_allocation_in_run_loop(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def run(self, rounds):
            for _ in range(rounds):
                buf = np.zeros(self.n, dtype=bool)
        """,
        "hot-loop-alloc",
    )
    assert len(findings) == 1
    assert "every round" in findings[0].message


def test_hot_loop_alloc_clean_with_reuse_buffer(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def run(self, rounds):
            buf = np.zeros(self.n, dtype=bool)
            for _ in range(rounds):
                buf.fill(False)
        """,
        "hot-loop-alloc",
    )
    assert findings == []


def test_hot_loop_alloc_ignores_non_run_functions(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def retire(self, rows):
            for r in rows:
                scratch = np.zeros(self.n, dtype=bool)
        """,
        "hot-loop-alloc",
    )
    assert findings == []


def test_hot_loop_alloc_pragma_suppresses(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        import numpy as np

        def run(self, rounds):
            for _ in range(rounds):
                buf = np.zeros(self.n, dtype=bool)  # repro-lint: disable=hot-loop-alloc
        """,
        "hot-loop-alloc",
    )
    assert findings == []


# ----------------------------------------------------------------------
# bench-floors (project rule: validates BENCH_*.json artifacts)
# ----------------------------------------------------------------------
def _bench_entry(**overrides):
    entry = {
        "workload": "w",
        "seconds": 1.0,
        "speedup": 5.0,
        "floor": 3.0,
        "commit": "abc1234",
    }
    entry.update(overrides)
    return entry


def test_bench_floors_clean_file(tmp_path):
    path = tmp_path / "BENCH_ok.json"
    path.write_text(json.dumps([_bench_entry()]))
    findings, files = bench_floors.check_root(tmp_path)
    assert files == [path]
    assert findings == []


def test_bench_floors_flags_regression_and_missing_fields(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text(
        json.dumps(
            [
                _bench_entry(speedup=1.0),  # below its 3.0 floor
                {"workload": "incomplete"},  # missing fields
                _bench_entry(workload="dup"),
                _bench_entry(workload="dup"),  # duplicate label
                _bench_entry(workload="ungated", floor=0),
            ]
        )
    )
    findings, _ = bench_floors.check_root(tmp_path)
    messages = " | ".join(f.message for f in findings)
    assert "regressed below" in messages
    assert "missing fields" in messages
    assert "duplicate workload label" in messages
    assert "ungated" in messages
    assert len(findings) == 4


def test_bench_floors_reports_absent_trajectory(tmp_path):
    rule = all_rules()["bench-floors"]
    from tools.repro_lint.core import LintContext

    findings = rule.check_project(LintContext(config=Config(root=tmp_path)))
    assert len(findings) == 1
    assert "no BENCH_*.json" in findings[0].message


def test_bench_floors_unreadable_file(tmp_path):
    path = tmp_path / "BENCH_broken.json"
    path.write_text("{not json")
    findings, _ = bench_floors.check_root(tmp_path)
    assert len(findings) == 1
    assert "unreadable" in findings[0].message


# ----------------------------------------------------------------------
# docs-drift (project rule: docs/API.md freshness)
# ----------------------------------------------------------------------
def test_docs_drift_heading_diff():
    committed = "### `a.b` *function*\n### `a.c` *class*\n"
    fresh = "### `a.b` *function*\n### `a.d` *class*\n"
    drift = docs_drift.drifted_headings(committed, fresh)
    assert drift == ["### `a.c` *class*", "### `a.d` *class*"]
    assert docs_drift.drifted_headings(committed, committed) == []


def test_docs_drift_committed_reference_is_fresh():
    # Same invariant as tools/check_docs.py, through the rule's path.
    committed = (REPO_ROOT / "docs" / "API.md").read_text()
    assert committed == docs_drift.fresh_api_text(REPO_ROOT)


# ----------------------------------------------------------------------
# Core machinery
# ----------------------------------------------------------------------
def test_file_level_pragma_suppresses_whole_module(tmp_path):
    findings = lint_source(
        tmp_path,
        """
        # repro-lint: disable-file=dtype-discipline
        import numpy as np

        def build(n):
            return np.zeros(n), np.ones(n)
        """,
        "dtype-discipline",
    )
    assert findings == []


def test_suppressed_checks_line_and_rule():
    src = SourceFile(
        pathlib.Path("x.py"),
        "x.py",
        "a = 1  # repro-lint: disable=dtype-discipline\nb = 2\n",
    )
    hit = Finding("x.py", 1, 0, "dtype-discipline", "m")
    other_line = Finding("x.py", 2, 0, "dtype-discipline", "m")
    other_rule = Finding("x.py", 1, 0, "coin-purity", "m")
    assert src.suppressed(hit)
    assert not src.suppressed(other_line)
    assert not src.suppressed(other_rule)


def test_path_matches_prefixes_and_globs():
    assert path_matches("src/repro/core/x.py", ("src/repro/core",))
    assert path_matches("src/repro/core/x.py", ("src/repro/core/*.py",))
    assert not path_matches("src/repro/baselines/x.py", ("src/repro/core",))


def test_unknown_rule_selection_raises(tmp_path):
    with pytest.raises(ValueError, match="unknown rule"):
        run_lint([tmp_path], tmp_path, select=["no-such-rule"])


def test_all_expected_rules_registered():
    assert set(all_rules()) >= {
        "coin-purity",
        "cache-invalidation",
        "dtype-discipline",
        "hot-loop-alloc",
        "bench-floors",
        "docs-drift",
    }


def test_syntax_error_reported_not_fatal(tmp_path):
    bad = tmp_path / "src" / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("def broken(:\n")
    errors = []
    findings = run_lint(
        [bad],
        tmp_path,
        config=Config(root=tmp_path),
        select=["dtype-discipline"],
        on_error=errors.append,
    )
    assert findings == []
    assert len(errors) == 1 and "cannot lint" in errors[0]


# ----------------------------------------------------------------------
# End-to-end: the repository itself lints clean at HEAD
# ----------------------------------------------------------------------
def test_repository_lints_clean():
    findings = run_lint(
        [REPO_ROOT / "src"],
        REPO_ROOT,
        config=load_config(REPO_ROOT),
    )
    assert findings == [], "\n".join(f.render() for f in findings)


def test_cli_clean_and_list_rules():
    env_root = str(REPO_ROOT)
    proc = subprocess.run(
        [sys.executable, "-m", "tools.repro_lint", "src"],
        cwd=env_root,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "repro-lint: clean" in proc.stdout

    listed = subprocess.run(
        [sys.executable, "-m", "tools.repro_lint", "--list-rules"],
        cwd=env_root,
        capture_output=True,
        text=True,
    )
    assert listed.returncode == 0
    for rule in ("coin-purity", "bench-floors"):
        assert rule in listed.stdout


def test_cli_rejects_missing_path():
    proc = subprocess.run(
        [sys.executable, "-m", "tools.repro_lint", "no/such/dir"],
        cwd=str(REPO_ROOT),
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 2
