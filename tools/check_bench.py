#!/usr/bin/env python3
"""Fail if any committed ``BENCH_*.json`` entry regresses its floor.

The perf-trajectory files written by ``make bench-fast``
(:mod:`benchmarks.emit_bench_json`) carry a per-entry ``floor`` — the
CI-safe minimum for that entry's ``speedup``.  This checker walks every
``BENCH_*.json`` at the repo root and exits non-zero when an entry's
measured speedup is below its floor (or when a file is malformed /
missing the fields), so the CI workflow's bench-trajectory step gates
perf regressions, not just crashes.

Usage::

    PYTHONPATH=src python tools/check_bench.py

(equivalently ``make check-bench``; CI runs it right after the
emission step, so the gate applies to freshly measured numbers.)
"""

from __future__ import annotations

import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

REQUIRED_FIELDS = ("workload", "seconds", "speedup", "floor", "commit")


def check_file(path: pathlib.Path) -> list[str]:
    """Problems found in one ``BENCH_*.json`` (empty list = clean)."""
    problems: list[str] = []
    try:
        entries = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path.name}: unreadable ({exc})"]
    if not isinstance(entries, list) or not entries:
        return [f"{path.name}: expected a non-empty list of entries"]
    for i, e in enumerate(entries):
        missing = [f for f in REQUIRED_FIELDS if f not in e]
        if missing:
            problems.append(
                f"{path.name}[{i}]: missing fields {missing}"
            )
            continue
        if e["speedup"] < e["floor"]:
            problems.append(
                f"{path.name}[{i}]: {e['workload']!r} speedup "
                f"{e['speedup']}x regressed below its {e['floor']}x floor"
            )
    return problems


def main() -> int:
    files = sorted(ROOT.glob("BENCH_*.json"))
    if not files:
        print("no BENCH_*.json files found; run `make bench-fast` first")
        return 1
    problems: list[str] = []
    for path in files:
        problems.extend(check_file(path))
    for problem in problems:
        print(f"FAIL {problem}")
    if not problems:
        names = ", ".join(p.name for p in files)
        print(f"OK: every entry meets its speedup floor ({names})")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
