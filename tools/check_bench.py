#!/usr/bin/env python3
"""Fail if any committed ``BENCH_*.json`` entry regresses its floor.

Thin shim over the ``bench-floors`` repro-lint rule
(:mod:`tools.repro_lint.rules.bench_floors`), kept for the existing
Makefile/CI entry points::

    PYTHONPATH=src python tools/check_bench.py

(equivalently ``make check-bench``; CI runs it right after the
emission step, so the gate applies to freshly measured numbers.
Plain ``python -m tools.repro_lint`` reports the same problems as
``bench-floors`` findings.)
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))

from tools.repro_lint.rules.bench_floors import (  # noqa: E402
    REQUIRED_FIELDS,  # noqa: F401  (re-export for compatibility)
    check_root,
)


def main() -> int:
    findings, files = check_root(ROOT)
    if not files:
        print("no BENCH_*.json files found; run `make bench-fast` first")
        return 1
    for f in findings:
        print(f"FAIL {f.path}: {f.message}")
    if not findings:
        names = ", ".join(p.name for p in files)
        print(f"OK: every entry meets its speedup floor ({names})")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
