"""CLI: ``python -m tools.repro_lint [paths...]``.

Exit status 0 when every rule passes, 1 on findings (or a blown
``--max-seconds`` budget), 2 on usage errors.  Run from the repo root;
the default paths come from ``[tool.repro-lint] paths`` in
``pyproject.toml`` (falling back to
``src tests benchmarks examples tools``).  ``--select`` restricts to a
comma-separated subset of rules, ``--no-project`` skips the whole-repo
rules (bench floors, docs drift) for fast editor feedback, and
``--format`` picks the output:

- ``text`` (default) — one human-readable line per finding;
- ``json`` — a machine-readable report on stdout (``findings`` +
  ``warnings``), for CI artifacts;
- ``github`` — GitHub Actions workflow commands
  (``::error file=...``), rendered as inline annotations on the PR.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

if __package__ in (None, ""):  # `python tools/repro_lint` without -m
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]))

from tools.repro_lint.core import (  # noqa: E402
    Finding,
    ProjectRule,
    all_rules,
    load_config,
    run_lint,
)

DEFAULT_PATHS = ("src", "tests", "benchmarks", "examples", "tools")


def _render_text(
    findings: list[Finding], warnings: list[str]
) -> None:
    for warning in warnings:
        print(f"repro-lint: {warning}", file=sys.stderr)
    for finding in findings:
        print(finding.render())
    if findings:
        count = len(findings)
        rules_hit = sorted({f.rule for f in findings})
        print(
            f"\nrepro-lint: {count} finding{'s' if count != 1 else ''} "
            f"({', '.join(rules_hit)})"
        )
    else:
        print("repro-lint: clean")


def _render_json(
    findings: list[Finding], warnings: list[str]
) -> None:
    print(
        json.dumps(
            {
                "findings": [
                    {
                        "path": f.path,
                        "line": f.line,
                        "col": f.col,
                        "rule": f.rule,
                        "message": f.message,
                    }
                    for f in findings
                ],
                "warnings": warnings,
            },
            indent=2,
        )
    )


def _escape_gh(value: str) -> str:
    """Escape a workflow-command message (data part)."""
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )


def _render_github(
    findings: list[Finding], warnings: list[str]
) -> None:
    for warning in warnings:
        print(f"::warning title=repro-lint::{_escape_gh(warning)}")
    for f in findings:
        location = f"file={f.path},line={f.line},col={f.col + 1}"
        print(
            f"::error {location},title=repro-lint/{f.rule}::"
            f"{_escape_gh(f.message)}"
        )
    if findings:
        print(f"repro-lint: {len(findings)} finding(s)")
    else:
        print("repro-lint: clean")


_RENDERERS = {
    "text": _render_text,
    "json": _render_json,
    "github": _render_github,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint", description=__doc__
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=[],
        help=(
            "files or directories to lint (default: [tool.repro-lint] "
            "paths, else src tests benchmarks examples tools)"
        ),
    )
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parents[2],
        help="repository root (config, BENCH files, docs)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--format",
        choices=sorted(_RENDERERS),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        metavar="S",
        help="fail (exit 1) if the whole run takes longer than S seconds",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip whole-repo rules (bench-floors, docs-drift)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        width = max(len(name) for name in rules)
        for name, rule in sorted(rules.items()):
            kind = "project" if isinstance(rule, ProjectRule) else "file"
            print(f"{name:<{width}}  [{kind}]  {rule.description}")
        return 0

    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
    if args.no_project:
        select = [
            name
            for name in (select if select is not None else rules)
            if not isinstance(rules.get(name), ProjectRule)
        ]

    root = args.root.resolve()
    config = load_config(root)
    raw_paths = args.paths or config.paths or list(DEFAULT_PATHS)
    paths = []
    for p in raw_paths:
        path = pathlib.Path(p)
        if not path.is_absolute():
            path = root / path
        if not path.exists():
            print(f"repro-lint: no such path: {p}", file=sys.stderr)
            return 2
        paths.append(path)

    started = time.monotonic()
    warnings: list[str] = []
    try:
        findings = run_lint(
            paths,
            root,
            config=config,
            select=select,
            on_error=warnings.append,
        )
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    elapsed = time.monotonic() - started

    _RENDERERS[args.format](findings, warnings)
    if findings:
        return 1
    if args.max_seconds is not None and elapsed > args.max_seconds:
        print(
            f"repro-lint: runtime budget blown: {elapsed:.1f}s > "
            f"--max-seconds {args.max_seconds:g}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
