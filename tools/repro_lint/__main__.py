"""CLI: ``python -m tools.repro_lint [paths...]``.

Exit status 0 when every rule passes, 1 on findings, 2 on usage errors.
Run from the repo root (the default paths are ``src tests benchmarks``);
``--select`` restricts to a comma-separated subset of rules,
``--no-project`` skips the whole-repo rules (bench floors, docs drift)
for fast editor feedback.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

if __package__ in (None, ""):  # `python tools/repro_lint` without -m
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]))

from tools.repro_lint.core import (  # noqa: E402
    ProjectRule,
    all_rules,
    load_config,
    run_lint,
)

DEFAULT_PATHS = ("src", "tests", "benchmarks")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint", description=__doc__
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--root",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parents[2],
        help="repository root (config, BENCH files, docs)",
    )
    parser.add_argument(
        "--select",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="skip whole-repo rules (bench-floors, docs-drift)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list registered rules and exit",
    )
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        width = max(len(name) for name in rules)
        for name, rule in sorted(rules.items()):
            kind = "project" if isinstance(rule, ProjectRule) else "file"
            print(f"{name:<{width}}  [{kind}]  {rule.description}")
        return 0

    select = None
    if args.select:
        select = [r.strip() for r in args.select.split(",") if r.strip()]
    if args.no_project:
        select = [
            name
            for name in (select if select is not None else rules)
            if not isinstance(rules.get(name), ProjectRule)
        ]

    root = args.root.resolve()
    paths = []
    for p in args.paths:
        path = pathlib.Path(p)
        if not path.is_absolute():
            path = root / path
        if not path.exists():
            print(f"repro-lint: no such path: {p}", file=sys.stderr)
            return 2
        paths.append(path)

    errors: list[str] = []
    try:
        findings = run_lint(
            paths,
            root,
            config=load_config(root),
            select=select,
            on_error=errors.append,
        )
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2
    for err in errors:
        print(f"repro-lint: {err}", file=sys.stderr)
    for finding in findings:
        print(finding.render())
    if findings:
        count = len(findings)
        rules_hit = sorted({f.rule for f in findings})
        print(
            f"\nrepro-lint: {count} finding{'s' if count != 1 else ''} "
            f"({', '.join(rules_hit)})"
        )
        return 1
    print("repro-lint: clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
