"""cache-invalidation: identity-keyed caches must see every mutation.

The memo caches in :class:`repro.core.process.MISProcess` and the
incremental aggregates in :mod:`repro.core.frontier` key on the
*identity* of the state array (``token is state``): rebinding the array
invalidates them for free, but an **in-place** mutation is invisible
and leaves the caches silently stale — the exact bug class behind
trajectory-identity violations under fault injection.

Two attribute classes, both configurable via ``pyproject.toml``:

* **frozen** (``Graph``'s CSR arrays and lazy views): any in-place
  mutation — ``x.indices[...] = v``, ``x.indptr += d``,
  ``x.degrees()[...] = v``, ``.fill(...)``, ``np.<ufunc>.at`` or an
  ``out=`` kwarg targeting them — is an error, full stop.  The graph
  is immutable; every derived representation assumes it.
* **guarded** (process state vectors and frontier aggregate arrays):
  an in-place mutation is legal only if the same function later calls
  an invalidation hook (``_state_changed`` / ``invalidate`` /
  ``rebuild`` / ``_recompute*``) or rebinds the attribute — otherwise
  the identity token still matches and the caches go stale.

The frontier engines *own* their aggregate arrays: their scatter
updates are the maintenance protocol itself, so those modules are
allowlisted for this rule in ``pyproject.toml``.
"""

from __future__ import annotations

import ast

from tools.repro_lint.core import (
    Finding,
    LintContext,
    Rule,
    SourceFile,
    dotted_name,
    register,
)

#: Graph CSR arrays + lazy views: in-place mutation is never legal.
DEFAULT_FROZEN = (
    "indptr",
    "indices",
    "_indptr",
    "_indices",
    "_degrees",
    "_dense",
    "_bits",
)
#: Zero-arg methods returning cached arrays callers must not mutate.
DEFAULT_FROZEN_METHODS = (
    "degrees",
    "adjacency_dense",
    "adjacency_bitset",
)
#: Identity-cache keys: state vectors and frontier aggregate arrays.
DEFAULT_GUARDED = (
    "black",
    "state",
    "states",
    "levels",
    "color",
    "colors",
    "counts",
    "has_black",
    "aux_counts",
    "aux_has",
    "stable",
    "covered",
)
#: Calls that count as "the caches were told" (method-name suffixes).
INVALIDATORS = ("_state_changed", "invalidate", "rebuild")


def _mutation_target(node: ast.AST) -> ast.AST | None:
    """The attribute/call expression an in-place mutation statement hits.

    Recognizes ``target[...] = v`` / ``target[...] op= v`` /
    ``target.fill(v)`` and returns the ``target`` expression.
    """
    if isinstance(node, ast.Assign):
        for t in node.targets:
            if isinstance(t, ast.Subscript):
                return t.value
    elif isinstance(node, ast.AugAssign) and isinstance(
        node.target, ast.Subscript
    ):
        return node.target.value
    elif (
        isinstance(node, ast.Expr)
        and isinstance(node.value, ast.Call)
        and isinstance(node.value.func, ast.Attribute)
        and node.value.func.attr == "fill"
    ):
        return node.value.func.value
    return None


def _scatter_targets(call: ast.Call) -> list[ast.AST]:
    """Arrays mutated by ``np.<ufunc>.at(arr, ...)`` or ``out=arr``."""
    out: list[ast.AST] = []
    name = dotted_name(call.func)
    if name is not None and name.endswith(".at") and call.args:
        out.append(call.args[0])
    for kw in call.keywords:
        if kw.arg == "out":
            out.append(kw.value)
    return out


def _attr_name(expr: ast.AST) -> str | None:
    """``attr`` for ``<receiver>.attr`` expressions (any receiver)."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def _frozen_method_name(expr: ast.AST) -> str | None:
    """``degrees`` for ``<receiver>.degrees()`` call expressions."""
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and not expr.args
        and not expr.keywords
    ):
        return expr.func.attr
    return None


@register
class CacheInvalidationRule(Rule):
    name = "cache-invalidation"
    description = (
        "in-place mutation of identity-cached arrays must be adjacent "
        "to an invalidation or rebinding"
    )
    # The baselines keep no identity caches (every aggregate is computed
    # fresh), so only the cache-bearing layers are in scope by default.
    default_paths = (
        "src/repro/core",
        "src/repro/dynamic",
        "src/repro/graphs",
        "src/repro/models",
        "src/repro/sim",
    )

    def check(self, src: SourceFile, ctx: LintContext) -> list[Finding]:
        frozen = set(
            ctx.config.rule_option(self.name, "frozen", DEFAULT_FROZEN)
        )
        frozen_methods = set(
            ctx.config.rule_option(
                self.name, "frozen-methods", DEFAULT_FROZEN_METHODS
            )
        )
        guarded = set(
            ctx.config.rule_option(self.name, "guarded", DEFAULT_GUARDED)
        )
        findings: list[Finding] = []
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(
                    self._check_function(
                        src, node, frozen, frozen_methods, guarded
                    )
                )
        return findings

    def _check_function(
        self,
        src: SourceFile,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        frozen: set[str],
        frozen_methods: set[str],
        guarded: set[str],
    ) -> list[Finding]:
        # Gather every mutation and every absolution (invalidator call
        # or attribute rebinding) in this function body, then pair them.
        mutations: list[tuple[ast.AST, str, bool]] = []  # node, attr, frozen?
        absolutions: list[tuple[int, str | None]] = []  # line, attr-or-any

        for node in ast.walk(func):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not func:
                    continue  # nested defs are scanned on their own
            target = _mutation_target(node)
            targets = [target] if target is not None else []
            if isinstance(node, ast.Call):
                targets.extend(_scatter_targets(node))
                name = dotted_name(node.func)
                if name is not None:
                    last = name.rsplit(".", 1)[-1]
                    if last in INVALIDATORS or last.startswith("_recompute"):
                        absolutions.append((node.lineno, None))
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    attr = _attr_name(t)
                    if attr is not None:
                        absolutions.append((node.lineno, attr))
            for t in targets:
                attr = _attr_name(t)
                if attr in frozen:
                    mutations.append((node, attr, True))
                elif attr in guarded:
                    mutations.append((node, attr, False))
                else:
                    method = _frozen_method_name(t)
                    if method in frozen_methods:
                        mutations.append((node, f"{method}()", True))

        findings: list[Finding] = []
        for node, attr, is_frozen in mutations:
            line = getattr(node, "lineno", func.lineno)
            if is_frozen:
                findings.append(
                    Finding(
                        path=src.rel,
                        line=line,
                        col=getattr(node, "col_offset", 0),
                        rule=self.name,
                        message=(
                            f"in-place mutation of immutable Graph view "
                            f"`{attr}`; derive a new graph instead"
                        ),
                    )
                )
                continue
            absolved = any(
                a_line >= line and a_attr in (None, attr)
                for a_line, a_attr in absolutions
            )
            if not absolved:
                findings.append(
                    Finding(
                        path=src.rel,
                        line=line,
                        col=getattr(node, "col_offset", 0),
                        rule=self.name,
                        message=(
                            f"in-place mutation of identity-cached "
                            f"`{attr}` with no invalidation or rebinding "
                            f"in `{func.name}`; call _state_changed()/"
                            "invalidate() or rebind the array"
                        ),
                    )
                )
        return findings
