"""bench-floors: every committed BENCH_*.json entry carries its gate.

The perf-trajectory files written by ``make bench-fast`` are the CI
regression gate: each entry names a workload and the CI-safe minimum
(``floor``) for its measured ``speedup``.  An entry without a floor is
a workload CI silently stopped gating — the drift this rule exists to
reject.  Checks, per ``BENCH_*.json`` at the repo root:

* the file parses to a non-empty list of entries;
* every entry has the required fields
  (``workload``/``seconds``/``speedup``/``floor``/``commit``);
* ``floor`` is a positive number and ``speedup`` meets it;
* workload labels are unique within the file (a duplicated label means
  two measurements race for one gate).

``tools/check_bench.py`` is a thin shim over this rule, kept for the
existing Makefile/CI entry points.
"""

from __future__ import annotations

import json
import pathlib

from tools.repro_lint.core import (
    Finding,
    LintContext,
    ProjectRule,
    register,
)

REQUIRED_FIELDS = ("workload", "seconds", "speedup", "floor", "commit")


def check_file(path: pathlib.Path, rel: str | None = None) -> list[Finding]:
    """All findings for one ``BENCH_*.json`` (empty list = clean)."""
    rel = rel if rel is not None else path.name
    findings: list[Finding] = []

    def flag(message: str) -> None:
        findings.append(
            Finding(path=rel, line=0, col=0, rule="bench-floors", message=message)
        )

    try:
        entries = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        flag(f"unreadable ({exc})")
        return findings
    if not isinstance(entries, list) or not entries:
        flag("expected a non-empty list of entries")
        return findings
    seen: set[str] = set()
    for i, e in enumerate(entries):
        if not isinstance(e, dict):
            flag(f"entry [{i}] is not an object")
            continue
        missing = [f for f in REQUIRED_FIELDS if f not in e]
        if missing:
            flag(f"entry [{i}] missing fields {missing}")
            continue
        workload = e["workload"]
        if not isinstance(workload, str) or not workload:
            flag(f"entry [{i}] workload label must be a non-empty string")
            continue
        if workload in seen:
            flag(f"duplicate workload label {workload!r}")
        seen.add(workload)
        floor = e["floor"]
        if not isinstance(floor, (int, float)) or floor <= 0:
            flag(
                f"{workload!r} has no positive regression floor "
                f"(floor={floor!r}); the workload is ungated"
            )
            continue
        speedup = e["speedup"]
        if not isinstance(speedup, (int, float)):
            flag(f"{workload!r} speedup must be a number, got {speedup!r}")
        elif speedup < floor:
            flag(
                f"{workload!r} speedup {speedup}x regressed below its "
                f"{floor}x floor"
            )
    return findings


def check_root(root: pathlib.Path) -> tuple[list[Finding], list[pathlib.Path]]:
    """Findings plus the list of BENCH files found under ``root``."""
    files = sorted(root.glob("BENCH_*.json"))
    findings: list[Finding] = []
    for path in files:
        findings.extend(check_file(path))
    return findings, files


@register
class BenchFloorsRule(ProjectRule):
    name = "bench-floors"
    description = (
        "every BENCH_*.json entry is well-formed, uniquely labelled, "
        "and meets its regression floor"
    )
    default_paths = ()  # project rule: no per-file scope

    def check_project(self, ctx: LintContext) -> list[Finding]:
        findings, files = check_root(ctx.root)
        if not files:
            findings.append(
                Finding(
                    path="BENCH_*.json",
                    line=0,
                    col=0,
                    rule=self.name,
                    message=(
                        "no BENCH_*.json files at the repo root; run "
                        "`make bench-fast` and commit the trajectory"
                    ),
                )
            )
        return findings
