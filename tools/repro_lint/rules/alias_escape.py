"""alias-escape: frozen Graph views stay frozen after they escape.

``cache-invalidation`` guards in-place mutation at the *attribute
access* site (``graph._degrees[...] = ...``).  But the frozen views
also escape through the public accessors — ``degrees()``,
``adjacency_csr()`` / ``adjacency_csr_int32()``, ``adjacency_dense()``,
``adjacency_bitset()`` — which hand out the identity-cached arrays
themselves (copying would defeat the CSR substrate's memory story).
Once such an array is bound to a local name, a later in-place write
corrupts the shared cache for every other holder, silently, far from
any attribute access the per-site rule could see.

This rule tracks those aliases through local dataflow, per scope and
in statement order:

* ``d = g.degrees()`` starts an alias; ``indptr, indices =
  g.adjacency_csr()`` starts two; ``row = bits[v]`` propagates to a
  bitset row view; ``e = d`` propagates.
* ``d = d.copy()`` / ``.astype(...)`` / ``np.array(d)`` rebind to a
  fresh array and end the alias; any other rebinding ends it too.
* In-place mutation of a live alias is flagged: subscript stores,
  augmented assignment, mutating methods (``fill``, ``sort``, ...),
  ``np.<ufunc>.at(alias, ...)`` and ``out=alias``.

Deliberate mutation of an escaped view (there is none in-tree today)
would carry ``# repro-lint: disable=alias-escape`` with its reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repro_lint.core import (
    Finding,
    LintContext,
    Rule,
    SourceFile,
    dotted_name,
    register,
)

#: Graph accessors that return identity-cached (frozen) arrays.
FROZEN_ACCESSORS = {
    "degrees",
    "adjacency_csr",
    "adjacency_csr_int32",
    "adjacency_dense",
    "adjacency_bitset",
}
#: ndarray methods that mutate in place.
_MUTATING_METHODS = {"fill", "sort", "partition", "put", "itemset", "resize"}
#: Call results that are fresh arrays (safe to rebind an alias to).
_COPYING_METHODS = {"copy", "astype"}
_COPYING_FUNCS = {"array", "copy"}  # np.array / np.copy


def _scopes(tree: ast.Module) -> Iterator[list[ast.stmt]]:
    """Yield statement lists per scope: module level and each function
    body (each function is visited once, as its own scope)."""
    yield list(tree.body)
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield list(node.body)


def _statements(stmts: list[ast.stmt]) -> Iterator[ast.stmt]:
    """All statements in a scope, in source order, not entering nested
    function/class scopes (they are separate scopes)."""
    for stmt in stmts:
        yield stmt
        for field in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, field, None)
            if isinstance(sub, list) and not isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                yield from _statements(sub)
        for handler in getattr(stmt, "handlers", []) or []:
            yield from _statements(handler.body)


def _is_frozen_accessor_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in FROZEN_ACCESSORS
        and not node.args
        and not node.keywords
    )


def _root_name(node: ast.expr) -> str | None:
    while isinstance(node, (ast.Subscript, ast.Attribute)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


@register
class AliasEscapeRule(Rule):
    name = "alias-escape"
    description = (
        "arrays escaping frozen Graph view accessors are never "
        "mutated in place downstream"
    )
    default_paths = ("src/repro", "examples")

    def check(self, src: SourceFile, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for scope in _scopes(src.tree):
            findings.extend(self._scan_scope(src, scope))
        return findings

    def _scan_scope(
        self, src: SourceFile, scope: list[ast.stmt]
    ) -> list[Finding]:
        findings: list[Finding] = []
        aliases: dict[str, str] = {}  # name -> accessor it came from

        def flag(node: ast.AST, name: str, how: str) -> None:
            findings.append(
                Finding(
                    path=src.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.name,
                    message=(
                        f"{how} of `{name}`, an alias of the frozen "
                        f"`{aliases[name]}()` view; mutating it "
                        "corrupts the shared cache (copy first)"
                    ),
                )
            )

        def value_alias_source(value: ast.expr) -> str | None:
            """The accessor an assigned value aliases, if any."""
            if _is_frozen_accessor_call(value):
                return value.func.attr  # type: ignore[union-attr]
            if isinstance(value, ast.Name) and value.id in aliases:
                return aliases[value.id]
            if isinstance(value, ast.Subscript):
                root = _root_name(value)
                if root in aliases:
                    return aliases[root]
            return None

        def is_fresh_copy(value: ast.expr) -> bool:
            if not isinstance(value, ast.Call):
                return False
            if (
                isinstance(value.func, ast.Attribute)
                and value.func.attr in _COPYING_METHODS
            ):
                return True
            name = dotted_name(value.func)
            return (
                name is not None
                and name.rsplit(".", 1)[-1] in _COPYING_FUNCS
            )

        def scan_mutations(expr: ast.AST) -> None:
            """Expression-level mutations inside one expression tree."""
            for node in ast.walk(expr):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATING_METHODS
                ):
                    root = _root_name(func.value)
                    if root in aliases:
                        flag(node, root, f"in-place `.{func.attr}()`")
                name = dotted_name(func)
                if (
                    name is not None
                    and name.endswith(".at")
                    and node.args
                ):
                    root = _root_name(node.args[0])
                    if root in aliases:
                        flag(node, root, "in-place ufunc `.at(...)`")
                for kw in node.keywords:
                    if kw.arg == "out":
                        root = _root_name(kw.value)
                        if root in aliases:
                            flag(node, root, "`out=` write")

        for stmt in sorted(
            _statements(scope), key=lambda s: (s.lineno, s.col_offset)
        ):
            # Mutation scan covers only this statement's own
            # expressions — inner statements of compound statements are
            # yielded (and scanned) separately by ``_statements``.
            if isinstance(stmt, (ast.If, ast.While)):
                scan_mutations(stmt.test)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                scan_mutations(stmt.iter)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    scan_mutations(item.context_expr)
            elif isinstance(
                stmt,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                    ast.Try,
                ),
            ):
                pass  # bodies are separate scopes / separate statements
            else:
                scan_mutations(stmt)
            if isinstance(stmt, ast.Assign):
                # Subscript-store on an alias mutates it.
                for t in stmt.targets:
                    if isinstance(t, ast.Subscript):
                        root = _root_name(t)
                        if root in aliases:
                            flag(t, root, "subscript store")
                source = value_alias_source(stmt.value)
                fresh = is_fresh_copy(stmt.value)
                for t in stmt.targets:
                    names = (
                        [e for e in t.elts if isinstance(e, ast.Name)]
                        if isinstance(t, (ast.Tuple, ast.List))
                        else [t]
                        if isinstance(t, ast.Name)
                        else []
                    )
                    for n in names:
                        if source is not None and not fresh:
                            aliases[n.id] = source
                        else:
                            aliases.pop(n.id, None)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    source = value_alias_source(stmt.value)
                    if source is not None and not is_fresh_copy(stmt.value):
                        aliases[stmt.target.id] = source
                    else:
                        aliases.pop(stmt.target.id, None)
            elif isinstance(stmt, ast.AugAssign):
                root = _root_name(stmt.target)
                if root in aliases:
                    flag(stmt, root, "augmented assignment")
        return findings
