"""coin-purity: the §2.1 randomness discipline of the core engines.

Two sub-checks over ``src/repro/core/**``:

1. **No direct RNG.**  All randomness must flow through
   :class:`repro.sim.rng.CoinSource`; ``np.random.*`` (except the
   ``Generator`` *type*, which appears in annotations), ``default_rng``
   and the stdlib ``random`` module are rejected.  A direct draw
   bypasses the seed-spawning discipline and silently forks the
   documented coin stream.

2. **No conditional coin draws.**  A ``bits``/``bits_into``/
   ``bernoulli`` call on a coin source must not sit inside an ``if``
   branch (or conditional expression): the paper's analysis draws
   φ_t for *all* n vertices every round in a fixed order, and a draw
   that executes on only some paths desynchronizes every draw after
   it.  Draws inside ``for``/``while`` bodies are fine (that is the
   per-round loop itself).  Documented exceptions — e.g. the one-off
   initial-state draw consumed only for ``init="random"`` — carry a
   ``# repro-lint: disable=coin-purity`` pragma.
"""

from __future__ import annotations

import ast

from tools.repro_lint.core import (
    Finding,
    LintContext,
    Rule,
    SourceFile,
    dotted_name,
    register,
)

#: ``np.random`` members that are types, not draw entry points.
_ALLOWED_NP_RANDOM = {"Generator", "BitGenerator", "SeedSequence"}
#: Methods that consume entries from a coin stream.
_DRAW_METHODS = {"bits", "bits_into", "bernoulli"}


def _receiver_is_coin_source(func: ast.Attribute) -> bool:
    """Whether the call receiver looks like a coin source.

    Matches ``coins.bits(...)``, ``self.coins.bits(...)``,
    ``process.coins.bits(...)`` — any chain whose last component is
    ``coins`` or whose bare name mentions coins (``coin_source``).
    """
    name = dotted_name(func.value)
    if name is None:
        return False
    last = name.rsplit(".", 1)[-1]
    return "coin" in last


@register
class CoinPurityRule(Rule):
    name = "coin-purity"
    description = (
        "core randomness flows only through CoinSource, with no coin "
        "draw inside a conditional branch"
    )
    default_paths = ("src/repro/core",)

    def check(self, src: SourceFile, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []

        def flag(node: ast.AST, message: str) -> None:
            findings.append(
                Finding(
                    path=src.rel,
                    line=getattr(node, "lineno", 0),
                    col=getattr(node, "col_offset", 0),
                    rule=self.name,
                    message=message,
                )
            )

        for node in ast.walk(src.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    mod = alias.name.split(".")[0]
                    if mod == "random":
                        flag(node, "stdlib `random` import in core; draw through CoinSource")
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root == "random":
                    flag(node, "stdlib `random` import in core; draw through CoinSource")
                elif (node.module or "").startswith("numpy.random"):
                    bad = [
                        a.name
                        for a in node.names
                        if a.name not in _ALLOWED_NP_RANDOM
                    ]
                    if bad:
                        flag(
                            node,
                            f"direct numpy.random import of {bad} in core; "
                            "draw through CoinSource",
                        )
            elif isinstance(node, ast.Attribute):
                name = dotted_name(node)
                if name is None:
                    continue
                for prefix in ("np.random.", "numpy.random."):
                    if name.startswith(prefix):
                        member = name[len(prefix):].split(".")[0]
                        if member not in _ALLOWED_NP_RANDOM:
                            flag(
                                node,
                                f"direct `{name}` in core; draw through "
                                "CoinSource",
                            )
                        break
            elif isinstance(node, ast.Name) and node.id == "default_rng":
                flag(
                    node,
                    "`default_rng` in core; draw through CoinSource",
                )

        findings.extend(self._conditional_draws(src))
        return findings

    def _conditional_draws(self, src: SourceFile) -> list[Finding]:
        findings: list[Finding] = []

        def scan(node: ast.AST, cond_depth: int) -> None:
            for child in ast.iter_child_nodes(node):
                depth = cond_depth
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    # A nested function starts a fresh conditionality
                    # scope: its body runs when *it* is called.
                    depth = 0
                if isinstance(node, ast.If) and child in (
                    node.body + node.orelse
                ):
                    depth += 1
                elif isinstance(node, ast.IfExp) and child in (
                    node.body,
                    node.orelse,
                ):
                    depth += 1
                elif isinstance(node, ast.Try) and child not in node.body:
                    depth += 1
                if (
                    depth > 0
                    and isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Attribute)
                    and child.func.attr in _DRAW_METHODS
                    and _receiver_is_coin_source(child.func)
                ):
                    findings.append(
                        Finding(
                            path=src.rel,
                            line=child.lineno,
                            col=child.col_offset,
                            rule=self.name,
                            message=(
                                f"conditional coin draw `.{child.func.attr}` "
                                "can desynchronize the documented φ_t "
                                "stream order"
                            ),
                        )
                    )
                scan(child, depth)

        scan(src.tree, 0)
        return findings
