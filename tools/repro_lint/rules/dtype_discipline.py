"""dtype-discipline: hot-path arrays say what they are.

In the hot-path modules (the core engine family, the Graph substrate
and the vectorized generators) an array constructor without an explicit
``dtype=`` is a latent perf/identity bug: ``np.zeros(n)`` is float64,
``np.arange(n)`` is platform-dependent, and a 64-bit array silently
doubles the memory traffic of a path tuned for int32/float32 — or, in
the worst case, changes a downstream cast and breaks the bitwise
trajectory-identity contract between backends.

Two sub-checks:

1. ``np.zeros`` / ``np.ones`` / ``np.empty`` / ``np.full`` /
   ``np.arange`` calls without a ``dtype=`` keyword.
2. Array-valued reductions that silently widen: ``.sum(axis=...)`` /
   ``np.sum(..., axis=...)`` / ``np.cumsum(...)`` with neither a
   ``dtype=`` nor an ``out=`` keyword accumulate int32/float32 inputs
   into 64-bit outputs on every 64-bit platform.

Intentional widenings (int64 by design) carry a per-line pragma.
"""

from __future__ import annotations

import ast

from tools.repro_lint.core import (
    Finding,
    LintContext,
    Rule,
    SourceFile,
    dotted_name,
    has_keyword,
    register,
)

#: Constructors that default to float64 / platform int.
CONSTRUCTORS = ("zeros", "ones", "empty", "full", "arange")
#: Free reductions whose accumulator silently widens.
WIDENING_FREE = ("sum", "cumsum", "prod", "cumprod")
#: Method reductions that widen when array-valued (``axis=`` given).
WIDENING_METHODS = ("sum", "prod")


@register
class DtypeDisciplineRule(Rule):
    name = "dtype-discipline"
    description = (
        "hot-path array constructors need an explicit dtype; "
        "array-valued reductions must not silently widen to 64-bit"
    )
    default_paths = (
        "src/repro/core",
        "src/repro/graphs/graph.py",
        "src/repro/graphs/generators.py",
    )

    def check(self, src: SourceFile, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []

        def flag(node: ast.Call, message: str) -> None:
            findings.append(
                Finding(
                    path=src.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.name,
                    message=message,
                )
            )

        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            head, _, member = name.rpartition(".")
            if head in ("np", "numpy"):
                if member in CONSTRUCTORS and not has_keyword(node, "dtype"):
                    flag(
                        node,
                        f"`np.{member}` without explicit dtype= in a "
                        "hot-path module (float64/platform-int default)",
                    )
                elif (
                    member in WIDENING_FREE
                    and not has_keyword(node, "dtype")
                    and not has_keyword(node, "out")
                    and (member.startswith("cum") or has_keyword(node, "axis"))
                ):
                    flag(
                        node,
                        f"`np.{member}` without dtype=/out= silently "
                        "widens the accumulator to 64-bit",
                    )
            elif (
                head
                and head not in ("np", "numpy")
                and member in WIDENING_METHODS
                and has_keyword(node, "axis")
                and not has_keyword(node, "dtype")
                and not has_keyword(node, "out")
            ):
                flag(
                    node,
                    f"array-valued `.{member}(axis=...)` without dtype= "
                    "silently widens the accumulator to 64-bit",
                )
        return findings
