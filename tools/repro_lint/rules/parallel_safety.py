"""parallel-safety: what may cross a process-pool boundary.

The Monte-Carlo sweep fans work out over ``ProcessPoolExecutor``, and
the ROADMAP's fleet-sharding item will push engine state through
``multiprocessing.shared_memory``.  Both paths have the same two
silent failure modes:

1. **Unpicklable work units.**  Lambdas, closures, locally defined
   functions/classes and bound methods cannot cross the pickle
   boundary.  This rule flags them *statically* at the call site:
   arguments in worker position at pool/executor calls (``pool.map``,
   ``executor.submit``, ``Process(target=...)``) and callables passed
   alongside an ``n_jobs=`` keyword.  The fleet-dispatch entry points
   of :mod:`repro.parallel` (:data:`_FLEET_SAFE_CALLEES`) are exempt:
   their ``n_jobs`` shards *replicas* in-process and the callable
   never crosses the boundary — except on the sweep's explicit legacy
   ``dispatch="points"`` path, which still fans whole payloads
   (factory included) into a stock executor and stays flagged.
   Likewise exempt: ``SupervisedPool.run_jobs``
   (:data:`_MASTER_SIDE_POOL_METHODS`), whose callable keywords
   (``local_runner``/``validate``/``on_result``) are supervision hooks
   invoked in the dispatching process — lambdas there are idiomatic,
   not a pickle hazard.

2. **Worker-side module-global mutation.**  A worker process runs in a
   *copy* of the module: mutating a module-level binding there is lost
   on the parent side (fork) or re-executed per worker (spawn), and
   either way the result depends on the start method.  Using the
   project call graph, the rule walks everything reachable from a
   resolvable worker function and flags ``global`` rebinding and
   in-place mutation of module-level state.  Functions that *guard*
   their mutation behind a master-only check — an ``if`` testing
   ``multiprocessing.parent_process()`` that returns before the
   mutation (the :func:`repro.sim.checkpoint.open_default_journal`
   idiom) — are recognized by :func:`_master_guarded` and exempted:
   a child process provably bails out before reaching the global.

Files outside the indexed package roots degrade to a same-file check:
worker functions defined at module level in the same file are scanned
directly, and unresolvable workers are skipped (never a crash).
"""

from __future__ import annotations

import ast

from tools.repro_lint.core import (
    Finding,
    LintContext,
    Rule,
    SourceFile,
    dotted_name,
    register,
)

#: Methods on pool/executor receivers that take a worker callable
#: as their first positional argument.
_POOL_METHODS = {
    "map",
    "imap",
    "imap_unordered",
    "map_async",
    "starmap",
    "starmap_async",
    "submit",
    "apply",
    "apply_async",
}
#: Constructors whose keyword arguments carry worker callables.
_WORKER_CTORS = {"Process", "Pool", "ProcessPoolExecutor", "ThreadPoolExecutor"}
#: Keyword arguments that carry callables across the boundary.
_WORKER_KWARGS = {"target", "func", "function", "initializer"}
#: Callees whose ``n_jobs`` shards replicas in-process (the
#: repro.parallel fleet dispatch): callable arguments stay on the
#: master side, so closures and lambdas are safe — except under the
#: sweep's legacy ``dispatch="points"`` (see :func:`_dispatches_points`).
_FLEET_SAFE_CALLEES = {
    "run_many_until_stable",
    "estimate_stabilization_time",
    "sweep_stabilization_times",
    "run_fleet_sharded",
    "_sweep_point",
    "_estimate_journaled",
}

#: Pool methods whose callable keywords run on the MASTER side, never
#: crossing a pickle boundary: ``SupervisedPool.run_jobs`` takes
#: ``local_runner`` (deadline degradation), ``validate`` (poison
#: quarantine), and ``on_result`` (checkpoint journaling) — all are
#: invoked by the supervision loop in the dispatching process, so
#: lambdas and closures are the *idiomatic* arguments there.
_MASTER_SIDE_POOL_METHODS = {"run_jobs"}


def _dispatches_points(call: ast.Call) -> bool:
    """Whether a fleet-safe call opts into the legacy points path.

    A missing ``dispatch=`` means the fleet default; any value other
    than the literal ``"fleet"`` (including a dynamic expression) is
    treated as the pickling path, erring toward a finding.
    """
    for kw in call.keywords:
        if kw.arg == "dispatch":
            value = kw.value
            return not (
                isinstance(value, ast.Constant) and value.value == "fleet"
            )
    return False


def _receiver_is_pool(func: ast.Attribute) -> bool:
    name = dotted_name(func.value)
    if name is None:
        return False
    last = name.rsplit(".", 1)[-1].lower()
    return "pool" in last or "executor" in last


class _Scope:
    """Names defined inside one function body (closure territory)."""

    def __init__(self, fn: ast.AST | None, tree: ast.AST) -> None:
        self.local_callables: dict[str, str] = {}  # name -> kind
        self.local_names: set[str] = set()
        if fn is None:
            return
        args = fn.args
        for a in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
            + ([args.vararg] if args.vararg else [])
            + ([args.kwarg] if args.kwarg else [])
        ):
            self.local_names.add(a.arg)
        for node in ast.walk(fn):
            if node is fn:
                continue
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.local_callables[node.name] = "locally defined function"
            elif isinstance(node, ast.ClassDef):
                self.local_callables[node.name] = "locally defined class"
            elif isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        self.local_names.add(t.id)
                        if isinstance(node.value, ast.Lambda):
                            self.local_callables[t.id] = "lambda"


@register
class ParallelSafetyRule(Rule):
    name = "parallel-safety"
    description = (
        "no lambdas/closures/bound methods into pool or n_jobs call "
        "sites, no module-global mutation reachable from workers"
    )
    default_paths = None  # everywhere linted

    def check(self, src: SourceFile, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        # Walk each function scope (and the module top level) once.
        scopes: list[tuple[ast.AST | None, ast.AST]] = [(None, src.tree)]
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append((node, node))
        for fn, tree in scopes:
            scope = _Scope(fn, tree)
            for node in ast.walk(tree):
                if isinstance(node, ast.Call):
                    findings.extend(
                        self._check_site(src, ctx, scope, node)
                    )
        # A call site inside a nested function is seen from both the
        # outer and the inner scope; deduplicate by position.
        unique = {(f.line, f.col, f.message): f for f in findings}
        return list(unique.values())

    # ------------------------------------------------------------------
    def _check_site(
        self,
        src: SourceFile,
        ctx: LintContext,
        scope: _Scope,
        call: ast.Call,
    ) -> list[Finding]:
        site = None
        workers: list[ast.expr] = []
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _MASTER_SIDE_POOL_METHODS
            and _receiver_is_pool(call.func)
        ):
            # SupervisedPool.run_jobs: its callable keywords stay on
            # the master side of the supervision loop — fleet-safe.
            return []
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _POOL_METHODS
            and _receiver_is_pool(call.func)
        ):
            site = f"`.{call.func.attr}` pool call"
            if call.args:
                workers.append(call.args[0])
        else:
            callee = dotted_name(call.func)
            if (
                callee is not None
                and callee.rsplit(".", 1)[-1] in _WORKER_CTORS
            ):
                site = f"`{callee.rsplit('.', 1)[-1]}(...)`"
        if site is not None:
            workers.extend(
                kw.value
                for kw in call.keywords
                if kw.arg in _WORKER_KWARGS
            )
        elif any(kw.arg == "n_jobs" for kw in call.keywords):
            callee = dotted_name(call.func)
            base = callee.rsplit(".", 1)[-1] if callee is not None else None
            if base in _FLEET_SAFE_CALLEES and not _dispatches_points(call):
                # Fleet dispatch: replicas are sharded in-process and
                # the callable never crosses the pickle boundary.
                return []
            # A function advertising parallelism: every callable
            # argument may end up on the worker side.
            site = "call with `n_jobs=`"
            workers.extend(
                a
                for a in list(call.args)
                + [kw.value for kw in call.keywords]
                if isinstance(a, ast.Lambda)
                or (
                    isinstance(a, ast.Name)
                    and a.id in scope.local_callables
                )
            )
        if site is None or not workers:
            return []

        findings: list[Finding] = []

        def flag(node: ast.expr, message: str) -> None:
            findings.append(
                Finding(
                    path=src.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.name,
                    message=message,
                )
            )

        for worker in workers:
            if isinstance(worker, ast.Lambda):
                flag(
                    worker,
                    f"lambda passed to {site}: lambdas do not pickle "
                    "across the process boundary",
                )
            elif (
                isinstance(worker, ast.Name)
                and worker.id in scope.local_callables
            ):
                kind = scope.local_callables[worker.id]
                flag(
                    worker,
                    f"{kind} `{worker.id}` passed to {site}: closures "
                    "and local definitions do not pickle across the "
                    "process boundary",
                )
            elif isinstance(worker, ast.Attribute):
                recv = worker.value
                if isinstance(recv, ast.Name) and (
                    recv.id == "self" or recv.id in scope.local_names
                ):
                    flag(
                        worker,
                        f"bound method `{recv.id}.{worker.attr}` passed "
                        f"to {site}: it drags the whole instance through "
                        "pickle (or fails outright)",
                    )
                else:
                    findings.extend(
                        self._worker_global_mutation(src, ctx, worker)
                    )
            elif isinstance(worker, ast.Name):
                findings.extend(
                    self._worker_global_mutation(src, ctx, worker)
                )
        return findings

    # ------------------------------------------------------------------
    def _worker_global_mutation(
        self, src: SourceFile, ctx: LintContext, worker: ast.expr
    ) -> list[Finding]:
        """Flag module-global mutation reachable from a worker fn."""
        name = dotted_name(worker)
        if name is None:
            return []
        index = ctx.project_index()
        mod = index.module_for(src.rel)
        if mod is not None:
            qname = index.resolve_in_module(mod.name, name)
            if qname is None or qname not in index.functions:
                return []  # unresolvable worker: degrade silently
            closure = {qname}
            queue = [qname]
            while queue:
                for callee in index.callees(queue.pop()):
                    if callee not in closure:
                        closure.add(callee)
                        queue.append(callee)
            findings = []
            for fq in sorted(closure):
                finfo = index.functions[fq]
                fmod = index.modules.get(finfo.module)
                if _master_guarded(finfo.node):
                    continue
                mutated = _global_mutations(
                    finfo.node, fmod.globals if fmod else set()
                )
                for gname in mutated:
                    findings.append(
                        Finding(
                            path=src.rel,
                            line=worker.lineno,
                            col=worker.col_offset,
                            rule=self.name,
                            message=(
                                f"worker `{name}` reaches "
                                f"`{fq.rsplit('.', 1)[-1]}`, which "
                                f"mutates module global `{gname}`; "
                                "worker processes mutate a copy, so "
                                "the result is start-method-dependent"
                            ),
                        )
                    )
            return findings
        # Same-file fallback: scan a module-level def of that name.
        if "." in name:
            return []
        for node in src.tree.body:
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == name
            ):
                module_globals = {
                    t.id
                    for stmt in src.tree.body
                    if isinstance(stmt, (ast.Assign, ast.AnnAssign))
                    for t in (
                        stmt.targets
                        if isinstance(stmt, ast.Assign)
                        else [stmt.target]
                    )
                    if isinstance(t, ast.Name)
                }
                return [
                    Finding(
                        path=src.rel,
                        line=worker.lineno,
                        col=worker.col_offset,
                        rule=self.name,
                        message=(
                            f"worker `{name}` mutates module global "
                            f"`{gname}`; worker processes mutate a "
                            "copy, so the result is "
                            "start-method-dependent"
                        ),
                    )
                    for gname in _global_mutations(node, module_globals)
                ]
        return []


def _master_guarded(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    """Whether ``fn`` bails out of child processes before mutating.

    Recognizes the master-only guard idiom::

        if ... mp.parent_process() is not None ...:
            return ...
        global _counter
        _counter += 1

    i.e. a top-level ``if`` whose test calls ``parent_process`` and
    whose body ends in ``return``.  A child process (where
    ``parent_process()`` is non-``None``) provably returns before any
    module-global mutation below the guard, so the mutation is
    master-side only and start-method-independent.
    """
    for stmt in fn.body:
        if not isinstance(stmt, ast.If):
            continue
        calls_parent_process = any(
            isinstance(node, ast.Call)
            and (
                (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "parent_process"
                )
                or (
                    isinstance(node.func, ast.Name)
                    and node.func.id == "parent_process"
                )
            )
            for node in ast.walk(stmt.test)
        )
        if calls_parent_process and stmt.body and isinstance(
            stmt.body[-1], ast.Return
        ):
            return True
    return False


def _global_mutations(
    fn: ast.FunctionDef | ast.AsyncFunctionDef, module_globals: set[str]
) -> list[str]:
    """Module-level names this function rebinds or mutates in place."""
    params = {a.arg for a in fn.args.args + fn.args.kwonlyargs}
    out: list[str] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            out.extend(node.names)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for t in targets:
                root = t
                while isinstance(root, (ast.Subscript, ast.Attribute)):
                    root = root.value
                if (
                    t is not root  # plain Name assigns are locals
                    and isinstance(root, ast.Name)
                    and root.id in module_globals
                    and root.id not in params
                ):
                    out.append(root.id)
    return sorted(set(out))
