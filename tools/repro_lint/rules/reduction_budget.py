"""reduction-budget: per-round neighbour reductions stay declared.

The engines' complexity story rests on counting reductions: the
counting-backend test pins the serial engines to 2R+2 ``NeighborOps``
reductions for an R-round run, and the frontier engines' whole point
is *fewer* reductions per round.  That contract lives in one runtime
test today; a refactor that slips an extra ``ops.count`` into a round
loop passes every trajectory test (the trajectories don't change) and
only trips the counting test if the touched engine happens to be the
one it parameterizes.

This rule checks the contract lexically, where the reader sees it.  A
round loop declares its budget inline::

    # reduction-budget: 2
    while live.size:
        ...

(or with the comment on the loop's first line).  The rule counts the
lexical ``NeighborOps`` reduction calls in the loop body — attribute
calls named ``count``/``exists``/``count_batch``/``exists_batch``/
``max_closed``/``max_closed_batch`` on an ``ops``-like receiver, plus
any method names configured under
``[tool.repro-lint.rules.reduction-budget] methods`` (the batched
engines route reductions through ``self._count_nbrs``-style wrappers)
— and fails if the count exceeds the declared budget.  A nested
annotated loop is counted into its enclosing loop's budget as well;
each annotation bounds its own lexical subtree.

Loops *without* an annotation are flagged when they contain reductions
and sit directly in a hot entry point (``run*``/``step``/
``_advance*``): every round loop of an engine must say what it spends.
"""

from __future__ import annotations

import ast
import re

from tools.repro_lint.core import (
    Finding,
    LintContext,
    Rule,
    SourceFile,
    dotted_name,
    register,
    walk_with_parents,
)

#: ``# reduction-budget: N`` on the loop's first line or the line above.
_BUDGET = re.compile(r"#\s*reduction-budget:\s*(\d+)")

#: The NeighborOps reduction interface.
REDUCTION_METHODS = {
    "count",
    "exists",
    "count_batch",
    "exists_batch",
    "max_closed",
    "max_closed_batch",
}
#: Entry-point name prefixes whose loops must carry annotations.
_RUN_PREFIXES = ("run", "_run", "step", "_advance")


def _loop_budget(src: SourceFile, loop: ast.For | ast.While) -> int | None:
    for lineno in (loop.lineno, loop.lineno - 1):
        if 1 <= lineno <= len(src.lines):
            m = _BUDGET.search(src.lines[lineno - 1])
            if m:
                return int(m.group(1))
    return None


def _is_reduction(
    call: ast.Call, extra_methods: set[str], in_ops_class: bool
) -> bool:
    if not isinstance(call.func, ast.Attribute):
        return False
    attr = call.func.attr
    if attr in extra_methods:
        return True
    if attr not in REDUCTION_METHODS:
        return False
    recv = dotted_name(call.func.value)
    if recv is None:
        return False
    if "ops" in recv.rsplit(".", 1)[-1]:
        return True
    # Inside a NeighborOps backend, the reductions are self-calls.
    return in_ops_class and recv in ("self", "cls")


def _is_run_function(name: str) -> bool:
    return any(
        name == p or name.startswith(p) for p in _RUN_PREFIXES
    )


@register
class ReductionBudgetRule(Rule):
    name = "reduction-budget"
    description = (
        "round loops declare `# reduction-budget: N` and stay within "
        "their lexical NeighborOps reduction count"
    )
    default_paths = ("src/repro/core",)

    def check(self, src: SourceFile, ctx: LintContext) -> list[Finding]:
        extra = set(
            ctx.config.rule_option(self.name, "methods", ())
        )
        findings: list[Finding] = []
        for node, ancestors in walk_with_parents(src.tree):
            if not isinstance(node, (ast.For, ast.While)):
                continue
            in_ops_class = any(
                isinstance(a, ast.ClassDef) and "ops" in a.name.lower()
                for a in ancestors
            )
            count = sum(
                1
                for sub in ast.walk(node)
                if isinstance(sub, ast.Call)
                and _is_reduction(sub, extra, in_ops_class)
            )
            budget = _loop_budget(src, node)
            if budget is not None:
                if count > budget:
                    findings.append(
                        Finding(
                            path=src.rel,
                            line=node.lineno,
                            col=node.col_offset,
                            rule=self.name,
                            message=(
                                f"loop performs {count} lexical "
                                f"NeighborOps reductions but declares "
                                f"`# reduction-budget: {budget}`"
                            ),
                        )
                    )
                continue
            if count == 0:
                continue
            # Unannotated loop with reductions: required in hot entry
            # points, unless an enclosing loop already accounts for it.
            enclosing_fn = next(
                (
                    a
                    for a in reversed(ancestors)
                    if isinstance(
                        a, (ast.FunctionDef, ast.AsyncFunctionDef)
                    )
                ),
                None,
            )
            if enclosing_fn is None or not _is_run_function(
                enclosing_fn.name
            ):
                continue
            covered = any(
                isinstance(a, (ast.For, ast.While))
                for a in ancestors
            )
            if covered:
                continue  # the outermost loop carries the annotation
            findings.append(
                Finding(
                    path=src.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.name,
                    message=(
                        f"round loop in `{enclosing_fn.name}` performs "
                        f"{count} NeighborOps reductions without a "
                        "`# reduction-budget: N` annotation"
                    ),
                )
            )
        return findings
