"""Built-in repro-lint rules (importing this module registers them)."""

from tools.repro_lint.rules import (  # noqa: F401
    alias_escape,
    bench_floors,
    cache_invalidation,
    coin_flow,
    coin_purity,
    docs_drift,
    dtype_discipline,
    hot_loop_alloc,
    parallel_safety,
    reduction_budget,
)
