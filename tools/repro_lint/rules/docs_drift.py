"""docs-drift: docs/API.md matches a regeneration from the docstrings.

``docs/API.md`` is generated (``tools/gen_api_docs.py``) and committed;
a public symbol added, removed, or re-signed without regenerating the
reference leaves the docs lying about the API.  This rule renders the
reference in memory and diffs it against the committed file, reporting
the first few drifted sections so the finding is actionable.

``tools/check_docs.py`` is a thin shim over this rule (plus ``--fix``),
kept for the existing Makefile/CI entry points.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

from tools.repro_lint.core import (
    Finding,
    LintContext,
    ProjectRule,
    register,
)


def fresh_api_text(root: pathlib.Path) -> str:
    """Regenerate the API reference in memory (imports ``repro``)."""
    src = root / "src"
    for p in (str(src), str(root / "tools")):
        if p not in sys.path:
            sys.path.insert(0, p)
    spec = importlib.util.spec_from_file_location(
        "gen_api_docs", root / "tools" / "gen_api_docs.py"
    )
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.render()


def drifted_headings(committed: str, fresh: str, limit: int = 5) -> list[str]:
    """Symbol headings present in exactly one of the two renderings."""
    old = {l for l in committed.splitlines() if l.startswith("### ")}
    new = {l for l in fresh.splitlines() if l.startswith("### ")}
    return sorted(old ^ new)[:limit]


@register
class DocsDriftRule(ProjectRule):
    name = "docs-drift"
    description = "docs/API.md is regenerated for every public symbol"
    default_paths = ()  # project rule: no per-file scope

    def check_project(self, ctx: LintContext) -> list[Finding]:
        api_md = ctx.root / "docs" / "API.md"
        committed = api_md.read_text() if api_md.exists() else ""
        try:
            fresh = fresh_api_text(ctx.root)
        except Exception as exc:  # pragma: no cover - import environment
            return [
                Finding(
                    path="docs/API.md",
                    line=0,
                    col=0,
                    rule=self.name,
                    message=f"cannot regenerate the API reference ({exc})",
                )
            ]
        if committed == fresh:
            return []
        drift = drifted_headings(committed, fresh)
        detail = (
            f"; changed symbols include {drift}" if drift
            else " (docstring/signature text changed)"
        )
        return [
            Finding(
                path="docs/API.md",
                line=0,
                col=0,
                rule=self.name,
                message=(
                    "stale API reference — regenerate with `make docs` "
                    "(python tools/gen_api_docs.py)" + detail
                ),
            )
        ]
