"""coin-flow: the §2.1 stream-order contract, checked transitively.

``coin-purity`` flags a *literal* draw inside a conditional branch.
That is the right check at the call site, but the contract it protects
is global: φ_t must be drawn for all n vertices every round in a fixed
order, so a function that merely *calls into* drawing code from a
data-dependent branch desynchronizes the stream just as surely as a
literal conditional draw — the draw happens on some trajectories and
not others.

This rule closes the gap with the project call graph
(:mod:`tools.repro_lint.dataflow`): inside every function reachable
from a hot entry point (``run*``/``step``/``_advance*``), a call whose
resolved targets *transitively* reach a ``CoinSource`` draw must not
sit under an ``if``/``elif``/``else`` branch, conditional expression,
or ``except``/``else``/``finally`` clause.  Loops are fine — that is
the per-round loop itself.  Literal draws are left to ``coin-purity``
(same site, better message).

The dispatch is conservative: ``self.method()`` resolves to the
statically bound definition *plus every subclass override*, so a
conditional ``self.step()`` is flagged if any engine's ``_advance``
draws.  Deliberate both-paths-draw patterns (e.g. an index-based fast
path that performs the identical full-width draw) carry a
``# repro-lint: disable=coin-flow`` pragma with the reason.
"""

from __future__ import annotations

import ast

from tools.repro_lint.core import (
    Finding,
    LintContext,
    Rule,
    SourceFile,
    dotted_name,
    register,
)
from tools.repro_lint.dataflow import DRAW_METHODS, FunctionInfo


def _short(qname: str) -> str:
    """``repro.core.two_state.TwoStateMIS._advance`` -> class.method."""
    return ".".join(qname.rsplit(".", 2)[-2:])


@register
class CoinFlowRule(Rule):
    name = "coin-flow"
    description = (
        "no call that transitively reaches a CoinSource draw under a "
        "data-dependent branch on hot paths"
    )
    default_paths = ("src/repro/core",)

    def check(self, src: SourceFile, ctx: LintContext) -> list[Finding]:
        index = ctx.project_index()
        mod = index.module_for(src.rel)
        if mod is None:
            return []  # outside the indexed package roots
        drawing = index.coin_reaching()
        findings: list[Finding] = []
        infos = list(mod.functions.values()) + [
            m for c in mod.classes.values() for m in c.methods.values()
        ]
        for finfo in infos:
            if not index.is_hot(finfo.qname):
                continue
            findings.extend(
                self._conditional_transitive_draws(
                    src, index, finfo, drawing
                )
            )
        return findings

    def _conditional_transitive_draws(
        self,
        src: SourceFile,
        index,
        finfo: FunctionInfo,
        drawing: set[str],
    ) -> list[Finding]:
        findings: list[Finding] = []

        def flag(call: ast.Call, target: str) -> None:
            chain = index.draw_chain(target)
            witness = " -> ".join(_short(q) for q in chain[:4])
            findings.append(
                Finding(
                    path=src.rel,
                    line=call.lineno,
                    col=call.col_offset,
                    rule=self.name,
                    message=(
                        f"conditional call transitively draws from the "
                        f"coin stream ({witness}); data-dependent draws "
                        "desynchronize the φ_t order"
                    ),
                )
            )

        def scan(node: ast.AST, cond_depth: int) -> None:
            for child in ast.iter_child_nodes(node):
                depth = cond_depth
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and node is not finfo.node:
                    # Nested function: its body runs when *it* is called.
                    depth = 0
                if isinstance(node, ast.If) and child in (
                    node.body + node.orelse
                ):
                    depth += 1
                elif isinstance(node, ast.IfExp) and child in (
                    node.body,
                    node.orelse,
                ):
                    depth += 1
                elif isinstance(node, ast.Try) and child not in node.body:
                    depth += 1
                if (
                    depth > 0
                    and isinstance(child, ast.Call)
                    and not (
                        isinstance(child.func, ast.Attribute)
                        and child.func.attr in DRAW_METHODS
                    )  # literal draws are coin-purity's finding
                    # Only dotted callees have resolved targets; a
                    # chained call (`coins.bits(n).copy()`) shares its
                    # position with the inner call and must not pick
                    # up that call's targets.
                    and dotted_name(child.func) is not None
                ):
                    targets = finfo.call_targets.get(
                        (child.lineno, child.col_offset), ()
                    )
                    hits = [t for t in targets if t in drawing]
                    if hits:
                        flag(child, hits[0])
                scan(child, depth)

        scan(finfo.node, 0)
        return findings
