"""hot-loop-alloc: no fresh arrays inside per-round engine loops.

The engine run paths loop once per synchronous round; an array
constructor inside that loop allocates (and page-faults) every round,
where the established idiom is a preallocated reuse buffer written
through ``out=`` / ``CoinSource.bits_into`` / ``.fill``
(see ``BatchedMISBase._phi_rows``).  This rule flags
``np.zeros/ones/empty/full`` calls lexically inside a ``for``/``while``
loop of a run-path function (``run*`` / ``step`` / ``_advance*`` by
default, configurable).

Event-driven allocations (retirement bookkeeping, error paths) live in
helper functions the loop calls, which this lexical rule deliberately
does not descend into; truly per-round allocations that are cheaper
than the bookkeeping to avoid them carry a per-line pragma.
"""

from __future__ import annotations

import ast

from tools.repro_lint.core import (
    Finding,
    LintContext,
    Rule,
    SourceFile,
    dotted_name,
    register,
)

#: Fresh-array constructors to keep out of per-round loops.
ALLOCATORS = ("zeros", "ones", "empty", "full")
#: Run-path function name prefixes (exact match or prefix).
DEFAULT_FUNCTIONS = ("run", "_run", "step", "_advance")


def _is_run_path(name: str, patterns: tuple[str, ...]) -> bool:
    return any(name == p or name.startswith(p) for p in patterns)


@register
class HotLoopAllocRule(Rule):
    name = "hot-loop-alloc"
    description = (
        "fresh-array allocation inside a per-round engine loop; "
        "preallocate and reuse (out=, bits_into, .fill)"
    )
    default_paths = (
        "src/repro/core",
        "src/repro/sim/runner.py",
    )

    def check(self, src: SourceFile, ctx: LintContext) -> list[Finding]:
        patterns = tuple(
            ctx.config.rule_option(self.name, "functions", DEFAULT_FUNCTIONS)
        )
        findings: list[Finding] = []

        def scan_loop_body(node: ast.AST) -> None:
            """Flag allocators in this subtree (we are inside a loop)."""
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue  # closures run on their own schedule
                if isinstance(child, ast.Call):
                    name = dotted_name(child.func)
                    if name is not None:
                        head, _, member = name.rpartition(".")
                        if head in ("np", "numpy") and member in ALLOCATORS:
                            findings.append(
                                Finding(
                                    path=src.rel,
                                    line=child.lineno,
                                    col=child.col_offset,
                                    rule=self.name,
                                    message=(
                                        f"`np.{member}` allocates a fresh "
                                        "array every round; preallocate a "
                                        "reuse buffer (out=/bits_into/.fill)"
                                    ),
                                )
                            )
                scan_loop_body(child)

        def scan_function(func: ast.AST) -> None:
            for child in ast.iter_child_nodes(func):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if isinstance(child, (ast.For, ast.While)):
                    scan_loop_body(child)
                else:
                    scan_function(child)

        for node in ast.walk(src.tree):
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ) and _is_run_path(node.name, patterns):
                scan_function(node)
        return findings
