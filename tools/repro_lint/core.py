"""Shared finding/rule/suppression/config core of repro-lint.

Every checker is a :class:`Rule` (per-file, AST-based) or a
:class:`ProjectRule` (whole-repo artifacts such as ``BENCH_*.json`` and
``docs/API.md``).  Rules register themselves into :data:`REGISTRY` via
the :func:`register` decorator at import time; :func:`run_lint` walks
the requested paths, parses each file once, applies every rule whose
path scope matches, and filters findings through per-line pragmas and
the ``pyproject.toml`` allowlist.

Suppression syntax (anywhere on the offending line)::

    counts[idx] += 1  # repro-lint: disable=cache-invalidation

and, once per file (typically under the module docstring)::

    # repro-lint: disable-file=dtype-discipline

Configuration lives in ``pyproject.toml``::

    [tool.repro-lint]
    exclude = ["tests/data/*"]

    [tool.repro-lint.rules.coin-purity]
    paths = ["src/repro/core"]        # scope override (globs/prefixes)
    allow = ["src/repro/core/x.py"]   # files exempt from the rule
"""

from __future__ import annotations

import ast
import fnmatch
import pathlib
import re
import tomllib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

if TYPE_CHECKING:
    from tools.repro_lint.dataflow import ProjectIndex

#: ``# repro-lint: disable=rule-a,rule-b`` (per line).
_PRAGMA = re.compile(r"#\s*repro-lint:\s*disable=([\w,\- ]+)")
#: ``# repro-lint: disable-file=rule-a,rule-b`` (whole module).
_PRAGMA_FILE = re.compile(r"#\s*repro-lint:\s*disable-file=([\w,\- ]+)")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, addressable for suppression and reporting."""

    path: str  # repo-relative posix path
    line: int  # 1-based; 0 for whole-file findings
    col: int  # 0-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


class SourceFile:
    """A parsed python source file plus its suppression pragmas."""

    def __init__(self, path: pathlib.Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree = ast.parse(text, filename=rel)
        self.line_disables: dict[int, set[str]] = {}
        self.file_disables: set[str] = set()
        for lineno, line in enumerate(self.lines, start=1):
            m = _PRAGMA.search(line)
            if m:
                self.line_disables[lineno] = {
                    r.strip() for r in m.group(1).split(",") if r.strip()
                }
            m = _PRAGMA_FILE.search(line)
            if m:
                self.file_disables |= {
                    r.strip() for r in m.group(1).split(",") if r.strip()
                }
        # Map every line a statement occupies to the statement's first
        # line (its first decorator, for decorated defs).  Compound
        # statements claim only their header lines — the body belongs
        # to the inner statements — so a pragma anywhere on a multiline
        # call or on a decorator suppresses findings attributed to any
        # other line of the same statement.
        self._stmt_first: dict[int, int] = {}
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            decorators = getattr(node, "decorator_list", [])
            first = min(
                [node.lineno] + [d.lineno for d in decorators]
            )
            body = getattr(node, "body", None)
            if isinstance(body, list) and body and isinstance(
                body[0], ast.stmt
            ):
                last = body[0].lineno - 1
            else:
                last = node.end_lineno or node.lineno
            for lineno in range(first, last + 1):
                self._stmt_first[lineno] = first

    def suppressed(self, finding: Finding) -> bool:
        if finding.rule in self.file_disables:
            return True
        rules = self.line_disables.get(finding.line)
        if rules is not None and finding.rule in rules:
            return True
        # Same-statement suppression: a pragma on any line of the
        # statement (header lines only, for compound statements)
        # covers findings reported on its other lines.
        first = self._stmt_first.get(finding.line)
        if first is None:
            return False
        return any(
            finding.rule in disables
            and self._stmt_first.get(pragma_line, pragma_line) == first
            for pragma_line, disables in self.line_disables.items()
        )


@dataclass
class Config:
    """Resolved ``[tool.repro-lint]`` settings."""

    root: pathlib.Path
    exclude: list[str] = field(default_factory=list)
    #: default lint paths when the CLI gets no positional arguments.
    paths: list[str] = field(default_factory=list)
    #: ``[tool.repro-lint.dataflow]``: ``roots`` = package roots the
    #: project index scans (default ``["src/repro"]``).
    dataflow: dict[str, Any] = field(default_factory=dict)
    #: per-rule settings: ``{"paths": [...], "allow": [...], ...}``.
    rules: dict[str, dict[str, Any]] = field(default_factory=dict)

    def rule_option(self, rule: str, key: str, default: Any = None) -> Any:
        return self.rules.get(rule, {}).get(key, default)


def load_config(root: pathlib.Path) -> Config:
    """Read ``[tool.repro-lint]`` from ``<root>/pyproject.toml`` if present."""
    pyproject = root / "pyproject.toml"
    if not pyproject.exists():
        return Config(root=root)
    data = tomllib.loads(pyproject.read_text())
    section = data.get("tool", {}).get("repro-lint", {})
    return Config(
        root=root,
        exclude=list(section.get("exclude", [])),
        paths=list(section.get("paths", [])),
        dataflow=dict(section.get("dataflow", {})),
        rules={
            str(name): dict(opts)
            for name, opts in section.get("rules", {}).items()
        },
    )


def path_matches(rel: str, patterns: Iterable[str]) -> bool:
    """Whether a repo-relative posix path matches any pattern.

    A pattern is an ``fnmatch`` glob; a bare directory prefix (``src/x``)
    matches everything beneath it.
    """
    for pat in patterns:
        pat = pat.rstrip("/")
        if rel == pat or fnmatch.fnmatch(rel, pat):
            return True
        if fnmatch.fnmatch(rel, pat + "/*"):
            return True
    return False


@dataclass
class LintContext:
    """What a rule gets to see: resolved config plus the repo root."""

    config: Config
    _index: "ProjectIndex | None" = field(
        default=None, repr=False, compare=False
    )

    @property
    def root(self) -> pathlib.Path:
        return self.config.root

    @property
    def index_built(self) -> bool:
        return self._index is not None

    def project_index(self) -> "ProjectIndex":
        """The lazily built, cached project symbol table / call graph.

        Built once per lint run from the package roots in
        ``[tool.repro-lint.dataflow] roots`` (default ``src/repro``);
        the dataflow rules share it.
        """
        if self._index is None:
            from tools.repro_lint.dataflow import (
                DEFAULT_ROOTS,
                ProjectIndex,
            )

            roots = tuple(
                self.config.dataflow.get("roots", DEFAULT_ROOTS)
            )
            self._index = ProjectIndex.build(self.root, roots)
        return self._index


class Rule:
    """Base class for per-file AST rules."""

    #: Unique kebab-case rule id (used in pragmas and config).
    name: str = ""
    #: One-line description (``--list-rules``).
    description: str = ""
    #: Default path scope (globs/prefixes); ``None`` = every linted file.
    default_paths: tuple[str, ...] | None = None

    def applies_to(self, rel: str, config: Config) -> bool:
        paths = config.rule_option(self.name, "paths", self.default_paths)
        if paths is not None and not path_matches(rel, paths):
            return False
        allow = config.rule_option(self.name, "allow", ())
        return not path_matches(rel, allow)

    def check(self, src: SourceFile, ctx: LintContext) -> list[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """Base class for whole-repo rules (no per-file AST)."""

    def check(self, src: SourceFile, ctx: LintContext) -> list[Finding]:
        return []

    def check_project(self, ctx: LintContext) -> list[Finding]:
        raise NotImplementedError


#: All registered rules, by name (import :mod:`tools.repro_lint.rules`
#: for the built-in set).
REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule."""
    rule = cls()
    if not rule.name:
        raise ValueError(f"rule {cls.__name__} has no name")
    if rule.name in REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    REGISTRY[rule.name] = rule
    return cls


def all_rules() -> dict[str, Rule]:
    """The registry with the built-in rules guaranteed loaded."""
    import tools.repro_lint.rules  # noqa: F401  (registers on import)

    return REGISTRY


def iter_python_files(
    paths: Iterable[pathlib.Path], root: pathlib.Path, exclude: Iterable[str]
) -> Iterator[tuple[pathlib.Path, str]]:
    """Yield ``(path, relpath)`` for every .py file under the inputs."""
    seen: set[str] = set()
    for p in paths:
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            try:
                rel = f.resolve().relative_to(root.resolve()).as_posix()
            except ValueError:
                rel = f.as_posix()
            if rel in seen or path_matches(rel, exclude):
                continue
            seen.add(rel)
            yield f, rel


def run_lint(
    paths: Iterable[pathlib.Path],
    root: pathlib.Path,
    config: Config | None = None,
    select: Iterable[str] | None = None,
    on_error: Callable[[str], None] | None = None,
) -> list[Finding]:
    """Lint the given files/directories; returns sorted findings.

    ``select`` restricts to a subset of rule names.  Unparseable files
    are reported through ``on_error`` (and otherwise ignored — the test
    suite and CI run the real parser anyway).
    """
    config = config or load_config(root)
    rules = all_rules()
    if select is not None:
        unknown = set(select) - set(rules)
        if unknown:
            raise ValueError(f"unknown rule(s): {sorted(unknown)}")
        rules = {name: rules[name] for name in select}
    file_rules = [
        r for r in rules.values() if not isinstance(r, ProjectRule)
    ]
    project_rules = [r for r in rules.values() if isinstance(r, ProjectRule)]
    ctx = LintContext(config=config)

    findings: list[Finding] = []
    for path, rel in iter_python_files(paths, root, config.exclude):
        active = [r for r in file_rules if r.applies_to(rel, config)]
        if not active:
            continue
        try:
            src = SourceFile(path, rel, path.read_text())
        except (OSError, SyntaxError) as exc:
            if on_error is not None:
                on_error(f"{rel}: cannot lint ({exc})")
            continue
        for rule in active:
            findings.extend(
                f for f in rule.check(src, ctx) if not src.suppressed(f)
            )
    for rule in project_rules:
        findings.extend(rule.check_project(ctx))
    if ctx.index_built and on_error is not None:
        for warning in ctx.project_index().warnings():
            on_error(f"warning: {warning}")
    return sorted(findings)


# ----------------------------------------------------------------------
# Small AST helpers shared by the rule modules
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for nested Attribute/Name chains, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def has_keyword(call: ast.Call, name: str) -> bool:
    return any(kw.arg == name for kw in call.keywords)


def walk_with_parents(
    tree: ast.AST,
) -> Iterator[tuple[ast.AST, list[ast.AST]]]:
    """Depth-first walk yielding ``(node, ancestor_stack)`` pairs."""
    stack: list[ast.AST] = []

    def visit(node: ast.AST) -> Iterator[tuple[ast.AST, list[ast.AST]]]:
        yield node, stack
        stack.append(node)
        for child in ast.iter_child_nodes(node):
            yield from visit(child)
        stack.pop()

    yield from visit(tree)
