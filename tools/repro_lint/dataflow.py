"""Project-wide symbol table and call graph for the dataflow rules.

The PR 6 rules are file-local AST walks; the contracts they pin are
not.  The §2.1 coin-stream-order contract is *inter-procedural* — a
function that never touches a ``CoinSource`` still desynchronizes the
φ_t stream if something it calls draws and the call sits in a
data-dependent branch — and the parallel-safety / reduction-budget
contracts need to know what the worker side of a pool call can reach.

:class:`ProjectIndex` builds, in one pass over the configured package
roots (default ``src/repro``):

* a **symbol table** — every module, top-level function, class and
  method, keyed by qualified name (``repro.core.process.MISProcess.step``);
* **import resolution** — every ``import``/``from ... import`` binding
  is resolved through the package, chasing ``__init__`` re-export
  chains; intra-package (``repro.*``) targets that do not resolve are
  recorded in :attr:`ProjectIndex.unresolved_imports` (a warning, never
  a crash — the acceptance gate asserts the list is empty on ``src/``);
* a **call graph** — for every function, each call site is resolved to
  its possible targets: direct names through the import table,
  ``self.method()`` through the class hierarchy *including subclass
  overrides* (the receiver may be any descendant), and attribute
  receivers through declared types (``self.ops: NeighborOps = ...``,
  parameter annotations, constructor assignments and return
  annotations).  Calls that cannot be resolved statically (higher-order
  parameters, subscripted callables, ...) are recorded in
  :attr:`ProjectIndex.dynamic_calls` and otherwise skipped — dynamic
  code degrades coverage, not correctness;
* **reachability** from the hot entry points (``run*``/``step``/
  ``_advance*``), the set of functions whose per-round cost the
  engine contracts govern;
* **coin-flow closure** — the set of functions that transitively reach
  a ``CoinSource`` draw, with a witness chain for diagnostics.

Nested functions and lambdas are attributed to their enclosing
function: a reduction inside an ``_aggregate(..., lambda: ...)`` thunk
is charged to the method that installs it.  This over-approximates
(the thunk might not run) in exactly the conservative direction a
linter wants.
"""

from __future__ import annotations

import ast
import pathlib
from dataclasses import dataclass, field

#: Methods that consume entries from a coin stream (mirrors coin-purity).
DRAW_METHODS = ("bits", "bits_into", "bernoulli")

#: Hot entry-point name prefixes (mirrors hot-loop-alloc).
ENTRY_POINTS = ("run", "_run", "step", "_advance")

#: Default package roots, relative to the repo root.  The first path
#: component that is a package directory gives the package name
#: (``src/repro`` -> package ``repro`` rooted at ``src``).
DEFAULT_ROOTS = ("src/repro",)


def _ann_class_names(ann: ast.AST | None) -> list[str]:
    """Candidate class names in an annotation expression.

    Handles ``X``, ``a.b.X``, ``X | None``, ``Optional[X]`` and quoted
    forward references (``"X | None"``).  Returns dotted names in
    source order; the caller resolves them and keeps the first hit.
    """
    if ann is None:
        return []
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        try:
            ann = ast.parse(ann.value, mode="eval").body
        except SyntaxError:
            return []
    if isinstance(ann, ast.BinOp) and isinstance(ann.op, ast.BitOr):
        return _ann_class_names(ann.left) + _ann_class_names(ann.right)
    if isinstance(ann, ast.Subscript):  # Optional[X], list[X], ...
        return _ann_class_names(ann.slice)
    parts: list[str] = []
    node = ann
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        name = ".".join(reversed(parts))
        if name != "None":
            return [name]
    return []


def _dotted(node: ast.AST) -> str | None:
    """``a.b.c`` for Attribute/Name chains, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _receiver_components(node: ast.AST) -> list[str]:
    """Name/attribute components of a receiver chain, unwrapping
    subscripts and calls (``processes[r].coins`` -> [coins, processes])."""
    comps: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            comps.append(node.attr)
            node = node.value
        elif isinstance(node, (ast.Subscript, ast.Call)):
            node = node.value if isinstance(node, ast.Subscript) else node.func
        else:
            if isinstance(node, ast.Name):
                comps.append(node.id)
            return comps


@dataclass
class FunctionInfo:
    """One function or method in the project symbol table."""

    qname: str  # repro.core.process.MISProcess.step
    module: str  # repro.core.process
    rel: str  # src/repro/core/process.py
    node: ast.FunctionDef | ast.AsyncFunctionDef
    cls: str | None = None  # owning class qname, if a method
    #: Call-site targets: ``(lineno, col_offset) -> callee qnames``.
    call_targets: dict[tuple[int, int], tuple[str, ...]] = field(
        default_factory=dict
    )
    #: Whether the body contains a literal CoinSource draw.
    draws_directly: bool = False


@dataclass
class ClassInfo:
    """One class: bases, methods, and declared attribute types."""

    qname: str
    module: str
    rel: str
    node: ast.ClassDef
    base_qnames: tuple[str, ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` -> class qname, from annotations/constructors.
    attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One module: its tree, import bindings and top-level symbols."""

    name: str  # repro.core.process
    rel: str
    tree: ast.Module
    #: Local binding name -> fully qualified dotted target.
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: Names assigned at module top level (mutable module state).
    globals: set[str] = field(default_factory=set)


class ProjectIndex:
    """Symbol table + call graph over the configured package roots."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: ``"rel:line: unresolved import `target`"`` for intra-package
        #: imports the resolver could not find.  Must be empty on src/.
        self.unresolved_imports: list[str] = []
        #: Call sites the resolver had to give up on (higher-order
        #: arguments, subscripted callables, ...).  Informational only.
        self.dynamic_calls: list[str] = []
        #: Package name prefixes this index claims (e.g. ``("repro",)``).
        self.packages: tuple[str, ...] = ()
        self._subclasses: dict[str, set[str]] = {}
        self._call_graph: dict[str, set[str]] = {}
        self._draws: set[str] | None = None
        self._hot: set[str] | None = None
        self._by_rel: dict[str, ModuleInfo] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        root: pathlib.Path,
        roots: tuple[str, ...] = DEFAULT_ROOTS,
    ) -> "ProjectIndex":
        """Scan the package roots under ``root`` and resolve everything."""
        index = cls()
        packages = []
        for rootspec in roots:
            pkg_dir = root / rootspec
            if not pkg_dir.is_dir():
                continue
            packages.append(pkg_dir.name)
            base = pkg_dir.parent
            for path in sorted(pkg_dir.rglob("*.py")):
                rel = path.relative_to(root).as_posix()
                mod_parts = path.relative_to(base).with_suffix("").parts
                if mod_parts[-1] == "__init__":
                    mod_parts = mod_parts[:-1]
                index._scan_module(".".join(mod_parts), rel, path)
        index.packages = tuple(packages)
        index._link()
        return index

    def _scan_module(
        self, name: str, rel: str, path: pathlib.Path
    ) -> None:
        try:
            tree = ast.parse(path.read_text(), filename=rel)
        except (OSError, SyntaxError) as exc:
            self.dynamic_calls.append(f"{rel}: cannot parse ({exc})")
            return
        mod = ModuleInfo(name=name, rel=rel, tree=tree)
        # Imports anywhere in the module (function-local and
        # TYPE_CHECKING imports included) land in one binding table;
        # shadowing across scopes is not a pattern this codebase uses.
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    mod.imports.setdefault(bound, target)
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # no relative imports in this codebase
                for alias in node.names:
                    if alias.name == "*":
                        self.dynamic_calls.append(
                            f"{rel}:{node.lineno}: star import from "
                            f"{node.module} (bindings not tracked)"
                        )
                        continue
                    bound = alias.asname or alias.name
                    mod.imports.setdefault(
                        bound, f"{node.module}.{alias.name}"
                    )
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(
                    qname=f"{name}.{node.name}",
                    module=name,
                    rel=rel,
                    node=node,
                )
                mod.functions[node.name] = info
                self.functions[info.qname] = info
            elif isinstance(node, ast.ClassDef):
                cinfo = ClassInfo(
                    qname=f"{name}.{node.name}",
                    module=name,
                    rel=rel,
                    node=node,
                )
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        finfo = FunctionInfo(
                            qname=f"{cinfo.qname}.{item.name}",
                            module=name,
                            rel=rel,
                            node=item,
                            cls=cinfo.qname,
                        )
                        cinfo.methods[item.name] = finfo
                        self.functions[finfo.qname] = finfo
                mod.classes[node.name] = cinfo
                self.classes[cinfo.qname] = cinfo
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for t in targets:
                    if isinstance(t, (ast.Tuple, ast.List)):
                        for elt in t.elts:
                            if isinstance(elt, ast.Name):
                                mod.globals.add(elt.id)
                    elif isinstance(t, ast.Name):
                        mod.globals.add(t.id)
        self.modules[name] = mod
        self._by_rel[rel] = mod

    # ------------------------------------------------------------------
    # Symbol resolution
    # ------------------------------------------------------------------
    def _is_package_name(self, dotted: str) -> bool:
        head = dotted.split(".", 1)[0]
        return head in self.packages

    def resolve_qualified(
        self, dotted: str, _seen: frozenset[str] = frozenset()
    ) -> str | None:
        """Resolve a fully qualified dotted name to a symbol qname.

        Returns the qname of a module, function, class or method; or
        ``None`` for external names and unresolvable package names.
        ``__init__`` re-export chains are chased (with a cycle guard,
        so mutually importing modules terminate).
        """
        if dotted in _seen:
            return None
        _seen = _seen | {dotted}
        if dotted in self.modules:
            return dotted
        if dotted in self.functions or dotted in self.classes:
            return dotted
        # Longest module prefix + attribute path.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod_name = ".".join(parts[:cut])
            mod = self.modules.get(mod_name)
            if mod is None:
                continue
            rest = parts[cut:]
            head = rest[0]
            if head in mod.functions and len(rest) == 1:
                return mod.functions[head].qname
            if head in mod.globals:
                # Module-level constant / data binding.
                return f"{mod_name}.{head}"
            if head in mod.classes:
                cinfo = mod.classes[head]
                if len(rest) == 1:
                    return cinfo.qname
                if len(rest) == 2 and rest[1] in cinfo.methods:
                    return cinfo.methods[rest[1]].qname
                # Attribute of a class (constant, descriptor): treat
                # the class itself as the resolution.
                return cinfo.qname
            if head in mod.imports:
                chained = ".".join([mod.imports[head]] + rest[1:])
                return self.resolve_qualified(chained, _seen)
            return None
        return None

    def resolve_in_module(self, module: str, dotted: str) -> str | None:
        """Resolve a dotted name as seen from inside ``module``."""
        mod = self.modules.get(module)
        if mod is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in mod.imports:
            full = mod.imports[head] + (("." + rest) if rest else "")
            return self.resolve_qualified(full)
        if head in mod.functions and not rest:
            return mod.functions[head].qname
        if head in mod.classes:
            target = f"{module}.{dotted}"
            return self.resolve_qualified(target)
        return None

    def module_for(self, rel: str) -> ModuleInfo | None:
        """The scanned module for a repo-relative path, if indexed."""
        return self._by_rel.get(rel)

    # ------------------------------------------------------------------
    # Linking: imports, hierarchy, call graph
    # ------------------------------------------------------------------
    def _link(self) -> None:
        for mod in self.modules.values():
            for bound, target in mod.imports.items():
                if not self._is_package_name(target):
                    continue
                if self.resolve_qualified(target) is None:
                    line = 0
                    for node in ast.walk(mod.tree):
                        if isinstance(node, (ast.Import, ast.ImportFrom)):
                            names = [
                                (a.asname or a.name.split(".")[-1])
                                for a in node.names
                            ]
                            if bound in names or bound in [
                                a.name.split(".")[0] for a in node.names
                            ]:
                                line = node.lineno
                                break
                    self.unresolved_imports.append(
                        f"{mod.rel}:{line}: unresolved import "
                        f"`{target}` (bound as `{bound}`)"
                    )
        # Class hierarchy.
        for cinfo in self.classes.values():
            bases = []
            for base in cinfo.node.bases:
                name = _dotted(base)
                if name is None:
                    continue
                resolved = self.resolve_in_module(cinfo.module, name)
                if resolved in self.classes:
                    bases.append(resolved)
                    self._subclasses.setdefault(resolved, set()).add(
                        cinfo.qname
                    )
            cinfo.base_qnames = tuple(bases)
        for cinfo in self.classes.values():
            self._collect_attr_types(cinfo)
        for finfo in self.functions.values():
            self._resolve_calls(finfo)

    def mro(self, class_qname: str) -> list[str]:
        """Project-local linearization: the class, then bases, BFS."""
        out: list[str] = []
        queue = [class_qname]
        while queue:
            q = queue.pop(0)
            if q in out:
                continue
            out.append(q)
            cinfo = self.classes.get(q)
            if cinfo is not None:
                queue.extend(cinfo.base_qnames)
        return out

    def descendants(self, class_qname: str) -> set[str]:
        """All (transitive) project-local subclasses."""
        out: set[str] = set()
        queue = [class_qname]
        while queue:
            for child in self._subclasses.get(queue.pop(), ()):
                if child not in out:
                    out.add(child)
                    queue.append(child)
        return out

    def dispatch(self, class_qname: str, method: str) -> tuple[str, ...]:
        """Possible targets of ``<instance of class>.method()``.

        The statically bound definition (first hit in the MRO) plus
        every override in a descendant — the receiver may be any
        subclass at runtime.
        """
        targets: list[str] = []
        for q in self.mro(class_qname):
            cinfo = self.classes.get(q)
            if cinfo is not None and method in cinfo.methods:
                targets.append(cinfo.methods[method].qname)
                break
        for q in self.descendants(class_qname):
            cinfo = self.classes.get(q)
            if cinfo is not None and method in cinfo.methods:
                targets.append(cinfo.methods[method].qname)
        return tuple(dict.fromkeys(targets))

    def _class_of_annotation(
        self, module: str, ann: ast.AST | None
    ) -> str | None:
        for name in _ann_class_names(ann):
            resolved = self.resolve_in_module(module, name)
            if resolved in self.classes:
                return resolved
        return None

    def _class_of_call(self, module: str, call: ast.Call) -> str | None:
        """Class qname a call expression evaluates to, if derivable."""
        name = _dotted(call.func)
        if name is None:
            return None
        resolved = self.resolve_in_module(module, name)
        if resolved in self.classes:
            return resolved  # constructor call
        finfo = self.functions.get(resolved) if resolved else None
        if finfo is not None:
            return self._class_of_annotation(
                finfo.module, finfo.node.returns
            )
        return None

    def _collect_attr_types(self, cinfo: ClassInfo) -> None:
        """``self.<attr>`` types from annotations and constructors."""
        for item in cinfo.node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(
                item.target, ast.Name
            ):
                resolved = self._class_of_annotation(
                    cinfo.module, item.annotation
                )
                if resolved:
                    cinfo.attr_types[item.target.id] = resolved
        for method in cinfo.methods.values():
            for node in ast.walk(method.node):
                target = None
                value_cls = None
                if isinstance(node, ast.AnnAssign):
                    target = node.target
                    value_cls = self._class_of_annotation(
                        cinfo.module, node.annotation
                    )
                elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if isinstance(node.value, ast.Call):
                        value_cls = self._class_of_call(
                            cinfo.module, node.value
                        )
                if (
                    target is not None
                    and value_cls is not None
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    cinfo.attr_types.setdefault(target.attr, value_cls)

    def _local_types(self, finfo: FunctionInfo) -> dict[str, str]:
        """Local variable / parameter name -> class qname."""
        types: dict[str, str] = {}
        args = finfo.node.args
        for arg in (
            list(args.posonlyargs)
            + list(args.args)
            + list(args.kwonlyargs)
        ):
            resolved = self._class_of_annotation(
                finfo.module, arg.annotation
            )
            if resolved:
                types[arg.arg] = resolved
        for node in ast.walk(finfo.node):
            target = None
            value_cls = None
            if isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                target = node.target.id
                value_cls = self._class_of_annotation(
                    finfo.module, node.annotation
                )
            elif (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                target = node.targets[0].id
                value_cls = self._resolve_value_class(finfo, node.value)
            if target is not None and value_cls is not None:
                types.setdefault(target, value_cls)
        return types

    def _resolve_value_class(
        self, finfo: FunctionInfo, call: ast.Call
    ) -> str | None:
        """Class a call's result has: constructors, return annotations,
        including ``self.method()`` calls."""
        direct = self._class_of_call(finfo.module, call)
        if direct is not None:
            return direct
        name = _dotted(call.func)
        if name is None or finfo.cls is None:
            return None
        parts = name.split(".")
        if parts[0] == "self" and len(parts) == 2:
            for target in self.dispatch(finfo.cls, parts[1]):
                tinfo = self.functions.get(target)
                if tinfo is not None:
                    cls = self._class_of_annotation(
                        tinfo.module, tinfo.node.returns
                    )
                    if cls is not None:
                        return cls
        return None

    def _resolve_calls(self, finfo: FunctionInfo) -> None:
        """Populate ``finfo.call_targets`` and the call graph."""
        edges = self._call_graph.setdefault(finfo.qname, set())
        local_types = self._local_types(finfo)

        def attr_type(owner: str) -> str | None:
            """Type of ``self.<owner>`` through the MRO's attr tables."""
            if finfo.cls is None:
                return None
            for q in self.mro(finfo.cls):
                cinfo = self.classes.get(q)
                if cinfo is not None and owner in cinfo.attr_types:
                    return cinfo.attr_types[owner]
            return None

        for node in ast.walk(finfo.node):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                DRAW_METHODS
            ):
                # Any "coin"-ish component in the receiver chain marks
                # a literal draw — including subscripted receivers like
                # ``processes[r].coins.bits_into(...)``.
                if any(
                    "coin" in comp
                    for comp in _receiver_components(node.func.value)
                ):
                    finfo.draws_directly = True
                recv = _dotted(node.func.value)
                recv_cls = None
                if recv is not None:
                    parts = recv.split(".")
                    if len(parts) == 1:
                        recv_cls = local_types.get(parts[0])
                    elif parts[0] == "self" and len(parts) == 2:
                        recv_cls = attr_type(parts[1])
                if recv_cls is not None and any(
                    "Coin" in q.rsplit(".", 1)[-1]
                    for q in self.mro(recv_cls)
                ):
                    finfo.draws_directly = True
            name = _dotted(node.func)
            key = (node.lineno, node.col_offset)
            if name is None:
                self.dynamic_calls.append(
                    f"{finfo.rel}:{node.lineno}: dynamic call in "
                    f"`{finfo.qname}` (callee is not a name)"
                )
                continue
            targets = self._targets_for_name(
                finfo, name, local_types, attr_type
            )
            if targets:
                finfo.call_targets[key] = targets
                edges.update(
                    t for t in targets if t in self.functions
                )
            # Unresolved bare names are external (np, builtins) or
            # higher-order parameters; both are out of scope here.

    def _targets_for_name(
        self,
        finfo: FunctionInfo,
        name: str,
        local_types: dict[str, str],
        attr_type,
    ) -> tuple[str, ...]:
        parts = name.split(".")
        # self.method() -> hierarchy dispatch (incl. overrides).
        if parts[0] == "self" and finfo.cls is not None:
            if len(parts) == 2:
                return self.dispatch(finfo.cls, parts[1])
            if len(parts) == 3:  # self.attr.method()
                owner_cls = attr_type(parts[1])
                if owner_cls is not None:
                    return self.dispatch(owner_cls, parts[2])
            return ()
        # local.method() through declared local types.
        if len(parts) == 2 and parts[0] in local_types:
            return self.dispatch(local_types[parts[0]], parts[1])
        # Constructor call of a locally-typed name: Class(...)
        if len(parts) == 1 and parts[0] in local_types:
            return ()
        # Plain name / imported symbol / module attribute.
        resolved = self.resolve_in_module(finfo.module, name)
        if resolved is None:
            return ()
        if resolved in self.classes:
            # Constructor: the call runs __init__.
            init = self.dispatch(resolved, "__init__")
            return init or (resolved,)
        if resolved in self.functions:
            return (resolved,)
        return ()

    # ------------------------------------------------------------------
    # Derived analyses
    # ------------------------------------------------------------------
    def callees(self, qname: str) -> set[str]:
        return self._call_graph.get(qname, set())

    def coin_reaching(self) -> set[str]:
        """Functions that transitively reach a ``CoinSource`` draw."""
        if self._draws is not None:
            return self._draws
        seeds = {
            f.qname for f in self.functions.values() if f.draws_directly
        }
        # The draw entry points themselves: bits/bits_into/bernoulli
        # methods on classes whose lineage mentions Coin.
        for cinfo in self.classes.values():
            if any(
                "Coin" in q.rsplit(".", 1)[-1] for q in self.mro(cinfo.qname)
            ):
                for method in DRAW_METHODS:
                    if method in cinfo.methods:
                        seeds.add(cinfo.methods[method].qname)
        # Reverse closure.
        reverse: dict[str, set[str]] = {}
        for src, dsts in self._call_graph.items():
            for dst in dsts:
                reverse.setdefault(dst, set()).add(src)
        out = set(seeds)
        queue = list(seeds)
        while queue:
            for caller in reverse.get(queue.pop(), ()):
                if caller not in out:
                    out.add(caller)
                    queue.append(caller)
        self._draws = out
        return out

    def draw_chain(self, qname: str) -> list[str]:
        """A witness path from ``qname`` to a literal draw (for messages)."""
        draws = self.coin_reaching()
        if qname not in draws:
            return []
        finfo = self.functions.get(qname)
        if finfo is not None and finfo.draws_directly:
            return [qname]
        parent: dict[str, str] = {}
        queue = [qname]
        seen = {qname}
        while queue:
            cur = queue.pop(0)
            for nxt in sorted(self.callees(cur)):
                if nxt in seen or nxt not in draws:
                    continue
                parent[nxt] = cur
                info = self.functions.get(nxt)
                if info is not None and info.draws_directly:
                    chain = [nxt]
                    while chain[-1] in parent:
                        chain.append(parent[chain[-1]])
                    return list(reversed(chain))
                seen.add(nxt)
                queue.append(nxt)
        return [qname]

    def hot_functions(self) -> set[str]:
        """Functions reachable from a ``run*``/``step``/``_advance*``
        entry point (the entry points themselves included)."""
        if self._hot is not None:
            return self._hot
        entries = {
            f.qname
            for f in self.functions.values()
            if any(
                f.node.name == p or f.node.name.startswith(p)
                for p in ENTRY_POINTS
            )
        }
        out = set(entries)
        queue = list(entries)
        while queue:
            for callee in self.callees(queue.pop()):
                if callee not in out:
                    out.add(callee)
                    queue.append(callee)
        self._hot = out
        return out

    def is_hot(self, qname: str) -> bool:
        return qname in self.hot_functions()

    def warnings(self) -> list[str]:
        """Human-readable analysis warnings (never failures)."""
        return list(self.unresolved_imports)
