"""repro-lint: AST-level invariant checkers for the reproduction.

The runtime equivalence suites catch trajectory-identity violations
*after* someone writes one; this package rejects the violating code at
lint time.  One visitor per codebase invariant:

* ``coin-purity``        — randomness in ``src/repro/core/**`` flows only
  through :class:`repro.sim.rng.CoinSource`, and no coin draw hides in a
  conditional branch that could desynchronize the documented φ_t order.
* ``cache-invalidation`` — in-place mutation of identity-cached arrays
  (``Graph`` lazy views, process state vectors, frontier aggregates)
  must sit next to an invalidation or a rebinding.
* ``dtype-discipline``   — hot-path array allocations carry an explicit
  ``dtype=``; array-valued reductions do not silently widen to 64-bit.
* ``hot-loop-alloc``     — no fresh-array constructors inside the
  per-round loops of engine run paths where a reuse-buffer idiom exists.
* ``bench-floors``       — every committed ``BENCH_*.json`` entry is
  well-formed and carries a regression floor its speedup meets.
* ``docs-drift``         — ``docs/API.md`` matches a regeneration, so
  every public symbol is documented.

Run it with ``python -m tools.repro_lint src/ tests/ benchmarks/`` (or
``make lint``).  Per-line suppressions use ``# repro-lint:
disable=<rule>``; per-rule path scopes and allowlists live in
``pyproject.toml`` under ``[tool.repro-lint]``.
"""

from __future__ import annotations

from tools.repro_lint.core import (
    Config,
    Finding,
    LintContext,
    ProjectRule,
    Rule,
    SourceFile,
    all_rules,
    load_config,
    register,
    run_lint,
)

__all__ = [
    "Config",
    "Finding",
    "LintContext",
    "ProjectRule",
    "Rule",
    "SourceFile",
    "all_rules",
    "load_config",
    "register",
    "run_lint",
]
