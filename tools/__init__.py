"""Repo tooling: docs generation, bench gating, and the repro-lint suite."""
