#!/usr/bin/env python3
"""Fail if the committed docs/API.md is stale.

Thin shim over the ``docs-drift`` repro-lint rule
(:mod:`tools.repro_lint.rules.docs_drift`), kept for the existing
Makefile/CI entry points and for its ``--fix`` mode::

    PYTHONPATH=src python tools/check_docs.py        # exit 1 if stale
    PYTHONPATH=src python tools/check_docs.py --fix  # rewrite in place

``make check-docs`` / ``make docs`` wrap the two modes; plain
``python -m tools.repro_lint`` reports the same staleness as a
``docs-drift`` finding.
"""

from __future__ import annotations

import argparse
import difflib
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(ROOT) not in sys.path:
    sys.path.insert(0, str(ROOT))

from tools.repro_lint.rules.docs_drift import fresh_api_text  # noqa: E402

API_MD = ROOT / "docs" / "API.md"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fix",
        action="store_true",
        help="rewrite docs/API.md instead of failing when stale",
    )
    args = parser.parse_args(argv)

    fresh = fresh_api_text(ROOT)
    committed = API_MD.read_text() if API_MD.exists() else ""
    if committed == fresh:
        print(f"{API_MD} is up to date")
        return 0
    if args.fix:
        API_MD.parent.mkdir(exist_ok=True)
        API_MD.write_text(fresh)
        print(f"rewrote {API_MD}")
        return 0
    diff = difflib.unified_diff(
        committed.splitlines(keepends=True),
        fresh.splitlines(keepends=True),
        fromfile="docs/API.md (committed)",
        tofile="docs/API.md (regenerated)",
    )
    sys.stdout.writelines(list(diff)[:200])
    print(
        "\ndocs/API.md is stale; regenerate with "
        "`PYTHONPATH=src python tools/gen_api_docs.py` "
        "(or `python tools/check_docs.py --fix`)."
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
