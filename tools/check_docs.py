#!/usr/bin/env python3
"""Fail if the committed docs/API.md is stale.

Regenerates the API reference in memory (via :mod:`gen_api_docs`) and
diffs it against the committed ``docs/API.md``.  Intended for CI and
pre-commit use::

    PYTHONPATH=src python tools/check_docs.py        # exit 1 if stale
    PYTHONPATH=src python tools/check_docs.py --fix  # rewrite in place

``make check-docs`` / ``make docs`` wrap the two modes.
"""

from __future__ import annotations

import argparse
import difflib
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import gen_api_docs  # noqa: E402

API_MD = pathlib.Path(__file__).resolve().parent.parent / "docs" / "API.md"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fix",
        action="store_true",
        help="rewrite docs/API.md instead of failing when stale",
    )
    args = parser.parse_args(argv)

    fresh = gen_api_docs.render()
    committed = API_MD.read_text() if API_MD.exists() else ""
    if committed == fresh:
        print(f"{API_MD} is up to date")
        return 0
    if args.fix:
        API_MD.parent.mkdir(exist_ok=True)
        API_MD.write_text(fresh)
        print(f"rewrote {API_MD}")
        return 0
    diff = difflib.unified_diff(
        committed.splitlines(keepends=True),
        fresh.splitlines(keepends=True),
        fromfile="docs/API.md (committed)",
        tofile="docs/API.md (regenerated)",
    )
    sys.stdout.writelines(list(diff)[:200])
    print(
        "\ndocs/API.md is stale; regenerate with "
        "`PYTHONPATH=src python tools/gen_api_docs.py` "
        "(or `python tools/check_docs.py --fix`)."
    )
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
