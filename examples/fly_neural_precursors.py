#!/usr/bin/env python3
"""Sensory-organ-precursor (SOP) selection: the fly's MIS computation.

§1 cites Afek et al. (Science 2011): during fly nervous-system
development, proneural cells self-select so that each cell either
becomes an SOP or neighbours one, and no two SOPs touch — an MIS, solved
by lateral inhibition (Delta/Notch signalling).  Cells cannot count
signals or identify senders — they detect only "some neighbour is
inhibiting me", which is exactly the stone-age/beeping observation
model.

This example models the proneural field as a hex-like lattice of cell
clusters and runs the 3-state MIS process (Definition 5) over the
stone-age network simulation: black1/black0 play the role of the
Delta-expressing (inhibiting) states, white is the inhibited state.

It then reports the biologically relevant observables: time to pattern
completion, SOP density, and the minimum pairwise SOP distance (always
>= 2 by independence).

Run:  python examples/fly_neural_precursors.py
"""

from repro import Graph, assert_valid_mis, run_until_stable
from repro.models.stone_age import StoneAgeThreeStateMIS


def proneural_field(rows: int, cols: int) -> Graph:
    """A brick-wall (hex-like) lattice: each cell touches up to 6 others."""
    def vid(r: int, c: int) -> int:
        return r * cols + c

    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows:
                edges.append((vid(r, c), vid(r + 1, c)))
                # Staggered diagonal, alternating by row parity.
                if r % 2 == 0 and c + 1 < cols:
                    edges.append((vid(r, c), vid(r + 1, c + 1)))
                elif r % 2 == 1 and c - 1 >= 0:
                    edges.append((vid(r, c), vid(r + 1, c - 1)))
    return Graph(rows * cols, edges)


def main() -> None:
    rows, cols = 20, 30
    field = proneural_field(rows, cols)
    print(f"proneural field: {field.n} cells, {field.m} contacts, "
          f"max contacts/cell = {field.max_degree()}")

    # All cells start in the undecided (white) state — but the process
    # would work from ANY initial pattern (self-stabilization).
    culture = StoneAgeThreeStateMIS(field, coins=11, init="all_white")
    result = run_until_stable(culture, max_rounds=20_000)
    sops = result.mis
    print(f"pattern complete after {result.stabilization_round} "
          f"signalling rounds: {len(sops)} SOPs "
          f"({len(sops) / field.n:.1%} of cells)")
    assert_valid_mis(field, sops)

    # Independence ⇒ no two SOPs are adjacent; check minimum pairwise
    # lattice distance via BFS from each SOP (small field, exact).
    min_dist = None
    sop_set = set(int(s) for s in sops)
    for s in sops:
        dist = field.bfs_distances(int(s))
        for t in sops:
            if int(t) != int(s) and dist[t] >= 0:
                d = int(dist[t])
                min_dist = d if min_dist is None else min(min_dist, d)
    print(f"minimum SOP-SOP contact distance: {min_dist} (>= 2 required)")

    # Lateral-inhibition realism check: every non-SOP cell is inhibited
    # by (adjacent to) at least one SOP.
    uncovered = [
        u for u in field.vertices()
        if u not in sop_set
        and not any(v in sop_set for v in field.neighbors(u))
    ]
    print(f"cells lacking inhibition: {len(uncovered)} (must be 0)")


if __name__ == "__main__":
    main()
