#!/usr/bin/env python3
"""Wireless sensor network: self-healing cluster-head election via beeps.

The intro's motivating scenario: a field of cheap radio sensors must
elect a set of cluster heads such that every sensor is adjacent to a
head and no two heads interfere — exactly an MIS of the communication
graph.  Nodes have no IDs, no knowledge of the network size, one bit of
state, and can only beep/listen (with sender collision detection).

This example:

1. builds a random geometric-ish communication graph (grid + random
   long links, a classic sensor-field stand-in);
2. runs the 2-state MIS process *as an actual beeping protocol*
   (`repro.models.beeping`) until cluster heads stabilize;
3. kills 20% of the elected heads (battery failure) and shows the
   network re-electing heads around the failures without any restart —
   the self-stabilization guarantee.

Run:  python examples/wireless_sensor_network.py
"""

import numpy as np

from repro import Graph, assert_valid_mis, run_until_stable
from repro.graphs.generators import grid_graph
from repro.models.beeping import BeepingTwoStateMIS


def sensor_field(side: int, extra_links: int, rng: np.random.Generator) -> Graph:
    """A side x side sensor grid plus a few random long-range links."""
    base = grid_graph(side, side)
    edges = list(base.edges())
    n = base.n
    for _ in range(extra_links):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            edges.append((int(u), int(v)))
    return Graph(n, edges)


def main() -> None:
    rng = np.random.default_rng(2023)
    graph = sensor_field(side=24, extra_links=60, rng=rng)
    print(f"sensor field: {graph.n} nodes, {graph.m} links")

    network = BeepingTwoStateMIS(graph, coins=5)
    result = run_until_stable(network, max_rounds=50_000)
    heads = result.mis
    print(f"cluster heads elected after {result.stabilization_round} "
          f"beeping rounds: {len(heads)} heads")
    assert_valid_mis(graph, heads)

    # --- transient fault: 20% of heads die (turn white) ---
    dead = rng.choice(heads, size=max(1, len(heads) // 5), replace=False)
    states = network.state_vector()
    states[dead] = False
    network.corrupt(states)
    disturbed = int(network.unstable_mask().sum())
    print(f"killed {len(dead)} heads -> {disturbed} nodes lost coverage")

    recovery = run_until_stable(network, max_rounds=50_000)
    print(f"re-stabilized after {recovery.stabilization_round} more rounds; "
          f"{len(recovery.mis)} heads now")
    assert_valid_mis(graph, recovery.mis)

    # Every protocol message in this whole run was a single beep.
    print("communication used: 1-bit beep channel, "
          "1 random bit per node per round, 1 bit of node state")


if __name__ == "__main__":
    main()
