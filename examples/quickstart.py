#!/usr/bin/env python3
"""Quickstart: compute an MIS with the 2-state process on a random graph.

Demonstrates the core public API: build a graph, run a process to
stabilization, inspect the result, and verify the MIS.

Run:  python examples/quickstart.py
"""

from repro import (
    TwoStateMIS,
    assert_valid_mis,
    gnp_random_graph,
    run_until_stable,
)


def main() -> None:
    # An Erdős–Rényi graph: 500 vertices, average degree ~10.
    graph = gnp_random_graph(500, 0.02, rng=42)
    print(f"graph: n={graph.n}, m={graph.m}, max degree={graph.max_degree()}")

    # The 2-state MIS process (Definition 4): every vertex holds one bit,
    # flips one fair coin per round, and needs only "do I have a black
    # neighbour?" feedback.  Initial states are arbitrary — here random.
    process = TwoStateMIS(graph, coins=7)

    result = run_until_stable(process, max_rounds=100_000, record_trace=True)
    assert result.stabilized

    print(f"stabilized after {result.stabilization_round} rounds")
    print(f"MIS size: {len(result.mis)}")

    # Verify independence + maximality explicitly (the runner already did).
    assert_valid_mis(graph, result.mis)
    print("MIS verified: independent and maximal")

    # The recorded trajectory shows the paper's potential function |V_t|
    # (non-stable vertices) collapsing geometrically.
    unstable = result.trace.unstable_counts
    checkpoints = [0, len(unstable) // 4, len(unstable) // 2, -1]
    print("unstable-vertex curve |V_t|:",
          " -> ".join(str(unstable[i]) for i in checkpoints))


if __name__ == "__main__":
    main()
