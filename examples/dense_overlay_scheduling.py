#!/usr/bin/env python3
"""Dense-overlay transmission scheduling: where the 3-color process earns
its extra states.

Scenario: a dense wireless backhaul (interference graph close to
G(n, p) with moderate p) must repeatedly schedule a set of
non-conflicting transmitters covering all routers — an MIS of the
interference graph.  Dense mid-range densities (p around n^-1/4) are
exactly the regime where the paper's 2-state analysis gives no bound
and the 3-color process (Definition 28) provably stays poly-logarithmic
(Theorem 32).

This example runs both processes on the same dense interference graphs
across increasing density, prints the comparison, and then demonstrates
the 3-color machinery explicitly: the gray "cool-down" state and the
logarithmic switch that meters re-entry.

Run:  python examples/dense_overlay_scheduling.py
"""


from repro import (
    ThreeColorMIS,
    TwoStateMIS,
    assert_valid_mis,
    gnp_random_graph,
    run_until_stable,
)


def main() -> None:
    n = 400
    rng_seed = 9
    print(f"interference graphs: G({n}, p) at increasing density\n")
    header = f"{'p':>8}  {'2-state rounds':>15}  {'3-color rounds':>15}"
    print(header)
    print("-" * len(header))
    for p in (0.05, float(n) ** -0.25, 0.3, 0.6, 1.0):
        graph = gnp_random_graph(n, p, rng=rng_seed)
        two = TwoStateMIS(graph, coins=1)
        three = ThreeColorMIS(graph, coins=2, a=16.0)
        r2 = run_until_stable(two, max_rounds=200_000)
        r3 = run_until_stable(three, max_rounds=200_000)
        assert_valid_mis(graph, r2.mis)
        assert_valid_mis(graph, r3.mis)
        print(f"{p:8.3f}  {r2.stabilization_round:15d}  "
              f"{r3.stabilization_round:15d}")

    # --- a look inside the 3-color machinery ---
    print("\ninside the 3-color process (n=200, p=0.25):")
    graph = gnp_random_graph(200, 0.25, rng=3)
    proc = ThreeColorMIS(graph, coins=4, a=16.0)
    for t in range(0, 40, 5):
        black = int(proc.black_mask().sum())
        gray = int(proc.gray_mask().sum())
        on = int(proc.switch.sigma().sum())
        print(f"  round {t:3d}: black={black:4d}  gray(cooling)={gray:4d}  "
              f"switch-on={on:4d}")
        proc.step(5)
    result = run_until_stable(proc, max_rounds=200_000)
    print(f"  stabilized at round {proc.round}: "
          f"{len(result.mis)} transmitters scheduled")


if __name__ == "__main__":
    main()
