#!/usr/bin/env python3
"""Watch the 2-state process stabilize, vertex by vertex.

Renders the state vector each round as a glyph row (`#` black,
`.` white) with the paper's aggregate quantities |B_t|, |A_t|, |V_t| —
a direct look at the dynamics the proofs reason about: active islands
resolving, stable black vertices freezing their neighbourhoods, |V_t|
collapsing.

Also shows a 2D grid run rendered in its actual layout, where the
spatial structure of the MIS (a sparse dominating pattern) is visible.

Run:  python examples/watch_stabilization.py
"""

from repro import TwoStateMIS, cycle_graph, grid_graph, run_until_stable
from repro.viz import render_grid_states, render_timeline, state_histogram


def main() -> None:
    # --- timeline on a cycle (1D layout = readable rows) ---
    print("2-state MIS on C_64, round by round:\n")
    process = TwoStateMIS(cycle_graph(64), coins=12)
    print(render_timeline(process, rounds=14, width=64))
    result = run_until_stable(process, max_rounds=10_000)
    print(f"\n...stabilized at round {process.round} "
          f"with {len(result.mis)} MIS vertices\n")

    # --- grid snapshot before/after ---
    rows, cols = 16, 48
    grid = grid_graph(rows, cols)
    process = TwoStateMIS(grid, coins=5)
    print(f"2-state MIS on a {rows}x{cols} grid — initial state:")
    print(render_grid_states(process.state_vector(), rows, cols))
    result = run_until_stable(process, max_rounds=10_000)
    print(f"\nafter {result.stabilization_round} rounds (`#` = MIS):")
    print(render_grid_states(process.state_vector(), rows, cols))
    print("\nfinal state distribution:")
    print(state_histogram(process.state_vector()))


if __name__ == "__main__":
    main()
