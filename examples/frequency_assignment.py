#!/usr/bin/env python3
"""Self-healing frequency assignment via MIS-based coloring.

The intro cites MIS as the engine of distributed symmetry breaking
[Luby'86].  This example uses that reduction in a radio setting: assign
each access point one of Δ+1 frequencies so that no two interfering APs
share one — a proper (Δ+1)-coloring of the interference graph —
computed by running the paper's self-stabilizing 2-state MIS process on
the palette-product graph (each AP simulates Δ+1 one-bit virtual
agents, one per candidate frequency).

Because the substrate is self-stabilizing, the assignment self-heals:
scrambling every AP's channel table mid-operation just re-converges.

Also demonstrates the sibling reduction: a maximal matching (pairing
APs for directional backhaul links) via MIS on the line graph.

Run:  python examples/frequency_assignment.py
"""

import numpy as np

from repro import gnp_random_graph
from repro.apps import (
    SelfStabilizingColoring,
    SelfStabilizingMatching,
    verify_proper_coloring,
)


def main() -> None:
    # Interference graph: 60 APs, geometric-ish random interference.
    rng_seed = 31
    graph = gnp_random_graph(60, 0.08, rng=rng_seed)
    delta = graph.max_degree()
    print(f"interference graph: {graph.n} APs, {graph.m} conflicts, "
          f"max interferers per AP = {delta}")

    # --- frequency assignment (coloring) ---
    app = SelfStabilizingColoring(graph, coins=7)
    print(f"virtual MIS instance: {app.product.n} one-bit agents "
          f"({delta + 1} candidate frequencies per AP)")
    colors = app.run(max_rounds=500_000)
    used = len(np.unique(colors))
    print(f"assignment complete: {used} of {delta + 1} frequencies used; "
          f"no conflicting APs share one")

    # --- transient fault: scramble every channel table ---
    app.corrupt_all(rng=13)
    healed = app.run(max_rounds=500_000)
    verify_proper_coloring(graph, healed)
    changed = int(np.count_nonzero(healed != colors))
    print(f"after full corruption: re-converged to a proper assignment "
          f"({changed}/{graph.n} APs ended on a different frequency)")

    # --- backhaul pairing (maximal matching) ---
    matcher = SelfStabilizingMatching(graph, coins=21)
    matching = matcher.run(max_rounds=500_000)
    paired = 2 * len(matching)
    print(f"backhaul pairing: {len(matching)} directional links, "
          f"{paired}/{graph.n} APs paired (maximal: no two free "
          f"neighbours remain)")


if __name__ == "__main__":
    main()
