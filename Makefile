PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test test-fast lint repro-lint typecheck docs check-docs bench bench-batched bench-families bench-substrate bench-frontier bench-batched-frontier bench-parallel bench-churn bench-fast check-bench bench-smoke doctor chaos-smoke churn-smoke ci

test:            ## full test suite (tier-1 gate)
	$(PYTHON) -m pytest -x -q

repro-lint:      ## AST invariant checks (tools/repro_lint, stdlib-only)
	$(PYTHON) -m tools.repro_lint

typecheck:       ## mypy, strict on the core (skipped if mypy is absent)
	@if $(PYTHON) -c "import mypy" >/dev/null 2>&1; then \
		$(PYTHON) -m mypy src/repro; \
	else \
		echo "mypy not installed; skipping typecheck (CI runs it)"; \
	fi

lint: repro-lint ## repro-lint + ruff + mypy (absent tools are skipped)
	@if $(PYTHON) -c "import ruff" >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests tools benchmarks examples; \
	else \
		echo "ruff not installed; skipping ruff (CI runs it)"; \
	fi
	@$(MAKE) --no-print-directory typecheck

test-fast:       ## test suite without the slower integration modules
	$(PYTHON) -m pytest -x -q -m "not slow" --ignore=tests/test_integration.py

docs:            ## regenerate docs/API.md from docstrings
	$(PYTHON) tools/gen_api_docs.py

check-docs:      ## fail if docs/API.md is stale
	$(PYTHON) tools/check_docs.py

bench:           ## full benchmark suite
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-batched:   ## serial vs batched trial-engine speedup report
	$(PYTHON) benchmarks/bench_batched_trials.py

bench-families:  ## serial vs batched speedups for the 3-state/3-color/scheduled engines
	$(PYTHON) benchmarks/bench_batched_families.py

bench-substrate: ## CSR substrate vs tuple/set representation at n = 2^20
	$(PYTHON) benchmarks/bench_graph_substrate.py

bench-frontier:  ## frontier engine vs PR 3 full-recompute path at n = 2^18 (>=5x asserted)
	$(PYTHON) benchmarks/bench_frontier.py

bench-batched-frontier:  ## batched frontier vs PR 2 full-reduction fleet (>=3x asserted on the tail-heavy workload)
	$(PYTHON) benchmarks/bench_batched_frontier.py

bench-parallel:  ## multi-core fleet sharding vs serial (hardware-scaled floor asserted; >=3x at 4 workers on 4+ cores)
	$(PYTHON) benchmarks/bench_parallel_sweep.py

bench-churn:     ## dynamic MIS service: frontier repair vs per-event rebuild at n = 2^16 (throughput floor asserted)
	$(PYTHON) benchmarks/bench_churn.py

bench-fast:      ## fast-mode speedups -> BENCH_*.json at repo root
	$(PYTHON) benchmarks/emit_bench_json.py

check-bench:     ## fail if any BENCH_*.json entry regresses its speedup floor
	$(PYTHON) tools/check_bench.py

doctor:          ## parallel-substrate self-check (spawn/crash/respawn, shm hygiene)
	$(PYTHON) -m repro.parallel --doctor

chaos-smoke:     ## seeded kill/hang/poison resilience matrix at 2 and 4 workers
	$(PYTHON) -m repro.parallel --chaos-smoke --workers 2 4

churn-smoke:     ## dynamic-service self-check (overlay/repair/resume doctor) + fast E20
	$(PYTHON) -m repro.dynamic --doctor
	$(PYTHON) -m repro.experiments run E20

ci: lint test check-docs bench-smoke doctor chaos-smoke churn-smoke   ## what the CI workflow runs

bench-smoke:     ## CI-scale regression smoke (batched engines, substrate, frontier, fleet sharding, churn, E19)
	BENCH_FAST=1 $(PYTHON) benchmarks/bench_batched_families.py
	BENCH_FAST=1 $(PYTHON) benchmarks/bench_graph_substrate.py
	BENCH_FAST=1 $(PYTHON) benchmarks/bench_frontier.py
	BENCH_FAST=1 $(PYTHON) benchmarks/bench_batched_frontier.py
	BENCH_FAST=1 $(PYTHON) benchmarks/bench_parallel_sweep.py
	BENCH_FAST=1 $(PYTHON) benchmarks/bench_churn.py
	$(PYTHON) -m repro.experiments run E19
