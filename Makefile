PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test test-fast docs check-docs bench bench-batched bench-families bench-substrate bench-smoke ci

test:            ## full test suite (tier-1 gate)
	$(PYTHON) -m pytest -x -q

test-fast:       ## test suite without the slower integration modules
	$(PYTHON) -m pytest -x -q -m "not slow" --ignore=tests/test_integration.py

docs:            ## regenerate docs/API.md from docstrings
	$(PYTHON) tools/gen_api_docs.py

check-docs:      ## fail if docs/API.md is stale
	$(PYTHON) tools/check_docs.py

bench:           ## full benchmark suite
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

bench-batched:   ## serial vs batched trial-engine speedup report
	$(PYTHON) benchmarks/bench_batched_trials.py

bench-families:  ## serial vs batched speedups for the 3-state/3-color/scheduled engines
	$(PYTHON) benchmarks/bench_batched_families.py

bench-substrate: ## CSR substrate vs tuple/set representation at n = 2^20
	$(PYTHON) benchmarks/bench_graph_substrate.py

ci: test check-docs bench-smoke   ## what the CI workflow runs

bench-smoke:     ## CI-scale regression smoke (batched engines, substrate, E19)
	BENCH_FAST=1 $(PYTHON) benchmarks/bench_batched_families.py
	BENCH_FAST=1 $(PYTHON) benchmarks/bench_graph_substrate.py
	$(PYTHON) -m repro.experiments run E19
