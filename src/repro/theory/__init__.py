"""The paper's explicit bounds as executable calculators.

Every theorem/lemma with a concrete constant is mirrored here so that
experiments, tests and users can compare measurements against *the
paper's own numbers* rather than ad-hoc budgets:

* :mod:`repro.theory.bounds` — probability and round-count bounds
  (Lemmas 6/7, Theorems 8/11/12, switch properties, good-graph
  thresholds).
* :mod:`repro.theory.budgets` — recommended simulation round budgets
  derived from the bounds (used to size ``max_rounds`` honestly).
"""

from repro.theory.bounds import (
    ALPHA,
    lemma6_probability,
    lemma6_rounds,
    lemma7_probability,
    theorem8_tail_exponent_band,
    theorem12_round_bound,
    switch_s1_bound,
    switch_s2_bound,
    p1_density_bound,
    p2_threshold_size,
    p3_slack,
    p4_edge_bound,
    p5_common_neighbor_bound,
    p6_probability_threshold,
)
from repro.theory.budgets import (
    recommended_budget,
    clique_budget,
    arboricity_budget,
    max_degree_budget,
    gnp_budget,
    three_color_budget,
)

__all__ = [
    "ALPHA",
    "lemma6_probability",
    "lemma6_rounds",
    "lemma7_probability",
    "theorem8_tail_exponent_band",
    "theorem12_round_bound",
    "switch_s1_bound",
    "switch_s2_bound",
    "p1_density_bound",
    "p2_threshold_size",
    "p3_slack",
    "p4_edge_bound",
    "p5_common_neighbor_bound",
    "p6_probability_threshold",
    "recommended_budget",
    "clique_budget",
    "arboricity_budget",
    "max_degree_budget",
    "gnp_budget",
    "three_color_budget",
]
