"""Round-budget recommendations derived from the paper's bounds.

``max_rounds`` choices in experiments should come from the theory, with
an explicit safety factor, rather than magic numbers.  Each function
returns a budget that the corresponding theorem says is exceeded with
probability at most ~n^-2 (up to the safety factor).
"""

from __future__ import annotations

import math

from repro.graphs.graph import Graph
from repro.theory.bounds import theorem12_round_bound

#: Default multiplicative safety factor over the theoretical bound.
SAFETY: float = 4.0


def clique_budget(n: int, safety: float = SAFETY) -> int:
    """Theorem 8: Θ(log² n) w.h.p. on K_n."""
    if n < 2:
        return 1
    return max(16, int(safety * 8.0 * math.log2(n) ** 2))


def arboricity_budget(n: int, arboricity: int, safety: float = SAFETY) -> int:
    """Theorem 11: O(log n) w.h.p. with constants growing with 2^d for
    average subgraph degree d <= 2·arboricity (the ε in the proof is
    ~2^-d / d)."""
    if n < 2:
        return 1
    d = max(1, 2 * arboricity)
    epsilon_inverse = (d + 1) * (2 ** d) * 2 * math.e * d
    return max(16, int(safety * 3 * epsilon_inverse * math.log(n)))


def max_degree_budget(n: int, delta: int, safety: float = SAFETY) -> int:
    """Theorem 12: 24eΔ log n w.h.p."""
    return max(16, int(safety * theorem12_round_bound(n, delta)))


def gnp_budget(n: int, safety: float = SAFETY) -> int:
    """Theorem 19: O(log^5.5 n) w.h.p. in the covered regimes.

    The exponent 5.5 makes this astronomically loose at small n; we use
    log^3 n as the practical envelope (measured stabilization times sit
    well below even log² n) but never less than the clique budget.
    """
    if n < 2:
        return 1
    return max(
        clique_budget(n, safety),
        int(safety * 4.0 * math.log2(n) ** 3),
    )


def three_color_budget(n: int, a: float, safety: float = SAFETY) -> int:
    """Theorem 32: O(log⁶ n) w.h.p.; practically the switch period
    ``a ln n`` times a few dozen wake cycles dominates at laptop n."""
    if n < 2:
        return 1
    switch_period = a * math.log(max(n, 2))
    return max(
        gnp_budget(n, safety),
        int(safety * 30 * switch_period),
    )


def recommended_budget(graph: Graph, process: str = "2-state") -> int:
    """Pick a budget from the graph's structure.

    Uses the tightest applicable theorem: clique detection → Theorem 8;
    degeneracy (arboricity proxy) small → Theorem 11; otherwise the
    Theorem 12 Δ-bound capped by the G(n,p) polylog envelope.
    """
    n = graph.n
    if n < 2:
        return 1
    if process not in ("2-state", "3-state", "3-color"):
        raise ValueError(f"unknown process {process!r}")
    m = graph.m
    if m == n * (n - 1) // 2:
        base = clique_budget(n)
    else:
        from repro.graphs.properties import degeneracy

        degen = degeneracy(graph)
        if degen <= 4:
            base = arboricity_budget(n, degen)
        else:
            base = min(
                max_degree_budget(n, graph.max_degree()),
                gnp_budget(n) * 8,
            )
    if process == "3-color":
        from repro.core.switch import DEFAULT_A

        return max(base, three_color_budget(n, DEFAULT_A))
    return base
