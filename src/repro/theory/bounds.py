"""Executable versions of the paper's explicit bounds.

The functions are deliberately literal: each one cites the statement it
encodes and uses the paper's constants, so experiment code reads like
the paper.  All logarithms follow the paper's conventions: ``log`` is
base 2 in round counts (e.g. Lemma 6's ``log(k+1)``), ``ln`` is natural
in the good-graph properties and switch bounds.
"""

from __future__ import annotations

import math

#: α = 1 / log₂(4/3) ≈ 2.409, the exponent of Lemmas 13-16.
ALPHA: float = 1.0 / math.log2(4.0 / 3.0)


# ----------------------------------------------------------------------
# Lemmas 6 and 7 (activity → stable black)
# ----------------------------------------------------------------------
def lemma6_rounds(k: int) -> int:
    """Rounds after which Lemma 6's probability bound applies:
    ``t + log(k+1)`` (we return ⌈log₂(k+1)⌉)."""
    if k < 1:
        raise ValueError("Lemma 6 requires k >= 1")
    return math.ceil(math.log2(k + 1))


def lemma6_probability(k: int) -> float:
    """Lemma 6: a k-active vertex is stable black after
    ``lemma6_rounds(k)`` rounds with probability at least ``(2ek)^-1``."""
    if k < 1:
        raise ValueError("Lemma 6 requires k >= 1")
    return 1.0 / (2.0 * math.e * k)


def lemma7_probability(ks: list[int]) -> float:
    """Lemma 7: for active u_1..u_ℓ with k_i active neighbours,
    P[some u_i stable black after log(max k_i + 1) rounds]
    >= (1/5) · min(1, Σ 1/(2 k_i))."""
    if not ks or any(k < 1 for k in ks):
        raise ValueError("Lemma 7 requires nonempty ks with k_i >= 1")
    return 0.2 * min(1.0, sum(1.0 / (2.0 * k) for k in ks))


# ----------------------------------------------------------------------
# Theorem 8 (complete graphs)
# ----------------------------------------------------------------------
def theorem8_tail_exponent_band() -> tuple[float, float]:
    """Theorem 8's proof constants: the probability that the next
    critical round is stable lies in [2/3, 17/21]; the tail
    P[T >= k log n] = 2^(-Θ(k)) has rate within the corresponding band
    (per k·log n block, failure probability ∈ [1 - 17/21, 1 - 2/3 + o(1)]
    up to the coupon-collector terms).  Returned as the (lo, hi) failure
    band used by E1's geometric-decay check."""
    return (1.0 - 17.0 / 21.0, 1.0 - 2.0 / 3.0)


# ----------------------------------------------------------------------
# Theorem 12 (maximum degree)
# ----------------------------------------------------------------------
def theorem12_round_bound(n: int, delta: int) -> float:
    """Theorem 12's proof bound: w.h.p. stabilization within
    ``4r = 24 e Δ log n`` rounds (r = 6eΔ log n, and t_r <= 4r w.h.p.)."""
    if n < 2:
        return 0.0
    if delta < 1:
        return 1.0
    return 24.0 * math.e * delta * math.log2(n)


# ----------------------------------------------------------------------
# Lemma 27 (logarithmic switch)
# ----------------------------------------------------------------------
def switch_s1_bound(n: int, zeta: float) -> float:
    """(S1): max off-run length ``a ln n`` with ``a = 4/ζ``."""
    _validate_zeta(zeta)
    return (4.0 / zeta) * math.log(max(n, 2))


def switch_s2_bound(n: int, zeta: float) -> float:
    """(S2): min off-run length ``(a/6) ln n`` with ``a = 4/ζ``
    (diam <= 2 graphs, after warm-up)."""
    _validate_zeta(zeta)
    return (4.0 / zeta) / 6.0 * math.log(max(n, 2))


def _validate_zeta(zeta: float) -> None:
    if not 0.0 < zeta <= 0.5:
        raise ValueError(f"zeta must be in (0, 1/2], got {zeta}")


# ----------------------------------------------------------------------
# Definition 17 (good graphs)
# ----------------------------------------------------------------------
def p1_density_bound(n: int, p: float, subset_size: int) -> float:
    """P1: max average degree allowed in an induced subgraph on
    ``subset_size`` vertices: ``max(8 p |S|, 4 ln n)``."""
    return max(8.0 * p * subset_size, 4.0 * math.log(max(n, 2)))


def p2_threshold_size(n: int, p: float) -> float:
    """P2: the property quantifies over sets of size >= ``40 ln(n)/p``."""
    if p <= 0:
        return math.inf
    return 40.0 * math.log(max(n, 2)) / p


def p3_slack(n: int, p: float) -> float:
    """P3: the additive slack ``8 ln²(n)/p``."""
    if p <= 0:
        return math.inf
    return 8.0 * math.log(max(n, 2)) ** 2 / p


def p4_edge_bound(n: int, s_size: int) -> float:
    """P4: ``|E(S, T)| <= 6 |S| ln n``."""
    return 6.0 * s_size * math.log(max(n, 2))


def p5_common_neighbor_bound(n: int, p: float) -> float:
    """P5: no two vertices share more than ``max(6 n p², 4 ln n)``
    neighbours."""
    return max(6.0 * n * p * p, 4.0 * math.log(max(n, 2)))


def p6_probability_threshold(n: int) -> float:
    """P6 applies when ``p >= 2 sqrt(ln n / n)`` (then diam(G) <= 2)."""
    if n < 2:
        return math.inf
    return 2.0 * math.sqrt(math.log(n) / n)
