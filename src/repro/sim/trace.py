"""Round-by-round trajectory recording.

A :class:`TraceRecorder` is attached to a run (see
:func:`repro.sim.runner.run_until_stable`) and snapshots the per-round
aggregate quantities the paper's analysis tracks: |B_t|, |A_t|, |I_t|,
|V_t| — optionally full state vectors for small graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Trace:
    """Recorded aggregate trajectory of one run.

    Index 0 is the initial configuration (end of round 0); entry t is the
    configuration at the end of round t.
    """

    black_counts: list[int] = field(default_factory=list)
    active_counts: list[int] = field(default_factory=list)
    stable_black_counts: list[int] = field(default_factory=list)
    unstable_counts: list[int] = field(default_factory=list)
    state_vectors: list[np.ndarray] | None = None

    @property
    def rounds(self) -> int:
        """Number of recorded configurations (rounds + 1)."""
        return len(self.black_counts)

    def as_arrays(self) -> dict[str, np.ndarray]:
        """The aggregate curves as numpy arrays keyed by name."""
        return {
            "black": np.array(self.black_counts, dtype=np.int64),
            "active": np.array(self.active_counts, dtype=np.int64),
            "stable_black": np.array(self.stable_black_counts, dtype=np.int64),
            "unstable": np.array(self.unstable_counts, dtype=np.int64),
        }


class TraceRecorder:
    """Snapshots a process's aggregates each round into a :class:`Trace`.

    Parameters
    ----------
    record_states:
        Also keep full per-round state vectors (memory O(rounds * n); use
        only on small graphs / short runs).
    """

    def __init__(self, record_states: bool = False) -> None:
        self.trace = Trace(
            state_vectors=[] if record_states else None
        )

    def snapshot(self, process) -> None:
        """Record the process's current aggregates.

        Uses :meth:`repro.core.process.MISProcess.trajectory_counts`,
        which frontier-engine processes serve from their maintained
        aggregates (no per-snapshot reductions on large graphs).
        """
        trace = self.trace
        n_black, n_active, n_stable, n_unstable = process.trajectory_counts()
        trace.black_counts.append(n_black)
        trace.active_counts.append(n_active)
        trace.stable_black_counts.append(n_stable)
        trace.unstable_counts.append(n_unstable)
        if trace.state_vectors is not None:
            trace.state_vectors.append(process.state_vector())
