"""Statistical machinery for the experiments.

Beyond the summary stats in :mod:`repro.sim.montecarlo`:

* :func:`geometric_tail_fit` — fit the tail rate of Theorem 8's
  P[T >= k log n] = 2^(-Θ(k)) claim, with a bootstrap CI;
* :func:`bootstrap_mean_ci` — distribution-free CI on means of skewed
  stabilization-time samples;
* :func:`mann_whitney_faster` — one-sided test that one algorithm's
  times are stochastically smaller than another's (used by the
  comparison experiments to avoid eyeballing means).
"""

from __future__ import annotations

import numpy as np
from scipy import stats as scipy_stats


def geometric_tail_fit(
    times: np.ndarray,
    block: float,
    max_k: int | None = None,
) -> dict[str, float]:
    """Fit P[T >= k·block] ≈ C·ρ^k and return the rate ρ.

    Parameters
    ----------
    times:
        Stabilization-time sample.
    block:
        The block length (Theorem 8 uses log n).
    max_k:
        Largest k to include; defaults to the largest with a positive,
        non-unit empirical tail.

    Returns a dict with ``rho`` (per-block survival ratio), ``log2_rho``
    and ``points`` (the number of (k, P̂) pairs used).  Fewer than two
    usable points yields ``rho = nan``.
    """
    times = np.asarray(times, dtype=float)
    if block <= 0:
        raise ValueError("block must be positive")
    ks = []
    probs = []
    k = 1
    while True:
        p = float(np.mean(times >= k * block))
        if p <= 0.0:
            break
        if p < 1.0:
            ks.append(k)
            probs.append(p)
        if max_k is not None and k >= max_k:
            break
        k += 1
        if k > 1000:
            break
    if len(ks) < 2:
        return {"rho": float("nan"), "log2_rho": float("nan"),
                "points": len(ks)}
    slope, _ = np.polyfit(ks, np.log2(probs), 1)
    rho = float(2.0 ** slope)
    return {"rho": rho, "log2_rho": float(slope), "points": len(ks)}


def bootstrap_mean_ci(
    sample: np.ndarray,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int | None = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap CI for the mean."""
    sample = np.asarray(sample, dtype=float)
    if sample.size == 0:
        raise ValueError("empty sample")
    if sample.size == 1:
        return (float(sample[0]), float(sample[0]))
    rng = np.random.default_rng(seed)
    means = rng.choice(
        sample, size=(resamples, sample.size), replace=True
    ).mean(axis=1)
    lo = float(np.quantile(means, (1 - confidence) / 2))
    hi = float(np.quantile(means, 1 - (1 - confidence) / 2))
    return (lo, hi)


def mann_whitney_faster(
    times_a: np.ndarray,
    times_b: np.ndarray,
    alpha: float = 0.01,
) -> dict[str, object]:
    """One-sided Mann-Whitney U: is A stochastically faster than B?

    Returns ``{"faster": bool, "p_value": float, "u": float}`` where
    ``faster`` means the one-sided p-value (A < B) is below ``alpha``.
    """
    times_a = np.asarray(times_a, dtype=float)
    times_b = np.asarray(times_b, dtype=float)
    if times_a.size == 0 or times_b.size == 0:
        raise ValueError("both samples must be nonempty")
    u, p_value = scipy_stats.mannwhitneyu(
        times_a, times_b, alternative="less"
    )
    return {
        "faster": bool(p_value < alpha),
        "p_value": float(p_value),
        "u": float(u),
    }


def success_rate_ci(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a success probability.

    Used to report the w.h.p. claims honestly: "stabilized within the
    budget in 100/100 trials" becomes a [0.963, 1.0] interval rather
    than a bare 1.0.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes out of range")
    z = scipy_stats.norm.ppf(0.5 + confidence / 2.0)
    phat = successes / trials
    denom = 1 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    half = (
        z
        * np.sqrt(
            phat * (1 - phat) / trials + z * z / (4 * trials * trials)
        )
        / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))
