"""Derived metrics over runs and traces.

* :func:`progress_curve` — the |V_t| decay curve the paper's potential
  argument tracks (Lemmas 21-23 prove expected multiplicative decay).
* :func:`stabilization_profile` — per-vertex stabilization times, i.e.
  the earliest round each vertex is stable.
* :func:`empirical_decay_rate` — fitted per-round decay of |V_t|, used
  by the progress experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.trace import Trace


@dataclass
class ProgressCurve:
    """The |V_t| (unstable count) trajectory with convenience accessors."""

    unstable: np.ndarray

    @property
    def rounds(self) -> int:
        """Number of recorded configurations."""
        return len(self.unstable)

    def halving_times(self) -> list[int]:
        """Rounds at which |V_t| first drops below n/2, n/4, n/8, ...

        A polylog-stabilizing process shows roughly evenly spaced halving
        times; an exponential-time one shows rapidly growing gaps.
        """
        if self.rounds == 0:
            return []
        target = self.unstable[0] / 2.0
        times = []
        for t, value in enumerate(self.unstable):
            while value <= target and target >= 1:
                times.append(t)
                target /= 2.0
        return times

    def decay_rate(self) -> float:
        """Geometric mean per-round decay factor of |V_t| (ignoring zeros)."""
        vals = self.unstable.astype(float)
        vals = vals[vals > 0]
        if len(vals) < 2:
            return 0.0
        ratios = vals[1:] / vals[:-1]
        return float(np.exp(np.mean(np.log(np.maximum(ratios, 1e-12)))))


def progress_curve(trace: Trace) -> ProgressCurve:
    """Extract the |V_t| curve from a recorded trace."""
    return ProgressCurve(
        unstable=np.array(trace.unstable_counts, dtype=np.int64)
    )


def stabilization_profile(process_factory, max_rounds: int) -> np.ndarray:
    """Per-vertex stabilization times for a fresh run.

    Runs a new process (from ``process_factory()``) for up to
    ``max_rounds``, recording for each vertex the earliest round at the
    end of which it is stable (-1 if never within the budget).

    The paper's per-vertex stabilization time is monotone (stable
    vertices stay stable), which this exploits.
    """
    process = process_factory()
    n = process.n
    times = np.full(n, -1, dtype=np.int64)
    covered = process.covered_mask()
    times[covered] = 0
    rounds = 0
    while rounds < max_rounds and (times < 0).any():
        process.step()
        rounds += 1
        covered = process.covered_mask()
        newly = covered & (times < 0)
        times[newly] = rounds
    return times


def empirical_decay_rate(traces: list[Trace]) -> float:
    """Average per-round |V_t| decay factor across traces.

    Lemmas 21-23 prove E[|V_{t+r}|] <= (1 - eps/polylog) |V_t| for
    r = O(log n); the empirical analogue is the mean geometric decay.
    """
    rates = []
    for trace in traces:
        curve = progress_curve(trace)
        rate = curve.decay_rate()
        if rate > 0:
            rates.append(rate)
    if not rates:
        return 0.0
    return float(np.exp(np.mean(np.log(rates))))
