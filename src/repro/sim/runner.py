"""Run-until-stable engine.

Executes a process until stabilization (``N+[I_t] = V``, see §2) or a
round budget runs out, optionally recording a trajectory and verifying
the resulting MIS.  The stabilization *time* reported is the earliest
round at the end of which all vertices are stable — exactly the paper's
definition — found by checking the predicate after every round.

The per-round predicate is cheap: processes memoize their
neighbourhood reductions per state version (so ``step()`` and
``is_stabilized()`` share one computation instead of recomputing —
see :meth:`repro.core.process.MISProcess._aggregate`), and processes
running the incremental frontier engine (:mod:`repro.core.frontier`,
the 2-/3-state default) answer it from an O(1) unstable-vertex
counter, with trace snapshots served from the same maintained
aggregates.

For Monte-Carlo campaigns, :func:`run_many_until_stable` runs a whole
list of independent processes, routing batchable ones (2-state,
3-state, 3-color and independently-scheduled processes — see the
dispatch table in :mod:`repro.core.batched`) through the matching
vectorized engine and everything else through the serial loop, with
results bitwise-identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.verify import assert_valid_mis
from repro.sim.trace import Trace, TraceRecorder

if TYPE_CHECKING:
    from repro.core.process import MISProcess
    from repro.parallel.pool import WorkerPool
    from repro.sim.checkpoint import CheckpointView


@dataclass
class RunResult:
    """Outcome of one run.

    Attributes
    ----------
    stabilized:
        Whether stabilization was reached within the budget.
    stabilization_round:
        The stabilization time (paper's definition), or ``None`` if the
        budget ran out.  A process that starts stable has time 0.
    rounds_executed:
        Rounds actually simulated.
    mis:
        The final MIS as a sorted vertex array (``None`` if not
        stabilized).
    trace:
        The recorded trajectory, when requested.
    """

    stabilized: bool
    stabilization_round: int | None
    rounds_executed: int
    mis: np.ndarray | None
    trace: Trace | None = None


def run_until_stable(
    process: MISProcess,
    max_rounds: int = 1_000_000,
    record_trace: bool = False,
    record_states: bool = False,
    check_every: int = 1,
    verify: bool = True,
) -> RunResult:
    """Run ``process`` until it stabilizes or ``max_rounds`` elapse.

    Parameters
    ----------
    process:
        Any :class:`~repro.core.process.MISProcess`.
    max_rounds:
        Round budget (counted from the process's current round).
    record_trace:
        Record the aggregate trajectory (|B_t|, |A_t|, |I_t|, |V_t|).
    record_states:
        Additionally record full state vectors (implies record_trace).
    check_every:
        Check the stabilization predicate every this many rounds.  With
        values > 1, the reported stabilization round may overshoot by up
        to ``check_every - 1`` rounds (trade exactness for speed on huge
        runs); the default 1 is exact.
    verify:
        Assert the final black set is a valid MIS (cheap; on by default).

    Returns
    -------
    RunResult
    """
    if max_rounds < 0:
        raise ValueError("max_rounds must be >= 0")
    if check_every < 1:
        raise ValueError("check_every must be >= 1")
    recorder = (
        TraceRecorder(record_states=record_states)
        if (record_trace or record_states)
        else None
    )
    start_round = process.round
    if recorder is not None:
        recorder.snapshot(process)

    stabilization_round: int | None = None
    if process.is_stabilized():
        stabilization_round = process.round - start_round
    else:
        while process.round - start_round < max_rounds:
            process.step()
            if recorder is not None:
                recorder.snapshot(process)
            rounds_done = process.round - start_round
            if rounds_done % check_every == 0 and process.is_stabilized():
                stabilization_round = rounds_done
                break
        # Budget may end between check points; settle the verdict.
        if stabilization_round is None and process.is_stabilized():
            stabilization_round = process.round - start_round

    stabilized = stabilization_round is not None
    mis = None
    if stabilized:
        mis = process.mis()
        if verify:
            assert_valid_mis(process.graph, mis)
    return RunResult(
        stabilized=stabilized,
        stabilization_round=stabilization_round,
        rounds_executed=process.round - start_round,
        mis=mis,
        trace=recorder.trace if recorder is not None else None,
    )


#: Replicas simulated together per batch under ``batch="auto"`` —
#: bounds how much live process/adjacency state exists at once.
AUTO_BATCH_CHUNK = 128


def validate_batch(batch: str | int | None) -> None:
    """Validate a trial-batching strategy: ``"auto"``, positive int, or None."""
    if batch is not None and batch != "auto":
        if not isinstance(batch, int) or isinstance(batch, bool) or batch < 1:
            raise ValueError(
                f"batch must be 'auto', a positive int, or None; got {batch!r}"
            )


def run_many_until_stable(
    processes: Sequence[MISProcess],
    max_rounds: int = 1_000_000,
    verify: bool = True,
    batch: str | int | None = "auto",
    engine: str = "auto",
    n_jobs: int | str | None = None,
    pool: WorkerPool | None = None,
    journal: "CheckpointView | None" = None,
) -> list[RunResult]:
    """Run many independent processes to stabilization, batching when possible.

    Batchable processes (see :func:`repro.core.batched.batchable`) are
    grouped by engine family and common vertex count — via the dispatch
    table of :mod:`repro.core.batched`, so 2-state, 3-state, 3-color and
    independently-scheduled processes each ride their own ``(R, n)``
    lockstep engine — and everything else goes through
    :func:`run_until_stable` one at a time.  Every process produces the
    exact trajectory it would have produced serially, so the two paths
    are interchangeable.

    Parameters
    ----------
    processes:
        Processes to run; each is advanced in place.
    max_rounds, verify:
        As in :func:`run_until_stable` (shared by all processes).
    batch:
        ``"auto"`` (group batchable processes in chunks of
        :data:`AUTO_BATCH_CHUNK`, bounding peak memory), an ``int`` cap
        on replicas per batch, or ``None`` (serial loop for everything).
    engine:
        Aggregate engine for the *batched* groups (see
        :mod:`repro.core.batched_frontier`): ``"full"`` recomputes the
        ``(R, n)`` neighbour reductions every round, ``"frontier"``
        scatter-updates persistent per-replica counts along only the
        changed pairs' edges, and ``"auto"`` (default) decides per
        replica per round at the volume crossover.  A pure performance
        knob — results are bitwise-identical.  Processes on the serial
        fallback use their own ``engine`` setting.
    n_jobs:
        Multi-core fleet sharding (see :mod:`repro.parallel`): ``None``
        defers to the process-wide default
        (:func:`repro.parallel.config.get_default_n_jobs`, itself
        ``None`` = serial), ``"auto"`` uses every usable core, an int
        requests that many shards (pool width is clamped to the CPU
        count; the shard count is honored verbatim).  Replicas are
        split into contiguous ranges, each executed by a persistent
        worker against shared-memory graph views — results and final
        process states are **bitwise-identical to the serial path for
        any worker count**, because every replica's coin stream is
        independent.
    pool:
        An existing pool to reuse (amortizes worker startup across
        calls); implies parallel dispatch with one shard per worker
        unless ``n_jobs`` says otherwise.  A
        :class:`repro.parallel.supervisor.SupervisedPool` (what the
        fleet path builds itself by default) self-heals worker
        crashes, stragglers, and poisoned results; a legacy
        :class:`repro.parallel.pool.WorkerPool` stays fail-fast.
    journal:
        A :class:`repro.sim.checkpoint.CheckpointView` for the fleet
        path: completed shards are persisted the moment they land and
        journaled shards are not re-dispatched, so an interrupted
        campaign resumes bitwise-identically.  Ignored by the
        in-process paths (they have no shard granularity to persist).

    Returns
    -------
    list[RunResult] in input order (no traces; use
    :func:`run_until_stable` directly to record trajectories).
    """
    from repro.core.batched import engine_for
    from repro.core.frontier import resolve_engine

    processes = list(processes)
    validate_batch(batch)
    resolve_engine(engine)

    if n_jobs is None and pool is None:
        from repro.parallel.config import get_default_n_jobs

        n_jobs = get_default_n_jobs()
    if (n_jobs is not None and n_jobs != 1) or pool is not None:
        from repro.parallel.fleet import fleet_shards, run_fleet_sharded

        if len(processes) >= 2 and fleet_shards(n_jobs, pool) >= 2:
            return run_fleet_sharded(
                processes,
                max_rounds=max_rounds,
                verify=verify,
                batch=batch,
                engine=engine,
                n_jobs=n_jobs,
                pool=pool,
                journal=journal,
            )

    results: list[RunResult | None] = [None] * len(processes)

    groups: dict[tuple[type, int], list[int]] = {}
    if batch is not None:
        for idx, process in enumerate(processes):
            engine_cls = engine_for(process)
            if engine_cls is not None:
                groups.setdefault((engine_cls, process.n), []).append(idx)
    batched_indices = set()
    for (engine_cls, _n), indices in groups.items():
        if len(indices) < 2:
            continue  # a singleton gains nothing from the batch machinery
        cap = AUTO_BATCH_CHUNK if batch == "auto" else int(batch)
        for lo in range(0, len(indices), cap):
            chunk = indices[lo:lo + cap]
            if len(chunk) == 1:
                continue
            runner = engine_cls(
                [processes[i] for i in chunk], engine=engine
            )
            for i, result in zip(chunk, runner.run(max_rounds, verify=verify)):
                results[i] = result
            batched_indices.update(chunk)

    for idx, process in enumerate(processes):
        if idx not in batched_indices:
            results[idx] = run_until_stable(
                process, max_rounds=max_rounds, verify=verify
            )
    return results
