"""Simulation engine: coin sources, runners, metrics, Monte-Carlo tools."""

from repro.sim.rng import (
    CoinSource,
    SeededCoins,
    ScriptedCoins,
    spawn_coin_sources,
    spawn_seeds,
)
from repro.sim.runner import RunResult, run_many_until_stable, run_until_stable
from repro.sim.trace import Trace, TraceRecorder
from repro.sim.metrics import (
    ProgressCurve,
    progress_curve,
    stabilization_profile,
)
from repro.sim.checkpoint import (
    CheckpointError,
    CheckpointJournal,
    CheckpointMismatchError,
    CheckpointView,
    campaign_fingerprint,
    checkpoint_scope,
    get_default_checkpoint_dir,
    set_default_checkpoint_dir,
)
from repro.sim.montecarlo import (
    SweepResult,
    TrialStats,
    estimate_stabilization_time,
    sweep_stabilization_times,
)

__all__ = [
    "CheckpointError",
    "CheckpointJournal",
    "CheckpointMismatchError",
    "CheckpointView",
    "campaign_fingerprint",
    "checkpoint_scope",
    "get_default_checkpoint_dir",
    "set_default_checkpoint_dir",
    "CoinSource",
    "SeededCoins",
    "ScriptedCoins",
    "spawn_seeds",
    "spawn_coin_sources",
    "RunResult",
    "run_until_stable",
    "run_many_until_stable",
    "Trace",
    "TraceRecorder",
    "ProgressCurve",
    "progress_curve",
    "stabilization_profile",
    "SweepResult",
    "TrialStats",
    "estimate_stabilization_time",
    "sweep_stabilization_times",
]
