"""Campaign checkpointing: a versioned, atomically-appended journal.

Long Monte-Carlo campaigns (a 12-point sweep × hundreds of trials) die
for boring reasons — preemption, Ctrl-C, a full disk — and PR 9's
resilience contract says dying must not forfeit completed work.  The
:class:`CheckpointJournal` is the persistence half of that contract: a
single JSONL file where the first line is a header (format version +
campaign fingerprint) and every further line is one completed unit of
work (``{"key": ..., "value": ...}``), appended atomically (write,
flush, fsync) the moment it completes.  A re-run with ``resume=True``
replays the journal, skips every journaled unit, and — because every
replica owns an independent coin stream — produces results
bitwise-identical to an uninterrupted run.

Key conventions (written by :mod:`repro.sim.montecarlo` and
:mod:`repro.parallel.fleet`):

=====================  ==============================================
key                    value
=====================  ==============================================
``stats``              a finished estimate's summarized TrialStats
``trial:{i}``          serial-path per-trial ``[stabilized, round]``
``chunk:{lo}``         chunked-path per-chunk result list
``shard:{lo}:{hi}``    fleet-path swap-pickled shard payload (bytes)
``point:{i}``          a sweep grid point's finished TrialStats
``p{i}:...``           the i-th grid point's scoped sub-campaign
=====================  ==============================================

Robustness properties:

* **Torn tails tolerated.**  A crash mid-append leaves a truncated
  final line; replay stops at the first undecodable line, truncates
  the fragment from disk (so later appends cannot merge into it and
  vanish from future replays), and the unit is simply re-run.
  (Append-then-fsync means at most the *last* line can be torn.)
* **Fingerprint checked.**  Resuming against a journal whose header
  fingerprint does not match the campaign raises
  :class:`CheckpointMismatchError` instead of silently splicing
  results from a different experiment.
* **Version gated.**  A journal written by a future format version is
  refused, not misparsed.
"""

from __future__ import annotations

import base64
import hashlib
import json
import multiprocessing as mp
import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator, Mapping

#: On-disk format version (header field ``"version"``).
JOURNAL_VERSION = 1

#: Header magic so a random JSONL file is not mistaken for a journal.
_MAGIC = "repro-checkpoint"


class CheckpointError(RuntimeError):
    """A checkpoint journal could not be read or written."""


class CheckpointMismatchError(CheckpointError):
    """A journal's fingerprint does not match the resuming campaign."""


def campaign_fingerprint(spec: Mapping[str, Any]) -> str:
    """Digest a campaign spec into a stable hex fingerprint.

    Canonical JSON (sorted keys, no whitespace variance) hashed with
    sha256 — two campaigns fingerprint equal iff their specs are equal,
    on any machine, in any process.
    """
    canonical = json.dumps(
        dict(spec), sort_keys=True, separators=(",", ":"), default=repr
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _encode_value(value: Any) -> Any:
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": base64.b64encode(bytes(value)).decode("ascii")}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"__bytes__"}:
        return base64.b64decode(value["__bytes__"])
    return value


class CheckpointJournal:
    """One campaign's on-disk journal of completed work units.

    Parameters
    ----------
    path:
        Journal file (parent directories are created).
    fingerprint:
        The campaign's identity — a spec mapping (fingerprinted via
        :func:`campaign_fingerprint`) or a ready-made hex digest.
    resume:
        ``True`` (default) replays an existing journal at ``path``
        (fingerprint-checked); ``False`` truncates and starts fresh.

    The journal is a mapping-flavored object: ``journal.put(key,
    value)`` persists one completed unit (JSON-serializable values;
    raw ``bytes`` are transparently base64-framed), ``journal.get`` /
    ``in`` query the replayed + live state.  :meth:`scoped` returns a
    key-prefixed view for nested campaigns (a sweep scoping each grid
    point's sub-estimate).
    """

    def __init__(
        self,
        path: str | Path,
        fingerprint: Mapping[str, Any] | str,
        *,
        resume: bool = True,
    ) -> None:
        self.path = Path(path)
        self.fingerprint = (
            fingerprint
            if isinstance(fingerprint, str)
            else campaign_fingerprint(fingerprint)
        )
        self._entries: dict[str, Any] = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and self.path.exists() and self.path.stat().st_size > 0:
            self._replay()
            self._file = open(self.path, "a", encoding="utf-8")
        else:
            self._file = open(self.path, "w", encoding="utf-8")
            self._append(
                {
                    "magic": _MAGIC,
                    "version": JOURNAL_VERSION,
                    "fingerprint": self.fingerprint,
                }
            )
        self._closed = False

    def _replay(self) -> None:
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        try:
            header = json.loads(lines[0])
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointError(
                f"{self.path}: unreadable journal header"
            ) from exc
        if header.get("magic") != _MAGIC:
            raise CheckpointError(
                f"{self.path}: not a repro checkpoint journal"
            )
        if header.get("version") != JOURNAL_VERSION:
            raise CheckpointError(
                f"{self.path}: journal format version "
                f"{header.get('version')!r} (this build reads "
                f"{JOURNAL_VERSION})"
            )
        if header.get("fingerprint") != self.fingerprint:
            raise CheckpointMismatchError(
                f"{self.path}: journal belongs to a different campaign "
                f"(fingerprint {header.get('fingerprint')!r:.20} != "
                f"{self.fingerprint!r:.20}); pass resume=False (or the "
                "CLI's plain --checkpoint without --resume) to start over"
            )
        # Only newline-terminated lines count: split() leaves whatever
        # followed the final "\n" — a torn fragment, or b"" for a clean
        # file — as the last element, which is never replayed.
        good_end = len(lines[0]) + 1
        for line in lines[1:-1]:
            try:
                entry = json.loads(line)
            except (json.JSONDecodeError, UnicodeDecodeError):
                # Torn tail from a crash mid-append: everything before
                # it was fsync-framed, so stop here and re-run the rest.
                break
            if not isinstance(entry, dict) or "key" not in entry:
                break
            self._entries[entry["key"]] = _decode_value(entry.get("value"))
            good_end += len(line) + 1
        if good_end < len(raw):
            # Drop the torn fragment *on disk*, not just in replay —
            # otherwise the very next append would merge into the
            # garbage line and hide every later entry from future
            # replays (the resume-after-poison chaos path).
            with open(self.path, "rb+") as fh:
                fh.truncate(good_end)

    def _append(self, record: Mapping[str, Any]) -> None:
        self._file.write(
            json.dumps(record, separators=(",", ":"), default=repr) + "\n"
        )
        self._file.flush()
        os.fsync(self._file.fileno())

    # -- mapping-flavored API ------------------------------------------
    def put(self, key: str, value: Any) -> None:
        """Persist one completed unit (atomic append; survives crashes)."""
        if self._closed:
            raise CheckpointError(f"{self.path}: journal is closed")
        self._entries[key] = value
        self._append({"key": key, "value": _encode_value(value)})

    def get(self, key: str, default: Any = None) -> Any:
        """The journaled value for ``key``, or ``default``."""
        return self._entries.get(key, default)

    def put_bytes(self, key: str, data: bytes) -> None:
        """Persist raw bytes (base64-framed on disk)."""
        self.put(key, data)

    def get_bytes(self, key: str) -> bytes | None:
        """Journaled bytes for ``key``, or ``None``."""
        value = self._entries.get(key)
        return bytes(value) if isinstance(value, (bytes, bytearray)) else None

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterator[str]:
        """Journaled keys, in completion order."""
        return iter(self._entries)

    def scoped(self, prefix: str) -> "CheckpointView":
        """A key-prefixed view (for nested campaign structure)."""
        return CheckpointView(self, prefix)

    def tear_tail(self) -> None:
        """Append a deliberately torn (truncated, newline-less) record.

        Chaos-testing hook (:mod:`repro.parallel.chaos`): simulates a
        crash mid-append so resume paths can prove they tolerate a torn
        tail.  The next replay discards the fragment and truncates it
        from disk.
        """
        if self._closed:
            raise CheckpointError(f"{self.path}: journal is closed")
        self._file.write('{"key": "torn-')
        self._file.flush()
        os.fsync(self._file.fileno())

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Flush and close the journal file (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._file.close()

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"CheckpointJournal({str(self.path)!r}, entries={len(self)}, "
            f"fingerprint={self.fingerprint[:12]!r})"
        )


class CheckpointView:
    """A key-prefixed window onto a :class:`CheckpointJournal`.

    Same ``put``/``get``/``in`` surface as the journal, with every key
    transparently prefixed — a sweep hands grid point *i* the view
    ``journal.scoped(f"p{i}:")`` and the point's fleet dispatch writes
    its ``shard:{lo}:{hi}`` entries without knowing it is nested.
    """

    def __init__(self, journal: CheckpointJournal, prefix: str) -> None:
        self.journal = journal
        self.prefix = prefix

    def put(self, key: str, value: Any) -> None:
        """Persist one completed unit under the view's prefix."""
        self.journal.put(self.prefix + key, value)

    def get(self, key: str, default: Any = None) -> Any:
        """The journaled value for the prefixed ``key``, or ``default``."""
        return self.journal.get(self.prefix + key, default)

    def put_bytes(self, key: str, data: bytes) -> None:
        """Persist raw bytes under the view's prefix."""
        self.journal.put_bytes(self.prefix + key, data)

    def get_bytes(self, key: str) -> bytes | None:
        """Journaled bytes for the prefixed ``key``, or ``None``."""
        return self.journal.get_bytes(self.prefix + key)

    def __contains__(self, key: object) -> bool:
        return (self.prefix + str(key)) in self.journal

    def keys(self) -> Iterator[str]:
        """Journaled keys under the view's prefix (prefix stripped)."""
        plen = len(self.prefix)
        return (
            k[plen:]
            for k in self.journal.keys()
            if k.startswith(self.prefix)
        )

    def scoped(self, prefix: str) -> "CheckpointView":
        """A further-nested view (prefixes concatenate)."""
        return CheckpointView(self.journal, self.prefix + prefix)

    def __repr__(self) -> str:
        return f"CheckpointView({self.journal!r}, prefix={self.prefix!r})"


# ---------------------------------------------------------------------------
# Process-wide default checkpointing (the experiments CLI's --checkpoint)
# ---------------------------------------------------------------------------

_default_dir: Path | None = None
_default_resume: bool = True
_scope_label: str = ""
_scope_counter: int = 0


def set_default_checkpoint_dir(
    path: str | Path | None, *, resume: bool = True
) -> None:
    """Install a process-wide checkpoint directory (``None`` disables).

    With a directory installed, every campaign launched *without* an
    explicit ``checkpoint=`` (each ``estimate_stabilization_time`` /
    ``sweep_stabilization_times`` call) journals itself into a file
    there, named from the active :func:`checkpoint_scope` label, a
    per-scope campaign sequence number, and the campaign fingerprint —
    so one ``--checkpoint DIR --resume`` on the experiments CLI makes
    every Monte-Carlo campaign of every experiment resumable with no
    per-call-site plumbing.  Resets the campaign sequence.
    """
    global _default_dir, _default_resume, _scope_counter
    _default_dir = Path(path) if path is not None else None
    _default_resume = resume
    _scope_counter = 0


def get_default_checkpoint_dir() -> Path | None:
    """The installed default checkpoint directory, if any."""
    return _default_dir


@contextmanager
def checkpoint_scope(label: str) -> Iterator[None]:
    """Scope default-journal filenames/fingerprints under ``label``.

    The experiments CLI wraps each experiment in its id — two
    experiments whose campaigns happen to share a shape (same trials,
    budget, seed) must not resume from each other's journals, and the
    shape is all :func:`campaign_fingerprint` can see (a process
    factory cannot be fingerprinted).  Also resets the campaign
    sequence number, so within a scope the i-th campaign launched maps
    to the i-th journal deterministically on every (re-)run.
    """
    global _scope_label, _scope_counter
    previous = (_scope_label, _scope_counter)
    _scope_label = label
    _scope_counter = 0
    try:
        yield
    finally:
        _scope_label, _scope_counter = previous


def open_default_journal(
    spec: Mapping[str, Any],
) -> CheckpointJournal | None:
    """Open the default-directory journal for one campaign, if armed.

    ``None`` when no default directory is installed — and always in
    worker/child processes (a forked ProcessPoolExecutor worker
    inherits the default, but only the master owns campaign
    journaling; children would assign nondeterministic sequence
    numbers).
    """
    global _scope_counter
    if _default_dir is None or mp.parent_process() is not None:
        return None
    index = _scope_counter
    _scope_counter += 1
    full = dict(spec)
    full["scope"] = _scope_label
    full["campaign_index"] = index
    fingerprint = campaign_fingerprint(full)
    stem = f"{_scope_label or 'campaign'}-{index:03d}-{fingerprint[:12]}"
    return CheckpointJournal(
        _default_dir / f"{stem}.journal",
        fingerprint,
        resume=_default_resume,
    )
