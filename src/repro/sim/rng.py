"""Coin sources: the randomness discipline of §2.1.

The paper's analysis flips, at the beginning of every round t and for every
vertex u, an independent fair coin φ_t(u); only active vertices consume
their coin.  We mirror that exactly: every process draws a full length-n
coin array per round from a :class:`CoinSource`, in a fixed documented
order.  This makes the pure-python reference implementations and the
vectorized engines trajectory-identical under a shared seed, and lets the
test suite feed scripted (deterministic) coin streams.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


class CoinSource:
    """Abstract source of per-round coin arrays.

    Concrete implementations: :class:`SeededCoins` (PRNG-backed) and
    :class:`ScriptedCoins` (deterministic, for tests).
    """

    def bits(self, n: int) -> np.ndarray:
        """``n`` independent fair coin flips as a boolean array.

        ``True`` plays the role of "black" for φ_t(u) draws.
        """
        raise NotImplementedError

    def bits_into(
        self, out: np.ndarray, scratch: np.ndarray | None = None
    ) -> np.ndarray:
        """:meth:`bits` written into a caller-provided boolean row.

        Consumes exactly the same draws as ``bits(len(out))`` — a pure
        allocation optimization for hot loops that drain many sources
        per round (the batched engines' φ_t assembly).  ``scratch`` may
        be a reusable float64 buffer of the same length.
        """
        out[...] = self.bits(out.shape[0])
        return out

    def bernoulli(self, n: int, prob: float) -> np.ndarray:
        """``n`` independent Bernoulli(prob) draws as a boolean array."""
        raise NotImplementedError


class SeededCoins(CoinSource):
    """PRNG-backed coin source.

    Parameters
    ----------
    seed:
        Any value accepted by :func:`numpy.random.default_rng`, or an
        existing ``Generator`` to wrap.
    """

    def __init__(self, seed: int | np.random.Generator | None = None) -> None:
        if isinstance(seed, np.random.Generator):
            self._rng = seed
        else:
            self._rng = np.random.default_rng(seed)

    def bits(self, n: int) -> np.ndarray:
        return self._rng.random(n) < 0.5

    def bits_into(
        self, out: np.ndarray, scratch: np.ndarray | None = None
    ) -> np.ndarray:
        if type(self) is not SeededCoins:
            # A subclass may have overridden bits(); route through it
            # so its semantics (counting, scripting, ...) are kept.
            return super().bits_into(out, scratch)
        n = out.shape[0]
        if scratch is None or scratch.shape[0] != n:
            scratch = np.empty(n)
        # Identical stream to bits(): Generator.random(out=...) draws
        # the same doubles as Generator.random(n).
        self._rng.random(out=scratch)
        np.less(scratch, 0.5, out=out)
        return out

    def bernoulli(self, n: int, prob: float) -> np.ndarray:
        if not 0.0 <= prob <= 1.0:
            raise ValueError(f"prob must be in [0, 1], got {prob}")
        return self._rng.random(n) < prob

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator (e.g. for initial states)."""
        return self._rng


class ScriptedCoins(CoinSource):
    """Deterministic coin source replaying pre-scripted arrays.

    Each call to :meth:`bits` or :meth:`bernoulli` pops the next script
    entry (in call order).  Used by tests to drive processes through
    exact trajectories.

    Parameters
    ----------
    script:
        Sequence of boolean arrays (or sequences coercible to them), one
        per expected draw, in order.
    """

    def __init__(self, script: Sequence[Sequence[bool]]) -> None:
        self._script = [np.asarray(a, dtype=bool) for a in script]
        self._pos = 0

    def _next(self, n: int) -> np.ndarray:
        if self._pos >= len(self._script):
            raise IndexError(
                f"scripted coins exhausted after {self._pos} draws"
            )
        arr = self._script[self._pos]
        if arr.shape != (n,):
            raise ValueError(
                f"scripted draw {self._pos} has shape {arr.shape}, "
                f"expected ({n},)"
            )
        self._pos += 1
        return arr

    def bits(self, n: int) -> np.ndarray:
        return self._next(n)

    def bernoulli(self, n: int, prob: float) -> np.ndarray:
        return self._next(n)

    @property
    def draws_consumed(self) -> int:
        """Number of script entries consumed so far."""
        return self._pos


def as_coin_source(
    coins: CoinSource | int | np.random.Generator | None,
) -> CoinSource:
    """Coerce seeds / generators / sources to a :class:`CoinSource`."""
    if isinstance(coins, CoinSource):
        return coins
    return SeededCoins(coins)


def spawn_seeds(seed: int | None, count: int) -> list[int]:
    """Derive ``count`` independent child seeds from a master seed.

    Uses ``numpy.random.SeedSequence`` spawning, so trials in a
    Monte-Carlo campaign are statistically independent and reproducible.
    """
    seq = np.random.SeedSequence(seed)
    return [int(child.generate_state(1)[0]) for child in seq.spawn(count)]


def spawn_coin_sources(seed: int | None, count: int) -> list[SeededCoins]:
    """``count`` independent :class:`SeededCoins` streams from a master seed.

    Convenience for building one coin stream per trial/replica by hand
    (e.g. when constructing a process list for
    :func:`repro.sim.runner.run_many_until_stable` directly, outside the
    factory-based Monte-Carlo entry points): ``spawn_coin_sources(seed,
    count)[r]`` draws exactly what a process seeded with
    ``spawn_seeds(seed, count)[r]`` would.
    """
    return [SeededCoins(s) for s in spawn_seeds(seed, count)]
