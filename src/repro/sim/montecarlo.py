"""Monte-Carlo estimation of stabilization times.

Every w.h.p. theorem in the paper is validated empirically by repeated
independent trials.  :func:`estimate_stabilization_time` runs a process
factory over independent seeds and summarizes the stabilization-time
distribution; :func:`sweep_stabilization_times` maps that over a
parameter grid (the engine behind every n-sweep experiment).

Trials are independent, so by default (``batch="auto"``) they execute on
the vectorized batched engine family of :mod:`repro.core.batched`: the
factory's processes are built in seed order exactly as the serial loop
would build them, then all batchable ones (2-state, 3-state, 3-color
with the randomized switch, independently-scheduled — see the dispatch
table) advance together as one state matrix.  Per-trial results are
bitwise-identical to ``batch=None``; non-batchable processes (oracle
switches, single-vertex daemons, reference implementations, ...)
silently take the serial path.

Multi-core execution goes through :mod:`repro.parallel`:
``estimate_stabilization_time(n_jobs=...)`` shards each trial fleet
into per-worker replica ranges against shared-memory graph views
(statistics bitwise-identical to serial for any worker count), and
``sweep_stabilization_times`` dispatches every grid point's fleet
through one persistent worker pool by default (``dispatch="fleet"``) —
the factory never crosses a process boundary, so lambdas and closures
parallelize like everything else.  The legacy per-grid-point pool
(``dispatch="points"``) remains for picklable factories.
"""

from __future__ import annotations

import pickle
import warnings
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

import numpy as np
from scipy import stats as scipy_stats

from repro.sim.checkpoint import CheckpointJournal, CheckpointView
from repro.sim.rng import spawn_seeds
from repro.sim.runner import (
    AUTO_BATCH_CHUNK,
    run_many_until_stable,
    run_until_stable,
    validate_batch,
)

if TYPE_CHECKING:
    from repro.parallel.pool import WorkerPool
    from repro.parallel.supervisor import SupervisedPool


@dataclass
class TrialStats:
    """Summary of a stabilization-time sample.

    ``times`` holds the stabilization rounds of the trials that
    stabilized; ``failures`` counts trials that exhausted the budget
    (these are *not* included in the quantile statistics — check
    ``success_rate`` before interpreting them).
    """

    times: np.ndarray
    failures: int
    max_rounds: int

    @property
    def trials(self) -> int:
        """Total number of trials (successes + failures)."""
        return len(self.times) + self.failures

    @property
    def success_rate(self) -> float:
        """Fraction of trials that stabilized within the budget."""
        if self.trials == 0:
            return 0.0
        return len(self.times) / self.trials

    @property
    def mean(self) -> float:
        """Mean stabilization time of successful trials."""
        return float(np.mean(self.times)) if len(self.times) else float("nan")

    @property
    def std(self) -> float:
        """Sample standard deviation of successful trials."""
        if len(self.times) < 2:
            return 0.0
        return float(np.std(self.times, ddof=1))

    @property
    def median(self) -> float:
        """Median stabilization time."""
        return (
            float(np.median(self.times)) if len(self.times) else float("nan")
        )

    @property
    def max(self) -> int:
        """Worst stabilization time observed."""
        return int(self.times.max()) if len(self.times) else -1

    @property
    def min(self) -> int:
        """Best stabilization time observed."""
        return int(self.times.min()) if len(self.times) else -1

    def quantile(self, q: float) -> float:
        """Empirical quantile of the stabilization time."""
        if not len(self.times):
            return float("nan")
        return float(np.quantile(self.times, q))

    def mean_ci(self, confidence: float = 0.95) -> tuple[float, float]:
        """Student-t confidence interval for the mean."""
        k = len(self.times)
        if k < 2:
            return (self.mean, self.mean)
        sem = self.std / np.sqrt(k)
        half = sem * scipy_stats.t.ppf(0.5 + confidence / 2.0, df=k - 1)
        return (self.mean - half, self.mean + half)

    def summary(self) -> str:
        """One-line human-readable summary."""
        if not len(self.times):
            return f"0/{self.trials} trials stabilized (budget {self.max_rounds})"
        lo, hi = self.mean_ci()
        return (
            f"mean={self.mean:.1f} [{lo:.1f}, {hi:.1f}]  "
            f"median={self.median:.0f}  p90={self.quantile(0.9):.0f}  "
            f"max={self.max}  success={self.success_rate:.0%} "
            f"({self.trials} trials)"
        )


def _stats_to_json(stats: TrialStats) -> dict:
    """Serialize a TrialStats for the checkpoint journal."""
    return {
        "times": stats.times.tolist(),
        "failures": stats.failures,
        "max_rounds": stats.max_rounds,
    }


def _stats_from_json(obj: Mapping) -> TrialStats:
    """Rebuild a journaled TrialStats."""
    return TrialStats(
        times=np.asarray(obj["times"], dtype=np.int64),
        failures=int(obj["failures"]),
        max_rounds=int(obj["max_rounds"]),
    )


def _open_checkpoint(
    checkpoint: "str | Path | CheckpointJournal | CheckpointView | None",
    fingerprint: Mapping[str, Any],
    resume: bool,
) -> tuple["CheckpointJournal | CheckpointView | None", bool]:
    """Resolve a ``checkpoint=`` argument to a journal (or view).

    A path is opened here — fingerprint-verified against the campaign
    when resuming — and the ``True`` second element tells the caller it
    owns the close.  An already-open journal or scoped view passes
    through untouched and unverified: its opener did the verification
    (this is how a sweep hands each grid point a ``p{i}:`` view whose
    enclosing fingerprint is the *sweep's*, not the point's).
    """
    if checkpoint is None:
        from repro.sim.checkpoint import open_default_journal

        journal = open_default_journal(fingerprint)
        return journal, journal is not None
    if isinstance(checkpoint, (str, Path)):
        return (
            CheckpointJournal(checkpoint, fingerprint, resume=resume),
            True,
        )
    return checkpoint, False


def estimate_stabilization_time(
    process_factory: Callable[[int], object],
    trials: int,
    max_rounds: int,
    seed: int | None = 0,
    batch: str | int | None = "auto",
    engine: str = "auto",
    n_jobs: int | str | None = None,
    pool: "WorkerPool | SupervisedPool | None" = None,
    checkpoint: "str | Path | CheckpointJournal | CheckpointView | None" = (
        None
    ),
    resume: bool = True,
) -> TrialStats:
    """Run independent trials and collect stabilization times.

    Parameters
    ----------
    process_factory:
        Called as ``process_factory(trial_seed)``; must return a fresh
        process.  The factory owns graph construction, so resampling the
        graph per trial (as G(n,p) experiments require) or fixing it is
        the caller's choice.  Factories must not share mutable random
        state *across* calls (each call derives everything from its
        ``trial_seed``) — all in-repo factories satisfy this, and it is
        what makes the batched fast path trial-for-trial identical to
        the serial loop.
    trials:
        Number of independent trials.
    max_rounds:
        Per-trial round budget.
    seed:
        Master seed; per-trial seeds are spawned from it.
    batch:
        Trial-execution strategy: ``"auto"`` (default) simulates up to
        :data:`AUTO_BATCH_CHUNK` trials at a time on the batched engine,
        an ``int`` sets that chunk size explicitly, and ``None`` forces
        the serial trial loop.  All three produce identical statistics.
        Factories producing non-batchable processes (oracle-switch
        3-color, single-vertex daemons, reference implementations, ...)
        are detected from the first trial and routed to the serial loop
        without up-front chunk construction; batchable families (see
        :mod:`repro.core.batched`) ride their engine automatically.
    engine:
        Aggregate engine for the batched chunks
        (``"auto"``/``"frontier"``/``"full"``, see
        :mod:`repro.core.batched_frontier`) — ``"auto"`` (default)
        maintains incremental per-replica neighbour counts and falls
        back to full reductions on bulky rounds.  Statistics are
        identical across engines; serial-path trials use the
        process's own ``engine`` setting.
    n_jobs, pool:
        Multi-core fleet sharding, forwarded to
        :func:`~repro.sim.runner.run_many_until_stable`: the whole
        trial fleet is built up front (the in-process chunked path
        instead bounds live state at one ``batch`` chunk) and its
        replicas are sharded across persistent workers.  Statistics
        are bitwise-identical for any worker count.  Factories that
        produce non-batchable processes ignore ``n_jobs`` and stay on
        the in-process serial loop.
    checkpoint, resume:
        Campaign checkpointing (see :mod:`repro.sim.checkpoint`): a
        journal path — opened here, fingerprint-verified when
        ``resume=True`` (the default), truncated otherwise — or an
        already-open journal/scoped view.  Completed units of work
        (fleet shards, in-process chunks, serial trials, and the final
        summary) are persisted atomically as they finish, and a
        resumed campaign skips them, producing statistics
        bitwise-identical to an uninterrupted run.  The fingerprint
        covers the campaign *shape* (trials, budget, seed, batching);
        the factory itself cannot be fingerprinted — resume with the
        factory you started with.
    """
    from repro.core.batched import batchable
    from repro.core.frontier import resolve_engine

    if trials < 1:
        raise ValueError("trials must be >= 1")
    validate_batch(batch)
    resolve_engine(engine)
    journal, own_journal = _open_checkpoint(
        checkpoint,
        {
            "kind": "estimate",
            "trials": trials,
            "max_rounds": max_rounds,
            "seed": seed,
            "batch": batch,
        },
        resume,
    )
    try:
        return _estimate_journaled(
            process_factory,
            trials,
            max_rounds,
            seed,
            batch,
            engine,
            n_jobs,
            pool,
            journal,
        )
    finally:
        if own_journal and journal is not None:
            journal.close()  # type: ignore[union-attr]


def _estimate_journaled(
    process_factory: Callable[[int], object],
    trials: int,
    max_rounds: int,
    seed: int | None,
    batch: str | int | None,
    engine: str,
    n_jobs: int | str | None,
    pool: "WorkerPool | SupervisedPool | None",
    journal: "CheckpointJournal | CheckpointView | None",
) -> TrialStats:
    """The estimate body, with an optional journal threaded through."""
    from repro.core.batched import batchable

    if journal is not None:
        cached = journal.get("stats")
        if cached is not None:
            return _stats_from_json(cached)
    seeds = spawn_seeds(seed, trials)
    times = []
    failures = 0

    def record(results) -> None:
        nonlocal failures
        for result in results:
            if result.stabilized:
                times.append(result.stabilization_round)
            else:
                failures += 1

    def record_raw(pairs) -> None:
        nonlocal failures
        for stabilized, stabilization_round in pairs:
            if stabilized:
                times.append(stabilization_round)
            else:
                failures += 1

    probe = None
    if batch is not None:
        probe = process_factory(seeds[0])
        if not batchable(probe):
            batch = None  # the batched engine cannot help this factory

    use_fleet = False
    if batch is not None and trials >= 2:
        spec = n_jobs
        if spec is None and pool is None:
            from repro.parallel.config import get_default_n_jobs

            spec = get_default_n_jobs()
        if spec not in (None, 1) or pool is not None:
            from repro.parallel.fleet import fleet_shards

            use_fleet = fleet_shards(spec, pool) >= 2
            n_jobs = spec
    if use_fleet:
        processes = [probe] + [process_factory(s) for s in seeds[1:]]
        record(
            run_many_until_stable(
                processes,
                max_rounds=max_rounds,
                batch=batch,
                engine=engine,
                n_jobs=n_jobs,
                pool=pool,
                journal=journal,
            )
        )
    elif batch is None:
        for i, trial_seed in enumerate(seeds):
            key = f"trial:{i}"
            if journal is not None:
                cached_trial = journal.get(key)
                if cached_trial is not None:
                    record_raw([cached_trial])
                    continue
            process = probe if i == 0 and probe is not None else (
                process_factory(trial_seed)
            )
            result = run_until_stable(process, max_rounds=max_rounds)
            if journal is not None:
                journal.put(
                    key, [result.stabilized, result.stabilization_round]
                )
            record([result])
    else:
        chunk_size = AUTO_BATCH_CHUNK if batch == "auto" else int(batch)
        for lo in range(0, trials, chunk_size):
            key = f"chunk:{lo}"
            if journal is not None:
                cached_chunk = journal.get(key)
                if cached_chunk is not None:
                    record_raw(cached_chunk)
                    continue
            chunk_seeds = seeds[lo:lo + chunk_size]
            if lo == 0:
                processes = [probe] + [
                    process_factory(s) for s in chunk_seeds[1:]
                ]
            else:
                processes = [process_factory(s) for s in chunk_seeds]
            chunk_results = run_many_until_stable(
                processes,
                max_rounds=max_rounds,
                batch=batch,
                engine=engine,
            )
            if journal is not None:
                journal.put(
                    key,
                    [
                        [r.stabilized, r.stabilization_round]
                        for r in chunk_results
                    ],
                )
            record(chunk_results)
    stats = TrialStats(
        times=np.array(times, dtype=np.int64),
        failures=failures,
        max_rounds=max_rounds,
    )
    if journal is not None:
        journal.put("stats", _stats_to_json(stats))
    return stats


class SweepResult(Mapping):
    """Grid-aligned results of :func:`sweep_stabilization_times`.

    Behaves like the mapping ``{grid point: TrialStats}`` (``keys`` /
    ``values`` / ``items`` / ``[]`` over the *distinct* points, in grid
    order), while :attr:`entries` preserves one ``(point, TrialStats)``
    pair per grid entry even when points repeat — the plain-``dict``
    return of earlier versions silently collapsed duplicates, dropping
    whole trial campaigns.  With duplicate points, mapping lookups
    return the first occurrence's stats and a :class:`UserWarning` is
    emitted at construction.
    """

    def __init__(self, points: list, stats: list) -> None:
        #: One ``(point, TrialStats)`` pair per grid entry, in grid order.
        self.entries: list[tuple] = list(zip(points, stats))
        self._map: dict = {}
        duplicates = []
        for point, point_stats in self.entries:
            if point in self._map:
                duplicates.append(point)
            else:
                self._map[point] = point_stats
        if duplicates:
            # stacklevel 3: __init__ → sweep_stabilization_times (the
            # only in-repo constructor) → the user's sweep call.
            warnings.warn(
                f"duplicate grid points {sorted(set(duplicates))!r}: "
                "mapping lookups return the first occurrence; iterate "
                ".entries for the full per-grid-entry results",
                UserWarning,
                stacklevel=3,
            )

    def stats_for(self, point) -> list:
        """All :class:`TrialStats` recorded for ``point``, in grid order."""
        return [s for p, s in self.entries if p == point]

    def __getitem__(self, point):
        return self._map[point]

    def __iter__(self):
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __repr__(self) -> str:
        return f"SweepResult({self.entries!r})"


def _sweep_point(
    payload: tuple,
    n_jobs: int | str | None = None,
    pool: "WorkerPool | SupervisedPool | None" = None,
    journal: "CheckpointJournal | CheckpointView | None" = None,
) -> TrialStats:
    """Evaluate one grid point (module-level so process pools can pickle it).

    The legacy ``dispatch="points"`` path maps this over a stock pool
    with the payload alone (journals are not picklable, so that path
    checkpoints only at whole-point granularity, in the caller); the
    fleet path calls it in-process with the persistent pool and the
    point's scoped journal view, sharding each point's replicas.
    """
    make_factory, point, trials, budget, point_seed, batch, engine = payload
    return estimate_stabilization_time(
        make_factory(point),
        trials=trials,
        max_rounds=budget,
        seed=point_seed,
        batch=batch,
        engine=engine,
        n_jobs=n_jobs,
        pool=pool,
        checkpoint=journal,
    )


def sweep_stabilization_times(
    make_factory: Callable[[object], Callable[[int], object]],
    grid: list,
    trials: int,
    max_rounds: int | Callable[[object], int],
    seed: int | None = 0,
    batch: str | int | None = "auto",
    engine: str = "auto",
    n_jobs: int | str | None = None,
    dispatch: str = "fleet",
    checkpoint: "str | Path | CheckpointJournal | CheckpointView | None" = (
        None
    ),
    resume: bool = True,
) -> SweepResult:
    """Estimate stabilization times over a parameter grid.

    Parameters
    ----------
    make_factory:
        Maps a grid point to a ``process_factory(trial_seed)``.
    grid:
        Parameter values (e.g. a list of n).  Repeated points are
        evaluated independently (each grid entry gets its own derived
        seed) and all results are preserved in the returned
        :attr:`SweepResult.entries`; a warning flags the ambiguity of
        mapping-style lookups.
    trials, seed:
        Passed to :func:`estimate_stabilization_time` (the seed is
        re-derived per grid point for independence).
    max_rounds:
        Either a constant budget or a callable of the grid point.
    batch:
        Per-point trial execution strategy (see
        :func:`estimate_stabilization_time`).
    engine:
        Aggregate engine for the batched chunks at every grid point
        (see :func:`estimate_stabilization_time`).
    n_jobs:
        Multi-core width (``"auto"`` = every usable core).  ``None``
        defers to the process-wide default of
        :mod:`repro.parallel.config`; ``1`` (or a resolved 1) runs
        fully in-process.  Results are identical in every mode.
    dispatch:
        How ``n_jobs >= 2`` parallelizes.  ``"fleet"`` (default)
        evaluates grid points in order, sharding each point's *trial
        fleet* across one persistent worker pool reused for the whole
        sweep — ``make_factory`` never crosses a process boundary, so
        lambdas and closures parallelize and nothing ever silently
        degrades.  ``"points"`` is the legacy path: whole grid points
        fan out to a ``ProcessPoolExecutor`` (width clamped to the CPU
        count), which requires ``make_factory`` to be picklable;
        unpicklable factories are detected up front and fall back to
        the in-process path with a :class:`RuntimeWarning` — that
        warning is now exclusive to this legacy path.
    checkpoint, resume:
        Campaign checkpointing (see :mod:`repro.sim.checkpoint`): a
        journal path or open journal.  Each finished grid point is
        persisted under ``point:{i}`` the moment it completes, and on
        the fleet/in-process paths each point additionally journals
        its own shards/chunks under a ``p{i}:`` scope — so an
        interrupted sweep resumes mid-point, not merely mid-grid, and
        produces a bitwise-identical :class:`SweepResult`.  The legacy
        ``dispatch="points"`` executor checkpoints at whole-point
        granularity only (journals do not cross process boundaries).

    Returns
    -------
    SweepResult — a mapping from grid point to :class:`TrialStats`,
    with ``.entries`` carrying one result per grid entry.
    """
    if dispatch not in ("fleet", "points"):
        raise ValueError(
            f"dispatch must be 'fleet' or 'points', got {dispatch!r}"
        )
    point_seeds = spawn_seeds(seed, len(grid))
    payloads = []
    budgets = []
    for point, point_seed in zip(grid, point_seeds):
        budget = max_rounds(point) if callable(max_rounds) else max_rounds
        budgets.append(budget)
        payloads.append(
            (make_factory, point, trials, budget, point_seed, batch, engine)
        )
    journal, own_journal = _open_checkpoint(
        checkpoint,
        {
            "kind": "sweep",
            "grid": [repr(point) for point in grid],
            "trials": trials,
            "budgets": budgets,
            "seed": seed,
            "batch": batch,
        },
        resume,
    )
    try:
        stats_by_index: dict[int, TrialStats] = {}
        if journal is not None:
            for i in range(len(payloads)):
                cached = journal.get(f"point:{i}")
                if cached is not None:
                    stats_by_index[i] = _stats_from_json(cached)
        todo = [i for i in range(len(payloads)) if i not in stats_by_index]

        def point_journal(i: int) -> "CheckpointView | None":
            return journal.scoped(f"p{i}:") if journal is not None else None

        def finish(i: int, point_stats: TrialStats) -> None:
            if journal is not None:
                journal.put(f"point:{i}", _stats_to_json(point_stats))
            stats_by_index[i] = point_stats

        if n_jobs is None:
            from repro.parallel.config import get_default_n_jobs

            n_jobs = get_default_n_jobs()
        shards = 1
        if n_jobs is not None:
            from repro.parallel.pool import resolve_n_jobs

            shards = resolve_n_jobs(n_jobs, clamp=False)
        if todo and shards >= 2 and dispatch == "fleet":
            from repro.parallel.pool import resolve_n_jobs
            from repro.parallel.supervisor import SupervisedPool

            with SupervisedPool(
                min(shards, resolve_n_jobs(n_jobs))
            ) as pool:
                for i in todo:
                    finish(
                        i,
                        _sweep_point(
                            payloads[i],
                            n_jobs=n_jobs,
                            pool=pool,
                            journal=point_journal(i),
                        ),
                    )
            todo = []
        use_pool = bool(todo) and shards >= 2
        if use_pool:
            # The legacy path: a ProcessPoolExecutor pickles each
            # payload; a lambda/closure make_factory would raise
            # PicklingError from deep inside the pool, so probe up
            # front and degrade gracefully (dispatch="fleet" has no
            # such constraint).
            try:
                pickle.dumps(make_factory)
            except (pickle.PicklingError, AttributeError, TypeError) as exc:
                warnings.warn(
                    f"make_factory is not picklable ({exc}); evaluating "
                    "the sweep in-process (n_jobs ignored). Use a "
                    "module-level factory function, or dispatch='fleet', "
                    "to enable the process pool.",
                    RuntimeWarning,
                    stacklevel=2,
                )
                use_pool = False
        if use_pool:
            from concurrent.futures import ProcessPoolExecutor

            from repro.parallel.pool import resolve_n_jobs

            with ProcessPoolExecutor(
                max_workers=resolve_n_jobs(n_jobs)
            ) as executor:
                for i, point_stats in zip(
                    todo,
                    executor.map(
                        _sweep_point, [payloads[i] for i in todo]
                    ),
                ):
                    finish(i, point_stats)
        else:
            for i in todo:
                finish(
                    i,
                    _sweep_point(payloads[i], journal=point_journal(i)),
                )
        stats = [stats_by_index[i] for i in range(len(payloads))]
    finally:
        if own_journal and journal is not None:
            journal.close()  # type: ignore[union-attr]
    return SweepResult(list(grid), stats)
