"""Monte-Carlo estimation of stabilization times.

Every w.h.p. theorem in the paper is validated empirically by repeated
independent trials.  :func:`estimate_stabilization_time` runs a process
factory over independent seeds and summarizes the stabilization-time
distribution; :func:`sweep_stabilization_times` maps that over a
parameter grid (the engine behind every n-sweep experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats as scipy_stats

from repro.sim.rng import spawn_seeds
from repro.sim.runner import run_until_stable


@dataclass
class TrialStats:
    """Summary of a stabilization-time sample.

    ``times`` holds the stabilization rounds of the trials that
    stabilized; ``failures`` counts trials that exhausted the budget
    (these are *not* included in the quantile statistics — check
    ``success_rate`` before interpreting them).
    """

    times: np.ndarray
    failures: int
    max_rounds: int

    @property
    def trials(self) -> int:
        """Total number of trials (successes + failures)."""
        return len(self.times) + self.failures

    @property
    def success_rate(self) -> float:
        """Fraction of trials that stabilized within the budget."""
        if self.trials == 0:
            return 0.0
        return len(self.times) / self.trials

    @property
    def mean(self) -> float:
        """Mean stabilization time of successful trials."""
        return float(np.mean(self.times)) if len(self.times) else float("nan")

    @property
    def std(self) -> float:
        """Sample standard deviation of successful trials."""
        if len(self.times) < 2:
            return 0.0
        return float(np.std(self.times, ddof=1))

    @property
    def median(self) -> float:
        """Median stabilization time."""
        return (
            float(np.median(self.times)) if len(self.times) else float("nan")
        )

    @property
    def max(self) -> int:
        """Worst stabilization time observed."""
        return int(self.times.max()) if len(self.times) else -1

    @property
    def min(self) -> int:
        """Best stabilization time observed."""
        return int(self.times.min()) if len(self.times) else -1

    def quantile(self, q: float) -> float:
        """Empirical quantile of the stabilization time."""
        if not len(self.times):
            return float("nan")
        return float(np.quantile(self.times, q))

    def mean_ci(self, confidence: float = 0.95) -> tuple[float, float]:
        """Student-t confidence interval for the mean."""
        k = len(self.times)
        if k < 2:
            return (self.mean, self.mean)
        sem = self.std / np.sqrt(k)
        half = sem * scipy_stats.t.ppf(0.5 + confidence / 2.0, df=k - 1)
        return (self.mean - half, self.mean + half)

    def summary(self) -> str:
        """One-line human-readable summary."""
        if not len(self.times):
            return f"0/{self.trials} trials stabilized (budget {self.max_rounds})"
        lo, hi = self.mean_ci()
        return (
            f"mean={self.mean:.1f} [{lo:.1f}, {hi:.1f}]  "
            f"median={self.median:.0f}  p90={self.quantile(0.9):.0f}  "
            f"max={self.max}  success={self.success_rate:.0%} "
            f"({self.trials} trials)"
        )


def estimate_stabilization_time(
    process_factory: Callable[[int], object],
    trials: int,
    max_rounds: int,
    seed: int | None = 0,
) -> TrialStats:
    """Run independent trials and collect stabilization times.

    Parameters
    ----------
    process_factory:
        Called as ``process_factory(trial_seed)``; must return a fresh
        process.  The factory owns graph construction, so resampling the
        graph per trial (as G(n,p) experiments require) or fixing it is
        the caller's choice.
    trials:
        Number of independent trials.
    max_rounds:
        Per-trial round budget.
    seed:
        Master seed; per-trial seeds are spawned from it.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    seeds = spawn_seeds(seed, trials)
    times = []
    failures = 0
    for trial_seed in seeds:
        process = process_factory(trial_seed)
        result = run_until_stable(process, max_rounds=max_rounds)
        if result.stabilized:
            times.append(result.stabilization_round)
        else:
            failures += 1
    return TrialStats(
        times=np.array(times, dtype=np.int64),
        failures=failures,
        max_rounds=max_rounds,
    )


def sweep_stabilization_times(
    make_factory: Callable[[object], Callable[[int], object]],
    grid: list,
    trials: int,
    max_rounds: int | Callable[[object], int],
    seed: int | None = 0,
) -> dict:
    """Estimate stabilization times over a parameter grid.

    Parameters
    ----------
    make_factory:
        Maps a grid point to a ``process_factory(trial_seed)``.
    grid:
        Parameter values (e.g. a list of n).
    trials, seed:
        Passed to :func:`estimate_stabilization_time` (the seed is
        re-derived per grid point for independence).
    max_rounds:
        Either a constant budget or a callable of the grid point.

    Returns
    -------
    dict mapping each grid point to its :class:`TrialStats`.
    """
    results = {}
    point_seeds = spawn_seeds(seed, len(grid))
    for point, point_seed in zip(grid, point_seeds):
        budget = max_rounds(point) if callable(max_rounds) else max_rounds
        results[point] = estimate_stabilization_time(
            make_factory(point),
            trials=trials,
            max_rounds=budget,
            seed=point_seed,
        )
    return results
