"""Monte-Carlo estimation of stabilization times.

Every w.h.p. theorem in the paper is validated empirically by repeated
independent trials.  :func:`estimate_stabilization_time` runs a process
factory over independent seeds and summarizes the stabilization-time
distribution; :func:`sweep_stabilization_times` maps that over a
parameter grid (the engine behind every n-sweep experiment).

Trials are independent, so by default (``batch="auto"``) they execute on
the vectorized batched engine
(:class:`repro.core.batched.BatchedTwoStateMIS`): the factory's
processes are built in seed order exactly as the serial loop would
build them, then all batchable ones advance together as one state
matrix.  Per-trial results are bitwise-identical to ``batch=None``;
non-batchable processes (3-color, scheduled wrappers, ...) silently
take the serial path.  ``sweep_stabilization_times`` adds an opt-in
``n_jobs`` process pool across grid points for multi-core sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import stats as scipy_stats

from repro.sim.rng import spawn_seeds
from repro.sim.runner import (
    AUTO_BATCH_CHUNK,
    run_many_until_stable,
    run_until_stable,
    validate_batch,
)


@dataclass
class TrialStats:
    """Summary of a stabilization-time sample.

    ``times`` holds the stabilization rounds of the trials that
    stabilized; ``failures`` counts trials that exhausted the budget
    (these are *not* included in the quantile statistics — check
    ``success_rate`` before interpreting them).
    """

    times: np.ndarray
    failures: int
    max_rounds: int

    @property
    def trials(self) -> int:
        """Total number of trials (successes + failures)."""
        return len(self.times) + self.failures

    @property
    def success_rate(self) -> float:
        """Fraction of trials that stabilized within the budget."""
        if self.trials == 0:
            return 0.0
        return len(self.times) / self.trials

    @property
    def mean(self) -> float:
        """Mean stabilization time of successful trials."""
        return float(np.mean(self.times)) if len(self.times) else float("nan")

    @property
    def std(self) -> float:
        """Sample standard deviation of successful trials."""
        if len(self.times) < 2:
            return 0.0
        return float(np.std(self.times, ddof=1))

    @property
    def median(self) -> float:
        """Median stabilization time."""
        return (
            float(np.median(self.times)) if len(self.times) else float("nan")
        )

    @property
    def max(self) -> int:
        """Worst stabilization time observed."""
        return int(self.times.max()) if len(self.times) else -1

    @property
    def min(self) -> int:
        """Best stabilization time observed."""
        return int(self.times.min()) if len(self.times) else -1

    def quantile(self, q: float) -> float:
        """Empirical quantile of the stabilization time."""
        if not len(self.times):
            return float("nan")
        return float(np.quantile(self.times, q))

    def mean_ci(self, confidence: float = 0.95) -> tuple[float, float]:
        """Student-t confidence interval for the mean."""
        k = len(self.times)
        if k < 2:
            return (self.mean, self.mean)
        sem = self.std / np.sqrt(k)
        half = sem * scipy_stats.t.ppf(0.5 + confidence / 2.0, df=k - 1)
        return (self.mean - half, self.mean + half)

    def summary(self) -> str:
        """One-line human-readable summary."""
        if not len(self.times):
            return f"0/{self.trials} trials stabilized (budget {self.max_rounds})"
        lo, hi = self.mean_ci()
        return (
            f"mean={self.mean:.1f} [{lo:.1f}, {hi:.1f}]  "
            f"median={self.median:.0f}  p90={self.quantile(0.9):.0f}  "
            f"max={self.max}  success={self.success_rate:.0%} "
            f"({self.trials} trials)"
        )


def estimate_stabilization_time(
    process_factory: Callable[[int], object],
    trials: int,
    max_rounds: int,
    seed: int | None = 0,
    batch: str | int | None = "auto",
) -> TrialStats:
    """Run independent trials and collect stabilization times.

    Parameters
    ----------
    process_factory:
        Called as ``process_factory(trial_seed)``; must return a fresh
        process.  The factory owns graph construction, so resampling the
        graph per trial (as G(n,p) experiments require) or fixing it is
        the caller's choice.  Factories must not share mutable random
        state *across* calls (each call derives everything from its
        ``trial_seed``) — all in-repo factories satisfy this, and it is
        what makes the batched fast path trial-for-trial identical to
        the serial loop.
    trials:
        Number of independent trials.
    max_rounds:
        Per-trial round budget.
    seed:
        Master seed; per-trial seeds are spawned from it.
    batch:
        Trial-execution strategy: ``"auto"`` (default) simulates up to
        :data:`AUTO_BATCH_CHUNK` trials at a time on the batched engine,
        an ``int`` sets that chunk size explicitly, and ``None`` forces
        the serial trial loop.  All three produce identical statistics.
        Factories producing non-batchable processes (3-color, scheduled
        wrappers, ...) are detected from the first trial and routed to
        the serial loop without up-front chunk construction.
    """
    from repro.core.batched import batchable

    if trials < 1:
        raise ValueError("trials must be >= 1")
    validate_batch(batch)
    seeds = spawn_seeds(seed, trials)
    times = []
    failures = 0

    def record(results) -> None:
        nonlocal failures
        for result in results:
            if result.stabilized:
                times.append(result.stabilization_round)
            else:
                failures += 1

    probe = None
    if batch is not None:
        probe = process_factory(seeds[0])
        if not batchable(probe):
            batch = None  # the batched engine cannot help this factory
    if batch is None:
        for i, trial_seed in enumerate(seeds):
            process = probe if i == 0 and probe is not None else (
                process_factory(trial_seed)
            )
            record([run_until_stable(process, max_rounds=max_rounds)])
    else:
        chunk_size = AUTO_BATCH_CHUNK if batch == "auto" else int(batch)
        for lo in range(0, trials, chunk_size):
            chunk_seeds = seeds[lo:lo + chunk_size]
            if lo == 0:
                processes = [probe] + [
                    process_factory(s) for s in chunk_seeds[1:]
                ]
            else:
                processes = [process_factory(s) for s in chunk_seeds]
            record(
                run_many_until_stable(
                    processes, max_rounds=max_rounds, batch=batch
                )
            )
    return TrialStats(
        times=np.array(times, dtype=np.int64),
        failures=failures,
        max_rounds=max_rounds,
    )


def _sweep_point(payload: tuple) -> TrialStats:
    """Evaluate one grid point (module-level so process pools can pickle it)."""
    make_factory, point, trials, budget, point_seed, batch = payload
    return estimate_stabilization_time(
        make_factory(point),
        trials=trials,
        max_rounds=budget,
        seed=point_seed,
        batch=batch,
    )


def sweep_stabilization_times(
    make_factory: Callable[[object], Callable[[int], object]],
    grid: list,
    trials: int,
    max_rounds: int | Callable[[object], int],
    seed: int | None = 0,
    batch: str | int | None = "auto",
    n_jobs: int | None = None,
) -> dict:
    """Estimate stabilization times over a parameter grid.

    Parameters
    ----------
    make_factory:
        Maps a grid point to a ``process_factory(trial_seed)``.
    grid:
        Parameter values (e.g. a list of n).
    trials, seed:
        Passed to :func:`estimate_stabilization_time` (the seed is
        re-derived per grid point for independence).
    max_rounds:
        Either a constant budget or a callable of the grid point.
    batch:
        Per-point trial execution strategy (see
        :func:`estimate_stabilization_time`).
    n_jobs:
        Opt-in process-pool width across *grid points*.  ``None`` or
        ``1`` evaluates points in-process; ``>= 2`` fans points out to a
        ``ProcessPoolExecutor``, which requires ``make_factory`` to be
        picklable (a module-level function — local lambdas stay on the
        in-process path).  Results are identical either way.

    Returns
    -------
    dict mapping each grid point to its :class:`TrialStats`.
    """
    point_seeds = spawn_seeds(seed, len(grid))
    payloads = []
    for point, point_seed in zip(grid, point_seeds):
        budget = max_rounds(point) if callable(max_rounds) else max_rounds
        payloads.append(
            (make_factory, point, trials, budget, point_seed, batch)
        )
    if n_jobs is not None and n_jobs >= 2:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            stats = list(pool.map(_sweep_point, payloads))
    else:
        stats = [_sweep_point(payload) for payload in payloads]
    return dict(zip(grid, stats))
