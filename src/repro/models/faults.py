"""Transient-fault adversaries for the self-stabilization experiments.

Self-stabilization (Dijkstra [10], Dolev [11]) means: from *any* state,
the system converges to a legitimate state and stays there.  Transient
faults are modelled as an adversary overwriting part of the state vector
mid-run; a self-stabilizing algorithm recovers without restart.

Experiment E11 uses :class:`FaultInjectionCampaign` to measure recovery
times after various corruption patterns and compare them to cold-start
stabilization times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.sim.rng import spawn_seeds
from repro.sim.runner import run_until_stable


class Corruption:
    """Maps the current state vector to a corrupted one."""

    def apply(self, process, rng: np.random.Generator) -> None:
        raise NotImplementedError


class RandomCorruption(Corruption):
    """Corrupt each vertex independently with probability ``rate``.

    Corrupted vertices get a uniformly random *valid* state for the
    process (2-state: random color; 3-state/3-color: random among the
    three states).
    """

    def __init__(self, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be in [0, 1]")
        self.rate = rate

    def apply(self, process, rng: np.random.Generator) -> None:
        n = process.n
        hit = rng.random(n) < self.rate
        states = process.state_vector()
        if states.dtype == bool:
            random_states = rng.random(n) < 0.5
        else:
            random_states = rng.integers(0, 3, size=n).astype(states.dtype)
        states[hit] = random_states[hit]
        process.corrupt(states)


class TargetedCorruption(Corruption):
    """Corrupt an explicit vertex set to an explicit value."""

    def __init__(self, vertices: list[int], value: int | bool) -> None:
        self.vertices = list(vertices)
        self.value = value

    def apply(self, process, rng: np.random.Generator) -> None:
        states = process.state_vector()
        idx = np.asarray(self.vertices, dtype=np.int64)
        if states.dtype == bool:
            states[idx] = bool(self.value)
        else:
            states[idx] = int(self.value)
        process.corrupt(states)


class MISFlipCorruption(Corruption):
    """Worst-case-flavored fault: flip a fraction of the *current MIS*.

    Removing stabilized MIS vertices (turning them white) un-stabilizes
    their whole neighbourhoods — the most disruptive small corruption.
    """

    def __init__(self, fraction: float = 0.5) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = fraction

    def apply(self, process, rng: np.random.Generator) -> None:
        states = process.state_vector()
        black_mask = process.black_mask()
        stable = process.stable_black_mask()
        targets = np.flatnonzero(stable)
        if targets.size == 0:
            targets = np.flatnonzero(black_mask)
        if targets.size == 0:
            return
        count = max(1, int(round(self.fraction * targets.size)))
        chosen = rng.choice(targets, size=count, replace=False)
        if states.dtype == bool:
            states[chosen] = False
        else:
            from repro.core.states import WHITE

            states[chosen] = WHITE
        process.corrupt(states)


@dataclass
class FaultEvent:
    """One injected fault and the measured recovery."""

    at_round: int
    recovery_rounds: int | None
    unstable_after_fault: int


class FaultInjectionCampaign:
    """Run a process to stabilization, inject faults, measure recovery.

    Parameters
    ----------
    process_factory:
        ``process_factory(seed) -> process``.
    corruption:
        The :class:`Corruption` to inject after each stabilization.
    injections:
        Number of fault/recovery cycles per trial.
    max_rounds:
        Budget for the initial run and for each recovery.
    """

    def __init__(
        self,
        process_factory: Callable[[int], object],
        corruption: Corruption,
        injections: int = 3,
        max_rounds: int = 100_000,
    ) -> None:
        self.process_factory = process_factory
        self.corruption = corruption
        self.injections = injections
        self.max_rounds = max_rounds

    def run_trial(self, seed: int) -> tuple[int | None, list[FaultEvent]]:
        """One trial: cold-start time plus per-injection recoveries."""
        rng = np.random.default_rng(seed)
        process = self.process_factory(seed)
        initial = run_until_stable(process, max_rounds=self.max_rounds)
        if not initial.stabilized:
            return (None, [])
        events: list[FaultEvent] = []
        for _ in range(self.injections):
            self.corruption.apply(process, rng)
            unstable = int(process.unstable_mask().sum())
            recovery = run_until_stable(process, max_rounds=self.max_rounds)
            events.append(
                FaultEvent(
                    at_round=process.round,
                    recovery_rounds=recovery.stabilization_round,
                    unstable_after_fault=unstable,
                )
            )
        return (initial.stabilization_round, events)

    def run(
        self, trials: int, seed: int | None = 0
    ) -> dict[str, object]:
        """Run the campaign and summarize cold-start vs recovery times."""
        cold: list[int] = []
        recoveries: list[int] = []
        failed = 0
        for trial_seed in spawn_seeds(seed, trials):
            cold_time, events = self.run_trial(trial_seed)
            if cold_time is None:
                failed += 1
                continue
            cold.append(cold_time)
            for event in events:
                if event.recovery_rounds is None:
                    failed += 1
                else:
                    recoveries.append(event.recovery_rounds)
        return {
            "cold_start_times": np.array(cold, dtype=np.int64),
            "recovery_times": np.array(recoveries, dtype=np.int64),
            "failures": failed,
            "cold_mean": float(np.mean(cold)) if cold else float("nan"),
            "recovery_mean": (
                float(np.mean(recoveries)) if recoveries else float("nan")
            ),
        }
