"""The beeping model with sender collision detection, and the 2-state MIS
process as a beeping protocol (§1).

Model semantics (Cornejo-Kuhn [9]; full-duplex variant [1, 16]): in each
synchronous round every node either BEEPs or LISTENs.

* A listening node observes one bit: whether at least one neighbour
  beeped (it cannot count beepers or identify them).
* A beeping node with *sender collision detection* also observes one
  bit: whether at least one neighbour beeped concurrently.

Protocol (the paper's translation of Definition 4): black nodes beep
every round, white nodes listen.

* A black node that detects a collision knows it has a black neighbour →
  active → new state = coin.
* A white node that hears silence knows it has no black neighbour →
  active → new state = coin.
* All other nodes keep their state.

Each node is an isolated state machine (:class:`TwoStateBeepNode`)
receiving only its one-bit observation; the network
(:class:`BeepingNetwork`) computes observations from the beep pattern.
The test suite proves trajectory equivalence with the abstract
:class:`~repro.core.two_state.TwoStateMIS` under shared coins — i.e. the
weak-communication claim of the paper holds operationally: one bit of
feedback per round suffices.
"""

from __future__ import annotations

import numpy as np

from repro.core.two_state import resolve_two_state_init
from repro.graphs.graph import Graph
from repro.sim.rng import CoinSource, as_coin_source

BEEP = True
LISTEN = False


class TwoStateBeepNode:
    """A single anonymous node running the 2-state MIS beeping protocol.

    The node has one bit of state (black/white), no ID, no knowledge of
    n or Δ, and consumes one fresh random bit per round.  Its interface
    is exactly the beeping model's:

    * :meth:`emit` — decide BEEP or LISTEN for this round;
    * :meth:`observe` — receive the one-bit channel feedback and update.
    """

    def __init__(self, black: bool) -> None:
        self.black = bool(black)

    def emit(self) -> bool:
        """Black nodes beep; white nodes listen."""
        return BEEP if self.black else LISTEN

    def observe(self, heard_beep: bool, coin: bool) -> None:
        """Process feedback: for a beeper, ``heard_beep`` is the collision
        bit; for a listener, whether any neighbour beeped."""
        if self.black and heard_beep:
            # Collision: some neighbour is black too → re-randomize.
            self.black = coin
        elif not self.black and not heard_beep:
            # Silence: no black neighbour → re-randomize.
            self.black = coin
        # Otherwise: consistent; keep state (coin is discarded, matching
        # the φ_t discipline where inactive vertices ignore their coin).


class BeepingNetwork:
    """Synchronous beeping channel simulator (with collision detection).

    Given the per-node beep decisions, delivers to every node the single
    bit "did at least one *neighbour* beep this round".  (For beeping
    nodes this is exactly sender-side collision detection.)
    """

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self.n = graph.n
        #: Total beeps transmitted across all deliveries (accounting).
        self.total_beeps = 0
        #: Number of deliveries performed (= protocol rounds).
        self.deliveries = 0

    def deliver(self, beeps: np.ndarray, count: bool = True) -> np.ndarray:
        """Map beep decisions to per-node neighbour-beep observations.

        ``count=False`` skips the accounting counters — used by
        introspection helpers that reuse the delivery computation
        without representing actual protocol traffic.
        """
        beeps = np.asarray(beeps, dtype=bool)
        if beeps.shape != (self.n,):
            raise ValueError(f"beeps must have shape ({self.n},)")
        if count:
            self.total_beeps += int(beeps.sum())
            self.deliveries += 1
        heard = np.zeros(self.n, dtype=bool)
        for u in range(self.n):
            if beeps[u]:
                for v in self.graph.neighbors(u):
                    heard[v] = True
        return heard

    def beeps_per_node_round(self) -> float:
        """Average beeps per node per delivered round (accounting)."""
        if self.deliveries == 0 or self.n == 0:
            return 0.0
        return self.total_beeps / (self.deliveries * self.n)


class BeepingTwoStateMIS:
    """The 2-state MIS process realized as a beeping-network execution.

    API-compatible with :class:`~repro.core.process.MISProcess` for the
    methods the runner uses (``step``, ``black_mask``, ``active_mask``,
    ``stable_black_mask``, ``covered_mask``, ``unstable_mask``,
    ``is_stabilized``, ``mis``), so :func:`repro.sim.runner.run_until_stable`
    works unchanged.

    Coin discipline matches :class:`TwoStateMIS` exactly: one ``bits(n)``
    draw per round, one optional draw for random initialization.
    """

    name = "2-state (beeping)"

    def __init__(
        self,
        graph: Graph,
        coins: CoinSource | int | np.random.Generator | None = None,
        init: np.ndarray | str | None = None,
    ) -> None:
        self.graph = graph
        self.n = graph.n
        self.coins = as_coin_source(coins)
        initial = resolve_two_state_init(init, self.n, self.coins)
        self.nodes = [TwoStateBeepNode(bool(b)) for b in initial]
        self.network = BeepingNetwork(graph)
        self.round = 0

    def step(self, rounds: int = 1) -> None:
        """One synchronous beeping round per iteration."""
        for _ in range(rounds):
            beeps = np.array([node.emit() for node in self.nodes], dtype=bool)
            heard = self.network.deliver(beeps)
            phi = self.coins.bits(self.n)
            for u, node in enumerate(self.nodes):
                node.observe(bool(heard[u]), bool(phi[u]))
            self.round += 1

    # ------------------------------------------------------------------
    # MISProcess-compatible introspection
    # ------------------------------------------------------------------
    def black_mask(self) -> np.ndarray:
        return np.array([node.black for node in self.nodes], dtype=bool)

    def active_mask(self) -> np.ndarray:
        black = self.black_mask()
        heard = self.network.deliver(black, count=False)
        return np.where(black, heard, ~heard)

    def stable_black_mask(self) -> np.ndarray:
        black = self.black_mask()
        heard = self.network.deliver(black, count=False)
        return black & ~heard

    def covered_mask(self) -> np.ndarray:
        stable = self.stable_black_mask()
        return stable | self.network.deliver(stable, count=False)

    def unstable_mask(self) -> np.ndarray:
        return ~self.covered_mask()

    def is_stabilized(self) -> bool:
        return bool(self.covered_mask().all())

    def mis(self) -> np.ndarray:
        if not self.is_stabilized():
            raise RuntimeError("not stabilized")
        return np.flatnonzero(self.black_mask())

    def state_vector(self) -> np.ndarray:
        return self.black_mask()

    def corrupt(self, states: np.ndarray) -> None:
        """Transient fault: overwrite all node states."""
        states = np.asarray(states, dtype=bool)
        if states.shape != (self.n,):
            raise ValueError("bad state shape")
        for node, value in zip(self.nodes, states):
            node.black = bool(value)
