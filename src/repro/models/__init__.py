"""Communication models and adversaries.

The paper's algorithms are designed for severely restricted models:

* :mod:`repro.models.beeping` — the beeping model with sender collision
  detection (full-duplex); hosts the 2-state MIS process as an actual
  beeping protocol (§1).
* :mod:`repro.models.stone_age` — the synchronous stone age model
  (constant-alphabet multi-channel beeps, no collision detection);
  hosts the 3-state MIS process (§1).
* :mod:`repro.models.faults` — transient-fault adversaries for the
  self-stabilization experiments (E11).
"""

from repro.models.beeping import (
    BeepingNetwork,
    BeepingTwoStateMIS,
    TwoStateBeepNode,
)
from repro.models.stone_age import (
    StoneAgeNetwork,
    StoneAgeThreeStateMIS,
    ThreeStateStoneAgeNode,
)
from repro.models.faults import (
    FaultEvent,
    RandomCorruption,
    TargetedCorruption,
    MISFlipCorruption,
    FaultInjectionCampaign,
)

__all__ = [
    "BeepingNetwork",
    "BeepingTwoStateMIS",
    "TwoStateBeepNode",
    "StoneAgeNetwork",
    "StoneAgeThreeStateMIS",
    "ThreeStateStoneAgeNode",
    "FaultEvent",
    "RandomCorruption",
    "TargetedCorruption",
    "MISFlipCorruption",
    "FaultInjectionCampaign",
]
