"""The synchronous stone age model, and the 3-state MIS process as a
stone-age protocol (§1; Emek-Wattenhofer [13]).

Model semantics: nodes communicate over a constant number of *channels*.
In each round every node beeps on at most one channel and listens on the
others; a listener learns, per channel, only whether at least one
neighbour beeped there (one-bit detection, no counting, no collision
detection).  This generalizes the beeping model to a constant alphabet.

Protocol (the paper's translation of Definition 5): one channel carries
the black1 "tone".

* A node in state black1 beeps on the channel.
* Nodes in black0 and white listen.
* Update on observation (``heard`` = some neighbour beeped black1):
  - black1 → re-randomize to {black1, black0} (it beeped; no feedback
    needed — black1 *always* re-randomizes, which is why no collision
    detection is required);
  - black0, heard → white (retreat: a neighbour asserted black1);
  - black0, silent → re-randomize;
  - white, silent on the channel **and no black0 neighbour**: the white
    rule of Definition 5 requires NC = {white}, which needs a second
    channel carrying a generic "I am black" tone.  We therefore use two
    channels: channel 0 = "black1 tone", channel 1 = "black tone"
    (beeped by black0; black1's channel-0 beep is also counted as a
    black tone by the network, reflecting that a stone-age alphabet
    letter identifies the sender's full state).

This keeps within the model: constant channels, one beep per node per
round, one-bit per-channel detection.
"""

from __future__ import annotations

import numpy as np

from repro.core.states import BLACK0, BLACK1, WHITE
from repro.core.three_state import resolve_three_state_init
from repro.graphs.graph import Graph
from repro.sim.rng import CoinSource, as_coin_source

#: Channel indices.
CHANNEL_BLACK1 = 0
CHANNEL_BLACK = 1
NUM_CHANNELS = 2


class ThreeStateStoneAgeNode:
    """A single anonymous node running the 3-state MIS stone-age protocol."""

    def __init__(self, state: int) -> None:
        if state not in (WHITE, BLACK0, BLACK1):
            raise ValueError(f"invalid 3-state value {state}")
        self.state = int(state)

    def emit(self) -> int | None:
        """Channel to beep on this round (None = listen only).

        black1 beeps on channel 0; black0 beeps on channel 1; white
        listens.  (A single beep per round, as the model requires.)
        """
        if self.state == BLACK1:
            return CHANNEL_BLACK1
        if self.state == BLACK0:
            return CHANNEL_BLACK
        return None

    def observe(
        self, heard_black1: bool, heard_black: bool, coin: bool
    ) -> None:
        """Update from per-channel observations (Definition 5's rule).

        ``heard_black`` is True when some neighbour is black (black1 or
        black0) — the network folds black1's beep into the black tone.
        """
        if self.state == BLACK1:
            self.state = BLACK1 if coin else BLACK0
        elif self.state == BLACK0:
            if heard_black1:
                self.state = WHITE
            else:
                self.state = BLACK1 if coin else BLACK0
        else:  # WHITE
            if not heard_black:
                self.state = BLACK1 if coin else BLACK0
            # else: keep white.


class StoneAgeNetwork:
    """Synchronous multi-channel beep delivery (one bit per channel)."""

    def __init__(self, graph: Graph, channels: int = NUM_CHANNELS) -> None:
        self.graph = graph
        self.n = graph.n
        self.channels = channels
        #: Total channel beeps transmitted (accounting).
        self.total_beeps = 0
        #: Number of deliveries performed (= protocol rounds).
        self.deliveries = 0

    def deliver(self, emissions: list[int | None]) -> np.ndarray:
        """Map per-node channel emissions to per-node, per-channel bits.

        Returns a boolean array of shape ``(n, channels)`` where entry
        ``[u, c]`` says whether some neighbour of u beeped on channel c.
        """
        if len(emissions) != self.n:
            raise ValueError("one emission per node required")
        self.total_beeps += sum(1 for e in emissions if e is not None)
        self.deliveries += 1
        heard = np.zeros((self.n, self.channels), dtype=bool)
        for u, channel in enumerate(emissions):
            if channel is None:
                continue
            if not 0 <= channel < self.channels:
                raise ValueError(f"invalid channel {channel}")
            for v in self.graph.neighbors(u):
                heard[v, channel] = True
        return heard


class StoneAgeThreeStateMIS:
    """The 3-state MIS process as a stone-age network execution.

    MISProcess-compatible for the runner's methods; coin discipline
    matches :class:`~repro.core.three_state.ThreeStateMIS` (one
    ``bits(n)`` per round; two draws for random init).
    """

    name = "3-state (stone age)"

    def __init__(
        self,
        graph: Graph,
        coins: CoinSource | int | np.random.Generator | None = None,
        init: np.ndarray | str | None = None,
    ) -> None:
        self.graph = graph
        self.n = graph.n
        self.coins = as_coin_source(coins)
        initial = resolve_three_state_init(init, self.n, self.coins)
        self.nodes = [ThreeStateStoneAgeNode(int(s)) for s in initial]
        self.network = StoneAgeNetwork(graph)
        self.round = 0

    def step(self, rounds: int = 1) -> None:
        for _ in range(rounds):
            emissions = [node.emit() for node in self.nodes]
            heard = self.network.deliver(emissions)
            phi = self.coins.bits(self.n)
            for u, node in enumerate(self.nodes):
                heard_black1 = bool(heard[u, CHANNEL_BLACK1])
                heard_black = heard_black1 or bool(heard[u, CHANNEL_BLACK])
                node.observe(heard_black1, heard_black, bool(phi[u]))
            self.round += 1

    # ------------------------------------------------------------------
    def state_vector(self) -> np.ndarray:
        return np.array([node.state for node in self.nodes], dtype=np.int8)

    def black_mask(self) -> np.ndarray:
        return self.state_vector() != WHITE

    def stable_black_mask(self) -> np.ndarray:
        black = self.black_mask()
        heard = np.zeros(self.n, dtype=bool)
        for u in range(self.n):
            if black[u]:
                for v in self.graph.neighbors(u):
                    heard[v] = True
        return black & ~heard

    def covered_mask(self) -> np.ndarray:
        stable = self.stable_black_mask()
        covered = stable.copy()
        for u in range(self.n):
            if stable[u]:
                for v in self.graph.neighbors(u):
                    covered[v] = True
        return covered

    def unstable_mask(self) -> np.ndarray:
        return ~self.covered_mask()

    def is_stabilized(self) -> bool:
        return bool(self.covered_mask().all())

    def active_mask(self) -> np.ndarray:
        states = self.state_vector()
        is_black1 = states == BLACK1
        is_black = states != WHITE
        heard1 = np.zeros(self.n, dtype=bool)
        heardb = np.zeros(self.n, dtype=bool)
        for u in range(self.n):
            if is_black1[u]:
                for v in self.graph.neighbors(u):
                    heard1[v] = True
            if is_black[u]:
                for v in self.graph.neighbors(u):
                    heardb[v] = True
        return (
            is_black1
            | ((states == BLACK0) & ~heard1)
            | ((states == WHITE) & ~heardb)
        )

    def mis(self) -> np.ndarray:
        if not self.is_stabilized():
            raise RuntimeError("not stabilized")
        return np.flatnonzero(self.black_mask())

    def corrupt(self, states: np.ndarray) -> None:
        """Transient fault: overwrite all node states."""
        from repro.core.states import validate_three_state

        arr = validate_three_state(states, self.n)
        for node, value in zip(self.nodes, arr):
            node.state = int(value)
