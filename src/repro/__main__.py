"""Top-level CLI: run a process on a generated or loaded graph.

Usage examples::

    python -m repro run --graph gnp --n 500 --p 0.02 --process 2-state
    python -m repro run --graph clique --n 256 --process 3-state --seed 7
    python -m repro run --graph tree --n 1000 --process 3-color --trace
    python -m repro run --edge-list mygraph.txt --process 2-state
    python -m repro budget --graph gnp --n 4096 --p 0.01

(Experiments have their own CLI: ``python -m repro.experiments``.)
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _build_graph(args):
    from repro.graphs import (
        complete_graph,
        cycle_graph,
        disjoint_cliques,
        gnp_random_graph,
        grid_graph,
        path_graph,
        random_regular_graph,
        random_tree,
        star_graph,
    )

    if args.edge_list:
        from repro.io import read_edge_list

        return read_edge_list(args.edge_list)
    n = args.n
    rng = np.random.default_rng(args.seed)
    builders = {
        "clique": lambda: complete_graph(n),
        "path": lambda: path_graph(n),
        "cycle": lambda: cycle_graph(n),
        "star": lambda: star_graph(n),
        "grid": lambda: grid_graph(
            int(round(n ** 0.5)), int(round(n ** 0.5))
        ),
        "tree": lambda: random_tree(n, rng=rng),
        "gnp": lambda: gnp_random_graph(n, args.p, rng=rng),
        "regular": lambda: random_regular_graph(n, args.d, rng=rng),
        "disjoint-cliques": lambda: disjoint_cliques(
            int(round(n ** 0.5)), int(round(n ** 0.5))
        ),
    }
    if args.graph not in builders:
        raise SystemExit(f"unknown graph family {args.graph!r}")
    return builders[args.graph]()


def _build_process(args, graph):
    from repro.core import ThreeColorMIS, ThreeStateMIS, TwoStateMIS
    from repro.models.beeping import BeepingTwoStateMIS
    from repro.models.stone_age import StoneAgeThreeStateMIS

    processes = {
        "2-state": lambda: TwoStateMIS(graph, coins=args.seed),
        "3-state": lambda: ThreeStateMIS(graph, coins=args.seed),
        "3-color": lambda: ThreeColorMIS(graph, coins=args.seed, a=args.a),
        "beeping": lambda: BeepingTwoStateMIS(graph, coins=args.seed),
        "stone-age": lambda: StoneAgeThreeStateMIS(graph, coins=args.seed),
    }
    if args.process not in processes:
        raise SystemExit(f"unknown process {args.process!r}")
    return processes[args.process]()


def _cmd_run(args) -> int:
    from repro.sim.runner import run_until_stable
    from repro.theory.budgets import recommended_budget

    graph = _build_graph(args)
    process = _build_process(args, graph)
    budget = args.max_rounds
    if budget is None:
        name = args.process if args.process in (
            "2-state", "3-state", "3-color"
        ) else "2-state"
        budget = recommended_budget(graph, name)
    print(f"graph: n={graph.n} m={graph.m} Δ={graph.max_degree()}")
    print(f"process: {args.process}  budget: {budget} rounds  "
          f"seed: {args.seed}")
    result = run_until_stable(
        process, max_rounds=budget, record_trace=args.trace
    )
    if not result.stabilized:
        print(f"DID NOT STABILIZE within {budget} rounds "
              f"(|V_t| = {int(process.unstable_mask().sum())})")
        return 1
    print(f"stabilized after {result.stabilization_round} rounds; "
          f"MIS size {len(result.mis)}")
    if args.trace:
        from repro.experiments.asciiplot import ascii_plot

        curve = result.trace.unstable_counts
        if len(curve) >= 2 and max(curve) > 0:
            print(ascii_plot(
                list(range(len(curve))), curve,
                title="|V_t| (non-stable vertices) per round",
            ))
    if args.print_mis:
        print("MIS:", " ".join(map(str, result.mis.tolist())))
    return 0


def _cmd_budget(args) -> int:
    from repro.theory.budgets import recommended_budget

    graph = _build_graph(args)
    for process in ("2-state", "3-state", "3-color"):
        print(f"{process}: {recommended_budget(graph, process)} rounds")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_graph_args(p):
        p.add_argument("--graph", default="gnp",
                       help="clique|path|cycle|star|grid|tree|gnp|regular|"
                            "disjoint-cliques")
        p.add_argument("--edge-list", default=None,
                       help="load graph from an edge-list file instead")
        p.add_argument("--n", type=int, default=100)
        p.add_argument("--p", type=float, default=0.05,
                       help="edge probability for gnp")
        p.add_argument("--d", type=int, default=4,
                       help="degree for regular graphs")
        p.add_argument("--seed", type=int, default=0)

    run_parser = sub.add_parser("run", help="run a process to stabilization")
    add_graph_args(run_parser)
    run_parser.add_argument("--process", default="2-state",
                            help="2-state|3-state|3-color|beeping|stone-age")
    run_parser.add_argument("--a", type=float, default=16.0,
                            help="3-color switch parameter a (paper: 512)")
    run_parser.add_argument("--max-rounds", type=int, default=None,
                            help="round budget (default: from theory)")
    run_parser.add_argument("--trace", action="store_true",
                            help="plot the |V_t| curve")
    run_parser.add_argument("--print-mis", action="store_true")

    budget_parser = sub.add_parser(
        "budget", help="print theory-derived round budgets for a graph"
    )
    add_graph_args(budget_parser)

    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "budget":
        return _cmd_budget(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
