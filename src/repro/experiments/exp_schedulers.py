"""E16 — partial synchrony: stabilization under weaker schedulers.

§1 (citing [28], [31]): the randomized transitions make the MIS rule
stabilize with probability 1 under general adversarial scheduling, of
which the synchronous schedule is a special case.  The experiment runs
the scheduled 2-state process under:

* full synchrony (q = 1; Definition 4),
* independent participation q ∈ {0.75, 0.5, 0.25, 0.1},
* the single-vertex randomized central daemon,
* the churn-maximizing single-vertex adversary,

and checks that (a) every run stabilizes to a valid MIS, (b) rounds
scale like ~1/q for independent participation (each vertex needs the
same number of *activations*, delivered q per round), and (c) the
single-vertex daemons take Θ(n)-ish rounds (sequential bottleneck) —
the quantitative content of "parallelism buys the log n".

Execution: the synchronous and independent-participation campaigns
ride the batched fast path
(:class:`~repro.core.batched.BatchedScheduledTwoStateMIS`, one
Bernoulli activation mask per replica per round) under the default
``batch="auto"``; the state-dependent single-vertex daemons stay on
the serial path.
"""

from __future__ import annotations

import math


from repro.core.schedulers import (
    AdversarialGreedyScheduler,
    IndependentScheduler,
    ScheduledTwoStateMIS,
    SingleVertexScheduler,
    SynchronousScheduler,
)
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.montecarlo import estimate_stabilization_time


@register("E16", "Partial synchrony: schedulers vs stabilization time")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    if fast:
        n = 128
        trials = 10
    else:
        n = 512
        trials = 40
    p = 3.0 * math.log(n) / n
    graph = gnp_random_graph(n, p, rng=seed + 1)
    budget = 400 * n  # generous: single-vertex daemons need Θ(n log n)

    schedulers = {
        "synchronous (q=1)": lambda: SynchronousScheduler(),
        "independent q=0.75": lambda: IndependentScheduler(0.75),
        "independent q=0.5": lambda: IndependentScheduler(0.5),
        "independent q=0.25": lambda: IndependentScheduler(0.25),
        "independent q=0.1": lambda: IndependentScheduler(0.1),
        "central daemon (random)": lambda: SingleVertexScheduler(),
        "central daemon (adversarial)": lambda: AdversarialGreedyScheduler(),
    }

    rows = []
    verdicts = {}
    means = {}
    for s_idx, (name, make_scheduler) in enumerate(schedulers.items()):
        stats = estimate_stabilization_time(
            lambda s, mk=make_scheduler: ScheduledTwoStateMIS(
                graph, scheduler=mk(), coins=s
            ),
            trials=trials,
            max_rounds=budget,
            seed=seed + 10 * s_idx,
        )
        rows.append([name, stats.mean, stats.max, stats.success_rate])
        means[name] = stats.mean
        verdicts[f"{name}: all trials stabilize"] = (
            stats.success_rate == 1.0
        )
    table = format_table(
        ["scheduler", "mean rounds", "max", "success"],
        rows,
        title=f"Scheduled 2-state MIS on G({n}, 3 ln n/n), {trials} trials",
    )

    # Shape checks.
    sync = means["synchronous (q=1)"]
    q_half = means["independent q=0.5"]
    q_tenth = means["independent q=0.1"]
    verdicts["rounds grow as participation drops (q=0.1 > q=0.5 > sync)"] = (
        q_tenth > q_half > sync
    )
    # ~1/q scaling within loose factors (activation-count conservation).
    verdicts["q=0.1 costs >= 4x the synchronous rounds"] = (
        q_tenth >= 4.0 * sync
    )
    verdicts["central daemons cost Ω(n/4) rounds"] = (
        means["central daemon (random)"] >= n / 4
    )

    return ExperimentResult(
        experiment_id="E16",
        title="Scheduler robustness (§1 / [28, 31])",
        tables=[table],
        verdicts=verdicts,
        data={"means": means, "n": n},
    )
