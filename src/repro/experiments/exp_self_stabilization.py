"""E11 — Self-stabilization: recovery from transient faults.

The defining guarantee (§1, [10, 11]): convergence from *arbitrary*
states, hence recovery from any transient fault without restart.  The
experiment runs fault-injection campaigns on the 2-state process:

* random corruption of 10%, 50%, 100% of vertices;
* the adversarial "MIS flip" (silence half the stabilized MIS — the
  corruption that un-stabilizes the most vertices per flipped bit);

and checks that (a) recovery always succeeds, and (b) mean recovery time
is no worse than cold-start stabilization time (up to sampling noise) —
self-stabilization gives recovery *for free*, it is never slower than
solving from scratch on the perturbed region.
"""

from __future__ import annotations

import math


from repro.core.two_state import TwoStateMIS
from repro.core.three_color import ThreeColorMIS
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import gnp_random_graph
from repro.models.faults import (
    FaultInjectionCampaign,
    MISFlipCorruption,
    RandomCorruption,
)


@register("E11", "Self-stabilization: fault injection and recovery")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    if fast:
        n = 256
        trials = 5
        injections = 2
    else:
        n = 1024
        trials = 20
        injections = 3
    p = 3 * math.log(n) / n
    graph = gnp_random_graph(n, p, rng=seed + 1)
    budget = 3000 * int(math.log2(n)) + 10000

    corruptions = {
        "random 10%": RandomCorruption(0.10),
        "random 50%": RandomCorruption(0.50),
        "random 100%": RandomCorruption(1.00),
        "MIS flip 50%": MISFlipCorruption(0.5),
    }

    rows = []
    verdicts = {}
    data = {}
    for c_idx, (name, corruption) in enumerate(corruptions.items()):
        campaign = FaultInjectionCampaign(
            lambda s: TwoStateMIS(graph, coins=s),
            corruption=corruption,
            injections=injections,
            max_rounds=budget,
        )
        summary = campaign.run(trials=trials, seed=seed + 10 * c_idx)
        rows.append(
            [name, summary["cold_mean"], summary["recovery_mean"],
             summary["failures"]]
        )
        verdicts[f"{name}: all recoveries succeed"] = (
            summary["failures"] == 0
        )
        # Recovery should not be slower than ~2x cold start (noise slack).
        if summary["recovery_times"].size:
            verdicts[f"{name}: recovery <= 2x cold-start mean"] = bool(
                summary["recovery_mean"]
                <= 2.0 * summary["cold_mean"] + 10.0
            )
        data[name] = {
            "cold_mean": summary["cold_mean"],
            "recovery_mean": summary["recovery_mean"],
        }
    table = format_table(
        ["corruption", "cold-start mean", "recovery mean", "failures"],
        rows,
        title=f"2-state MIS fault recovery on G({n}, 3 ln n/n), "
              f"{trials} trials x {injections} injections",
    )

    # One 3-color spot-check (full random corruption incl. switch decay).
    campaign3 = FaultInjectionCampaign(
        lambda s: ThreeColorMIS(graph, coins=s, a=16.0),
        corruption=RandomCorruption(1.0),
        injections=1,
        max_rounds=budget,
    )
    summary3 = campaign3.run(trials=max(3, trials // 2), seed=seed + 99)
    table3 = format_table(
        ["corruption", "cold-start mean", "recovery mean", "failures"],
        [["random 100%", summary3["cold_mean"],
          summary3["recovery_mean"], summary3["failures"]]],
        title="3-color MIS (a=16) fault recovery",
    )
    verdicts["3-color: all recoveries succeed"] = summary3["failures"] == 0

    return ExperimentResult(
        experiment_id="E11",
        title="Transient-fault recovery (self-stabilization)",
        tables=[table, table3],
        verdicts=verdicts,
        data=data,
    )
