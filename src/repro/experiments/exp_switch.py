"""E7 — Lemma 27: the randomized logarithmic switch satisfies S1-S3.

For parameter ζ <= 1/2 and a = 4/ζ, during the first n rounds and with
probability 1 - O(n^-2):

* (S1) every off-run has length <= a ln n            (any graph);
* (S2) off-runs (after warm-up) have length >= (a/6) ln n  (diam <= 2);
* (S3) on-runs (after a constant prefix) have length <= b = 3 (diam <= 2).

Workloads: a clique (diam 1), a dense G(n,p) (diam 2 w.h.p.), and a path
(large diameter — only S1 applies there).  The experiment also includes a
ζ-sweep ablation showing the (S1) vs (S2) trade-off.
"""

from __future__ import annotations

import numpy as np

from repro.core.switch import RandomizedLogSwitch, SwitchTraceAnalyzer
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.generators import complete_graph, path_graph
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.rng import spawn_seeds


def _record(graph, zeta: float, rounds: int, seed: int) -> SwitchTraceAnalyzer:
    switch = RandomizedLogSwitch(graph, coins=seed, zeta=zeta)
    analyzer = SwitchTraceAnalyzer()
    for _ in range(rounds):
        analyzer.record(switch.sigma())
        switch.step()
    return analyzer


@register("E7", "Lemma 27: randomized switch satisfies S1-S3")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    if fast:
        n = 64
        zeta = 0.25
        trials = 3
    else:
        n = 256
        zeta = 0.125
        trials = 10
    a = 4.0 / zeta
    rounds = max(n, int(4 * a * np.log(n)))

    workloads = {
        "clique (diam 1)": (complete_graph(n), True),
        "dense gnp (diam 2)": (gnp_random_graph(n, 0.5, rng=seed + 7), True),
        "path (large diam)": (path_graph(n), False),
    }

    rows = []
    verdicts = {}
    data = {}
    for w_idx, (name, (graph, diam_le_2)) in enumerate(workloads.items()):
        s1_all = s2_all = s3_all = True
        worst_off = 0
        min_off = None
        worst_on = 0
        for trial_seed in spawn_seeds(seed + w_idx, trials):
            analyzer = _record(graph, zeta, rounds, trial_seed)
            report = analyzer.analyze(a=a, n=n, diam_le_2=diam_le_2)
            s1_all &= bool(report["s1_holds"])
            worst_off = max(worst_off, int(report["max_off_run"]))
            if diam_le_2:
                s2_all &= bool(report["s2_holds"])
                s3_all &= bool(report["s3_holds"])
                if report["min_off_run"] is not None:
                    value = int(report["min_off_run"])
                    min_off = value if min_off is None else min(min_off, value)
                worst_on = max(worst_on, int(report["max_on_run"]))
        rows.append(
            [name, worst_off, f"{a * np.log(n):.0f}",
             min_off if min_off is not None else "-",
             f"{(a / 6) * np.log(n):.0f}" if diam_le_2 else "-",
             worst_on if diam_le_2 else "-"]
        )
        verdicts[f"{name}: S1 holds"] = s1_all
        if diam_le_2:
            verdicts[f"{name}: S2 holds"] = s2_all
            verdicts[f"{name}: S3 holds (on-runs <= 3)"] = s3_all
        data[name] = {
            "max_off_run": worst_off,
            "min_off_run": min_off,
            "max_on_run": worst_on,
        }
    table = format_table(
        ["workload", "max off-run", "S1 bound",
         "min off-run", "S2 bound", "max on-run"],
        rows,
        title=f"Randomized switch, n={n}, ζ={zeta:g} (a={a:g}), "
              f"{rounds} rounds, {trials} trials",
    )

    # ζ-sweep ablation on the clique: larger ζ → shorter off-runs (S1
    # margin grows) but S2's minimum shrinks.
    zeta_rows = []
    for z_idx, z in enumerate([0.5, 0.25, 0.125, 0.0625]):
        analyzer = _record(
            complete_graph(n), z, max(n, int(16 * np.log(n) / z)),
            seed + 1000 + z_idx,
        )
        report = analyzer.analyze(a=4.0 / z, n=n, diam_le_2=True)
        zeta_rows.append(
            [f"{z:g}", int(report["max_off_run"]),
             report["min_off_run"] if report["min_off_run"] is not None
             else "-",
             int(report["max_on_run"])]
        )
    zeta_table = format_table(
        ["ζ", "max off-run", "min off-run", "max on-run"],
        zeta_rows,
        title=f"ζ-sweep ablation on K_{n}",
    )
    data["zeta_sweep"] = zeta_rows

    return ExperimentResult(
        experiment_id="E7",
        title="Randomized logarithmic switch (Lemma 27)",
        tables=[table, zeta_table],
        verdicts=verdicts,
        data=data,
    )
