"""E5 — Remark 9: √n disjoint copies of K_√n take Θ(log² n).

The union of √n independent K_√n components stabilizes only when the
*slowest* component does; each component's time is ~log with a
geometric tail (Theorem 8), so the maximum over √n of them concentrates
at Θ(log² n) — strictly above the Θ(log n) expectation of a single
clique of the same total size.

The experiment sweeps total n, measures mean stabilization time of the
union, and compares against single-clique K_n means: the ratio
union/single should *grow* (like log n), witnessing the extra log
factor.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.two_state import TwoStateMIS
from repro.experiments.fitting import fit_polylog
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.generators import complete_graph, disjoint_cliques
from repro.sim.montecarlo import estimate_stabilization_time


@register("E5", "Remark 9: √n disjoint K_√n need Θ(log² n)")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    if fast:
        sides = [8, 12, 16, 24]
        trials = 15
    else:
        sides = [8, 12, 16, 24, 32, 48, 64]
        trials = 60

    rows = []
    union_means = []
    single_means = []
    ns = []
    for idx, side in enumerate(sides):
        n = side * side
        ns.append(n)
        union_graph = disjoint_cliques(side, side)
        union_stats = estimate_stabilization_time(
            lambda s, g=union_graph: TwoStateMIS(g, coins=s),
            trials=trials,
            max_rounds=300 * int(math.log2(n)) ** 2 + 2000,
            seed=seed + idx,
        )
        single_graph = complete_graph(n)
        single_stats = estimate_stabilization_time(
            lambda s, g=single_graph: TwoStateMIS(g, coins=s),
            trials=trials,
            max_rounds=300 * int(math.log2(n)) ** 2 + 2000,
            seed=seed + 50 + idx,
        )
        union_means.append(union_stats.mean)
        single_means.append(single_stats.mean)
        rows.append(
            [n, union_stats.mean, single_stats.mean,
             union_stats.mean / max(single_stats.mean, 1e-9),
             union_stats.mean / math.log(n) ** 2]
        )
    table = format_table(
        ["n", "union mean", "single K_n mean", "ratio", "union/ln² n"],
        rows,
        title="√n · K_√n union vs single K_n (2-state MIS)",
    )
    # The union should be slower and the gap should widen.
    ratios = np.array(union_means) / np.maximum(np.array(single_means), 1e-9)
    union_fit = fit_polylog(np.array(ns, dtype=float), np.array(union_means))
    return ExperimentResult(
        experiment_id="E5",
        title="Disjoint cliques lower bound (Remark 9)",
        tables=[table],
        verdicts={
            # At small n the Θ(log n) vs Θ(log² n) separation is below
            # the constants; assert it only where it is resolvable.
            "union slower than single clique at the two largest n":
                bool(np.all(ratios[-2:] > 1.0)),
            "gap widens with n (last ratio > first ratio)":
                bool(ratios[-1] > ratios[0]),
            "union polylog exponent > 1 (supra-logarithmic)":
                union_fit.b > 1.0,
        },
        data={
            "ns": ns,
            "union_means": union_means,
            "single_means": single_means,
            "union_polylog_fit": (
                union_fit.a, union_fit.b, union_fit.r_squared
            ),
        },
    )
