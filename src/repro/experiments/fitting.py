"""Shape-fitting for stabilization-time curves.

The theorems predict growth shapes, not constants:

* Theorem 8:  T(n) = Θ(log n) expected, Θ(log² n) w.h.p. on K_n.
* Theorem 11: T(n) = O(log n) on bounded arboricity.
* Theorem 12: T(n) = O(Δ log n).
* Theorems 19/32: T(n) = polylog(n).

:func:`fit_polylog` regresses ``log T`` on ``log log n`` to estimate the
polylog exponent b in ``T(n) ≈ a · (ln n)^b``; :func:`fit_power_law`
regresses ``log T`` on ``log n`` to estimate c in ``T(n) ≈ a · n^c``.  A
polylog-time process shows a small power-law exponent that *decreases*
with scale and a stable polylog exponent; a polynomial-time process
shows the opposite.  Both fits report R².
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class PolylogFit:
    """Result of fitting ``T(n) = a * (ln n)^b`` (or ``a * n^b``).

    Attributes
    ----------
    a:
        Multiplicative constant.
    b:
        Exponent.
    r_squared:
        Coefficient of determination of the log-space linear fit.
    model:
        Either ``"polylog"`` (regressor log log n) or ``"power"``
        (regressor log n).
    """

    a: float
    b: float
    r_squared: float
    model: str

    def predict(self, n: float) -> float:
        """Predicted T at the given n."""
        if self.model == "polylog":
            return self.a * np.log(n) ** self.b
        return self.a * n ** self.b

    def __str__(self) -> str:
        form = "(ln n)^" if self.model == "polylog" else "n^"
        return (
            f"T(n) ≈ {self.a:.3g} · {form}{self.b:.2f}  (R²={self.r_squared:.3f})"
        )


def _linear_fit(x: np.ndarray, y: np.ndarray) -> tuple[float, float, float]:
    """Least-squares y = intercept + slope*x with R²."""
    if len(x) < 2:
        raise ValueError("need at least two points to fit")
    slope, intercept = np.polyfit(x, y, 1)
    pred = intercept + slope * x
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return float(slope), float(intercept), r2


def fit_polylog(ns: np.ndarray, times: np.ndarray) -> PolylogFit:
    """Fit ``T(n) = a (ln n)^b`` from (n, T) samples.

    Points with non-positive T are dropped (log space).
    """
    ns = np.asarray(ns, dtype=float)
    times = np.asarray(times, dtype=float)
    keep = (times > 0) & (ns > np.e)  # need ln ln n defined and positive
    ns, times = ns[keep], times[keep]
    slope, intercept, r2 = _linear_fit(
        np.log(np.log(ns)), np.log(times)
    )
    return PolylogFit(a=float(np.exp(intercept)), b=slope, r_squared=r2,
                      model="polylog")


def fit_power_law(ns: np.ndarray, times: np.ndarray) -> PolylogFit:
    """Fit ``T(n) = a n^b`` from (n, T) samples."""
    ns = np.asarray(ns, dtype=float)
    times = np.asarray(times, dtype=float)
    keep = (times > 0) & (ns > 1)
    ns, times = ns[keep], times[keep]
    slope, intercept, r2 = _linear_fit(np.log(ns), np.log(times))
    return PolylogFit(a=float(np.exp(intercept)), b=slope, r_squared=r2,
                      model="power")


def classify_growth(ns: np.ndarray, times: np.ndarray) -> str:
    """Heuristic classification: ``"polylog"`` vs ``"polynomial"``.

    Compares the fit quality of the two models and the magnitude of the
    power-law exponent.  Polynomial growth with exponent < 0.1 is
    indistinguishable from polylog at laptop scales and is classified as
    polylog — exactly the resolution the reproduction claims.
    """
    power = fit_power_law(ns, times)
    if power.b < 0.1:
        return "polylog"
    poly = fit_polylog(ns, times)
    return "polylog" if poly.r_squared >= power.r_squared else "polynomial"
