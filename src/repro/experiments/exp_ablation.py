"""E18 — design-choice ablations (DESIGN.md §5 table).

Three ablations on the 2-state process:

1. **Transition randomization (footnote 1).**  The paper's process
   randomizes the white→black promotion (probability 1/2) "because it
   simplifies our analysis"; the "natural" variant promotes eagerly
   (probability 1).  Measured across families, the two are within a
   small constant factor of each other — and at n = 1024 the
   *randomized* variant is in fact slightly faster on sparse graphs:
   eager promotion makes adjacent lonely-white vertices collide
   deterministically, while the coin breaks that symmetry.  The
   analysis choice is not just convenient; it is mildly helpful.

2. **Neighbourhood backend.**  Steps/second under the dense (matmul),
   bitset (popcount), sparse (CSR) and pure-python backends on a dense and a sparse
   workload, justifying the ``make_neighbor_ops`` auto heuristic.

3. **Aggregate engine (ISSUE 4).**  Wall time of a trajectory-recorded
   ``run_until_stable`` on a sparse G(n, 3/n) under
   ``engine="full"`` / ``"frontier"`` / ``"auto"`` (see
   :mod:`repro.core.frontier`).  The verdict asserts the engines'
   trajectories are identical per seed (same stabilization round, same
   MIS, same aggregate curves); the wall-time columns report the
   incremental engine's payoff, which grows with n.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.two_state import TwoStateMIS
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.generators import complete_graph
from repro.graphs.random_graphs import gnp_random_graph, random_tree
from repro.sim.montecarlo import estimate_stabilization_time
from repro.sim.stats import mann_whitney_faster


@register("E18", "Ablations: transition randomization; backend; engine")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    if fast:
        n = 256
        trials = 15
        bench_rounds = 30
    else:
        n = 1024
        trials = 60
        bench_rounds = 100

    # --- Ablation 1: eager vs randomized white→black ---
    workloads = {
        "K_n": lambda s: complete_graph(n),
        "G(n, 3 ln n/n)": lambda s: gnp_random_graph(
            n, 3 * math.log(n) / n, rng=s
        ),
        "tree": lambda s: random_tree(n, rng=s),
    }
    rows1 = []
    verdicts = {}
    for w_idx, (name, graph_of_seed) in enumerate(workloads.items()):
        budget = 500 * int(math.log2(n)) ** 2

        def factory(s, eager, mk=graph_of_seed):
            rng = np.random.default_rng(s)
            graph = mk(int(rng.integers(0, 2**31)))
            return TwoStateMIS(
                graph, coins=rng, eager_white_promotion=eager
            )

        randomized = estimate_stabilization_time(
            lambda s: factory(s, False), trials=trials,
            max_rounds=budget, seed=seed + 10 * w_idx,
        )
        eager = estimate_stabilization_time(
            lambda s: factory(s, True), trials=trials,
            max_rounds=budget, seed=seed + 10 * w_idx,
        )
        speedup = randomized.mean / max(eager.mean, 1e-9)
        randomized_wins = mann_whitney_faster(
            randomized.times, eager.times, alpha=0.001
        )
        eager_wins = mann_whitney_faster(
            eager.times, randomized.times, alpha=0.001
        )
        if randomized_wins["faster"]:
            direction = "randomized"
        elif eager_wins["faster"]:
            direction = "eager"
        else:
            direction = "tie"
        rows1.append(
            [name, randomized.mean, eager.mean, speedup, direction]
        )
        # The defensible claims: both stabilize everywhere, and the
        # variants stay within a small constant factor (the direction
        # of the difference is workload-dependent and reported, not
        # asserted — see the module docstring for the finding).
        verdicts[f"{name}: both variants always stabilize"] = (
            randomized.success_rate == 1.0 and eager.success_rate == 1.0
        )
        verdicts[f"{name}: variants within 2x of each other"] = (
            0.5 <= speedup <= 2.0
        )
    table1 = format_table(
        ["workload", "randomized mean", "eager mean", "speedup",
         "significantly faster"],
        rows1,
        title=f"Footnote-1 ablation at n={n} ({trials} trials)",
    )

    # --- Ablation 2: backend throughput ---
    dense_graph = complete_graph(min(n, 512))
    sparse_graph = gnp_random_graph(4 * n, 1.0 / n, rng=seed + 5)
    rows2 = []
    for graph_name, graph in (
        ("dense (clique)", dense_graph),
        ("sparse (gnp)", sparse_graph),
    ):
        row = [f"{graph_name} n={graph.n}"]
        for backend in ("dense", "bitset", "sparse"):
            proc = TwoStateMIS(
                graph, coins=1, backend=backend, init="all_black"
            )
            start = time.perf_counter()
            proc.step(bench_rounds)
            elapsed = time.perf_counter() - start
            row.append(bench_rounds / max(elapsed, 1e-9))
        rows2.append(row)
    table2 = format_table(
        ["workload", "dense backend (rounds/s)",
         "bitset backend (rounds/s)", "sparse backend (rounds/s)"],
        rows2,
        title="Backend throughput",
    )
    # The auto heuristic is justified if each backend wins on its home
    # turf (or at least never catastrophically loses on it).
    verdicts["sparse backend >= 0.5x dense on the sparse workload"] = (
        rows2[1][3] >= 0.5 * rows2[1][1]
    )

    # --- Ablation 3: aggregate engine (full vs frontier vs auto) ---
    from repro.sim.runner import run_until_stable

    n_engine = 8 * n
    engine_graph = gnp_random_graph(n_engine, 3.0 / n_engine, rng=seed + 9)
    rows3 = []
    engine_runs = {}
    for engine in ("full", "frontier", "auto"):
        proc = TwoStateMIS(engine_graph, coins=seed + 13, engine=engine)
        start = time.perf_counter()
        result = run_until_stable(
            proc,
            max_rounds=500 * int(math.log2(n_engine)) ** 2,
            record_trace=True,
        )
        elapsed = time.perf_counter() - start
        engine_runs[engine] = result
        rows3.append(
            [
                engine,
                result.stabilization_round,
                f"{elapsed * 1e3:.1f}ms",
                result.rounds_executed / max(elapsed, 1e-9),
            ]
        )
    table3 = format_table(
        ["engine", "stab. round", "wall time", "rounds/s"],
        rows3,
        title=(
            f"Aggregate-engine ablation: trajectory-recorded run on "
            f"G({n_engine}, 3/n)"
        ),
    )
    reference = engine_runs["full"]
    ref_curves = reference.trace.as_arrays()
    verdicts["engines agree on the stabilization round"] = all(
        run.stabilization_round == reference.stabilization_round
        for run in engine_runs.values()
    )
    verdicts["engines agree on the MIS and trajectory"] = all(
        np.array_equal(run.mis, reference.mis)
        and all(
            np.array_equal(run.trace.as_arrays()[key], curve)
            for key, curve in ref_curves.items()
        )
        for run in engine_runs.values()
    )

    return ExperimentResult(
        experiment_id="E18",
        title="Design ablations (footnote 1; backends; aggregate engine)",
        tables=[table1, table2, table3],
        verdicts=verdicts,
        data={
            "footnote1": rows1,
            "backends": rows2,
            "engines": rows3,
        },
    )
