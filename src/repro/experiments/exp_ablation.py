"""E18 — design-choice ablations (DESIGN.md §6 table).

Three ablations on the 2-state process:

1. **Transition randomization (footnote 1).**  The paper's process
   randomizes the white→black promotion (probability 1/2) "because it
   simplifies our analysis"; the "natural" variant promotes eagerly
   (probability 1).  Measured across families, the two are within a
   small constant factor of each other — and at n = 1024 the
   *randomized* variant is in fact slightly faster on sparse graphs:
   eager promotion makes adjacent lonely-white vertices collide
   deterministically, while the coin breaks that symmetry.  The
   analysis choice is not just convenient; it is mildly helpful.

2. **Neighbourhood backend.**  Steps/second under the dense (matmul),
   bitset (popcount), sparse (CSR) and pure-python backends on a dense and a sparse
   workload, justifying the ``make_neighbor_ops`` auto heuristic.

3. **Execution path (ISSUE 4/5).**  A small Monte-Carlo fleet on a
   sparse G(n, 3/n) run through all four execution paths —
   serial-full, serial-frontier (:mod:`repro.core.frontier`),
   batched-full and batched-frontier
   (:mod:`repro.core.batched_frontier`) — with a trajectory-identity
   verdict: every path must report the same per-seed stabilization
   round and MIS (and the two serial paths the same aggregate
   curves).  The wall-time column reports each path's cost; the
   incremental engines' payoff grows with n and with the fleet's
   tail (see ``benchmarks/bench_frontier.py`` and
   ``benchmarks/bench_batched_frontier.py`` for the asserted
   full-size numbers).
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.two_state import TwoStateMIS
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.generators import complete_graph
from repro.graphs.random_graphs import gnp_random_graph, random_tree
from repro.sim.montecarlo import estimate_stabilization_time
from repro.sim.stats import mann_whitney_faster


@register("E18", "Ablations: transition randomization; backend; engine")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    if fast:
        n = 256
        trials = 15
        bench_rounds = 30
    else:
        n = 1024
        trials = 60
        bench_rounds = 100

    # --- Ablation 1: eager vs randomized white→black ---
    workloads = {
        "K_n": lambda s: complete_graph(n),
        "G(n, 3 ln n/n)": lambda s: gnp_random_graph(
            n, 3 * math.log(n) / n, rng=s
        ),
        "tree": lambda s: random_tree(n, rng=s),
    }
    rows1 = []
    verdicts = {}
    for w_idx, (name, graph_of_seed) in enumerate(workloads.items()):
        budget = 500 * int(math.log2(n)) ** 2

        def factory(s, eager, mk=graph_of_seed):
            rng = np.random.default_rng(s)
            graph = mk(int(rng.integers(0, 2**31)))
            return TwoStateMIS(
                graph, coins=rng, eager_white_promotion=eager
            )

        randomized = estimate_stabilization_time(
            lambda s: factory(s, False), trials=trials,
            max_rounds=budget, seed=seed + 10 * w_idx,
        )
        eager = estimate_stabilization_time(
            lambda s: factory(s, True), trials=trials,
            max_rounds=budget, seed=seed + 10 * w_idx,
        )
        speedup = randomized.mean / max(eager.mean, 1e-9)
        randomized_wins = mann_whitney_faster(
            randomized.times, eager.times, alpha=0.001
        )
        eager_wins = mann_whitney_faster(
            eager.times, randomized.times, alpha=0.001
        )
        if randomized_wins["faster"]:
            direction = "randomized"
        elif eager_wins["faster"]:
            direction = "eager"
        else:
            direction = "tie"
        rows1.append(
            [name, randomized.mean, eager.mean, speedup, direction]
        )
        # The defensible claims: both stabilize everywhere, and the
        # variants stay within a small constant factor (the direction
        # of the difference is workload-dependent and reported, not
        # asserted — see the module docstring for the finding).
        verdicts[f"{name}: both variants always stabilize"] = (
            randomized.success_rate == 1.0 and eager.success_rate == 1.0
        )
        verdicts[f"{name}: variants within 2x of each other"] = (
            0.5 <= speedup <= 2.0
        )
    table1 = format_table(
        ["workload", "randomized mean", "eager mean", "speedup",
         "significantly faster"],
        rows1,
        title=f"Footnote-1 ablation at n={n} ({trials} trials)",
    )

    # --- Ablation 2: backend throughput ---
    dense_graph = complete_graph(min(n, 512))
    sparse_graph = gnp_random_graph(4 * n, 1.0 / n, rng=seed + 5)
    rows2 = []
    for graph_name, graph in (
        ("dense (clique)", dense_graph),
        ("sparse (gnp)", sparse_graph),
    ):
        row = [f"{graph_name} n={graph.n}"]
        for backend in ("dense", "bitset", "sparse"):
            proc = TwoStateMIS(
                graph, coins=1, backend=backend, init="all_black"
            )
            start = time.perf_counter()
            proc.step(bench_rounds)
            elapsed = time.perf_counter() - start
            row.append(bench_rounds / max(elapsed, 1e-9))
        rows2.append(row)
    table2 = format_table(
        ["workload", "dense backend (rounds/s)",
         "bitset backend (rounds/s)", "sparse backend (rounds/s)"],
        rows2,
        title="Backend throughput",
    )
    # The auto heuristic is justified if each backend wins on its home
    # turf (or at least never catastrophically loses on it).
    verdicts["sparse backend >= 0.5x dense on the sparse workload"] = (
        rows2[1][3] >= 0.5 * rows2[1][1]
    )

    # --- Ablation 3: execution path (serial/batched x full/frontier) ---
    from repro.sim.rng import spawn_seeds
    from repro.sim.runner import run_many_until_stable, run_until_stable

    n_engine = 8 * n
    replicas = 8 if fast else 16
    engine_graph = gnp_random_graph(n_engine, 3.0 / n_engine, rng=seed + 9)
    replica_seeds = spawn_seeds(seed + 13, replicas)
    budget = 500 * int(math.log2(n_engine)) ** 2

    def fleet(engine="auto"):
        return [
            TwoStateMIS(engine_graph, coins=s, engine=engine)
            for s in replica_seeds
        ]

    path_results = {}
    path_traces = {}
    rows3 = []
    for path in (
        "serial-full",
        "serial-frontier",
        "batched-full",
        "batched-frontier",
    ):
        # The "-frontier" rows force engine="frontier" (always scatter)
        # so the row exercises exactly the path its label names; the
        # adaptive "auto" blend is pinned to these by the equivalence
        # suites (tests/test_frontier.py, tests/test_batched_frontier.py).
        serial, engine = path.split("-")
        start = time.perf_counter()
        if serial == "serial":
            processes = fleet(engine)
            results = [
                run_until_stable(p, max_rounds=budget, record_trace=True)
                for p in processes
            ]
            path_traces[path] = [r.trace.as_arrays() for r in results]
        else:
            processes = fleet()
            results = run_many_until_stable(
                processes,
                max_rounds=budget,
                batch=replicas,
                engine=engine,
            )
        elapsed = time.perf_counter() - start
        path_results[path] = results
        total_rounds = sum(r.rounds_executed for r in results)
        rows3.append(
            [
                path,
                float(np.mean([r.stabilization_round for r in results])),
                f"{elapsed * 1e3:.1f}ms",
                total_rounds / max(elapsed, 1e-9),
            ]
        )
    table3 = format_table(
        ["execution path", "mean stab. round", "wall time",
         "replica-rounds/s"],
        rows3,
        title=(
            f"Execution-path ablation: {replicas} replicas on "
            f"G({n_engine}, 3/n)"
        ),
    )
    reference = path_results["serial-full"]
    verdicts["execution paths agree on every stabilization round"] = all(
        [r.stabilization_round for r in results]
        == [r.stabilization_round for r in reference]
        for results in path_results.values()
    )
    verdicts["execution paths agree on every MIS"] = all(
        all(
            np.array_equal(a.mis, b.mis)
            for a, b in zip(results, reference)
        )
        for results in path_results.values()
    )
    ref_traces = path_traces["serial-full"]
    verdicts["serial engines agree on every trajectory"] = all(
        np.array_equal(curves[key], ref[key])
        for curves, ref in zip(path_traces["serial-frontier"], ref_traces)
        for key in ref
    )

    return ExperimentResult(
        experiment_id="E18",
        title="Design ablations (footnote 1; backends; aggregate engine)",
        tables=[table1, table2, table3],
        verdicts=verdicts,
        data={
            "footnote1": rows1,
            "backends": rows2,
            "engines": rows3,
        },
    )
