"""E19 — frontier scaling: the processes on million-vertex G(n, c/n).

The paper's headline claims (Theorems 19/32: polylog stabilization on
G(n, p)) only become empirically interesting at large n.  This
experiment rides the CSR-native :class:`~repro.graphs.graph.Graph`
substrate to the frontier: 2-state and 3-state stabilization-time
curves on sparse G(n, c/n) with n up to 10⁶ (``--full``), tracking the
process peak RSS and the substrate's bytes-per-edge footprint along
the way.

Verdicts assert the claim shape (sublinear growth of the mean
stabilization time — the observed growth is logarithmic), full
stabilization success within generous budgets, and that the CSR arrays
stay within a small constant number of bytes per edge (the property
that makes the frontier reachable at all).

Since ISSUE 4, each size also times one seeded 2-state single run under
``engine="full"`` vs ``engine="auto"`` (the incremental frontier
engine, :mod:`repro.core.frontier`): the ``full``/``frontier`` columns
report wall seconds and the speedup column their ratio, with a verdict
asserting the two engines agree on the stabilization round and the
MIS at every n (full per-round bitwise identity is pinned by
``tests/test_frontier.py`` and the E18 trace verdict).
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.core.three_state import ThreeStateMIS
from repro.core.two_state import TwoStateMIS
from repro.experiments.fitting import fit_power_law
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.montecarlo import estimate_stabilization_time
from repro.sim.runner import run_until_stable

#: Mean degree of the sparse frontier workload G(n, c/n).
C = 3.0

#: Replica rows are capped so a batch holds at most this many state
#: cells — at n = 2²⁰ that is 16 replicas per (R, n) matrix.
_MAX_BATCH_CELLS = 1 << 24

#: Acceptance bound on the substrate footprint: CSR costs
#: 8 bytes/edge for the directed indices (int32) plus the amortized
#: indptr share; 20 bytes/edge is a comfortable envelope (the tuple/set
#: representation this replaced measured in the hundreds).
_MAX_BYTES_PER_EDGE = 20.0


def _peak_rss_kb() -> int:
    """Process peak RSS in KiB (0 where the resource module is absent)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return 0
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


@register("E19", "Frontier scaling: 2/3-state MIS on G(n, c/n) up to 10^6")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    if fast:
        ns = [1 << 8, 1 << 10, 1 << 12]
        trials = 6
    else:
        ns = [1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20]
        trials = 10

    processes = {"2-state": TwoStateMIS, "3-state": ThreeStateMIS}
    rows = []
    means: dict[str, list[float]] = {name: [] for name in processes}
    success: dict[str, list[float]] = {name: [] for name in processes}
    bytes_per_edge = []
    engine_match: list[bool] = []
    frontier_speedups: list[float] = []
    data: dict[str, object] = {
        "ns": ns,
        "c": C,
        "trials": trials,
        "build_seconds": [],
        "peak_rss_kb": [],
        "ms": [],
    }
    for idx, n in enumerate(ns):
        p = min(1.0, C / n)
        t0 = time.perf_counter()
        graph = gnp_random_graph(n, p, rng=seed + idx)
        build_s = time.perf_counter() - t0
        per_edge = graph.memory_nbytes() / max(graph.m, 1)
        bytes_per_edge.append(per_edge)
        batch = max(2, min(trials, _MAX_BATCH_CELLS // max(n, 1)))
        max_rounds = 200 * max(int(math.log2(max(n, 2))), 1)
        row = [n, graph.m, f"{build_s * 1e3:.0f}ms", f"{per_edge:.1f}"]
        for name, cls in processes.items():
            def make(s, cls=cls, graph=graph):
                return cls(graph, coins=s)

            stats = estimate_stabilization_time(
                make,
                trials=trials,
                max_rounds=max_rounds,
                seed=seed + 1000 + 100 * idx,
                batch=batch,
            )
            means[name].append(stats.mean)
            success[name].append(stats.success_rate)
            row.append(stats.mean)
            row.append(stats.max)
        # One seeded single run per engine: the frontier column of the
        # scaling table (trajectories asserted identical).
        engine_seconds = {}
        engine_results = {}
        for engine in ("full", "auto"):
            proc = TwoStateMIS(
                graph, coins=seed + 77 + idx, engine=engine
            )
            t0 = time.perf_counter()
            engine_results[engine] = run_until_stable(
                proc, max_rounds=max_rounds, verify=False
            )
            engine_seconds[engine] = time.perf_counter() - t0
        full_res, auto_res = engine_results["full"], engine_results["auto"]
        engine_match.append(
            full_res.stabilization_round == auto_res.stabilization_round
            and (full_res.mis is None) == (auto_res.mis is None)
            and (
                full_res.mis is None
                or np.array_equal(full_res.mis, auto_res.mis)
            )
        )
        frontier_speedups.append(
            engine_seconds["full"] / max(engine_seconds["auto"], 1e-9)
        )
        row.append(f"{engine_seconds['full'] * 1e3:.0f}ms")
        row.append(f"{engine_seconds['auto'] * 1e3:.0f}ms")
        row.append(f"{frontier_speedups[-1]:.1f}x")
        rss_kb = _peak_rss_kb()
        row.append(f"{rss_kb / 1024:.0f}MB")
        rows.append(row)
        data["build_seconds"].append(build_s)
        data["peak_rss_kb"].append(rss_kb)
        data["ms"].append(graph.m)

    tables = [
        format_table(
            [
                "n",
                "m",
                "build",
                "B/edge",
                "2st mean",
                "2st max",
                "3st mean",
                "3st max",
                "full",
                "frontier",
                "spdup",
                "peak RSS",
            ],
            rows,
            title=f"Frontier scaling on G(n, {C}/n), {trials} trials/point",
        )
    ]

    verdicts = {}
    ns_arr = np.array(ns, dtype=float)
    for name in processes:
        fit = fit_power_law(ns_arr, np.array(means[name]))
        data[f"{name}_means"] = means[name]
        data[f"{name}_power_fit"] = (fit.a, fit.b, fit.r_squared)
        verdicts[f"{name}: sublinear growth (power exponent < 0.5)"] = (
            fit.b < 0.5
        )
        verdicts[f"{name}: all trials stabilized"] = all(
            rate == 1.0 for rate in success[name]
        )
    data["bytes_per_edge"] = bytes_per_edge
    data["frontier_speedups"] = frontier_speedups
    verdicts[
        f"CSR footprint <= {_MAX_BYTES_PER_EDGE:.0f} bytes/edge"
    ] = max(bytes_per_edge) <= _MAX_BYTES_PER_EDGE
    verdicts["frontier engine matches full at every n"] = all(
        engine_match
    )
    return ExperimentResult(
        experiment_id="E19",
        title="Frontier scaling: 2/3-state MIS on G(n, c/n)",
        tables=tables,
        verdicts=verdicts,
        data=data,
    )
