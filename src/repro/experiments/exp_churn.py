"""E20 — recovery under churn: the MIS service on mutating G(n, c/n).

The paper's self-stabilization theorem promises recovery from *any*
configuration in O(log n) rounds w.h.p. — which makes the process a
natural maintenance algorithm for dynamic graphs: perturb the topology,
let the process run, and the MIS re-stabilizes in O(log n) rounds no
matter what changed.  This experiment drives
:class:`~repro.dynamic.service.MISService` through seeded mutation
streams on sparse G(n, c/n) up to 2²⁰ (``--full``) and measures:

* **Scaling** — mean rounds-to-restabilize per churn wave (a
  fixed-size batch of uniform edge events, then recovery) as n grows.
  The wave size is held constant across n so the curve isolates the
  n-dependence of recovery; the verdict fits ``T(n) = a·n^b`` and
  requires the power exponent to stay below
  :data:`MAX_POWER_EXPONENT` — a polylog-compatible growth shape (a
  genuinely logarithmic curve fits with b ≈ 0.05–0.15 over this range;
  anything polynomial shows b ≳ 0.5).
* **Churn rate** — at fixed n, recovery rounds vs wave size (4× steps):
  heavier waves perturb more of the graph and need more rounds, the
  rate axis of the recovery surface.
* **Locality** — recovery vs churn *shape* at fixed n: uniform vs
  flapping-link vs adversarial hub-deletion vs localized-burst streams,
  with per-stream mutation throughput (events/s, settles included).
* **Exactness** — the smallest size re-run with ``repair=False``
  (rebuild aggregates after every event): the pinned verdict requires
  the incremental-repair trajectory to match bitwise, event for event.

``BENCH_churn.json`` (``benchmarks/bench_churn.py``) turns the
throughput numbers into regression floors.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.dynamic import MISService, make_stream
from repro.experiments.fitting import fit_power_law
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import gnp_random_graph

#: Mean degree of the churned workload G(n, c/n) (same as E19).
C = 3.0

#: Acceptance bound on the fitted power exponent of mean recovery
#: rounds vs n.  O(log n) growth fits a power law with an exponent
#: near zero over any finite range; 0.4 cleanly separates that from
#: polynomial growth while leaving room for small-n noise.
MAX_POWER_EXPONENT = 0.4

#: Floor applied to per-wave means before the log-space fit (a wave
#: that needs zero recovery rounds would otherwise be dropped).
_MEAN_FLOOR = 0.5

#: Events per churn wave in the scaling sweep — constant across n so
#: the recovery curve isolates the n-dependence.
WAVE_EVENTS = 16


def _churn_waves(
    n: int, batch: int, waves: int, seed: int
) -> tuple[float, bool, MISService, float]:
    """Run ``waves`` churn waves of ``batch`` events each.

    Returns (mean recovery rounds per wave, all waves stable, the
    service, elapsed seconds).
    """
    graph = gnp_random_graph(n, min(1.0, C / n), rng=seed)
    stream = make_stream("uniform", n, seed=seed + 1)
    service = MISService(
        graph, stream, seed=seed + 2, settle_every=batch
    )
    t0 = time.perf_counter()
    service.run(batch * waves)
    elapsed = time.perf_counter() - t0
    settles = [r for r in service.records if (r.offset + 1) % batch == 0]
    mean_rounds = float(np.mean([r.rounds for r in settles]))
    all_stable = all(r.stabilized for r in settles)
    return mean_rounds, all_stable, service, elapsed


def _locality_row(
    kind: str, n: int, events: int, seed: int
) -> tuple[list, bool]:
    graph = gnp_random_graph(n, min(1.0, C / n), rng=seed)
    stream = make_stream(kind, n, seed=seed + 1)
    service = MISService(graph, stream, seed=seed + 2)
    t0 = time.perf_counter()
    service.run(events)
    elapsed = time.perf_counter() - t0
    rounds = [r.rounds for r in service.records]
    stable = all(r.stabilized for r in service.records)
    row = [
        kind,
        events,
        float(np.mean(rounds)),
        int(np.max(rounds)),
        service.repairs,
        service.rebuilds,
        service.overlay.compactions,
        f"{events / max(elapsed, 1e-9):.0f}",
    ]
    return row, stable


@register("E20", "Recovery under churn: O(log n) re-stabilization, live")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    if fast:
        ns = [1 << 8, 1 << 10, 1 << 12]
        waves = 8
        loc_n, loc_events = 1 << 10, 192
        rate_batches = [4, 16, 64]
    else:
        ns = [1 << 14, 1 << 16, 1 << 18, 1 << 20]
        waves = 8
        loc_n, loc_events = 1 << 14, 1024
        rate_batches = [4, 16, 64, 256]

    # -- Part A: recovery-round scaling vs n (fixed wave size) ----------
    mean_rounds: list[float] = []
    scaling_rows = []
    all_stable = True
    repairs_dominate = True
    throughputs: list[float] = []
    for idx, n in enumerate(ns):
        mean, stable, service, elapsed = _churn_waves(
            n, WAVE_EVENTS, waves, seed + 10 * idx
        )
        mean_rounds.append(mean)
        all_stable &= stable
        repairs_dominate &= (
            service.repairs > 0 and service.repairs >= service.rebuilds
        )
        events = len(service.records)
        throughputs.append(events / max(elapsed, 1e-9))
        scaling_rows.append(
            [
                n,
                mean,
                service.repairs,
                service.rebuilds,
                service.overlay.compactions,
                f"{events / max(elapsed, 1e-9):.0f}",
            ]
        )
    fit = fit_power_law(ns, np.maximum(mean_rounds, _MEAN_FLOOR))
    scaling_table = format_table(
        ["n", "rounds/wave", "repairs", "rebuilds", "compact", "events/s"],
        scaling_rows,
        title=(
            f"Recovery per churn wave on G(n, {C:g}/n) "
            f"({waves} waves of {WAVE_EVENTS} uniform events)"
        ),
    )

    # -- Part A2: recovery vs churn rate at fixed n ---------------------
    rate_rows = []
    rate_stable = True
    for batch in rate_batches:
        mean, stable, service, elapsed = _churn_waves(
            loc_n, batch, waves, seed + 500
        )
        rate_stable &= stable
        rate_rows.append(
            [
                batch,
                mean,
                mean / batch,
                f"{len(service.records) / max(elapsed, 1e-9):.0f}",
            ]
        )
    rate_table = format_table(
        ["wave events", "rounds/wave", "rounds/event", "events/s"],
        rate_rows,
        title=f"Recovery vs churn rate at n={loc_n} ({waves} waves)",
    )

    # -- Part B: recovery vs churn locality at fixed n ------------------
    loc_rows = []
    loc_stable = True
    for kind in ("uniform", "flapping", "hub", "burst"):
        row, stable = _locality_row(kind, loc_n, loc_events, seed + 100)
        loc_rows.append(row)
        loc_stable &= stable
    locality_table = format_table(
        ["stream", "events", "rounds/event", "max", "repairs", "rebuilds",
         "compact", "events/s"],
        loc_rows,
        title=f"Churn locality at n={loc_n} (settle after every event)",
    )

    # -- Part C: incremental repair is exact (bitwise twin run) ---------
    n0 = ns[0]
    graph = gnp_random_graph(n0, min(1.0, C / n0), rng=seed)
    stream = make_stream("uniform", n0, seed=seed + 1)
    twin_events = WAVE_EVENTS * waves
    inc = MISService(graph, stream, seed=seed + 2)
    inc.run(twin_events)
    ctl = MISService(graph, stream, seed=seed + 2, repair=False)
    ctl.run(twin_events)
    repair_exact = bool(
        np.array_equal(inc._state_arrays()[0], ctl._state_arrays()[0])
        and [r.rounds for r in inc.records]
        == [r.rounds for r in ctl.records]
    )

    verdicts = {
        "every churn wave re-stabilized within budget":
            all_stable and rate_stable,
        "locality streams re-stabilized (uniform/flapping/hub/burst)":
            loc_stable,
        (
            "recovery rounds grow O(log n)-compatibly "
            f"(power exponent {fit.b:.3f} <= {MAX_POWER_EXPONENT})"
        ): bool(fit.b <= MAX_POWER_EXPONENT),
        "incremental repair on the hot path (repairs >= rebuilds)":
            repairs_dominate,
        "incremental repair bitwise-identical to rebuild": repair_exact,
    }
    data = {
        "ns": ns,
        "waves": waves,
        "wave_events": WAVE_EVENTS,
        "rate_batches": rate_batches,
        "mean_rounds": mean_rounds,
        "power_exponent": fit.b,
        "power_r_squared": fit.r_squared,
        "events_per_second": throughputs,
        "locality_n": loc_n,
        "locality_events": loc_events,
        "locality_rows": [list(map(str, row)) for row in loc_rows],
    }
    return ExperimentResult(
        experiment_id="E20",
        title="Recovery under churn: O(log n) re-stabilization, live",
        tables=[scaling_table, rate_table, locality_table],
        verdicts=verdicts,
        data=data,
    )
