"""E2 — Theorem 11: O(log n) stabilization on bounded-arboricity graphs.

Workloads: uniform random trees (arboricity 1), paths, 2D grids
(arboricity ≤ 2), and caterpillars.  For each family the experiment
sweeps n geometrically and checks that mean stabilization time divided
by ln n stays in a constant band and that the power-law exponent is
tiny.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.two_state import TwoStateMIS
from repro.experiments.fitting import fit_power_law
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.generators import caterpillar_graph, grid_graph, path_graph
from repro.graphs.random_graphs import random_tree
from repro.sim.montecarlo import estimate_stabilization_time


def _families(fast: bool):
    if fast:
        ns = [64, 128, 256, 512]
    else:
        ns = [64, 128, 256, 512, 1024, 2048, 4096, 8192]

    def tree_factory(n):
        def make(s):
            rng = np.random.default_rng(s)
            return TwoStateMIS(random_tree(n, rng=rng), coins=rng)

        return make

    def path_factory(n):
        graph = path_graph(n)
        return lambda s: TwoStateMIS(graph, coins=s)

    def grid_factory(n):
        side = int(round(math.sqrt(n)))
        graph = grid_graph(side, side)
        return lambda s: TwoStateMIS(graph, coins=s)

    def caterpillar_factory(n):
        graph = caterpillar_graph(max(2, n // 4), 3)
        return lambda s: TwoStateMIS(graph, coins=s)

    return ns, {
        "random tree": tree_factory,
        "path": path_factory,
        "grid": grid_factory,
        "caterpillar": caterpillar_factory,
    }


@register("E2", "Theorem 11: bounded arboricity ⇒ O(log n) w.h.p.")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    ns, families = _families(fast)
    trials = 15 if fast else 50
    tables = []
    verdicts = {}
    data = {}
    for family_idx, (family, factory_of_n) in enumerate(families.items()):
        rows = []
        means = []
        for idx, n in enumerate(ns):
            stats = estimate_stabilization_time(
                factory_of_n(n),
                trials=trials,
                max_rounds=500 * int(math.log2(n)) + 2000,
                seed=seed + 100 * family_idx + idx,
            )
            rows.append(
                [n, stats.mean, stats.max, stats.mean / math.log(n)]
            )
            means.append(stats.mean)
        tables.append(
            format_table(
                ["n", "mean", "max", "mean/ln n"],
                rows,
                title=f"2-state MIS on {family}",
            )
        )
        fit = fit_power_law(np.array(ns, dtype=float), np.array(means))
        ratio = np.array(means) / np.log(np.array(ns, dtype=float))
        verdicts[f"{family}: power exponent < 0.25"] = fit.b < 0.25
        verdicts[f"{family}: mean/ln n within 3x band"] = bool(
            ratio.max() / max(ratio.min(), 1e-9) < 3.0
        )
        data[family] = {"ns": ns, "means": means,
                        "power_fit": (fit.a, fit.b, fit.r_squared)}
    return ExperimentResult(
        experiment_id="E2",
        title="2-state MIS on bounded-arboricity graphs (Theorem 11)",
        tables=tables,
        verdicts=verdicts,
        data=data,
    )
