"""E3 — Theorem 12: O(Δ log n) stabilization for maximum degree Δ.

Two sweeps on random d-regular graphs:

1. Δ-sweep at fixed n: mean stabilization time as a function of d.  The
   theorem's bound is linear in Δ; the experiment checks the measured
   growth with d is at most linear (in practice it is much slower —
   the bound is loose, which we record rather than hide).
2. n-sweep at fixed Δ: time/ln n stays within a constant band.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.two_state import TwoStateMIS
from repro.experiments.fitting import fit_power_law
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import random_regular_graph
from repro.sim.montecarlo import estimate_stabilization_time


@register("E3", "Theorem 12: O(Δ log n) for max degree Δ")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    if fast:
        fixed_n = 256
        degrees = [2, 4, 8, 16]
        ns = [128, 256, 512]
        fixed_d = 4
        trials = 15
    else:
        fixed_n = 1024
        degrees = [2, 4, 8, 16, 32, 64]
        ns = [128, 256, 512, 1024, 2048, 4096]
        fixed_d = 8
        trials = 50

    # --- Δ-sweep at fixed n ---
    d_rows = []
    d_means = []
    for idx, d in enumerate(degrees):
        def make(s, d=d):
            rng = np.random.default_rng(s)
            graph = random_regular_graph(fixed_n, d, rng=rng)
            return TwoStateMIS(graph, coins=rng)

        stats = estimate_stabilization_time(
            make,
            trials=trials,
            max_rounds=100 * d * int(math.log2(fixed_n)) + 2000,
            seed=seed + idx,
        )
        bound = 6 * math.e * d * math.log(fixed_n)
        d_rows.append([d, stats.mean, stats.max, stats.max / bound])
        d_means.append(stats.mean)
    d_table = format_table(
        ["Δ", "mean", "max", "max / (6eΔ ln n)"],
        d_rows,
        title=f"Δ-sweep on random Δ-regular graphs, n={fixed_n}",
    )
    d_fit = fit_power_law(np.array(degrees, dtype=float), np.array(d_means))

    # --- n-sweep at fixed Δ ---
    n_rows = []
    n_means = []
    for idx, n in enumerate(ns):
        def make(s, n=n):
            rng = np.random.default_rng(s)
            graph = random_regular_graph(n, fixed_d, rng=rng)
            return TwoStateMIS(graph, coins=rng)

        stats = estimate_stabilization_time(
            make,
            trials=trials,
            max_rounds=100 * fixed_d * int(math.log2(n)) + 2000,
            seed=seed + 100 + idx,
        )
        n_rows.append([n, stats.mean, stats.max, stats.mean / math.log(n)])
        n_means.append(stats.mean)
    n_table = format_table(
        ["n", "mean", "max", "mean/ln n"],
        n_rows,
        title=f"n-sweep on random {fixed_d}-regular graphs",
    )
    n_fit = fit_power_law(np.array(ns, dtype=float), np.array(n_means))
    within_bound = all(row[3] <= 1.0 for row in d_rows)

    return ExperimentResult(
        experiment_id="E3",
        title="2-state MIS under bounded degree (Theorem 12)",
        tables=[d_table, n_table],
        verdicts={
            "growth in Δ at most linear (power exponent <= 1.1)":
                d_fit.b <= 1.1,
            "all runs within the 6eΔ ln n bound": within_bound,
            "n-growth sublinear at fixed Δ (power exponent < 0.25)":
                n_fit.b < 0.25,
        },
        data={
            "degrees": degrees,
            "d_means": d_means,
            "d_fit": (d_fit.a, d_fit.b, d_fit.r_squared),
            "ns": ns,
            "n_means": n_means,
            "n_fit": (n_fit.a, n_fit.b, n_fit.r_squared),
        },
    )
