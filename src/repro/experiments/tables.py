"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width text table.

    Numbers are formatted compactly; all columns are right-aligned
    except the first.
    """

    def fmt(value: object) -> str:
        if isinstance(value, float):
            if value != value:  # NaN
                return "-"
            if abs(value) >= 1000 or (0 < abs(value) < 0.01):
                return f"{value:.3g}"
            return f"{value:.2f}"
        return str(value)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts)

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(render_row(row))
    return "\n".join(lines)
