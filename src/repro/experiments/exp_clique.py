"""E1 — Theorem 8: the 2-state MIS process on complete graphs.

Claims under test:

1. Expected stabilization time on K_n is O(log n).
2. W.h.p. it is O(log² n) — and indeed Θ(log² n): the tail satisfies
   P[T >= k·log n] = 2^-Θ(k), so the maximum over many trials grows like
   log² n while the mean stays ~log n.

The experiment sweeps n geometrically, reports mean/median/p90/max over
trials, fits growth shapes, and estimates the tail exponent at a fixed n
by regressing log₂ P[T >= k log n] on k.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.two_state import TwoStateMIS
from repro.experiments.fitting import fit_power_law, fit_polylog
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.generators import complete_graph
from repro.sim.montecarlo import estimate_stabilization_time


@register("E1", "Theorem 8: K_n stabilizes in O(log n) exp / Θ(log² n) w.h.p.")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    if fast:
        ns = [32, 64, 128, 256]
        trials = 20
        tail_n, tail_trials = 128, 200
    else:
        ns = [32, 64, 128, 256, 512, 1024, 2048]
        trials = 100
        tail_n, tail_trials = 256, 2000

    rows = []
    mean_times = []
    max_times = []
    for idx, n in enumerate(ns):
        graph = complete_graph(n)
        stats = estimate_stabilization_time(
            lambda s, g=graph: TwoStateMIS(g, coins=s),
            trials=trials,
            max_rounds=200 * int(math.log2(n)) ** 2 + 1000,
            seed=seed + idx,
        )
        rows.append(
            [n, stats.mean, stats.median, stats.quantile(0.9), stats.max,
             stats.mean / math.log(n), stats.max / math.log(n) ** 2]
        )
        mean_times.append(stats.mean)
        max_times.append(stats.max)

    table = format_table(
        ["n", "mean", "median", "p90", "max", "mean/ln n", "max/ln² n"],
        rows,
        title="2-state MIS on K_n (stabilization rounds)",
    )

    mean_fit = fit_power_law(np.array(ns), np.array(mean_times))
    mean_polylog = fit_polylog(np.array(ns), np.array(mean_times))

    # Tail estimate at fixed n: P[T >= k log n] vs k.
    graph = complete_graph(tail_n)
    log_n = math.log(tail_n)
    tail_stats = estimate_stabilization_time(
        lambda s: TwoStateMIS(graph, coins=s),
        trials=tail_trials,
        max_rounds=400 * int(log_n) ** 2 + 1000,
        seed=seed + 1000,
    )
    times = tail_stats.times
    ks = np.arange(1, 8)
    tail_probs = np.array(
        [np.mean(times >= k * log_n) for k in ks]
    )
    tail_rows = [
        [int(k), float(p)] for k, p in zip(ks, tail_probs) if p > 0
    ]
    tail_table = format_table(
        ["k", "P[T >= k ln n]"],
        tail_rows,
        title=f"Tail at n={tail_n} ({tail_trials} trials)",
    )
    # Geometric-decay check on the observed tail (where p in (0, 1)).
    informative = tail_probs[(tail_probs > 0) & (tail_probs < 1)]
    geometric = True
    if len(informative) >= 2:
        ratios = informative[1:] / informative[:-1]
        geometric = bool(np.all(ratios <= 0.9))

    # The ratio mean/ln n should be ~flat: its range across the sweep
    # should stay within a small multiplicative band.
    ratio = np.array(mean_times) / np.log(np.array(ns, dtype=float))
    flat_mean = bool(ratio.max() / max(ratio.min(), 1e-9) < 3.0)

    return ExperimentResult(
        experiment_id="E1",
        title="2-state MIS on complete graphs (Theorem 8)",
        tables=[table, tail_table],
        verdicts={
            "mean grows sublinearly in n (power exponent < 0.25)":
                mean_fit.b < 0.25,
            "mean/ln n stays within a 3x band across the sweep": flat_mean,
            "tail P[T >= k ln n] decays geometrically": geometric,
        },
        data={
            "ns": ns,
            "mean_times": mean_times,
            "max_times": max_times,
            "mean_power_fit": (mean_fit.a, mean_fit.b, mean_fit.r_squared),
            "mean_polylog_fit": (
                mean_polylog.a, mean_polylog.b, mean_polylog.r_squared
            ),
            "tail_ks": ks.tolist(),
            "tail_probs": tail_probs.tolist(),
        },
    )
