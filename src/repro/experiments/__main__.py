"""CLI for the experiment registry.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run E1 [--full] [--seed N] [--jobs J]
                                       [--checkpoint DIR] [--resume]
    python -m repro.experiments run all [--full] [--seed N] [--jobs J]
                                        [--checkpoint DIR] [--resume]

``--jobs`` installs a process-wide default ``n_jobs`` (see
:mod:`repro.parallel.config`) before anything runs: every Monte-Carlo
fleet an experiment launches is then sharded across that many workers,
with results bitwise-identical to ``--jobs 1``.  ``--jobs auto`` uses
every usable core.

``--checkpoint DIR`` journals every Monte-Carlo campaign into ``DIR``
as it runs (see :mod:`repro.sim.checkpoint`): each completed shard,
chunk, trial, and grid point is persisted atomically the moment it
finishes.  ``--resume`` replays existing journals, so an interrupted
``run all`` picks up mid-campaign and produces bitwise-identical
results; without ``--resume`` the journals are started fresh.  A
SIGTERM backstop (:func:`repro.parallel.install_signal_backstop`) is
installed either way, so preempted runs strand no worker processes or
``/dev/shm`` segments.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import list_experiments, run_experiment


def _jobs_spec(value: str) -> int | str:
    """Parse a ``--jobs`` argument: a positive int or ``auto``."""
    if value == "auto":
        return "auto"
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--jobs must be a positive int or 'auto', got {value!r}"
        ) from None
    if jobs < 1:
        raise argparse.ArgumentTypeError(
            f"--jobs must be a positive int or 'auto', got {value!r}"
        )
    return jobs


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=_jobs_spec, default=None, metavar="J",
        help="worker processes for Monte-Carlo fleets "
             "(int or 'auto'; default: serial)",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="journal every Monte-Carlo campaign into DIR as it runs",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume from existing journals in --checkpoint DIR "
             "(default: start the journals fresh)",
    )


def _run_one(eid: str, *, fast: bool, seed: int):
    """Run one experiment under its checkpoint scope."""
    from repro.sim.checkpoint import checkpoint_scope

    with checkpoint_scope(eid):
        return run_experiment(eid, fast=fast, seed=seed)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list registered experiments")
    run_parser = sub.add_parser("run", help="run experiment(s)")
    run_parser.add_argument("experiment", help="experiment id or 'all'")
    run_parser.add_argument(
        "--full", action="store_true",
        help="full-size run (default: fast)",
    )
    _add_execution_flags(run_parser)

    report_parser = sub.add_parser(
        "report", help="run all experiments and write a markdown report"
    )
    report_parser.add_argument("--out", default="report.md")
    report_parser.add_argument("--full", action="store_true")
    _add_execution_flags(report_parser)

    args = parser.parse_args(argv)

    if args.command == "list":
        for eid, title in list_experiments():
            print(f"{eid:>4}  {title}")
        return 0

    # Interrupt hygiene: a SIGTERM'd campaign (scheduler preemption,
    # timeout(1)) must strand no workers or /dev/shm segments.
    from repro.parallel.pool import install_signal_backstop

    install_signal_backstop()

    if getattr(args, "jobs", None) is not None:
        from repro.parallel.config import set_default_n_jobs

        set_default_n_jobs(args.jobs)

    if getattr(args, "resume", False) and not getattr(
        args, "checkpoint", None
    ):
        parser.error("--resume requires --checkpoint DIR")
    if getattr(args, "checkpoint", None) is not None:
        from repro.sim.checkpoint import set_default_checkpoint_dir

        set_default_checkpoint_dir(args.checkpoint, resume=args.resume)

    if args.command == "report":
        import pathlib

        sections = []
        any_failed = False
        for eid, title in list_experiments():
            start = time.time()
            result = _run_one(eid, fast=not args.full, seed=args.seed)
            elapsed = time.time() - start
            any_failed |= not result.passed
            status = "PASS" if result.passed else "FAIL"
            sections.append(
                f"## {eid}: {title} — {status} ({elapsed:.1f}s)\n\n"
                "```\n" + result.report() + "\n```\n"
            )
            print(f"{eid}: {status} ({elapsed:.1f}s)")
        mode = "full" if args.full else "fast"
        pathlib.Path(args.out).write_text(
            f"# Experiment report ({mode} mode, seed {args.seed})\n\n"
            + "\n".join(sections)
        )
        print(f"wrote {args.out}")
        return 1 if any_failed else 0

    ids = (
        [eid for eid, _ in list_experiments()]
        if args.experiment == "all"
        else [args.experiment]
    )
    any_failed = False
    for eid in ids:
        start = time.time()
        result = _run_one(eid, fast=not args.full, seed=args.seed)
        elapsed = time.time() - start
        print(result.report())
        print(f"\n({eid} completed in {elapsed:.1f}s, "
              f"{'PASS' if result.passed else 'FAIL'})\n")
        any_failed |= not result.passed
    return 1 if any_failed else 0


if __name__ == "__main__":
    sys.exit(main())
