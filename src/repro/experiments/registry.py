"""Experiment registry and CLI plumbing.

Experiments register themselves with :func:`register`; the CLI
(``python -m repro.experiments``) and the benchmark suite look them up
by id (E1, E2, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class ExperimentResult:
    """Standardized output of an experiment run.

    Attributes
    ----------
    experiment_id:
        The registry id (e.g. ``"E1"``).
    title:
        Human-readable claim under test.
    tables:
        Rendered text tables (one per reported table).
    verdicts:
        Named boolean checks (claim-shape assertions).  The experiment
        *passes* if all verdicts are True.
    data:
        Raw numbers for downstream use (benchmarks, EXPERIMENTS.md).
    """

    experiment_id: str
    title: str
    tables: list[str] = field(default_factory=list)
    verdicts: dict[str, bool] = field(default_factory=dict)
    data: dict[str, object] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True iff every verdict holds."""
        return all(self.verdicts.values())

    def report(self) -> str:
        """Full text report."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for table in self.tables:
            lines.append("")
            lines.append(table)
        if self.verdicts:
            lines.append("")
            lines.append("Verdicts:")
            for name, ok in self.verdicts.items():
                lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        return "\n".join(lines)


@dataclass
class _Entry:
    experiment_id: str
    title: str
    func: Callable[..., ExperimentResult]


_REGISTRY: dict[str, _Entry] = {}


def register(experiment_id: str, title: str):
    """Decorator registering ``func(fast, seed) -> ExperimentResult``."""

    def wrap(func: Callable[..., ExperimentResult]):
        if experiment_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {experiment_id}")
        _REGISTRY[experiment_id] = _Entry(experiment_id, title, func)
        return func

    return wrap


def list_experiments() -> list[tuple[str, str]]:
    """Sorted (id, title) pairs of all registered experiments."""

    def sort_key(eid: str):
        return (len(eid), eid)

    return [
        (eid, _REGISTRY[eid].title)
        for eid in sorted(_REGISTRY, key=sort_key)
    ]


def get_experiment(experiment_id: str) -> Callable[..., ExperimentResult]:
    """Look up an experiment's run function by id."""
    if experiment_id not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(_REGISTRY)}"
        )
    return _REGISTRY[experiment_id].func


def run_experiment(
    experiment_id: str, fast: bool = True, seed: int = 0
) -> ExperimentResult:
    """Run one experiment by id."""
    return get_experiment(experiment_id)(fast=fast, seed=seed)
