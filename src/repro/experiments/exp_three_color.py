"""E6 — Theorem 32: the 3-color MIS process is polylog on G(n,p) for all p.

The headline of the 3-color extension is coverage of the *middle*
density regime (e.g. p = n^(-1/4)) where the 2-state analysis has no
bound.  The experiment:

1. sweeps n for p-schedules spanning sparse / middle / dense regimes and
   checks polylog-shaped growth of the 3-color process everywhere;
2. at a fixed n, sweeps p across the full range [4/n, 1] — including
   p = 1 (the complete graph) — confirming stabilization with a polylog
   budget at every density;
3. records the 2-state process alongside, exhibiting the regimes where
   the controlled gray→white re-entry matters.

Note on constants: Definition 28 fixes a = 512, making the switch period
~a ln n — enormous at laptop n.  The experiment uses a smaller ``a``
(documented in the output) to keep the constant factors observable; the
*shape* claims are unaffected (Lemma 27's proof only needs ζ <= 1/2,
i.e. a >= 8).

Execution: every trial campaign here rides the batched fast path —
the factories build plain :class:`ThreeColorMIS` processes with the
randomized switch (grouped onto
:class:`~repro.core.batched.BatchedThreeColorMIS`) and plain
:class:`TwoStateMIS` processes
(:class:`~repro.core.batched.BatchedTwoStateMIS`) under the default
``batch="auto"`` of :func:`estimate_stabilization_time`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.three_color import ThreeColorMIS
from repro.core.two_state import TwoStateMIS
from repro.experiments.fitting import fit_power_law
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.montecarlo import estimate_stabilization_time

#: Experiment-scale switch parameter (Definition 28 uses 512; see module
#: docstring for why a smaller value is used at laptop n).
EXPERIMENT_A = 16.0


@register("E6", "Theorem 32: 3-color MIS polylog on G(n,p) for all p")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    if fast:
        ns = [64, 128, 256]
        trials = 8
        fixed_n = 256
        p_grid = [4 / fixed_n, fixed_n ** -0.5, fixed_n ** -0.25, 0.1, 0.5, 1.0]
    else:
        ns = [64, 128, 256, 512, 1024, 2048]
        trials = 30
        fixed_n = 1024
        p_grid = [4 / fixed_n, fixed_n ** -0.5, fixed_n ** -0.25,
                  0.05, 0.1, 0.3, 0.5, 0.8, 1.0]

    schedules = {
        "p = ln n / n (sparse)": lambda n: min(1.0, math.log(n) / n),
        "p = n^-0.25 (middle)": lambda n: n ** -0.25,
        "p = 0.3 (dense)": lambda n: 0.3,
    }

    tables = []
    verdicts = {}
    data = {}

    # --- n-sweeps per schedule ---
    for sched_idx, (name, p_of_n) in enumerate(schedules.items()):
        rows = []
        means = []
        for idx, n in enumerate(ns):
            p = p_of_n(n)

            def make(s, n=n, p=p):
                rng = np.random.default_rng(s)
                graph = gnp_random_graph(n, p, rng=rng)
                return ThreeColorMIS(graph, coins=rng, a=EXPERIMENT_A)

            stats = estimate_stabilization_time(
                make,
                trials=trials,
                max_rounds=3000 * int(math.log2(n)) + 10000,
                seed=seed + 100 * sched_idx + idx,
            )
            rows.append(
                [n, f"{p:.4f}", stats.mean, stats.max, stats.success_rate]
            )
            means.append(stats.mean)
        tables.append(
            format_table(
                ["n", "p", "mean", "max", "success"],
                rows,
                title=f"3-color MIS (a={EXPERIMENT_A:g}) on G(n, p), {name}",
            )
        )
        fit = fit_power_law(np.array(ns, dtype=float), np.array(means))
        # Shape check: a polylog process keeps mean/ln² n inside a small
        # multiplicative band across the sweep (a polynomial one cannot —
        # its band grows like n^c / ln² n).  This is the resolvable
        # statement at laptop n; the raw power-law fit is recorded as data.
        band = np.array(means) / np.log(np.array(ns, dtype=float)) ** 2
        verdicts[f"{name}: mean/ln² n within 3x band"] = bool(
            band.max() / max(band.min(), 1e-9) < 3.0
        )
        data[name] = {"ns": ns, "means": means,
                      "power_fit": (fit.a, fit.b, fit.r_squared)}

    # --- full p-sweep at fixed n, 3-color vs 2-state ---
    rows = []
    for idx, p in enumerate(p_grid):
        def make3(s, p=p):
            rng = np.random.default_rng(s)
            graph = gnp_random_graph(fixed_n, p, rng=rng)
            return ThreeColorMIS(graph, coins=rng, a=EXPERIMENT_A)

        def make2(s, p=p):
            rng = np.random.default_rng(s)
            graph = gnp_random_graph(fixed_n, p, rng=rng)
            return TwoStateMIS(graph, coins=rng)

        budget = 3000 * int(math.log2(fixed_n)) + 10000
        stats3 = estimate_stabilization_time(
            make3, trials=trials, max_rounds=budget, seed=seed + 500 + idx
        )
        stats2 = estimate_stabilization_time(
            make2, trials=trials, max_rounds=budget, seed=seed + 600 + idx
        )
        rows.append(
            [f"{p:.4f}", stats3.mean, stats3.success_rate,
             stats2.mean, stats2.success_rate]
        )
    tables.append(
        format_table(
            ["p", "3-color mean", "3-color success",
             "2-state mean", "2-state success"],
            rows,
            title=f"Full p-sweep at n={fixed_n}",
        )
    )
    all_p_success = all(row[2] == 1.0 for row in rows)
    verdicts["3-color stabilizes at every p (incl. p=1)"] = all_p_success
    data["p_sweep"] = rows

    return ExperimentResult(
        experiment_id="E6",
        title="3-color MIS on G(n,p), all p (Theorem 32)",
        tables=tables,
        verdicts=verdicts,
        data=data,
    )
