"""E9 — Lemmas 6 and 7: activity → stabilization probability bounds.

Lemma 6: if u is active with k >= 1 active neighbours at the end of
round t, then P[u ∈ I_{t + ⌈log(k+1)⌉}] >= (2ek)^-1.

Lemma 7: for active u_1..u_ℓ with k_i active neighbours each,
P[some u_i ∈ I_{t + log(max k_i + 1)}] >= (1/5) min(1, Σ 1/(2 k_i)).

Workload: engineered all-black stars.  A star with black hub and k
black leaves makes the hub active with exactly k active neighbours (and
each leaf active with 1 active neighbour).  Disjoint unions of ℓ such
stars realize the Lemma 7 setting.  Monte-Carlo probabilities are
compared against the bounds.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.two_state import TwoStateMIS
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.generators import disjoint_union, star_graph
from repro.sim.rng import spawn_seeds


def _star_trial(k: int, trial_seed: int) -> bool:
    """One Lemma 6 trial: hub of an all-black k-star; stable after r rounds?"""
    graph = star_graph(k + 1)
    init = np.ones(k + 1, dtype=bool)
    process = TwoStateMIS(graph, coins=trial_seed, init=init)
    r = math.ceil(math.log2(k + 1))
    process.step(r)
    return bool(process.stable_black_mask()[0])


def _multi_star_trial(ell: int, k: int, trial_seed: int) -> bool:
    """One Lemma 7 trial: ℓ disjoint all-black k-stars; any hub stable?"""
    star = star_graph(k + 1)
    graph = disjoint_union([star] * ell)
    init = np.ones(graph.n, dtype=bool)
    process = TwoStateMIS(graph, coins=trial_seed, init=init)
    r = math.ceil(math.log2(k + 1))
    process.step(r)
    stable = process.stable_black_mask()
    hubs = [i * (k + 1) for i in range(ell)]
    return bool(any(stable[h] for h in hubs))


@register("E9", "Lemmas 6/7: k-active → stable black probability bounds")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    if fast:
        ks = [1, 2, 4, 8]
        trials = 400
        ells = [1, 2, 4]
        multi_k = 4
    else:
        ks = [1, 2, 4, 8, 16, 32, 64]
        trials = 3000
        ells = [1, 2, 4, 8, 16]
        multi_k = 8

    # --- Lemma 6 ---
    rows6 = []
    lemma6_ok = True
    for k_idx, k in enumerate(ks):
        hits = sum(
            _star_trial(k, s) for s in spawn_seeds(seed + k_idx, trials)
        )
        p_hat = hits / trials
        bound = 1.0 / (2 * math.e * k)
        # Allow 4 binomial std deviations of slack below the bound.
        slack = 4 * math.sqrt(bound * (1 - bound) / trials)
        ok = p_hat >= bound - slack
        lemma6_ok &= ok
        rows6.append([k, p_hat, bound, "yes" if ok else "NO"])
    table6 = format_table(
        ["k", "P̂[stable in ⌈log(k+1)⌉]", "(2ek)⁻¹", ">= bound"],
        rows6,
        title=f"Lemma 6 on all-black stars ({trials} trials each)",
    )

    # --- Lemma 7 ---
    rows7 = []
    lemma7_ok = True
    for e_idx, ell in enumerate(ells):
        hits = sum(
            _multi_star_trial(ell, multi_k, s)
            for s in spawn_seeds(seed + 100 + e_idx, trials)
        )
        p_hat = hits / trials
        bound = 0.2 * min(1.0, ell / (2 * multi_k))
        slack = 4 * math.sqrt(max(bound * (1 - bound), 1e-6) / trials)
        ok = p_hat >= bound - slack
        lemma7_ok &= ok
        rows7.append([ell, p_hat, bound, "yes" if ok else "NO"])
    table7 = format_table(
        ["ℓ", "P̂[some hub stable]", "(1/5)min(1, ℓ/2k)", ">= bound"],
        rows7,
        title=f"Lemma 7 on ℓ disjoint all-black {multi_k}-stars",
    )

    return ExperimentResult(
        experiment_id="E9",
        title="Activity-to-stability bounds (Lemmas 6/7)",
        tables=[table6, table7],
        verdicts={
            "Lemma 6 bound holds at every k": lemma6_ok,
            "Lemma 7 bound holds at every ℓ": lemma7_ok,
        },
        data={"rows6": rows6, "rows7": rows7},
    )
