"""E10 — Positioning: the paper's processes vs baselines, and Remark 10.

On a common graph suite the experiment runs:

* the 2-state, 3-state, and 3-color MIS processes (self-stabilizing,
  constant state, 1 coin/round);
* Luby's algorithm (fast but *not* self-stabilizing: needs a clean
  start, Θ(log n) random bits and messages per phase);
* the sequential self-stabilizing algorithm (central daemon; measured
  in *moves* — its 2n-move bound means Θ(n) time, the cost of
  sequentiality).

Checks (who-wins shape, Appendix B positioning):

* Remark 10: the 3-state process is O(log n) on K_n — measurably faster
  than the 2-state process's Θ(log² n)-tail behaviour there.
* All randomized processes produce valid MISes on every graph.
* The sequential algorithm's moves grow linearly in n while the
  parallel processes' rounds grow polylogarithmically.

Execution: the 2-state, 3-state and 3-color campaigns all ride their
batched engines (the dispatch table of :mod:`repro.core.batched`)
under the default ``batch="auto"`` of
:func:`estimate_stabilization_time`; Luby and the sequential baseline
are round-/move-counted algorithms with their own loops.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.luby import luby_mis
from repro.baselines.sequential import SequentialSelfStabilizingMIS
from repro.core.three_color import ThreeColorMIS
from repro.core.three_state import ThreeStateMIS
from repro.core.two_state import TwoStateMIS
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.generators import complete_graph, grid_graph
from repro.graphs.random_graphs import gnp_random_graph, random_tree
from repro.sim.montecarlo import estimate_stabilization_time
from repro.sim.rng import spawn_seeds


@register("E10", "Process/baseline comparison; Remark 10 (3-state on K_n)")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    if fast:
        trials = 10
        clique_ns = [64, 128, 256]
        suite_n = 256
    else:
        trials = 40
        clique_ns = [64, 128, 256, 512, 1024]
        suite_n = 1024

    side = int(round(math.sqrt(suite_n)))
    suite = {
        f"K_{suite_n}": complete_graph(suite_n),
        f"G({suite_n}, 2ln n/n)": gnp_random_graph(
            suite_n, 2 * math.log(suite_n) / suite_n, rng=seed + 3
        ),
        f"tree({suite_n})": random_tree(suite_n, rng=seed + 4),
        f"grid({side}x{side})": grid_graph(side, side),
    }
    processes = {
        "2-state": lambda g: (lambda s: TwoStateMIS(g, coins=s)),
        "3-state": lambda g: (lambda s: ThreeStateMIS(g, coins=s)),
        "3-color(a=16)": lambda g: (
            lambda s: ThreeColorMIS(g, coins=s, a=16.0)
        ),
    }

    # --- main suite table ---
    rows = []
    data = {}
    for graph_idx, (graph_name, graph) in enumerate(suite.items()):
        row = [graph_name]
        budget = 5000 * int(math.log2(graph.n)) + 20000
        for proc_idx, (proc_name, wrap) in enumerate(processes.items()):
            # Deterministic per-cell seed offset (str hash() is salted
            # per interpreter run and would break reproducibility).
            stats = estimate_stabilization_time(
                wrap(graph), trials=trials, max_rounds=budget,
                seed=seed + 1000 * graph_idx + 10 * proc_idx,
            )
            row.append(stats.mean)
            data[(graph_name, proc_name)] = stats.mean
        # Luby (phases → 2 rounds each), averaged over trials.
        luby_rounds = []
        for s in spawn_seeds(seed + 77, trials):
            _, phases = luby_mis(graph, rng=s)
            luby_rounds.append(2 * phases)
        row.append(float(np.mean(luby_rounds)))
        # Sequential: moves from a random initial state, central daemon.
        seq_moves = []
        for s in spawn_seeds(seed + 78, trials):
            rng = np.random.default_rng(s)
            algo = SequentialSelfStabilizingMIS(
                graph, init=rng.random(graph.n) < 0.5
            )
            seq_moves.append(algo.run())
        row.append(float(np.mean(seq_moves)))
        rows.append(row)
    table = format_table(
        ["graph", "2-state", "3-state", "3-color(a=16)",
         "Luby (rounds)", "sequential (moves)"],
        rows,
        title=f"Mean cost to MIS ({trials} trials)",
    )

    # --- Remark 10: 3-state vs 2-state on K_n across n ---
    clique_rows = []
    ratios = []
    for idx, n in enumerate(clique_ns):
        graph = complete_graph(n)
        budget = 500 * int(math.log2(n)) ** 2 + 2000
        s2 = estimate_stabilization_time(
            lambda s, g=graph: TwoStateMIS(g, coins=s),
            trials=trials, max_rounds=budget, seed=seed + 200 + idx,
        )
        s3 = estimate_stabilization_time(
            lambda s, g=graph: ThreeStateMIS(g, coins=s),
            trials=trials, max_rounds=budget, seed=seed + 300 + idx,
        )
        ratio = s2.max / max(s3.max, 1e-9)
        ratios.append(ratio)
        clique_rows.append([n, s2.mean, s2.max, s3.mean, s3.max, ratio])
    clique_table = format_table(
        ["n", "2-state mean", "2-state max", "3-state mean",
         "3-state max", "max ratio 2s/3s"],
        clique_rows,
        title="Remark 10: 2-state vs 3-state on K_n",
    )

    two_state_means = [data[(name, "2-state")] for name in suite]
    return ExperimentResult(
        experiment_id="E10",
        title="Processes vs baselines (Appendix B positioning, Remark 10)",
        tables=[table, clique_table],
        verdicts={
            "3-state no slower than 2-state on K_n (worst case)":
                bool(np.mean(ratios) >= 1.0),
            "sequential moves exceed parallel rounds on the suite":
                all(row[5] > row[1] for row in rows),
        },
        data={"suite": rows, "clique": clique_rows},
    )
