"""E15 — the paper's conjecture: 2-state MIS is polylog on *all* graphs.

§1.1: "we conjecture that the stabilization time of the 2-state MIS
process is poly(log n) w.h.p. on any given n-vertex graph", with
Θ(log² n) the best possible general bound (complete graph / disjoint
cliques).  No proof exists; this experiment stress-tests the conjecture
on a zoo of structurally adversarial families that defeat the covered
regimes:

* complete bipartite K_{n/2,n/2} (huge common neighbourhoods — P5
  fails badly, so the good-graph analysis does not apply);
* barbell (two cliques + long path: clique dynamics gated by a path);
* ring of cliques (dense pockets + global cycle);
* hypercube (log-degree, highly symmetric);
* lollipop (clique + path);
* planted partition (dense communities, sparse cuts);
* middle-regime G(n, n^-1/4) (the open case for the 2-state process).

For each family we sweep n and check the polylog shape (flat
mean/ln² n band).  A refutation of the conjecture would show up here as
a family with a growing band — the experiment reports rather than
hides that possibility.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.two_state import TwoStateMIS
from repro.experiments.fitting import fit_power_law
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.generators import (
    barbell_graph,
    complete_bipartite_graph,
    hypercube_graph,
    lollipop_graph,
    ring_of_cliques,
)
from repro.graphs.random_graphs import (
    gnp_random_graph,
    planted_partition_graph,
)
from repro.sim.montecarlo import estimate_stabilization_time


def _families(fast: bool):
    sizes = [64, 128, 256] if fast else [64, 128, 256, 512, 1024, 2048]

    def bipartite(n):
        graph = complete_bipartite_graph(n // 2, n - n // 2)
        return lambda s: TwoStateMIS(graph, coins=s)

    def barbell(n):
        clique = max(3, n * 2 // 5)
        graph = barbell_graph(clique, n - 2 * clique)
        return lambda s: TwoStateMIS(graph, coins=s)

    def ring(n):
        k = max(3, int(round(math.sqrt(n))))
        graph = ring_of_cliques(k, max(1, n // k))
        return lambda s: TwoStateMIS(graph, coins=s)

    def hypercube(n):
        dim = max(2, int(round(math.log2(n))))
        graph = hypercube_graph(dim)
        return lambda s: TwoStateMIS(graph, coins=s)

    def lollipop(n):
        clique = max(3, n // 2)
        graph = lollipop_graph(clique, n - clique)
        return lambda s: TwoStateMIS(graph, coins=s)

    def planted(n):
        def make(s):
            rng = np.random.default_rng(s)
            k = max(2, n // 64)
            graph = planted_partition_graph(
                [n // k] * k, p_in=0.5, p_out=2.0 / n, rng=rng
            )
            return TwoStateMIS(graph, coins=rng)

        return make

    def middle_gnp(n):
        def make(s):
            rng = np.random.default_rng(s)
            graph = gnp_random_graph(n, n ** -0.25, rng=rng)
            return TwoStateMIS(graph, coins=rng)

        return make

    return sizes, {
        "complete bipartite": bipartite,
        "barbell": barbell,
        "ring of cliques": ring,
        "hypercube": hypercube,
        "lollipop": lollipop,
        "planted partition": planted,
        "G(n, n^-1/4)": middle_gnp,
    }


@register("E15", "Conjecture stress test: 2-state polylog on hard families")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    sizes, families = _families(fast)
    trials = 10 if fast else 40
    tables = []
    verdicts = {}
    data = {}
    for f_idx, (family, factory_of_n) in enumerate(families.items()):
        rows = []
        means = []
        actual_ns = []
        for idx, n in enumerate(sizes):
            factory = factory_of_n(n)
            budget = 2000 * int(math.log2(n)) ** 2 + 5000
            stats = estimate_stabilization_time(
                factory, trials=trials, max_rounds=budget,
                seed=seed + 100 * f_idx + idx,
            )
            probe = factory(0)
            actual_n = probe.n
            actual_ns.append(actual_n)
            band = stats.mean / math.log(actual_n) ** 2
            rows.append(
                [actual_n, stats.mean, stats.max, band, stats.success_rate]
            )
            means.append(stats.mean)
        tables.append(
            format_table(
                ["n", "mean", "max", "mean/ln² n", "success"],
                rows,
                title=f"2-state MIS on {family}",
            )
        )
        fit = fit_power_law(
            np.array(actual_ns, dtype=float), np.array(means)
        )
        bands = np.array(means) / np.log(np.array(actual_ns, float)) ** 2
        verdicts[f"{family}: every trial stabilized"] = all(
            row[4] == 1.0 for row in rows
        )
        verdicts[f"{family}: mean/ln² n within 4x band"] = bool(
            bands.max() / max(bands.min(), 1e-9) < 4.0
        )
        data[family] = {
            "ns": actual_ns, "means": means,
            "power_fit": (fit.a, fit.b, fit.r_squared),
        }
    return ExperimentResult(
        experiment_id="E15",
        title="Conjecture stress test (§1.1)",
        tables=tables,
        verdicts=verdicts,
        data=data,
    )
