"""Experiment harness: one registered experiment per theorem/lemma.

Run from the command line::

    python -m repro.experiments list
    python -m repro.experiments run E1
    python -m repro.experiments run all --fast

Each experiment module exposes ``run(fast: bool, seed: int) ->
ExperimentResult`` and registers itself with the registry.  The
``fast`` flag trades sample sizes for runtime (used by CI/tests);
EXPERIMENTS.md records full-run outputs.
"""

from repro.experiments.registry import (
    ExperimentResult,
    get_experiment,
    list_experiments,
    register,
    run_experiment,
)
from repro.experiments.fitting import (
    PolylogFit,
    fit_polylog,
    fit_power_law,
)
from repro.experiments.tables import format_table
from repro.experiments.asciiplot import ascii_plot

# Importing the experiment modules registers them.
from repro.experiments import (  # noqa: F401  (registration side effects)
    exp_clique,
    exp_arboricity,
    exp_maxdeg,
    exp_gnp,
    exp_disjoint_cliques,
    exp_three_color,
    exp_switch,
    exp_good_graphs,
    exp_lemma6,
    exp_comparison,
    exp_self_stabilization,
    exp_models,
    exp_progress,
    exp_lemma13,
    exp_conjecture,
    exp_schedulers,
    exp_three_state,
    exp_ablation,
    exp_scaling,
    exp_churn,
)

__all__ = [
    "ExperimentResult",
    "get_experiment",
    "list_experiments",
    "register",
    "run_experiment",
    "PolylogFit",
    "fit_polylog",
    "fit_power_law",
    "format_table",
    "ascii_plot",
]
