"""E4 — Theorems 2/19: the 2-state MIS process on G(n, p).

The theorem covers two regimes:

* sparse-to-moderate: p <= poly(log n) · n^(-1/2)
* dense: p >= 1 / poly(log n)

and leaves the middle range (e.g. p = n^(-1/4)) open for the 2-state
process (covered by the 3-color process, E6).

The experiment sweeps n for several p-schedules inside the covered
regimes, and additionally probes the uncovered middle regime — where the
2-state process is *conjectured* (and empirically observed) to remain
polylog — recording the comparison rather than asserting it.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.two_state import TwoStateMIS
from repro.experiments.fitting import fit_power_law
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.montecarlo import estimate_stabilization_time


def p_schedules() -> dict[str, callable]:
    """Named p(n) schedules covering the theorem's regimes.

    Returns a mapping from schedule name to p(n); names are tagged with
    the regime they belong to ("covered" or "open").
    """
    return {
        "p = 4/n (covered: sparse)": lambda n: min(1.0, 4.0 / n),
        "p = ln n / n (covered: sparse)": lambda n: min(1.0, math.log(n) / n),
        "p = 1/sqrt(n) (covered: boundary)": lambda n: n ** -0.5,
        "p = n^-0.25 (open: middle regime)": lambda n: n ** -0.25,
        "p = 0.3 (covered: dense)": lambda n: 0.3,
    }


@register("E4", "Theorem 19: polylog on G(n,p) for covered p regimes")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    if fast:
        ns = [64, 128, 256, 512]
        trials = 10
    else:
        ns = [64, 128, 256, 512, 1024, 2048, 4096]
        trials = 40

    tables = []
    verdicts = {}
    data = {}
    for sched_idx, (name, p_of_n) in enumerate(p_schedules().items()):
        rows = []
        means = []
        for idx, n in enumerate(ns):
            p = p_of_n(n)

            def make(s, n=n, p=p):
                rng = np.random.default_rng(s)
                graph = gnp_random_graph(n, p, rng=rng)
                return TwoStateMIS(graph, coins=rng)

            stats = estimate_stabilization_time(
                make,
                trials=trials,
                max_rounds=2000 * int(math.log2(n)) + 5000,
                seed=seed + 100 * sched_idx + idx,
            )
            rows.append(
                [n, f"{p:.4f}", stats.mean, stats.max,
                 stats.mean / math.log(n) ** 2, stats.success_rate]
            )
            means.append(stats.mean)
        tables.append(
            format_table(
                ["n", "p", "mean", "max", "mean/ln² n", "success"],
                rows,
                title=f"2-state MIS on G(n, p), {name}",
            )
        )
        fit = fit_power_law(np.array(ns, dtype=float), np.array(means))
        data[name] = {"ns": ns, "means": means,
                      "power_fit": (fit.a, fit.b, fit.r_squared)}
        covered = "covered" in name
        if covered:
            verdicts[f"{name}: power exponent < 0.35"] = fit.b < 0.35
        else:
            # Open regime: record, don't assert — but note the conjecture.
            data[name]["conjecture_consistent"] = bool(fit.b < 0.35)
    return ExperimentResult(
        experiment_id="E4",
        title="2-state MIS on G(n,p) (Theorems 2/19)",
        tables=tables,
        verdicts=verdicts,
        data=data,
    )
