"""E13 — Lemmas 21-23 (and 34-37): per-regime expected progress.

The heart of the G(n,p) analysis is a potential argument: from *any*
state, within O(log n) rounds the expected number of non-stable
vertices |V_t| shrinks by a factor (1 - ε/polylog).  The three lemmas
split by regime:

* Lemma 21: many active vertices (|A_t| >= 80 ln n / p) → constant-
  factor decay per log n rounds;
* Lemma 22: many unstable, few active (|V_t| >= 10 ln² n / p,
  |A_t| <= 80 ln n / p) → decay (1 - ε/ln n);
* Lemma 23: few unstable (|V_t| <= 10 ln² n / p, sparse regime) →
  decay (1 - ε/ln^3.5 n).

The experiment runs trajectories on G(n,p), classifies each round into
its regime, measures the realized |V_{t+log n}| / |V_t| ratios per
regime, and checks each regime's mean ratio is < 1 (progress happens in
*every* regime — the composition of which is exactly the proof of
Lemma 20).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.two_state import TwoStateMIS
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.rng import spawn_seeds


#: The paper's regime constants are 80·ln(n)/p (L21) and 10·ln²(n)/p
#: (L22).  At laptop n those exceed n — the L21/L22 regimes are *empty*,
#: making the lemmas vacuous at this scale.  To probe the mechanism
#: (decay whenever many-active / many-unstable / few-unstable), we
#: classify with scaled constants and report the scaling openly.
L21_SCALE = 2.0
L22_SCALE = 0.5


def _classify(unstable: int, active: int, n: int, p: float) -> str:
    """Scaled regime of Lemmas 21/22/23 for the given counts."""
    log_n = math.log(n)
    if active >= L21_SCALE * log_n / p:
        return "L21 (many active)"
    if unstable >= L22_SCALE * log_n ** 2 / p:
        return "L22 (many unstable, few active)"
    return "L23 (few unstable)"


@register("E13", "Lemmas 21-23: per-regime |V_t| decay on G(n,p)")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    if fast:
        n = 256
        trials = 10
    else:
        n = 1024
        trials = 40
    p = 6.0 * math.log(n) / n  # sparse-covered regime with all regimes hit
    window = max(1, int(math.log2(n)))

    ratios: dict[str, list[float]] = {}
    visits: dict[str, int] = {}
    for trial_seed in spawn_seeds(seed, trials):
        rng = np.random.default_rng(trial_seed)
        graph = gnp_random_graph(n, p, rng=rng)
        proc = TwoStateMIS(graph, coins=rng)
        # Record |V_t|, |A_t| along the trajectory.
        unstable_curve = []
        active_curve = []
        for _ in range(60 * window):
            unstable_curve.append(int(proc.unstable_mask().sum()))
            active_curve.append(int(proc.active_mask().sum()))
            if unstable_curve[-1] == 0:
                break
            proc.step()
        # Windowed ratios with regime classification at window start.
        for t in range(0, len(unstable_curve) - window):
            v_now = unstable_curve[t]
            if v_now == 0:
                break
            regime = _classify(v_now, active_curve[t], n, p)
            ratio = unstable_curve[t + window] / v_now
            ratios.setdefault(regime, []).append(ratio)
            visits[regime] = visits.get(regime, 0) + 1

    rows = []
    verdicts = {}
    for regime in sorted(ratios):
        values = np.array(ratios[regime])
        mean_ratio = float(values.mean())
        rows.append(
            [regime, visits[regime], mean_ratio,
             float(np.quantile(values, 0.9))]
        )
        verdicts[f"{regime}: mean window decay < 1"] = mean_ratio < 1.0
    table = format_table(
        ["regime", "windows observed", "mean |V_{t+w}|/|V_t|", "p90"],
        rows,
        title=(
            f"Per-regime decay of |V_t| over w={window} rounds, "
            f"G({n}, {p:.4f}), {trials} trials "
            f"(regime constants scaled: {L21_SCALE:g}·ln n/p, "
            f"{L22_SCALE:g}·ln² n/p — see module docs)"
        ),
    )
    verdicts["all three regimes observed"] = len(ratios) == 3

    return ExperimentResult(
        experiment_id="E13",
        title="Per-regime progress (Lemmas 21-23)",
        tables=[table],
        verdicts=verdicts,
        data={"rows": rows},
    )
