"""E14 — Lemma 13: the one-round activation inequality q >= p^α.

Lemma 13 is the base of the §4.1 machinery.  For a vertex u that is
white, non-active and non-stable at the end of round t, with
θ = |N(u) ∩ N+(A_t ∩ N(u))|:

* p := P[u ∈ A_{t+2} ∩ W_{t+2}]   (u active-white two rounds later)
* q := P[u ∈ A^k_{t+1}] with k = θ + ⌈log(1/p)⌉
* then q >= p^α with α = 1/log(4/3) ≈ 2.41.

The experiment Monte-Carlo-estimates p and q from engineered
configurations where u is white with black active neighbours, across
several local topologies (paths, brooms, overlapping stars, G(n,p)
snapshots), and checks the inequality with sampling slack.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.activity import k_active_set
from repro.core.two_state import TwoStateMIS
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.graph import Graph, GraphBuilder
from repro.sim.rng import spawn_seeds
from repro.theory.bounds import ALPHA


def _configs() -> dict[str, tuple[Graph, np.ndarray, int]]:
    """Engineered (graph, initial black mask, u) configurations.

    In every configuration u is white, has at least one black neighbour
    (→ not active), and that neighbour is active black (→ u not stable).
    """
    configs: dict[str, tuple[Graph, np.ndarray, int]] = {}

    # Path a-b-u: a, b black (both active), u white.
    g = Graph(3, [(0, 1), (1, 2)])
    init = np.array([True, True, False])
    configs["path3"] = (g, init, 2)

    # Broom: u attached to hub b; hub has 3 black leaf-partners.
    builder = GraphBuilder(2)
    builder.add_edge(0, 1)  # u=0, hub=1
    for _ in range(3):
        leaf = builder.add_vertex()
        builder.add_edge(1, leaf)
    g = builder.build()
    init = np.array([False, True, True, True, True])
    configs["broom"] = (g, init, 0)

    # Two overlapping black stars adjacent to u (higher θ).
    builder = GraphBuilder(3)  # u=0, hubs 1, 2
    builder.add_edge(0, 1).add_edge(0, 2).add_edge(1, 2)
    for hub in (1, 2):
        for _ in range(2):
            leaf = builder.add_vertex()
            builder.add_edge(hub, leaf)
    g = builder.build()
    init = np.zeros(g.n, dtype=bool)
    init[1] = init[2] = True
    configs["two-hubs"] = (g, init, 0)

    return configs


def _estimate(graph, init, u, trials, seeds) -> tuple[float, float, int]:
    """Monte-Carlo estimates of p, q and the k used.

    θ and d are deterministic functions of the initial configuration;
    p must be estimated first (k depends on it), so we run two passes
    over the same seeds — pass 1 measures p, pass 2 measures q with the
    k derived from p̂.
    """
    from repro.core.activity import active_set

    active0 = active_set(graph, init)
    assert not active0[u], "u must be non-active initially"
    theta_set = set()
    for v in graph.neighbors(u):
        if active0[v]:
            theta_set.add(v)
            theta_set.update(graph.neighbors(v))
    theta = len(set(graph.neighbors(u)) & theta_set)

    # Pass 1: estimate p = P[u ∈ A_{t+2} ∩ W_{t+2}].
    hits_p = 0
    for s in seeds:
        proc = TwoStateMIS(graph, coins=s, init=init)
        proc.step(2)
        if proc.active_mask()[u] and not proc.black_mask()[u]:
            hits_p += 1
    p_hat = hits_p / trials
    if p_hat == 0.0:
        return (0.0, 0.0, theta)
    k = theta + math.ceil(math.log2(1.0 / p_hat))

    # Pass 2: estimate q = P[u ∈ A^k_{t+1}].
    hits_q = 0
    for s in seeds:
        proc = TwoStateMIS(graph, coins=s, init=init)
        proc.step(1)
        if k_active_set(graph, proc.black_mask(), k)[u]:
            hits_q += 1
    return (p_hat, hits_q / trials, k)


@register("E14", "Lemma 13: activation inequality q >= p^α")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    trials = 2000 if fast else 20000
    rows = []
    verdicts = {}
    for idx, (name, (graph, init, u)) in enumerate(_configs().items()):
        seeds = spawn_seeds(seed + idx, trials)
        p_hat, q_hat, k = _estimate(graph, init, u, trials, seeds)
        bound = p_hat ** ALPHA
        # Binomial sampling slack (4 sigma on each estimate).
        slack = 4.0 * math.sqrt(max(bound * (1 - bound), 1e-6) / trials)
        ok = q_hat >= bound - slack
        rows.append([name, p_hat, q_hat, bound, k, "yes" if ok else "NO"])
        verdicts[f"{name}: q >= p^α"] = bool(ok)
    table = format_table(
        ["config", "p̂", "q̂", "p̂^α", "k", "holds"],
        rows,
        title=f"Lemma 13 on engineered configurations ({trials} trials, "
              f"α={ALPHA:.3f})",
    )
    return ExperimentResult(
        experiment_id="E14",
        title="One-round activation inequality (Lemma 13)",
        tables=[table],
        verdicts=verdicts,
        data={"rows": rows},
    )
