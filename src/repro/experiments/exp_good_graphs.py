"""E8 — Lemma 18: a G(n,p) sample is (n,p)-good w.h.p.

Draws G(n,p) samples across a (n, p) grid and runs the Definition 17
checkers (P1-P4 sampled, P5-P6 exact).  The empirical success rate
should be 1 at every grid point — Lemma 18's failure probability is
O(n^-2), far below the resolution of the trial counts here, so even a
single observed failure would be a red flag worth investigating.

Also reports the P5/P6 *margins* (how far below the bound the worst
pair sits), which is the informative part at laptop scale.
"""

from __future__ import annotations

import math

import numpy as np

from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.good import check_good_graph
from repro.graphs.properties import max_common_neighbors
from repro.graphs.random_graphs import gnp_random_graph
from repro.sim.rng import spawn_seeds


@register("E8", "Lemma 18: G(n,p) is (n,p)-good w.h.p.")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    if fast:
        grid = [(64, 0.1), (64, 0.5), (128, 0.05), (128, 0.3)]
        trials = 3
    else:
        grid = [
            (64, 0.1), (64, 0.5),
            (128, 0.05), (128, 0.3),
            (256, 0.02), (256, 0.1), (256, 0.5),
            (512, 0.01), (512, 0.1),
        ]
        trials = 10

    rows = []
    verdicts = {}
    for g_idx, (n, p) in enumerate(grid):
        good_count = 0
        worst_common = 0
        for trial_seed in spawn_seeds(seed + g_idx, trials):
            rng = np.random.default_rng(trial_seed)
            graph = gnp_random_graph(n, p, rng=rng)
            report = check_good_graph(graph, p, rng=rng, samples=20)
            if report.all_hold:
                good_count += 1
            worst_common = max(worst_common, max_common_neighbors(graph))
        p5_bound = max(6 * n * p * p, 4 * math.log(n))
        rows.append(
            [n, f"{p:g}", f"{good_count}/{trials}",
             worst_common, f"{p5_bound:.1f}"]
        )
        verdicts[f"n={n}, p={p:g}: all samples good"] = good_count == trials
    table = format_table(
        ["n", "p", "good samples", "worst common nbrs", "P5 bound"],
        rows,
        title="Good-graph checks on G(n,p) samples (Definition 17)",
    )
    return ExperimentResult(
        experiment_id="E8",
        title="G(n,p) goodness (Lemma 18)",
        tables=[table],
        verdicts=verdicts,
        data={"grid": grid, "rows": rows},
    )
