"""Terminal scatter/line plots (matplotlib is unavailable offline).

Good enough to eyeball the growth shapes the experiments report: log-x
scatter of stabilization time vs n, progress curves, and switch traces.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def ascii_plot(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    title: str | None = None,
    marker: str = "*",
) -> str:
    """Render an ASCII scatter plot of (xs, ys).

    Parameters
    ----------
    xs, ys:
        Data (equal length, non-empty).
    width, height:
        Plot area in characters.
    logx, logy:
        Use log10 scales (points with non-positive coordinates are
        dropped on log axes).
    title:
        Optional heading line.
    marker:
        Point glyph.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    points = [
        (float(x), float(y))
        for x, y in zip(xs, ys)
        if (not logx or x > 0) and (not logy or y > 0)
    ]
    if not points:
        raise ValueError("no plottable points")

    def tx(x: float) -> float:
        return math.log10(x) if logx else x

    def ty(y: float) -> float:
        return math.log10(y) if logy else y

    pxs = [tx(x) for x, _ in points]
    pys = [ty(y) for _, y in points]
    x_lo, x_hi = min(pxs), max(pxs)
    y_lo, y_hi = min(pys), max(pys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for px, py in zip(pxs, pys):
        col = int(round((px - x_lo) / x_span * (width - 1)))
        row = int(round((py - y_lo) / y_span * (height - 1)))
        grid[height - 1 - row][col] = marker

    y_hi_label = f"{10 ** y_hi:.3g}" if logy else f"{y_hi:.3g}"
    y_lo_label = f"{10 ** y_lo:.3g}" if logy else f"{y_lo:.3g}"
    x_lo_label = f"{10 ** x_lo:.3g}" if logx else f"{x_lo:.3g}"
    x_hi_label = f"{10 ** x_hi:.3g}" if logx else f"{x_hi:.3g}"
    label_w = max(len(y_hi_label), len(y_lo_label))

    lines = []
    if title:
        lines.append(title)
    for i, row_chars in enumerate(grid):
        if i == 0:
            label = y_hi_label.rjust(label_w)
        elif i == height - 1:
            label = y_lo_label.rjust(label_w)
        else:
            label = " " * label_w
        lines.append(f"{label} |{''.join(row_chars)}")
    lines.append(" " * label_w + " +" + "-" * width)
    footer = (
        " " * label_w + "  " + x_lo_label
        + " " * max(1, width - len(x_lo_label) - len(x_hi_label))
        + x_hi_label
    )
    lines.append(footer)
    return "\n".join(lines)
