"""E12 — Weak communication: the processes as beeping / stone-age protocols.

The paper's translation claims (§1):

* the 2-state process runs in the beeping model with sender collision
  detection — black nodes beep, white nodes listen, one feedback bit
  per round;
* the 3-state process runs in the synchronous stone age model —
  constant channels, no collision detection.

The experiment (a) proves operational equivalence: under shared coins,
the beeping-network execution of the 2-state protocol is
*trajectory-identical* to the abstract process; (b) runs both model
implementations to stabilization on a workload suite, verifying the
resulting MISes; and (c) reports the communication cost per round
(bits observed per node — exactly 1 for beeping, 2 for the two-channel
stone-age protocol).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.two_state import TwoStateMIS
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.generators import complete_graph, cycle_graph
from repro.graphs.random_graphs import gnp_random_graph, random_tree
from repro.models.beeping import BeepingTwoStateMIS
from repro.models.stone_age import StoneAgeThreeStateMIS
from repro.sim.runner import run_until_stable
from repro.sim.rng import spawn_seeds


@register("E12", "Beeping / stone-age realizations of the processes")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    if fast:
        n = 64
        trials = 5
        equiv_rounds = 60
    else:
        n = 256
        trials = 20
        equiv_rounds = 200

    suite = {
        "clique": complete_graph(n),
        "cycle": cycle_graph(n),
        "tree": random_tree(n, rng=seed + 2),
        "gnp": gnp_random_graph(n, 2 * math.log(n) / n, rng=seed + 3),
    }
    budget = 5000 * int(math.log2(n)) + 20000

    # (a) Trajectory equivalence beeping vs abstract, shared coins.
    equiv_ok = True
    for graph in suite.values():
        shared_seed = seed + 11
        abstract = TwoStateMIS(graph, coins=shared_seed, backend="adjlist")
        beeping = BeepingTwoStateMIS(graph, coins=shared_seed)
        for _ in range(equiv_rounds):
            abstract.step()
            beeping.step()
            if not np.array_equal(abstract.black_mask(), beeping.black_mask()):
                equiv_ok = False
                break

    # (b) Stabilization of both model implementations on the suite,
    # with measured channel traffic (beeps per node per round).
    rows = []
    all_stabilized = True
    for graph_name, graph in suite.items():
        beep_times = []
        stone_times = []
        beep_traffic = []
        stone_traffic = []
        for s in spawn_seeds(seed + 21, trials):
            beeping = BeepingTwoStateMIS(graph, coins=s)
            result_b = run_until_stable(beeping, max_rounds=budget)
            stone = StoneAgeThreeStateMIS(graph, coins=s + 1)
            result_s = run_until_stable(stone, max_rounds=budget)
            all_stabilized &= result_b.stabilized and result_s.stabilized
            if result_b.stabilized:
                beep_times.append(result_b.stabilization_round)
                if beeping.network.deliveries:
                    beep_traffic.append(
                        beeping.network.beeps_per_node_round()
                    )
            if result_s.stabilized:
                stone_times.append(result_s.stabilization_round)
                if stone.network.deliveries:
                    stone_traffic.append(
                        stone.network.total_beeps
                        / (stone.network.deliveries * graph.n)
                    )
        rows.append(
            [graph_name,
             float(np.mean(beep_times)) if beep_times else float("nan"),
             float(np.mean(beep_traffic)) if beep_traffic else float("nan"),
             float(np.mean(stone_times)) if stone_times else float("nan"),
             float(np.mean(stone_traffic)) if stone_traffic
             else float("nan")]
        )
    table = format_table(
        ["graph", "beeping mean rounds", "beeps/node/round",
         "stone-age mean rounds", "beeps/node/round (SA)"],
        rows,
        title=f"Model executions on n={n} ({trials} trials); traffic is "
              f"measured, and is <= 1 beep/node/round by construction",
    )
    cost_table = format_table(
        ["protocol", "states/vertex", "channels", "feedback bits/round",
         "random bits/round"],
        [
            ["2-state beeping (full duplex)", 2, 1, 1, 1],
            ["3-state stone age", 3, 2, 2, 1],
        ],
        title="Communication budget per node",
    )

    return ExperimentResult(
        experiment_id="E12",
        title="Weak-communication realizations (§1 translations)",
        tables=[table, cost_table],
        verdicts={
            "beeping execution ≡ abstract 2-state (shared coins)": equiv_ok,
            "all model runs stabilize to valid MISes": all_stabilized,
        },
        data={"rows": rows},
    )
