"""E17 — the 3-state process across graph families (§1.1, footnote 2).

The paper does not analyze the 3-state process but states two beliefs:

* "we expect that it behaves similarly (or better than) the 2-state MIS
  process" (footnote 2);
* "For the 3-state process, we have no example of a graph where the
  stabilization time is larger than O(log n)" (§1.1).

This experiment sweeps the same families as E2/E5/E15 plus cliques and
G(n,p), measuring the 3-state process and checking (a) mean/ln n stays
in a constant band everywhere — the O(log n) belief — and (b) it is
never meaningfully slower than the 2-state process (Mann-Whitney,
one-sided, at the largest size per family).

Execution: both process families ride the batched fast path
(:class:`~repro.core.batched.BatchedThreeStateMIS` /
:class:`~repro.core.batched.BatchedTwoStateMIS`) under the default
``batch="auto"`` of :func:`estimate_stabilization_time` — including
the per-trial resampled tree and G(n,p) factories, which take the
block-diagonal path.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.three_state import ThreeStateMIS
from repro.core.two_state import TwoStateMIS
from repro.experiments.registry import ExperimentResult, register
from repro.experiments.tables import format_table
from repro.graphs.generators import complete_graph, disjoint_cliques
from repro.graphs.random_graphs import gnp_random_graph, random_tree
from repro.sim.montecarlo import estimate_stabilization_time
from repro.sim.stats import mann_whitney_faster


def _families(fast: bool):
    sizes = [64, 144, 256] if fast else [64, 144, 256, 576, 1024, 2025]

    def clique(n):
        graph = complete_graph(n)
        return lambda s: (graph, s)

    def tree(n):
        def make(s):
            rng = np.random.default_rng(s)
            return (random_tree(n, rng=rng), rng)

        return make

    def gnp(n):
        def make(s):
            rng = np.random.default_rng(s)
            return (gnp_random_graph(n, 3 * math.log(n) / n, rng=rng), rng)

        return make

    def cliques(n):
        side = int(round(math.sqrt(n)))
        graph = disjoint_cliques(side, side)
        return lambda s: (graph, s)

    return sizes, {
        "clique K_n": clique,
        "random tree": tree,
        "G(n, 3 ln n/n)": gnp,
        "√n · K_√n": cliques,
    }


@register("E17", "3-state process: O(log n) everywhere? (§1.1 belief)")
def run(fast: bool = True, seed: int = 0) -> ExperimentResult:
    sizes, families = _families(fast)
    trials = 12 if fast else 50
    tables = []
    verdicts = {}
    data = {}
    for f_idx, (family, factory_of_n) in enumerate(families.items()):
        rows = []
        means3 = []
        largest_times = {}
        for idx, n in enumerate(sizes):
            make_inputs = factory_of_n(n)
            budget = 500 * int(math.log2(n)) ** 2 + 2000

            def factory3(s, mk=make_inputs):
                graph, coins = mk(s)
                return ThreeStateMIS(graph, coins=coins)

            def factory2(s, mk=make_inputs):
                graph, coins = mk(s)
                return TwoStateMIS(graph, coins=coins)

            stats3 = estimate_stabilization_time(
                factory3, trials=trials, max_rounds=budget,
                seed=seed + 100 * f_idx + idx,
            )
            stats2 = estimate_stabilization_time(
                factory2, trials=trials, max_rounds=budget,
                seed=seed + 500 + 100 * f_idx + idx,
            )
            rows.append(
                [n, stats3.mean, stats3.mean / math.log(n),
                 stats2.mean, stats3.max]
            )
            means3.append(stats3.mean)
            if idx == len(sizes) - 1:
                largest_times = {"3": stats3.times, "2": stats2.times}
        tables.append(
            format_table(
                ["n", "3-state mean", "3s mean/ln n", "2-state mean",
                 "3-state max"],
                rows,
                title=f"3-state vs 2-state on {family}",
            )
        )
        band = np.array(means3) / np.log(np.array(sizes, dtype=float))
        verdicts[f"{family}: 3-state mean/ln n within 3x band"] = bool(
            band.max() / max(band.min(), 1e-9) < 3.0
        )
        # "similar or better": 2-state must NOT be significantly faster.
        comparison = mann_whitney_faster(
            largest_times["2"], largest_times["3"], alpha=0.001
        )
        verdicts[f"{family}: 2-state not significantly faster"] = (
            not comparison["faster"]
        )
        data[family] = {
            "sizes": sizes, "means3": means3,
            "mw_p_value": comparison["p_value"],
        }
    return ExperimentResult(
        experiment_id="E17",
        title="3-state process study (§1.1 / footnote 2)",
        tables=tables,
        verdicts=verdicts,
        data=data,
    )
