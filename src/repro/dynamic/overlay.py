"""Mutable graph overlay: a delta log over the frozen CSR substrate.

The CSR :class:`~repro.graphs.graph.Graph` is immutable by design —
every engine, cache, and shared-memory path depends on that.  Topology
churn therefore lives *beside* the base graph, not inside it:
:class:`DeltaOverlay` records edge insertions/deletions (and vertex
joins/leaves, which are bulk edge operations plus an ``alive`` mask) as
two undirected-key sets over a frozen base CSR, and keeps directed
mirrors of both synced lazily for vectorized queries.  When the delta
fraction crosses :attr:`~DeltaOverlay.compact_fraction`, the log is
folded into a fresh base CSR in a few numpy set operations
(:meth:`repro.graphs.graph.Graph.with_edge_deltas`).

:class:`DeltaNeighborOps` is the bridge to the engines: a
:class:`~repro.core.neighbor_ops.NeighborOps` backend that answers
``count`` / ``gather`` / ``apply_count_delta`` / ``degrees`` /
``volume`` against the *current* (base ⊕ delta) adjacency — base CSR
answer, plus a mini-CSR over the added edges, minus a sorted-key filter
over the removed edges.  The 2-/3-state processes and the frontier
engine run on it unmodified; compaction calls :meth:`DeltaNeighborOps.rebase`
and is invisible to them (the aggregates are exact integer counts
either way, and the coin stream is untouched — trajectories are
bitwise-identical whether or when compaction happens).

Dead vertices stay in the vertex set: removing a vertex removes its
incident edges and clears its ``alive`` bit, so the slot parks as an
isolated singleton (which self-stabilizes to a stable black in O(1)
rounds) and keeps drawing its per-round coin — the fixed-width
``bits(n)`` discipline of §2.1 survives churn.  Queries filter on
``alive``.
"""

from __future__ import annotations

import numpy as np

from repro.core.neighbor_ops import (
    NeighborOps,
    gather_neighbors,
    make_neighbor_ops,
)
from repro.graphs.graph import Graph

_EMPTY = np.zeros(0, dtype=np.int64)

#: Delta fraction ``(|added| + |removed|) / max(base m, 1)`` past which
#: :meth:`DeltaOverlay.should_compact` recommends folding the log into
#: a fresh base CSR.  Around a quarter, the per-query delta corrections
#: start rivaling the one-off rebuild cost (same flat-optimum shape as
#: the frontier crossover).
DEFAULT_COMPACT_FRACTION = 0.25


class DeltaOverlay:
    """An edge/vertex delta log over an immutable base CSR graph.

    Invariants (maintained by the mutators):

    * ``_added`` and base edges are disjoint; ``_removed`` ⊆ base edges.
      Re-adding a removed base edge just clears its removal (and vice
      versa), so the delta never grows from flapping links.
    * ``_live_degrees`` is always the current degree sequence; the
      array object is stable across mutations *and* compaction, so
      engines may hold a reference.
    * Dead vertices (``alive[u] == False``) are isolated.
    """

    def __init__(
        self,
        base: Graph,
        compact_fraction: float = DEFAULT_COMPACT_FRACTION,
    ) -> None:
        self.base = base
        self.n = int(base.n)
        self.compact_fraction = float(compact_fraction)
        #: Vertices currently part of the overlay (dead slots park as
        #: isolated singletons; see the module docstring).
        self.alive = np.ones(self.n, dtype=bool)
        self._added: set[int] = set()
        self._removed: set[int] = set()
        self._m = int(base.m)
        self._live_degrees = base.degrees().astype(np.int64, copy=True)
        #: Number of compactions performed (instrumentation).
        self.compactions = 0
        # Lazily-synced directed mirrors of the delta sets (see _sync).
        self._dirty = False
        self._add_indptr = np.zeros(self.n + 1, dtype=np.int64)
        self._add_indices = _EMPTY
        self._add_src = _EMPTY
        self._rem_src = _EMPTY
        self._rem_dst = _EMPTY
        self._rem_dirkeys = _EMPTY

    # -- key helpers ----------------------------------------------------
    def _key(self, u: int, v: int) -> int:
        if u > v:
            u, v = v, u
        return u * self.n + v

    def _check_vertex(self, u: int) -> int:
        u = int(u)
        if not (0 <= u < self.n):
            raise IndexError(f"vertex {u} out of range for n={self.n}")
        return u

    # -- size / compaction bookkeeping ----------------------------------
    @property
    def m(self) -> int:
        """Current undirected edge count."""
        return self._m

    def delta_size(self) -> int:
        """Number of logged edge insertions plus deletions."""
        return len(self._added) + len(self._removed)

    def delta_fraction(self) -> float:
        """Delta size as a fraction of the base edge count."""
        return self.delta_size() / max(self.base.m, 1)

    def should_compact(self) -> bool:
        """Whether the delta log has outgrown the base (fold it in)."""
        return self.delta_fraction() > self.compact_fraction

    # -- queries ---------------------------------------------------------
    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is currently an edge."""
        if u == v or not (0 <= u < self.n and 0 <= v < self.n):
            return False
        key = self._key(int(u), int(v))
        if key in self._added:
            return True
        if key in self._removed:
            return False
        return self.base.has_edge(u, v)

    def neighbors_of(self, u: int) -> np.ndarray:
        """Sorted int64 array of ``u``'s current neighbours."""
        u = self._check_vertex(u)
        self._sync()
        row = self.base._row(u).astype(np.int64, copy=False)
        if self._rem_dirkeys.size and row.size:
            row = row[~self._hit(u * np.int64(self.n) + row)]
        lo, hi = self._add_indptr[u], self._add_indptr[u + 1]
        extra = self._add_indices[lo:hi]
        if extra.size:
            return np.union1d(row, extra)
        return row.copy()

    def degrees(self) -> np.ndarray:
        """Live degree sequence (int64; callers must not mutate)."""
        return self._live_degrees

    def volume(self) -> int:
        """Current directed edge volume ``2m``."""
        return 2 * self._m

    def gather(self, vertices: np.ndarray) -> np.ndarray:
        """Concatenated *current* neighbour lists (with multiplicity)."""
        self._sync()
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return _EMPTY
        src, dst = self.base._gather_rows(vertices)
        if self._rem_dirkeys.size and dst.size:
            dst = dst[~self._hit(src * np.int64(self.n) + dst)]
        extra = gather_neighbors(
            self._add_indptr, self._add_indices, vertices
        )
        if extra.size == 0:
            return dst
        if dst.size == 0:
            return extra
        return np.concatenate((dst, extra))

    # -- mutators --------------------------------------------------------
    def add_edge(self, u: int, v: int) -> bool:
        """Insert edge ``{u, v}``; returns whether the topology changed."""
        u, v = self._check_vertex(u), self._check_vertex(v)
        if u == v:
            raise ValueError(f"self-loop ({u}, {u}) is not allowed")
        key = self._key(u, v)
        if key in self._removed:
            self._removed.discard(key)
        elif key in self._added or self.base.has_edge(u, v):
            return False
        else:
            self._added.add(key)
        self._m += 1
        self._live_degrees[u] += 1
        self._live_degrees[v] += 1
        self._dirty = True
        return True

    def remove_edge(self, u: int, v: int) -> bool:
        """Delete edge ``{u, v}``; returns whether the topology changed."""
        u, v = self._check_vertex(u), self._check_vertex(v)
        if u == v:
            return False
        key = self._key(u, v)
        if key in self._added:
            self._added.discard(key)
        elif key not in self._removed and self.base.has_edge(u, v):
            self._removed.add(key)
        else:
            return False
        self._m -= 1
        self._live_degrees[u] -= 1
        self._live_degrees[v] -= 1
        self._dirty = True
        return True

    def remove_vertex(self, u: int) -> tuple[np.ndarray, np.ndarray]:
        """Detach ``u`` (drop all incident edges) and mark its slot dead.

        Returns the removed edges' endpoint arrays ``(rem_us, rem_vs)``.
        """
        u = self._check_vertex(u)
        nbrs = self.neighbors_of(u)
        for w in nbrs.tolist():
            self.remove_edge(u, int(w))
        self.alive[u] = False
        return np.full(nbrs.size, u, dtype=np.int64), nbrs

    def add_vertex(self, u: int, neighbors: "tuple[int, ...] | list[int]" = ()) -> tuple[np.ndarray, np.ndarray]:
        """Revive slot ``u`` and attach it to ``neighbors``.

        Returns the inserted edges' endpoint arrays ``(add_us, add_vs)``
        (self-loops, duplicates, and already-present edges are skipped).
        """
        u = self._check_vertex(u)
        self.alive[u] = True
        attached = [
            int(w)
            for w in neighbors
            if int(w) != u and self.add_edge(u, int(w))
        ]
        vs = np.asarray(attached, dtype=np.int64)
        return np.full(vs.size, u, dtype=np.int64), vs

    def apply_event(
        self, event: object
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Apply one mutation event (duck-typed
        :class:`~repro.dynamic.mutations.MutationEvent`).

        Returns the *effective* edge delta
        ``(add_us, add_vs, rem_us, rem_vs)`` — the edges that actually
        changed, which is what
        :meth:`~repro.core.frontier.FrontierAggregates.apply_topology_delta`
        consumes.  No-op events (inserting a present edge, deleting an
        absent one) return four empty arrays.
        """
        kind = event.kind  # type: ignore[attr-defined]
        if kind == "add-edge":
            u, v = event.u, event.v  # type: ignore[attr-defined]
            if self.add_edge(u, v):
                return (
                    np.asarray([u], dtype=np.int64),
                    np.asarray([v], dtype=np.int64),
                    _EMPTY,
                    _EMPTY,
                )
            return _EMPTY, _EMPTY, _EMPTY, _EMPTY
        if kind == "del-edge":
            u, v = event.u, event.v  # type: ignore[attr-defined]
            if self.remove_edge(u, v):
                return (
                    _EMPTY,
                    _EMPTY,
                    np.asarray([u], dtype=np.int64),
                    np.asarray([v], dtype=np.int64),
                )
            return _EMPTY, _EMPTY, _EMPTY, _EMPTY
        if kind == "add-vertex":
            au, av = self.add_vertex(
                event.u, event.neighbors  # type: ignore[attr-defined]
            )
            return au, av, _EMPTY, _EMPTY
        if kind == "del-vertex":
            ru, rv = self.remove_vertex(event.u)  # type: ignore[attr-defined]
            return _EMPTY, _EMPTY, ru, rv
        raise ValueError(f"unknown mutation kind {kind!r}")

    # -- compaction ------------------------------------------------------
    def _delta_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Undirected endpoint arrays ``(add_us, add_vs, rem_us, rem_vs)``."""
        n64 = np.int64(self.n)

        def _pairs(keys: set[int]) -> tuple[np.ndarray, np.ndarray]:
            if not keys:
                return _EMPTY, _EMPTY
            arr = np.fromiter(keys, dtype=np.int64, count=len(keys))
            arr.sort()
            lo, hi = np.divmod(arr, n64)
            return lo, hi

        add_us, add_vs = _pairs(self._added)
        rem_us, rem_vs = _pairs(self._removed)
        return add_us, add_vs, rem_us, rem_vs

    def snapshot(self) -> Graph:
        """The current topology as a fresh immutable :class:`Graph`."""
        return self.base.with_edge_deltas(*self._delta_arrays())

    def compact(self) -> Graph:
        """Fold the delta log into a fresh base CSR (in place).

        Purely representational: the current topology, degrees, and
        every engine-visible aggregate are unchanged, so trajectories
        are bitwise-identical whether or when this runs.  Callers
        holding a :class:`DeltaNeighborOps` must
        :meth:`~DeltaNeighborOps.rebase` afterwards.
        """
        graph = self.snapshot()
        self.base = graph
        self._added.clear()
        self._removed.clear()
        self._m = int(graph.m)
        # Same array object (engines hold references), fresh values —
        # the incremental bookkeeping already equals the rebuilt
        # degrees; re-deriving keeps the two provably in sync.
        np.copyto(self._live_degrees, graph.degrees())
        self._dirty = True
        self.compactions += 1
        return graph

    # -- directed mirror sync -------------------------------------------
    def _sync(self) -> None:
        """Rebuild the directed add-CSR / removed-key mirrors if dirty."""
        if not self._dirty:
            return
        n64 = np.int64(self.n)

        def _directed(
            keys: set[int],
        ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
            if not keys:
                return _EMPTY, _EMPTY, _EMPTY
            arr = np.fromiter(keys, dtype=np.int64, count=len(keys))
            lo, hi = np.divmod(arr, n64)
            dirkeys = np.concatenate((lo * n64 + hi, hi * n64 + lo))
            dirkeys.sort()
            src, dst = np.divmod(dirkeys, n64)
            return src, dst, dirkeys

        add_src, add_dst, _ = _directed(self._added)
        self._add_src = add_src
        self._add_indices = add_dst
        counts = np.bincount(add_src, minlength=self.n)
        indptr = np.zeros(self.n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self._add_indptr = indptr
        self._rem_src, self._rem_dst, self._rem_dirkeys = _directed(
            self._removed
        )
        self._dirty = False

    def _hit(self, dirkeys: np.ndarray) -> np.ndarray:
        """Membership of directed keys in the (sorted) removed mirror."""
        rem = self._rem_dirkeys
        pos = np.searchsorted(rem, dirkeys)
        pos[pos == rem.size] = rem.size - 1
        return rem[pos] == dirkeys

    def __repr__(self) -> str:
        return (
            f"DeltaOverlay(n={self.n}, m={self._m}, "
            f"delta={self.delta_size()}, "
            f"alive={int(np.count_nonzero(self.alive))}, "
            f"compactions={self.compactions})"
        )


class DeltaNeighborOps(NeighborOps):
    """Churn-aware :class:`NeighborOps` over a :class:`DeltaOverlay`.

    Every aggregate is the base backend's answer corrected by the delta
    mirrors: ``count`` adds a histogram over the added directed edges
    whose destination is in the mask and subtracts one over the removed
    directed edges; ``gather`` filters the base CSR rows against the
    removed keys and appends the add-mini-CSR rows.  Results are exact
    integer counts, so the engines (and their bitwise-trajectory
    contract) are oblivious to the representation.
    """

    def __init__(self, overlay: DeltaOverlay, backend: str = "auto") -> None:
        super().__init__(overlay.base)
        self.overlay = overlay
        self.backend = backend
        self._base_ops: NeighborOps = make_neighbor_ops(
            overlay.base, backend
        )

    def rebase(self) -> None:
        """Re-anchor on the overlay's new base after a compaction."""
        self.graph = self.overlay.base
        self._base_ops = make_neighbor_ops(self.overlay.base, self.backend)

    # -- dynamic topology hooks -----------------------------------------
    def degrees(self) -> np.ndarray:
        return self.overlay.degrees()

    def volume(self) -> int:
        return self.overlay.volume()

    def gather(self, vertices: np.ndarray) -> np.ndarray:
        return self.overlay.gather(vertices)

    # -- aggregates ------------------------------------------------------
    def count(self, mask: np.ndarray) -> np.ndarray:
        overlay = self.overlay
        overlay._sync()
        mask = np.asarray(mask)
        if mask.dtype != bool:
            mask = mask != 0
        out = self._base_ops.count(mask).astype(np.int64, copy=False)
        if overlay._add_src.size:
            sel = mask[overlay._add_indices]
            if sel.any():
                out += np.bincount(
                    overlay._add_src[sel], minlength=self.n
                )
        if overlay._rem_src.size:
            sel = mask[overlay._rem_dst]
            if sel.any():
                out -= np.bincount(
                    overlay._rem_src[sel], minlength=self.n
                )
        return out

    def apply_count_delta(
        self,
        counts: np.ndarray,
        up: np.ndarray | None,
        down: np.ndarray | None,
    ) -> np.ndarray:
        n = self.n
        parts: list[np.ndarray] = []
        for verts, sign in ((up, 1), (down, -1)):
            if verts is None or len(verts) == 0:
                continue
            nbrs = self.gather(np.asarray(verts, dtype=np.int64))
            if nbrs.size == 0:
                continue
            # Same add.at/bincount crossover as the static backends.
            if nbrs.size * 64 < n:
                if sign > 0:
                    np.add.at(counts, nbrs, 1)
                else:
                    np.subtract.at(counts, nbrs, 1)
            else:
                delta = np.bincount(nbrs, minlength=n)
                if sign > 0:
                    np.add(counts, delta, out=counts, casting="unsafe")
                else:
                    np.subtract(counts, delta, out=counts, casting="unsafe")
            parts.append(nbrs)
        if not parts:
            return _EMPTY
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)
