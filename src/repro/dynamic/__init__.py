"""Dynamic graphs: topology churn over the frozen CSR substrate.

The paper's self-stabilization guarantee — recovery from *any*
configuration in O(log n) rounds w.h.p. — is exactly the property a
long-running overlay network needs when its topology churns: nodes
join and leave, links flap, and the MIS must re-stabilize without a
restart.  This package turns the reproduction into that service:

* :mod:`repro.dynamic.overlay`  — :class:`~repro.dynamic.overlay.DeltaOverlay`,
  a mutable edge/vertex delta log over an immutable base
  :class:`~repro.graphs.graph.Graph`, compacted into a fresh CSR when
  the delta fraction crosses a threshold, plus
  :class:`~repro.dynamic.overlay.DeltaNeighborOps`, the
  churn-aware :class:`~repro.core.neighbor_ops.NeighborOps` backend
  the engines run on unmodified.
* :mod:`repro.dynamic.mutations` — deterministic, seekable mutation
  streams (uniform / flapping churn, targeted hub deletion, localized
  bursts) whose event at any offset is a pure function of
  ``(seed, offset, topology)``.
* :mod:`repro.dynamic.service`  — :class:`~repro.dynamic.service.MISService`,
  the daemon: consumes a stream, repairs the frontier aggregates
  incrementally (:meth:`repro.core.frontier.FrontierAggregates.apply_topology_delta`),
  interleaves recovery rounds, serves MIS-membership / is-stable
  queries, and journals its state through :mod:`repro.sim.checkpoint`
  so a killed service resumes bitwise-identically.

``python -m repro.dynamic --doctor`` self-checks the whole stack;
experiment E20 and ``benchmarks/bench_churn.py`` measure it.
"""

from repro.dynamic.mutations import (
    STREAM_KINDS,
    MutationEvent,
    MutationStream,
    ScriptedStream,
    make_stream,
)
from repro.dynamic.overlay import (
    DEFAULT_COMPACT_FRACTION,
    DeltaNeighborOps,
    DeltaOverlay,
)
from repro.dynamic.service import (
    ChurnRecord,
    MISService,
    ServiceKilledError,
    run_with_chaos,
)

__all__ = [
    "DEFAULT_COMPACT_FRACTION",
    "STREAM_KINDS",
    "ChurnRecord",
    "DeltaNeighborOps",
    "DeltaOverlay",
    "MISService",
    "MutationEvent",
    "MutationStream",
    "ScriptedStream",
    "ServiceKilledError",
    "make_stream",
    "run_with_chaos",
]
