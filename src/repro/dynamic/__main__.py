"""Self-check CLI for the dynamic-graph MIS service.

Usage::

    python -m repro.dynamic --doctor [--n N] [--events K]

``--doctor`` verifies the whole churn stack on *this* machine, pinning
the contracts the test suite asserts at scale:

* overlay/CSR equivalence — a mutated :class:`~repro.dynamic.overlay.
  DeltaOverlay` snapshots and compacts to the same graph a from-scratch
  rebuild produces;
* repair == rebuild — a service with incremental frontier repair
  produces the bitwise-identical trajectory of one that rebuilds the
  aggregates after every event;
* kill/resume — a chaos-killed, checkpointed service resumes and
  finishes bitwise-identical to an uninterrupted run (records
  included);
* torn-tail resume — same, when the kill also tears the journal tail
  mid-record (the ``"poison"`` fault).

Exit 0 = healthy.  ``make churn-smoke`` runs this plus the fast E20.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

import numpy as np


def _check(label: str, ok: bool, detail: str = "") -> bool:
    status = "ok" if ok else "FAIL"
    suffix = f"  ({detail})" if detail else ""
    print(f"  [{status:>4}] {label}{suffix}")
    return ok


def _records(service) -> list[dict]:
    return [r.to_dict() for r in service.records]


def doctor(n: int, events: int) -> int:
    """Run the dynamic-stack self-check; returns a process exit code."""
    from repro.dynamic import DeltaOverlay, MISService, make_stream, run_with_chaos
    from repro.graphs.random_graphs import gnp_random_graph
    from repro.parallel.chaos import ServiceChaosPolicy

    print(f"repro.dynamic doctor (n={n}, events={events})")
    graph = gnp_random_graph(n, 3.0 / n, rng=11)
    stream = make_stream("uniform", n, seed=3)

    # Overlay/CSR equivalence: drive the overlay through the stream,
    # then rebuild the same graph from scratch off the final snapshot.
    overlay = DeltaOverlay(graph, compact_fraction=0.1)
    for offset in range(events):
        overlay.apply_event(stream.event_at(offset, overlay))
        if overlay.should_compact():
            overlay.compact()
    snap = overlay.snapshot()
    su, sv = snap.edge_arrays()
    overlay.compact()
    cu, cv = overlay.base.edge_arrays()
    healthy = _check(
        "overlay snapshot == compacted CSR",
        np.array_equal(su, cu) and np.array_equal(sv, cv),
        f"{snap.m} edges, {overlay.compactions} compactions",
    )
    healthy &= _check(
        "live degrees track the CSR",
        np.array_equal(overlay.degrees(), overlay.base.degrees()),
    )

    # Repair == rebuild: bitwise-identical trajectories, records included.
    ref = MISService(graph, stream, seed=1)
    ref.run(events)
    ctl = MISService(graph, stream, seed=1, repair=False)
    ctl.run(events)
    healthy &= _check(
        "incremental repair == from-scratch rebuild",
        np.array_equal(ref._state_arrays()[0], ctl._state_arrays()[0])
        and [r.rounds for r in ref.records] == [r.rounds for r in ctl.records],
        f"{ref.repairs} repairs vs {ctl.rebuilds} rebuilds",
    )
    healthy &= _check(
        "repair path on the hot path",
        ref.repairs > 0 and ref.repairs >= ref.rebuilds,
        f"repairs={ref.repairs} rebuilds={ref.rebuilds}",
    )

    # Kill/resume and torn-tail resume under scripted chaos.
    mid = events // 2
    for label, fault in (("kill/resume", "kill"), ("torn-tail resume", "poison")):
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "service.ckpt")
            chaos = ServiceChaosPolicy.scripted({(mid, 0): fault})

            def make_service() -> MISService:
                return MISService(
                    graph, stream, seed=1, checkpoint=path, checkpoint_every=5
                )

            service, restarts = run_with_chaos(make_service, events, chaos)
            ok = (
                restarts == 1
                and np.array_equal(
                    ref._state_arrays()[0], service._state_arrays()[0]
                )
                and _records(ref) == _records(service)
            )
            service.close()
            healthy &= _check(
                f"{label} is bitwise-identical",
                ok,
                f"{restarts} restart(s) at offset {mid}",
            )

    print("healthy" if healthy else "UNHEALTHY")
    return 0 if healthy else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.dynamic")
    parser.add_argument(
        "--doctor", action="store_true",
        help="self-check the overlay, service, and kill/resume contracts",
    )
    parser.add_argument(
        "--n", type=int, default=256, metavar="N",
        help="vertex count for the doctor graph (default: 256)",
    )
    parser.add_argument(
        "--events", type=int, default=60, metavar="K",
        help="mutation-stream length for the doctor run (default: 60)",
    )
    args = parser.parse_args(argv)
    if not args.doctor:
        parser.error("pass --doctor")
    return doctor(args.n, args.events)


if __name__ == "__main__":
    sys.exit(main())
