"""Deterministic, seekable topology-mutation streams.

A mutation stream is the service's fault model: an unbounded sequence
of topology events (edge flips, vertex joins/leaves).  Determinism and
seekability are the load-bearing properties — the checkpoint/resume
contract of :class:`~repro.dynamic.service.MISService` replays events
``0..k`` onto a fresh overlay to reconstruct the topology at offset
``k`` exactly, so :meth:`MutationStream.event_at` must be a pure
function of ``(seed, offset)`` and the overlay's *current* topology.
Each event draws from ``random.Random(f"{kind}:{seed}:{offset}")`` —
string seeding hashes via SHA-512, stable across processes and
platforms, the same discipline as :mod:`repro.parallel.chaos`.

Stream kinds (:data:`STREAM_KINDS`, built by :func:`make_stream`):

* ``"uniform"``  — global uniform churn: each event toggles a uniformly
  random vertex pair (insert if absent, delete if present).
* ``"flapping"`` — a fixed pool of links flapping on/off, the classic
  unstable-link fault model.
* ``"hub"``      — adversarial targeted churn: knock out the current
  highest-degree alive vertex; alternate events revive the
  lowest-numbered dead slot with a few random links.
* ``"burst"``    — localized churn: events arrive in fixed-size bursts
  that all touch the neighbourhood of one per-burst centre vertex.

:class:`ScriptedStream` wraps an explicit event list (tests, doctor).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

import numpy as np


@dataclass(frozen=True)
class MutationEvent:
    """One topology mutation.

    ``kind`` ∈ {``"add-edge"``, ``"del-edge"``, ``"add-vertex"``,
    ``"del-vertex"``}; ``v`` is meaningful for edge events only,
    ``neighbors`` for ``"add-vertex"`` only.
    """

    kind: str
    u: int
    v: int = -1
    neighbors: tuple[int, ...] = ()

    def to_tuple(self) -> tuple:
        return (self.kind, self.u, self.v, tuple(self.neighbors))

    @classmethod
    def from_tuple(cls, t: "tuple | list") -> "MutationEvent":
        kind, u, v, neighbors = t
        return cls(str(kind), int(u), int(v), tuple(neighbors))


class MutationStream:
    """Base class: a seeded, seekable event sequence (see module docs)."""

    kind: str = "abstract"

    def __init__(self, n: int, seed: int = 0) -> None:
        if n < 2:
            raise ValueError("mutation streams need n >= 2")
        self.n = int(n)
        self.seed = int(seed)

    def spec(self) -> dict[str, Any]:
        """Fingerprintable identity (stream kind + every parameter)."""
        out: dict[str, Any] = {
            "stream": self.kind,
            "n": self.n,
            "seed": self.seed,
        }
        out.update(self._params())
        return out

    def _params(self) -> dict[str, Any]:
        return {}

    def _rng(self, offset: int) -> random.Random:
        return random.Random(f"{self.kind}:{self.seed}:{offset}")

    def event_at(self, offset: int, overlay: Any) -> MutationEvent:
        """The event at ``offset`` given the overlay's current topology."""
        raise NotImplementedError


class ScriptedStream(MutationStream):
    """An explicit finite event list (tests and self-checks)."""

    kind = "scripted"

    def __init__(self, n: int, events: "list[MutationEvent]") -> None:
        super().__init__(n, seed=0)
        self.events = list(events)

    def _params(self) -> dict[str, Any]:
        return {"events": [e.to_tuple() for e in self.events]}

    def event_at(self, offset: int, overlay: Any) -> MutationEvent:
        return self.events[offset]


class UniformChurnStream(MutationStream):
    """Global uniform churn: each event toggles a random vertex pair."""

    kind = "uniform"

    def event_at(self, offset: int, overlay: Any) -> MutationEvent:
        rng = self._rng(offset)
        u = rng.randrange(self.n)
        v = rng.randrange(self.n - 1)
        if v >= u:
            v += 1
        if overlay.has_edge(u, v):
            return MutationEvent("del-edge", u, v)
        return MutationEvent("add-edge", u, v)


class FlappingLinkStream(MutationStream):
    """A fixed pool of ``links`` vertex pairs flapping on/off."""

    kind = "flapping"

    def __init__(self, n: int, seed: int = 0, links: int = 16) -> None:
        super().__init__(n, seed)
        self.links = int(links)
        if self.links < 1:
            raise ValueError("flapping streams need links >= 1")
        pool_rng = random.Random(f"{self.kind}:{self.seed}:pool")
        pool: set[tuple[int, int]] = set()
        limit = min(self.links, n * (n - 1) // 2)
        while len(pool) < limit:
            u = pool_rng.randrange(n)
            v = pool_rng.randrange(n - 1)
            if v >= u:
                v += 1
            pool.add((min(u, v), max(u, v)))
        self._pool = sorted(pool)

    def _params(self) -> dict[str, Any]:
        return {"links": self.links}

    def event_at(self, offset: int, overlay: Any) -> MutationEvent:
        rng = self._rng(offset)
        u, v = self._pool[rng.randrange(len(self._pool))]
        if overlay.has_edge(u, v):
            return MutationEvent("del-edge", u, v)
        return MutationEvent("add-edge", u, v)


class HubDeletionStream(MutationStream):
    """Adversarial targeted churn: delete the current max-degree vertex.

    Odd offsets (when any slot is dead) revive the lowest-numbered dead
    slot with up to ``rewire`` random links to alive vertices, so the
    graph is churned rather than consumed.  Ties on degree break to the
    lowest index — fully deterministic.
    """

    kind = "hub"

    def __init__(self, n: int, seed: int = 0, rewire: int = 3) -> None:
        super().__init__(n, seed)
        self.rewire = int(rewire)

    def _params(self) -> dict[str, Any]:
        return {"rewire": self.rewire}

    def event_at(self, offset: int, overlay: Any) -> MutationEvent:
        rng = self._rng(offset)
        dead = np.flatnonzero(~overlay.alive)
        alive = np.flatnonzero(overlay.alive)
        if (offset % 2 == 1 and dead.size) or alive.size == 0:
            u = int(dead[0])
            others = alive[alive != u]
            k = min(self.rewire, int(others.size))
            nbrs = tuple(
                int(others[rng.randrange(others.size)]) for _ in range(k)
            )
            return MutationEvent("add-vertex", u, neighbors=nbrs)
        degs = overlay.degrees()
        hub = int(alive[np.argmax(degs[alive])])
        return MutationEvent("del-vertex", hub)


class LocalizedBurstStream(MutationStream):
    """Localized churn: bursts of events around one centre per burst."""

    kind = "burst"

    def __init__(self, n: int, seed: int = 0, burst: int = 8) -> None:
        super().__init__(n, seed)
        self.burst = int(burst)
        if self.burst < 1:
            raise ValueError("burst streams need burst >= 1")

    def _params(self) -> dict[str, Any]:
        return {"burst": self.burst}

    def event_at(self, offset: int, overlay: Any) -> MutationEvent:
        block = offset // self.burst
        center = random.Random(
            f"{self.kind}:{self.seed}:centre:{block}"
        ).randrange(self.n)
        rng = self._rng(offset)
        nbrs = overlay.neighbors_of(center)
        if nbrs.size and rng.random() < 0.5:
            w = int(nbrs[rng.randrange(int(nbrs.size))])
            return MutationEvent("del-edge", center, w)
        w = rng.randrange(self.n - 1)
        if w >= center:
            w += 1
        if overlay.has_edge(center, w):
            return MutationEvent("del-edge", center, w)
        return MutationEvent("add-edge", center, w)


#: Seeded stream kinds accepted by :func:`make_stream`.
STREAM_KINDS = ("uniform", "flapping", "hub", "burst")

_STREAMS: dict[str, type[MutationStream]] = {
    "uniform": UniformChurnStream,
    "flapping": FlappingLinkStream,
    "hub": HubDeletionStream,
    "burst": LocalizedBurstStream,
}


def make_stream(
    kind: str, n: int, seed: int = 0, **params: Any
) -> MutationStream:
    """Construct a seeded mutation stream by kind (:data:`STREAM_KINDS`)."""
    if kind not in _STREAMS:
        raise ValueError(
            f"unknown stream kind {kind!r}; expected one of {STREAM_KINDS}"
        )
    return _STREAMS[kind](n, seed, **params)
