"""MISService: a long-running self-stabilizing MIS daemon under churn.

The daemon owns a :class:`~repro.dynamic.overlay.DeltaOverlay`, a
2-/3-state process running on the overlay's
:class:`~repro.dynamic.overlay.DeltaNeighborOps`, and a deterministic
mutation stream (:mod:`repro.dynamic.mutations`).  Per stream offset it

1. applies the mutation to the overlay (atomically),
2. repairs the frontier aggregates in place from only the touched
   endpoints (:meth:`repro.core.frontier.FrontierAggregates.apply_topology_delta`),
   falling back to a rebuild when the delta breaks the
   monotone-coverage invariant or the aggregates are stale,
3. compacts the overlay into a fresh base CSR when the delta log
   outgrows it (representation-only; trajectories are unaffected),
4. runs recovery rounds until the MIS re-stabilizes (every
   ``settle_every`` events, capped at ``max_recovery_rounds``),
5. serves MIS-membership / is-stable queries between rounds, and
6. emits one :class:`ChurnRecord` of recovery instrumentation.

Checkpoint/resume
-----------------

With ``checkpoint=`` the service journals through
:mod:`repro.sim.checkpoint`: every record under ``rec:{offset}``, and
every ``checkpoint_every`` events a full state snapshot — the state
vector bytes, the coin generator's bit-generator state, and the round
counter.  Because the mutation stream is a pure function of
``(seed, offset, topology)``, resume replays mutations ``0..k`` onto a
fresh overlay (compacting at the same offsets — the criterion depends
only on topology history), restores the state vector *without drawing
init coins*, and splices the saved generator state into a fresh
:class:`~repro.sim.rng.SeededCoins` — so a killed-and-resumed service
produces the *bitwise-identical* trajectory of an uninterrupted run,
whatever the checkpoint cadence.  ``tests/test_dynamic_service.py``
and ``python -m repro.parallel --chaos-smoke`` pin this.

Dead slots: a removed vertex parks as an isolated, still-coin-drawing
singleton (the fixed-width ``bits(n)`` discipline of §2.1 survives
churn); queries filter on the overlay's ``alive`` mask.
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.core.states import BLACK1, WHITE
from repro.core.three_state import ThreeStateMIS
from repro.core.two_state import TwoStateMIS
from repro.dynamic.mutations import MutationEvent, MutationStream
from repro.dynamic.overlay import (
    DEFAULT_COMPACT_FRACTION,
    DeltaNeighborOps,
    DeltaOverlay,
)
from repro.graphs.graph import Graph
from repro.sim.checkpoint import CheckpointJournal, CheckpointView
from repro.sim.rng import SeededCoins

#: Process families the service can host.
PROCESSES = ("2-state", "3-state")


class ServiceKilledError(RuntimeError):
    """The chaos policy killed the service mid-stream (resumable)."""

    def __init__(self, offset: int) -> None:
        super().__init__(f"chaos-killed at stream offset {offset}")
        self.offset = int(offset)


@dataclass
class ChurnRecord:
    """Per-event recovery instrumentation (one per stream offset).

    The service's supervision-event analogue: ``action`` is the
    frontier's repair-vs-rebuild decision (``"noop"`` for events that
    changed nothing), ``rounds`` the recovery rounds run after the
    event, ``stabilized`` whether the MIS re-stabilized within the
    budget, and ``round_end`` the process round counter afterwards.
    """

    offset: int
    kind: str
    added: int
    removed: int
    action: str
    compacted: bool
    rounds: int
    stabilized: bool
    round_end: int

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ChurnRecord":
        return cls(**dict(d))


class MISService:
    """A self-stabilizing MIS maintained live under topology churn.

    Parameters
    ----------
    graph:
        The initial topology (becomes the overlay's base CSR).
    stream:
        The mutation stream to consume (deterministic + seekable).
    process:
        ``"2-state"`` (default) or ``"3-state"``.
    seed:
        Coin seed; the service always runs a
        :class:`~repro.sim.rng.SeededCoins` so its generator state is
        checkpointable.
    engine, backend:
        Forwarded to the process (the frontier engine is what makes
        incremental repair pay; ``engine="full"`` degrades every event
        to the rebuild path).
    compact_fraction:
        Overlay compaction threshold (see
        :data:`~repro.dynamic.overlay.DEFAULT_COMPACT_FRACTION`).
    settle_every:
        Run recovery rounds after every k-th event (default 1: after
        each).  Batched churn waves settle once per wave.
    max_recovery_rounds:
        Per-settle round budget; default ``64 * max(1, ceil(log2 n))``
        — far above the O(log n) w.h.p. bound, so hitting it signals a
        real failure (``ChurnRecord.stabilized`` goes False).
    repair:
        ``False`` disables incremental repair: every event invalidates
        the aggregates and the next access rebuilds from scratch (the
        control arm of E20/bench_churn; trajectories are identical).
    checkpoint:
        ``None`` (no journaling), a path (the service opens — and owns
        — a fingerprinted :class:`~repro.sim.checkpoint.CheckpointJournal`
        there), or an existing journal/view.
    checkpoint_every:
        Full state snapshot cadence in events (default 1).
    resume:
        When ``True`` (default) and the journal holds a snapshot,
        restore from the latest one instead of starting fresh.
    """

    def __init__(
        self,
        graph: Graph,
        stream: MutationStream,
        *,
        process: str = "2-state",
        seed: int = 0,
        engine: str = "auto",
        backend: str = "auto",
        compact_fraction: float = DEFAULT_COMPACT_FRACTION,
        settle_every: int = 1,
        max_recovery_rounds: int | None = None,
        repair: bool = True,
        checkpoint: "str | Path | CheckpointJournal | CheckpointView | None" = None,
        checkpoint_every: int = 1,
        resume: bool = True,
    ) -> None:
        if process not in PROCESSES:
            raise ValueError(
                f"unknown process {process!r}; expected one of {PROCESSES}"
            )
        if graph.n != stream.n:
            raise ValueError(
                f"stream is sized for n={stream.n}, graph has n={graph.n}"
            )
        if settle_every < 1 or checkpoint_every < 1:
            raise ValueError("settle_every/checkpoint_every must be >= 1")
        self.stream = stream
        self.process_name = process
        self.seed = int(seed)
        self.engine = engine
        self.backend = backend
        self.settle_every = int(settle_every)
        self.checkpoint_every = int(checkpoint_every)
        self.repair = bool(repair)
        self.overlay = DeltaOverlay(graph, compact_fraction)
        self.ops = DeltaNeighborOps(self.overlay, backend)
        n = graph.n
        self.max_recovery_rounds = (
            int(max_recovery_rounds)
            if max_recovery_rounds is not None
            else 64 * max(1, math.ceil(math.log2(max(2, n))))
        )
        #: One ChurnRecord per consumed event, in offset order.
        self.records: list[ChurnRecord] = []
        #: The next stream offset to consume.
        self.next_offset = 0
        #: Repair-vs-rebuild decision totals (instrumentation).
        self.repairs = 0
        self.rebuilds = 0
        #: Rounds spent settling the initial configuration.
        self.start_rounds = 0

        self._owns_journal = False
        self._store: "CheckpointJournal | CheckpointView | None" = None
        if isinstance(checkpoint, (str, Path)):
            self._store = CheckpointJournal(
                checkpoint, self._spec(), resume=resume
            )
            self._owns_journal = True
        elif checkpoint is not None:
            self._store = checkpoint

        restored = resume and self._store is not None and self._resume()
        if not restored:
            self.proc = self._make_process(graph, SeededCoins(self.seed))
            self.start_rounds = self._settle()
            self._snapshot_state(-1)

    # -- construction helpers -------------------------------------------
    def _spec(self) -> dict[str, Any]:
        """Fingerprintable identity of this service configuration."""
        return {
            "service": "mis",
            "process": self.process_name,
            "seed": self.seed,
            "engine": self.engine,
            "backend": self.backend,
            "settle_every": self.settle_every,
            "repair": self.repair,
            "compact_fraction": self.overlay.compact_fraction,
            "stream": self.stream.spec(),
        }

    def _make_process(
        self,
        graph: Graph,
        coins: SeededCoins,
        init: np.ndarray | None = None,
    ) -> "TwoStateMIS | ThreeStateMIS":
        cls = TwoStateMIS if self.process_name == "2-state" else ThreeStateMIS
        return cls(
            graph,
            coins=coins,
            init=init,
            engine=self.engine,
            backend=self.backend,
            ops=self.ops,
        )

    def _state_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """``(token array, black mask, aux mask or None)`` of the process."""
        proc = self.proc
        if isinstance(proc, ThreeStateMIS):
            states = proc.states
            return states, states != WHITE, states == BLACK1
        return proc.black, proc.black, None

    # -- queries ---------------------------------------------------------
    def is_stable(self) -> bool:
        """Whether the MIS has (re-)stabilized (O(1) under frontier)."""
        return self.proc.is_stabilized()

    def is_member(self, u: int) -> bool:
        """Whether alive vertex ``u`` is currently in the black set."""
        u = int(u)
        if not (0 <= u < self.overlay.n):
            raise IndexError(f"vertex {u} out of range for n={self.overlay.n}")
        if not self.overlay.alive[u]:
            return False
        return bool(self._state_arrays()[1][u])

    def mis(self) -> np.ndarray:
        """The stabilized MIS restricted to alive vertices (sorted)."""
        if not self.proc.is_stabilized():
            raise RuntimeError("service has not re-stabilized; no MIS yet")
        black = self._state_arrays()[1]
        return np.flatnonzero(black & self.overlay.alive)

    # -- dynamics --------------------------------------------------------
    def _settle(self) -> int:
        """Run recovery rounds until stable or the budget runs out."""
        rounds = 0
        proc = self.proc
        while rounds < self.max_recovery_rounds and not proc.is_stabilized():
            proc.step()
            rounds += 1
        return rounds

    def apply_event(self, event: MutationEvent) -> ChurnRecord:
        """Consume one mutation event; returns its recovery record."""
        offset = self.next_offset
        add_us, add_vs, rem_us, rem_vs = self.overlay.apply_event(event)
        compacted = False
        if add_us.size + rem_us.size == 0:
            action = "noop"
        else:
            token, black, aux = self._state_arrays()
            frontier = self.proc._frontier
            if (
                self.repair
                and frontier is not None
                and frontier.token is token
            ):
                action = frontier.apply_topology_delta(
                    black, add_us, add_vs, rem_us, rem_vs,
                    token=token, aux=aux,
                )
            else:
                action = "rebuild"
                if frontier is not None:
                    frontier.invalidate()
            self.proc._topology_changed()
            if action == "rebuild":
                self.rebuilds += 1
            else:
                self.repairs += 1
            if self.overlay.should_compact():
                self.overlay.compact()
                self.ops.rebase()
                self.proc.graph = self.overlay.base
                if frontier is not None:
                    frontier.graph = self.overlay.base
                compacted = True
        rounds = 0
        if (offset + 1) % self.settle_every == 0:
            rounds = self._settle()
        record = ChurnRecord(
            offset=offset,
            kind=event.kind,
            added=int(add_us.size),
            removed=int(rem_us.size),
            action=action,
            compacted=compacted,
            rounds=rounds,
            stabilized=self.proc.is_stabilized(),
            round_end=int(self.proc.round),
        )
        self.records.append(record)
        self.next_offset = offset + 1
        return record

    def run(
        self,
        events: int,
        *,
        chaos: Any = None,
        chaos_attempts: "dict[int, int] | None" = None,
    ) -> list[ChurnRecord]:
        """Consume the stream up to ``events`` total offsets.

        Resumes from :attr:`next_offset`; returns the records produced
        by *this* call.  ``chaos`` is an optional
        :class:`~repro.parallel.chaos.ServiceChaosPolicy`; faults fire
        before the offset's event is applied (events are atomic), and
        ``chaos_attempts`` — shared across restarts by
        :func:`run_with_chaos` — counts visits per offset.
        """
        produced: list[ChurnRecord] = []
        attempts = chaos_attempts if chaos_attempts is not None else {}
        while self.next_offset < events:
            offset = self.next_offset
            if chaos is not None:
                attempt = attempts.get(offset, 0)
                attempts[offset] = attempt + 1
                fault = chaos.fault_for(offset, attempt)
                if fault is not None:
                    self._inject_fault(chaos, fault, offset)
            event = self.stream.event_at(offset, self.overlay)
            record = self.apply_event(event)
            produced.append(record)
            self._journal_record(record)
        return produced

    def _inject_fault(self, chaos: Any, fault: str, offset: int) -> None:
        if fault in ("hang", "slow"):
            time.sleep(
                chaos.hang_seconds if fault == "hang" else chaos.slow_seconds
            )
            return
        if fault == "poison":
            journal = self._underlying_journal()
            if journal is not None:
                journal.tear_tail()
        self.close()
        raise ServiceKilledError(offset)

    def _underlying_journal(self) -> CheckpointJournal | None:
        if isinstance(self._store, CheckpointJournal):
            return self._store
        if isinstance(self._store, CheckpointView):
            return self._store.journal
        return None

    # -- checkpoint / resume ---------------------------------------------
    def _journal_record(self, record: ChurnRecord) -> None:
        if self._store is None:
            return
        self._store.put(f"rec:{record.offset}", record.to_dict())
        if (record.offset + 1) % self.checkpoint_every == 0:
            self._snapshot_state(record.offset)

    def _snapshot_state(self, offset: int) -> None:
        """Journal a full resume point: state vector + coin-stream state."""
        if self._store is None:
            return
        proc = self.proc
        coins = proc.coins
        if not isinstance(coins, SeededCoins):  # pragma: no cover - guard
            raise TypeError("checkpointing requires SeededCoins")
        state = self._state_arrays()[0]
        self._store.put(
            f"state:{offset}",
            {
                "offset": int(offset),
                "round": int(proc.round),
                "rng": coins.generator.bit_generator.state,
                "repairs": self.repairs,
                "rebuilds": self.rebuilds,
                "start_rounds": self.start_rounds,
            },
        )
        self._store.put_bytes(f"blob:{offset}", state.tobytes())

    def _resume(self) -> bool:
        """Restore from the journal's latest snapshot; False if none."""
        assert self._store is not None
        keys = set(self._store.keys())
        snapshots = sorted(
            int(k.split(":", 1)[1])
            for k in keys
            if k.startswith("state:") and f"blob:{k.split(':', 1)[1]}" in keys
        )
        if not snapshots:
            return False
        last = snapshots[-1]
        meta = self._store.get(f"state:{last}")
        blob = self._store.get_bytes(f"blob:{last}")
        if meta is None or blob is None:  # pragma: no cover - guard
            return False
        # Replay mutations 0..last topology-only onto the fresh overlay,
        # compacting on the same criterion as the live path (it depends
        # only on topology history, so the points coincide exactly).
        for offset in range(last + 1):
            event = self.stream.event_at(offset, self.overlay)
            self.overlay.apply_event(event)
            if self.overlay.should_compact():
                self.overlay.compact()
                self.ops.rebase()
        dtype = np.int8 if self.process_name == "3-state" else np.bool_
        init = np.frombuffer(blob, dtype=dtype).copy()
        coins = SeededCoins(self.seed)
        coins.generator.bit_generator.state = meta["rng"]
        # Array init draws no coins, so the spliced generator state is
        # exactly where the uninterrupted run's stream stood.
        self.proc = self._make_process(self.overlay.base, coins, init=init)
        self.proc.round = int(meta["round"])
        # Prime the frontier engine (coin-free) so the first post-resume
        # event takes the same repair-vs-rebuild decision — and records
        # the same ChurnRecord.action — as the uninterrupted run.
        self.proc._frontier_aggregates()
        self.repairs = int(meta["repairs"])
        self.rebuilds = int(meta["rebuilds"])
        self.start_rounds = int(meta["start_rounds"])
        self.records = [
            ChurnRecord.from_dict(self._store.get(f"rec:{j}"))
            for j in range(last + 1)
            if f"rec:{j}" in keys
        ]
        self.next_offset = last + 1
        return True

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Close the journal if the service owns it (idempotent)."""
        if self._owns_journal and self._store is not None:
            journal = self._underlying_journal()
            if journal is not None:
                journal.close()

    def __enter__(self) -> "MISService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"MISService(process={self.process_name!r}, "
            f"n={self.overlay.n}, offset={self.next_offset}, "
            f"repairs={self.repairs}, rebuilds={self.rebuilds}, "
            f"stable={self.is_stable()})"
        )


def run_with_chaos(
    make_service: Any,
    events: int,
    chaos: Any,
    max_restarts: int = 1000,
) -> tuple[MISService, int]:
    """Drive a checkpointed service to ``events`` under a chaos policy.

    ``make_service`` constructs (or resumes — it must pass the same
    ``checkpoint=`` path) a fresh :class:`MISService`; every
    ``ServiceKilledError`` triggers a restart, with the per-offset
    attempt counts shared across incarnations so bounded policies
    terminate.  Returns ``(final service, restart count)``.
    """
    attempts: dict[int, int] = {}
    restarts = 0
    while True:
        service = make_service()
        try:
            service.run(events, chaos=chaos, chaos_attempts=attempts)
            return service, restarts
        except ServiceKilledError:
            restarts += 1
            if restarts > max_restarts:
                raise
