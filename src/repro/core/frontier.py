"""Incremental frontier aggregates: pay per round for what changed.

The paper's central phenomenon is that the unstable set ``V_t`` shrinks
geometrically, yet a naive engine charges full-graph cost every round:
one neighbourhood reduction (a CSR matvec over all ``2m`` directed
edges) in ``_advance`` plus two more in ``is_stabilized``.  Late in a
large sparse run a round that moves 50 vertices still costs three
passes over millions of edges.

This module maintains the neighbourhood aggregates the processes
actually consume — the per-vertex black-neighbour count, and the
stability bookkeeping (``I_t``, ``N+[I_t]``, the unstable-vertex
counter) behind the stabilization predicate — as *persistent state*,
updated each round by scatter-adds over only the edges incident to
vertices whose state changed.  Per-round cost becomes
``O(n + vol(changed))`` instead of ``O(m)`` (the ``O(n)`` term is the
coin draw and the boolean mask algebra, which every engine pays).

Engine modes (``engine=`` on the 2-state and 3-state constructors):

* ``"full"``     — the classic path: one fresh reduction per aggregate
  per round (memoized within a round, see
  :meth:`repro.core.process.MISProcess._aggregate`).
* ``"frontier"`` — always scatter-update the persistent counts.
* ``"auto"``     — per round, scatter-update when the changed set's
  edge volume is below the crossover fraction of the graph's total
  directed edge volume, otherwise recompute the counts with one full
  reduction (the counts stay persistent either way).  This is the
  default: early rounds where most of the graph moves pay one matvec,
  and as ``V_t`` collapses the engine switches to scatter updates.

All three modes produce bitwise-identical trajectories: the aggregates
are exact integer counts however they are computed, and the coin
discipline is untouched (``bits(n)`` is drawn every round even when few
vertices consume it).  ``tests/test_frontier.py`` pins this.

Stabilization bookkeeping
-------------------------

Alongside the black-neighbour counts, :class:`FrontierAggregates`
maintains ``I_t`` (the stable-black set), the per-vertex count of
stable-black neighbours, the covered mask ``N+[I_t]`` and the number of
uncovered vertices — so ``is_stabilized()`` is an O(1) counter check in
the frontier regime instead of two fresh reductions.  ``I_t`` can only
change where the black mask or a black-neighbour count changed, so the
bookkeeping is scatter-updated along the same edges as the counts.

The 3-color/switch process stays on the full path for now: its switch
levels perform a ``max`` diffusion over *every* closed neighbourhood
each round (levels decay by 1 per round everywhere), so there is no
small changed set to exploit — the switch state never quiesces the way
the 2-/3-state masks do.

Crossover
---------

``DEFAULT_CROSSOVER`` is the scatter/full switch point as a fraction of
the graph's directed edge volume ``2m``, picked empirically on sparse
G(n, 3/n) workloads (see ``benchmarks/bench_frontier.py``): a bincount
scatter touches ``vol(changed)`` edges but pays an ``O(n)`` histogram
pass per delta sign, while the CSR matvec touches all ``2m`` edges with
a tighter inner loop.  The measured break-even sits near a quarter of
the total volume and is flat around the optimum, matching the
``vol(changed) > m/4``-ish heuristic from frontier-based BFS and
label-propagation systems.
"""

from __future__ import annotations

import numpy as np

from repro.core.neighbor_ops import NeighborOps
from repro.graphs.graph import Graph

#: Engine modes accepted by the 2-state / 3-state constructors.
ENGINES = ("auto", "frontier", "full")

#: Scatter/full crossover as a fraction of the directed edge volume 2m
#: (see the module docstring; picked empirically, flat optimum — the
#: bincount scatter stays competitive with the CSR matvec up to about
#: half the total volume on the sparse frontier workloads).
DEFAULT_CROSSOVER = 0.25

#: Token meaning "aggregates out of sync with the process state".
STALE = object()


def resolve_engine(engine: str) -> str:
    """Validate an ``engine=`` argument (``"auto"``/``"frontier"``/``"full"``)."""
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    return engine


class FrontierAggregates:
    """Persistent neighbourhood aggregates for one evolving black mask.

    Maintains, for the process that owns it:

    * ``counts``        — int64, ``counts[u] = |N(u) ∩ B_t|``;
    * ``has_black``     — ``counts > 0``, kept materialized (it is what
      the update rules actually consume);
    * ``aux_counts`` / ``aux_has`` — optional second count array for
      processes that consume a second indicator (the 3-state process's
      black1 mask);
    * ``stable``        — ``I_t``, the black vertices with no black
      neighbour;
    * ``covered``       — ``N+[I_t]``;
    * ``unstable_total``— ``|V \\ N+[I_t]|``, the O(1) stabilization
      counter.

    The stable-black-neighbour counts behind ``N+[I_t]`` are computed
    at rebuild time to seed ``covered``; per round they are redundant,
    because one synchronous application of any of the update rules can
    only *add* vertices to ``I_t`` (a black vertex with no black
    neighbour keeps its state, and its neighbours — non-black with a
    black neighbour — keep theirs; this holds from any configuration,
    so corrupted starts are covered too).  ``covered`` therefore grows
    by ``added ∪ N(added)`` writes; if a removal is ever observed the
    engine falls back to a from-scratch recomputation
    (:meth:`_recompute_covered`).

    ``token`` is the identity of the state array the aggregates were
    last synced to; owners compare it against their current state array
    and call :meth:`rebuild` on mismatch (which is how transient faults
    injected via ``corrupt`` re-dirty the incremental state).

    Parameters
    ----------
    graph:
        The (immutable) graph.
    ops:
        The owner's :class:`~repro.core.neighbor_ops.NeighborOps`, used
        for full recomputations and scatter deltas.
    adaptive:
        ``True`` for ``engine="auto"`` (per-round scatter/full
        crossover), ``False`` for ``engine="frontier"`` (always
        scatter).
    track_aux:
        Maintain the auxiliary count array as well.
    crossover:
        Scatter/full switch point as a fraction of the directed edge
        volume (only consulted when ``adaptive``).
    """

    def __init__(
        self,
        graph: Graph,
        ops: NeighborOps,
        adaptive: bool = True,
        track_aux: bool = False,
        crossover: float = DEFAULT_CROSSOVER,
    ) -> None:
        self.graph = graph
        self.ops = ops
        self.n = graph.n
        self.adaptive = bool(adaptive)
        self.track_aux = bool(track_aux)
        self.crossover = float(crossover)
        # Degrees/volume come from the ops backend, not the graph: the
        # dynamic overlay backend (repro.dynamic.overlay) reports the
        # live churn-adjusted topology through the same hooks.
        self._degrees = ops.degrees()
        #: Directed edge volume 2m — the cost of one full reduction.
        self.volume = int(ops.volume())
        self._threshold = self.crossover * self.volume
        self.token: object = STALE
        self.counts: np.ndarray | None = None
        self.has_black: np.ndarray | None = None
        self.aux_counts: np.ndarray | None = None
        self.aux_has: np.ndarray | None = None
        self.stable: np.ndarray | None = None
        self.covered: np.ndarray | None = None
        self.unstable_total: int = self.n
        #: Round counters by update path (introspection / experiments).
        self.scatter_rounds = 0
        self.full_rounds = 0
        #: Topology-delta counters (incremental repair vs fallback; see
        #: :meth:`apply_topology_delta` and :mod:`repro.dynamic`).
        self.topology_repairs = 0
        self.topology_rebuilds = 0

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Force a rebuild on next access (after in-place state edits)."""
        self.token = STALE

    def _full_counts(self, mask: np.ndarray) -> np.ndarray:
        # int64 counts: np.bincount emits int64, so the scatter adds are
        # cast-free (an int32 store costs an extra conversion pass per
        # histogram; the wider array is noise next to that).
        return self.ops.count(mask).astype(np.int64, copy=False)

    def _counts_for(self, mask: np.ndarray) -> np.ndarray:
        """Counts for a mask, by scatter when its volume is small.

        Rebuild-time analogue of the per-round crossover: a sparse mask
        (e.g. ``I_0`` of a random initial configuration) is cheaper to
        histogram from its members than to push through a full
        reduction.
        """
        members = np.flatnonzero(mask)
        if self.changed_volume(members) <= self._threshold:
            counts = np.zeros(self.n, dtype=np.int64)
            self.ops.apply_count_delta(counts, members, None)
            return counts
        return self._full_counts(mask)

    def rebuild(
        self,
        black: np.ndarray,
        token: object,
        aux: np.ndarray | None = None,
    ) -> None:
        """Recompute every aggregate from scratch for the given mask(s)."""
        self.counts = self._counts_for(black)
        self.has_black = self.counts > 0
        if self.track_aux:
            if aux is None:
                raise ValueError("track_aux aggregates need an aux mask")
            self.aux_counts = self._counts_for(aux)
            self.aux_has = self.aux_counts > 0
        self.stable = black & ~self.has_black
        self._recompute_covered()
        self.token = token

    def _recompute_covered(self) -> None:
        """``N+[I_t]`` and the unstable counter from the current ``stable``."""
        members = np.flatnonzero(self.stable)
        covered = self.stable.copy()
        if members.size:
            nbrs = self.ops.gather(members)
            if nbrs.size:
                covered[nbrs] = True
        self.covered = covered
        self.unstable_total = self.n - int(np.count_nonzero(covered))

    # ------------------------------------------------------------------
    def changed_volume(self, *vertex_arrays: np.ndarray) -> int:
        """Total degree of the given vertex index arrays (scatter cost)."""
        total = 0
        for verts in vertex_arrays:
            if verts is not None and len(verts):
                total += int(self._degrees[verts].sum())
        return total

    def advance(
        self,
        new_black: np.ndarray,
        up: np.ndarray,
        down: np.ndarray,
        token: object,
        aux_mask: np.ndarray | None = None,
        aux_up: np.ndarray | None = None,
        aux_down: np.ndarray | None = None,
    ) -> np.ndarray | None:
        """Advance the aggregates across one synchronous round.

        ``up``/``down`` are the vertices that entered/left the black
        mask this round (``aux_up``/``aux_down`` likewise for the
        auxiliary indicator); ``new_black``/``aux_mask`` are the
        post-round masks, used on full-recompute rounds.

        Returns the scatter targets of the black-count update (the
        vertices whose ``counts`` / ``has_black`` entries may have
        changed, with multiplicity) on scatter rounds, or ``None`` on
        full-recompute rounds — owners maintaining their own
        frontier-localized state (the 2-state process's active-vertex
        index set) key off this.
        """
        black_moved = (up is not None and len(up) > 0) or (
            down is not None and len(down) > 0
        )
        # The scatter/full crossover is decided per indicator: for the
        # 3-state process the black deltas quiesce while the black1
        # deltas never do (stable black vertices alternate black1/black0
        # forever), and a pooled decision would keep recomputing the
        # unchanged black counts from scratch.
        black_scatter = True
        touched = self.graph.indices[:0]
        if black_moved:
            if self.adaptive:
                black_scatter = (
                    self.changed_volume(up, down) <= self._threshold
                )
            if black_scatter:
                touched = self.ops.apply_count_delta(self.counts, up, down)
                if touched.size * 16 < self.n:
                    self.has_black[touched] = self.counts[touched] > 0
                else:
                    self.has_black = self.counts > 0
            else:
                touched = None
                self.counts = self._full_counts(new_black)
                self.has_black = self.counts > 0
        if self.track_aux:
            aux_scatter = True
            if self.adaptive:
                aux_scatter = (
                    self.changed_volume(aux_up, aux_down) <= self._threshold
                )
            if aux_scatter:
                aux_touched = self.ops.apply_count_delta(
                    self.aux_counts, aux_up, aux_down
                )
                if aux_touched.size * 16 < self.n:
                    self.aux_has[aux_touched] = (
                        self.aux_counts[aux_touched] > 0
                    )
                else:
                    self.aux_has = self.aux_counts > 0
            else:
                self.aux_counts = self._full_counts(aux_mask)
                self.aux_has = self.aux_counts > 0
            if not aux_scatter:
                black_scatter = False  # label the round "full" below
        if black_scatter:
            self.scatter_rounds += 1
        else:
            self.full_rounds += 1
        # I_t = f(black mask, black counts): both unchanged when no
        # vertex entered or left the black set, so the stability pass
        # can be skipped outright on black-quiescent rounds.
        if black_moved:
            if (
                touched is not None
                and (len(up) + len(down) + touched.size) * 8 < self.n
            ):
                # Small round: I_t can only change at the moved vertices
                # and the scatter targets, so the whole stability pass
                # runs on that candidate set instead of length-n masks
                # (multiplicity is fine — every write is idempotent).
                candidates = np.concatenate((up, down, touched))
                self._update_stability_local(new_black, candidates)
            else:
                self._update_stability(new_black)
        self.token = token
        return touched

    def _cover_added(self, added: np.ndarray) -> None:
        """Monotone covered update: ``N+[added]`` becomes covered."""
        self.covered[added] = True
        nbrs = self.ops.gather(added)
        if nbrs.size:
            self.covered[nbrs] = True
        self.unstable_total = self.n - int(np.count_nonzero(self.covered))

    def _update_stability_local(
        self, new_black: np.ndarray, candidates: np.ndarray
    ) -> None:
        """Candidate-set variant of :meth:`_update_stability`.

        ``candidates`` must contain every vertex whose blackness or
        black-neighbour count changed this round (multiplicity is
        harmless); the stability state is edited in place at
        O(vol(changed))-many positions.  The only length-n work left
        is the SIMD popcount of the covered mask that refreshes the
        unstable counter (cheaper in practice than deduplicating the
        newly-covered candidates to count the delta).
        """
        new_st = new_black[candidates] & ~self.has_black[candidates]
        diff = new_st != self.stable[candidates]
        if not diff.any():
            return
        moved = candidates[diff]
        moved_new = new_st[diff]
        added = moved[moved_new]
        removed = moved[~moved_new]
        self.stable[added] = True
        if removed.size:
            # Unreachable under the update rules (I_t is monotone, see
            # the class docstring) but kept exact for safety.
            self.stable[removed] = False
            self._recompute_covered()
            return
        self._cover_added(added)

    # ------------------------------------------------------------------
    # Topology churn (the dynamic overlay, :mod:`repro.dynamic`).

    @staticmethod
    def _patch_counts(
        counts: np.ndarray,
        us: np.ndarray,
        vs: np.ndarray,
        mask: np.ndarray,
        sign: int,
    ) -> None:
        """``counts[u] += sign`` per edge ``(u, v)`` with ``mask[v]`` (both ways)."""
        targets = np.concatenate((us[mask[vs]], vs[mask[us]]))
        if targets.size:
            np.add.at(counts, targets, sign)

    def apply_topology_delta(
        self,
        black: np.ndarray,
        add_us: np.ndarray,
        add_vs: np.ndarray,
        rem_us: np.ndarray,
        rem_vs: np.ndarray,
        token: object,
        aux: np.ndarray | None = None,
    ) -> str:
        """Repair the aggregates across an edge delta; returns the action.

        Must be called *after* the owner's ops backend reflects the new
        adjacency (the dynamic overlay of :mod:`repro.dynamic.overlay`
        mutates first, then repairs).  ``add_us``/``add_vs`` and
        ``rem_us``/``rem_vs`` are endpoint arrays of the edges actually
        inserted/deleted (one entry per undirected edge);
        ``black``/``aux`` are the *current* state masks, which topology
        changes never touch.

        Actions returned:

        * ``"repair"``         — counts, ``has_black``, ``I_t``, and the
          covered mask all patched from only the touched endpoints
          (``O(endpoints + vol(I_t) additions)`` work).
        * ``"repair+recover"`` — counts patched incrementally, but the
          delta invalidated the monotone-coverage invariant (a vertex
          left ``I_t``, or a deleted edge touched a stable vertex's
          neighbourhood), so ``N+[I_t]`` was recomputed from scratch —
          the graceful fallback of the class docstring.
        * ``"rebuild"``        — the aggregates were already stale, or
          the delta volume crossed the full-reduction threshold;
          everything is recomputed (lazily in the stale case).
        """
        add_us = np.asarray(add_us, dtype=np.int64)
        add_vs = np.asarray(add_vs, dtype=np.int64)
        rem_us = np.asarray(rem_us, dtype=np.int64)
        rem_vs = np.asarray(rem_vs, dtype=np.int64)
        if self.track_aux and aux is None:
            raise ValueError("track_aux aggregates need an aux mask")
        # Topology-derived scalars first: degrees and volume moved under
        # us, and every later cost estimate must see the new topology.
        self._degrees = self.ops.degrees()
        self.volume = int(self.ops.volume())
        self._threshold = self.crossover * self.volume
        if self.token is not token or self.counts is None:
            # Already out of sync with the state — nothing worth
            # repairing; the next aggregate access rebuilds.
            self.token = STALE
            self.topology_rebuilds += 1
            return "rebuild"
        endpoints = np.concatenate((add_us, add_vs, rem_us, rem_vs))
        if self.adaptive and self.changed_volume(endpoints) > self._threshold:
            self.rebuild(black, token, aux=aux)
            self.topology_rebuilds += 1
            return "rebuild"
        for us, vs, sign in ((add_us, add_vs, 1), (rem_us, rem_vs, -1)):
            if us.size == 0:
                continue
            self._patch_counts(self.counts, us, vs, black, sign)
            if self.track_aux:
                self._patch_counts(self.aux_counts, us, vs, aux, sign)
        uniq = np.unique(endpoints)
        self.has_black[uniq] = self.counts[uniq] > 0
        if self.track_aux:
            self.aux_has[uniq] = self.aux_counts[uniq] > 0
        # I_t can only change at the touched endpoints (blackness is
        # untouched; only their counts moved).
        new_st = black[uniq] & ~self.has_black[uniq]
        diff = new_st != self.stable[uniq]
        added = uniq[diff & new_st]
        removed = uniq[diff & ~new_st]
        self.stable[added] = True
        self.stable[removed] = False
        # Coverage is monotone only while I_t grows and no edge out of a
        # stable vertex disappears; otherwise recompute N+[I_t].  (The
        # removed-edge test is conservative: it fires even when the
        # stable endpoint only just *entered* I_t, which loses nothing
        # but a cheap scatter.)
        recover = removed.size > 0
        if not recover and rem_us.size:
            recover = bool(
                self.stable[rem_us].any() or self.stable[rem_vs].any()
            )
        if recover:
            self._recompute_covered()
            action = "repair+recover"
        else:
            if added.size:
                self._cover_added(added)
            if add_us.size:
                # New edges out of still-stable vertices extend N+[I_t].
                extra = np.concatenate(
                    (add_vs[self.stable[add_us]], add_us[self.stable[add_vs]])
                )
                if extra.size:
                    self.covered[extra] = True
                    self.unstable_total = self.n - int(
                        np.count_nonzero(self.covered)
                    )
            action = "repair"
        self.token = token
        self.topology_repairs += 1
        return action

    def _update_stability(self, new_black: np.ndarray) -> None:
        """Update ``I_t`` / ``N+[I_t]`` / the unstable counter.

        ``I_t`` can only change at vertices whose blackness or
        black-neighbour count changed, and under one application of the
        update rules it can only *grow* (class docstring); the covered
        mask therefore grows by ``added ∪ N(added)``.  A removal —
        impossible under the dynamics — drops to the from-scratch
        recomputation instead.
        """
        new_stable = new_black & ~self.has_black
        delta = np.flatnonzero(new_stable != self.stable)
        self.stable = new_stable
        if delta.size == 0:
            return
        added = delta[new_stable[delta]]
        if added.size < delta.size:  # removals present
            self._recompute_covered()
            return
        self._cover_added(added)
